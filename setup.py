"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs (``pip install -e .``) cannot build the
editable wheel.  This shim lets ``python setup.py develop`` (and
``pip install -e . --no-build-isolation --config-settings editable_mode=compat``
where supported) install the package from ``pyproject.toml`` metadata.
"""

from setuptools import setup

setup()
