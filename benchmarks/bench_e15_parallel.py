"""E15 — the parallel engine: serial-vs-parallel speedups + determinism.

ROADMAP claim: the FACT report's resampling-heavy internals (bootstrap
intervals, Shapley attributions, permutation importances, grid search)
should run "as fast as the hardware allows" *without* surrendering
reproducibility.  This bench measures both halves of that promise:

* **Speedup** — each workload runs with ``n_jobs=1`` and ``n_jobs=4``
  on the thread and process backends; the table reports wall-clock and
  the speedup factor.  Fan-out can only buy wall-clock where cores
  exist, so the host's core count is printed with the table — on a
  4-core machine the bootstrap/Shapley rows clear 2.5x, on a single
  core the engine's overhead (ideally ~1x) is what's being measured.
* **Determinism** — for every parallelised API the ``n_jobs=4`` output
  is compared **byte-identically** (``np.array_equal`` / dataclass
  equality, no tolerance) against the ``n_jobs=1`` output.  A "yes" in
  the ``identical`` column is the engine's core guarantee.

Run directly (``python benchmarks/bench_e15_parallel.py``); pass
``--smoke`` for the quick CI-sized variant exercised on every push.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from benchmarks._tools import SEED, append_session, emit, format_table  # noqa: E402
from repro import obs  # noqa: E402
from repro.accuracy.bootstrap import bootstrap_ci  # noqa: E402
from repro.learn.linear import LogisticRegression  # noqa: E402
from repro.learn.model_selection import grid_search  # noqa: E402
from repro.transparency.importance import permutation_importance  # noqa: E402
from repro.transparency.shapley import ShapleyExplainer  # noqa: E402

N_JOBS = 4


def _blocked_median(values: np.ndarray) -> float:
    """A deliberately compute-heavy statistic (sorted in blocks)."""
    ordered = np.sort(values)
    return float(np.median(ordered) + 1e-9 * np.std(ordered))


def _make_logreg(l2):
    return LogisticRegression(l2=l2)


def _build_model(rng, n_rows: int, n_features: int):
    X = rng.standard_normal((n_rows, n_features))
    w = rng.standard_normal(n_features)
    y = (X @ w + 0.5 * rng.standard_normal(n_rows) > 0).astype(np.float64)
    return LogisticRegression().fit(X, y), X, y


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _workloads(smoke: bool):
    """(name, runner) pairs; each runner takes (n_jobs, backend)."""
    scale = 0.1 if smoke else 1.0
    n_values = int(20_000 * scale) + 100
    n_resamples = int(600 * scale) + 40
    n_perms = int(60 * scale) + 6
    n_rows = int(400 * scale) + 80
    values = np.random.default_rng(SEED).normal(10.0, 3.0, n_values)
    model, X, y = _build_model(np.random.default_rng(SEED + 1), n_rows, 12)
    explainer = ShapleyExplainer(model, X[:40], exact_limit=4)
    grid = {"l2": [0.01, 0.1, 1.0, 10.0, 100.0, 1000.0]}

    def run_bootstrap(n_jobs, backend):
        return bootstrap_ci(
            values, _blocked_median, np.random.default_rng(SEED + 2),
            n_resamples=n_resamples, n_jobs=n_jobs, backend=backend,
        )

    def run_shapley(n_jobs, backend):
        result = explainer.explain(
            X[0], np.random.default_rng(SEED + 3), n_permutations=n_perms,
            n_jobs=n_jobs, backend=backend,
        )
        return result.values

    def run_importance(n_jobs, backend):
        result = permutation_importance(
            model, X, y, np.random.default_rng(SEED + 4), n_repeats=5,
            n_jobs=n_jobs, backend=backend,
        )
        return result.importances

    def run_grid(n_jobs, backend):
        result = grid_search(
            _make_logreg, grid, X, y, 4, np.random.default_rng(SEED + 5),
            n_jobs=n_jobs, backend=backend,
        )
        return np.concatenate([cv.scores for _, cv in result.trials])

    return [
        ("bootstrap_ci", run_bootstrap),
        ("shapley", run_shapley),
        ("perm_importance", run_importance),
        ("grid_search", run_grid),
    ]


def _identical(a, b) -> bool:
    if isinstance(a, np.ndarray):
        return bool(np.array_equal(a, b))
    return a == b


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized quick run")
    args = parser.parse_args(argv)

    telemetry = obs.configure(clock=obs.WallClock())
    rows = []
    all_identical = True
    try:
        for name, runner in _workloads(args.smoke):
            runner(1, "thread")  # warm caches so serial isn't billed for them
            serial_result, serial_s = _timed(lambda: runner(1, "thread"))
            for backend in ("thread", "process"):
                parallel_result, parallel_s = _timed(
                    lambda: runner(N_JOBS, backend)
                )
                identical = _identical(serial_result, parallel_result)
                all_identical = all_identical and identical
                rows.append([
                    name, backend, serial_s, parallel_s,
                    serial_s / parallel_s if parallel_s > 0 else float("inf"),
                    "yes" if identical else "NO",
                ])
    finally:
        append_session(telemetry, "e15_parallel")
        obs.reset()

    title = (
        f"E15{' (smoke)' if args.smoke else ''}: deterministic parallelism "
        f"(n_jobs={N_JOBS}, {os.cpu_count()} cores)"
    )
    table = format_table(
        title,
        ["workload", "backend", "serial_s", "parallel_s", "speedup",
         "identical"],
        rows,
    )
    if args.smoke:
        print("\n" + table)  # CI check only: keep results.txt for full runs
    else:
        emit(table)
    if not all_identical:
        print("DETERMINISM VIOLATION: parallel output differs from serial",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
