"""E1 — bias propagates without the sensitive attribute (§2-Q1).

Paper claim: "the training data may be biased … even if sensitive
attributes are omitted, members of certain groups may still be
systematically rejected."

Design: sweep injected label-bias β and proxy purity ρ on the credit
generator; train logistic regression *without* the group column; measure
the disparate-impact ratio and statistical-parity difference of its
decisions.  Expected shape: fairness degrades monotonically in both β
and ρ; with ρ = 0 the label bias alone barely transfers (no channel),
with ρ large it transfers almost fully.
"""

import numpy as np

from benchmarks._tools import SEED, emit, format_table, run_once
from repro.data.synth import CreditScoringGenerator
from repro.fairness import audit_model
from repro.learn import LogisticRegression, TableClassifier

BETAS = (0.0, 0.2, 0.4)
RHOS = (0.0, 0.5, 0.9)
N_TRAIN, N_TEST = 3000, 1500


def run_sweep():
    rows = []
    for beta in BETAS:
        for rho in RHOS:
            rng = np.random.default_rng(SEED + int(beta * 100) + int(rho * 10))
            generator = CreditScoringGenerator(
                label_bias=beta, proxy_strength=rho
            )
            train, test = generator.generate_pair(N_TRAIN, N_TEST, rng)
            model = TableClassifier(LogisticRegression()).fit(train)
            report = audit_model(model, test)
            rows.append([
                beta, rho,
                report.disparate_impact_ratio,
                report.statistical_parity_difference,
                report.equal_opportunity_difference,
                "yes" if report.passes_four_fifths else "NO",
            ])
    return rows


def test_e1_bias_propagation(benchmark):
    rows = run_once(benchmark, run_sweep, name="e1_bias")
    emit(format_table(
        "E1: group disparity of a group-blind model vs injected bias",
        ["label_bias", "proxy", "DI_ratio", "SPD", "EOD", "4/5 rule"],
        rows,
    ))
    by_key = {(row[0], row[1]): row[2] for row in rows}
    # Shape check: clean data is fair; strong bias + strong proxy is not.
    assert by_key[(0.0, 0.0)] > 0.85
    assert by_key[(0.4, 0.9)] < 0.8
    # The proxy is the channel: at fixed high beta, more proxy = less fair.
    assert by_key[(0.4, 0.9)] < by_key[(0.4, 0.0)]


def _group_shift_tables(rng, n_rows):
    """Credit-like data whose label mechanism differs by group.

    For group A creditworthiness rides on income; for group B (say, cash
    economy workers) it rides on employment stability.  One shared model
    must then learn *both* mechanisms — which it only does if group B is
    actually present in the training data.  This is the precise sense in
    which "minorities may be underrepresented" harms: not fewer rows per
    se, but a mechanism the model never gets to see.
    """
    from repro.data.schema import ColumnRole, Schema, categorical, numeric
    from repro.data.synth.base import bernoulli, sigmoid
    from repro.data.table import Table

    group = np.where(rng.random(n_rows) < 0.5, "B", "A").astype(object)
    income = rng.standard_normal(n_rows)
    stability = rng.standard_normal(n_rows)
    logits = np.where(group == "A", 2.5 * income, 2.5 * stability)
    approved = bernoulli(np.asarray(sigmoid(logits)), rng)
    schema = Schema([
        numeric("income"),
        numeric("stability"),
        categorical("group", role=ColumnRole.SENSITIVE),
        numeric("approved", role=ColumnRole.TARGET),
    ])
    return Table(schema, {
        "income": income, "stability": stability,
        "group": group, "approved": approved,
    })


def run_underrepresentation():
    """E1b: "minorities may be underrepresented" — the mechanism-loss form."""
    from repro.data.synth.bias import inject_underrepresentation
    from repro.learn.metrics import accuracy as accuracy_metric

    rows = []
    for keep_fraction in (1.0, 0.3, 0.05):
        rng = np.random.default_rng(SEED + int(keep_fraction * 100))
        train = _group_shift_tables(rng, N_TRAIN)
        test = _group_shift_tables(rng, N_TEST)
        if keep_fraction < 1.0:
            train, _ = inject_underrepresentation(
                train, "group", "B", keep_fraction, rng
            )
        model = TableClassifier(LogisticRegression()).fit(train)
        decisions = model.predict(test)
        labels = model.labels(test)
        per_group_accuracy = {
            value: accuracy_metric(
                labels[test["group"] == value],
                decisions[test["group"] == value],
            )
            for value in ("A", "B")
        }
        report = audit_model(model, test)
        rows.append([
            keep_fraction,
            int((train["group"] == "B").sum()),
            per_group_accuracy["A"],
            per_group_accuracy["B"],
            report.equalized_odds_difference,
        ])
    return rows


def test_e1b_underrepresentation(benchmark):
    rows = run_once(benchmark, run_underrepresentation, name="e1_underrep")
    emit(format_table(
        "E1b: under-representation as mechanism loss "
        "(group B's creditworthiness rides on a different feature)",
        ["keep_fraction", "group_B_train_rows", "acc_A", "acc_B", "EOD"],
        rows,
    ))
    by_fraction = {row[0]: row for row in rows}
    # Full representation: the shared model serves both groups.
    assert by_fraction[1.0][3] > 0.7
    assert abs(by_fraction[1.0][2] - by_fraction[1.0][3]) < 0.05
    # Starved representation: group A keeps its quality, group B's
    # mechanism was never learned.
    assert by_fraction[0.05][2] > 0.8
    assert by_fraction[0.05][3] < by_fraction[1.0][3] - 0.1
    # The error-rate disparity blows up accordingly.
    assert by_fraction[0.05][4] > by_fraction[1.0][4] + 0.1
