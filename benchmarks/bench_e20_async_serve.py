"""E20 — async batched DP serving under Zipf-tenant bursty load.

ROADMAP item (serving scale): drive the redesigned ``repro.serve``
front end — asyncio dispatch loop, query coalescing, sharded budget
ledgers, bounded-queue backpressure — with the
:mod:`repro.serve.loadgen` workload and pin two claims at once:

* **Throughput** — the server sustains ≥10⁴ queries/sec on one machine
  at full size (wall clock from first submission to last resolved
  answer, batching windows and ε-accounting included).
* **Equivalence** — batching is invisible in the answers: the same
  workload served with the batch window off and on (and with 1 vs 4
  workers) produces byte-identical values and identical per-tenant
  ε-ledgers under a fixed seed.

Every run appends a ``mode="experiment"`` record to
``BENCH_serve_load.json`` via :func:`repro.bench.run_once` — the same
trajectory file the suite's smoke/full ``--check`` gate uses, kept
separate by mode.

Run directly (``python benchmarks/bench_e20_async_serve.py``); pass
``--smoke`` for the quick CI-sized variant, ``--check`` to enforce the
(relaxed) smoke throughput floor, and ``--out PATH`` to dump the load
report (qps + latency percentiles) as JSON for CI artifact upload.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import warnings

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from benchmarks._tools import SEED, emit, format_table  # noqa: E402
from repro.bench import run_once  # noqa: E402
from repro.data.synth import CensusIncomeGenerator  # noqa: E402
from repro.serve import QueryServer, ServeConfig  # noqa: E402
from repro.serve.loadgen import (  # noqa: E402
    TABLE_NAME,
    run_load,
    zipf_workload,
)

#: Sustained queries/sec floors.  The full floor is the ISSUE's
#: acceptance bar; the smoke floor under ``--check`` is deliberately
#: loose — CI runners are noisy, slow, single-core VMs.
FULL_FLOORS = {"qps": 10_000.0}
SMOKE_FLOORS = {"qps": 1_500.0}


def _ledgers(server: QueryServer) -> dict:
    """Per-tenant spend + ledger entries, order-normalized for comparison.

    Entry *order* may differ across worker counts (commits race on
    distinct fingerprints); entry *content* and totals must not.
    """
    return {
        tenant: (
            round(server.budget.accountant(tenant).epsilon_spent, 12),
            sorted((entry.epsilon, entry.delta, entry.label)
                   for entry in server.budget.accountant(tenant).ledger),
        )
        for tenant in server.budget.tenants
    }


def _serve(table, requests, *, window_ms: float, workers: int,
           mean_burst: int):
    # Open-loop submission: size the bounded queue to the workload so
    # the throughput number is about serving, not shedding.
    config = ServeConfig(workers=workers, seed=SEED,
                         batch_window_ms=window_ms,
                         max_queue_depth=max(4096, len(requests)),
                         default_epsilon_budget=1e9)
    with QueryServer(config) as server:
        server.register_table(TABLE_NAME, table)
        report = run_load(server, requests, mean_burst=mean_burst,
                          seed=SEED)
        values = [result.value for result in
                  server.submit_batch(requests[: len(requests) // 4])]
        ledgers = _ledgers(server)
    return report, values, ledgers


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized quick run")
    parser.add_argument("--check", action="store_true",
                        help="enforce the throughput floor even at smoke size")
    parser.add_argument("--out", default=None,
                        help="write the load report JSON here (CI artifact)")
    args = parser.parse_args(argv)
    warnings.simplefilter("ignore", DeprecationWarning)

    if args.smoke:
        n_rows, n_queries, mean_burst = 2000, 4000, 256
    else:
        n_rows, n_queries, mean_burst = 5000, 40_000, 256

    table = CensusIncomeGenerator().generate(
        n_rows, np.random.default_rng(SEED)
    )
    requests = zipf_workload(n_queries, n_tenants=16, n_shapes=64,
                             zipf_s=1.2, seed=SEED)

    failures = []

    # -- equivalence: batched vs unbatched, byte for byte ------------------
    # (run on a quarter-sized replay so the matrix stays cheap; the
    # serving path is identical at every size)
    reference = None
    matrix = [(0.0, 1), (0.0, 4), (2.0, 1), (10.0, 4)]
    equivalence_rows = []
    for window_ms, workers in matrix:
        _, values, ledgers = _serve(table, requests,
                                    window_ms=window_ms, workers=workers,
                                    mean_burst=mean_burst)
        if reference is None:
            reference = (values, ledgers)
            equivalence_rows.append(
                [f"window={window_ms}ms workers={workers}", "reference"])
            continue
        same_values = values == reference[0]
        same_ledgers = ledgers == reference[1]
        if not same_values:
            failures.append(
                f"EQUIVALENCE MISMATCH: answers differ at "
                f"window={window_ms}ms workers={workers}"
            )
        if not same_ledgers:
            failures.append(
                f"LEDGER MISMATCH: ε-accounting differs at "
                f"window={window_ms}ms workers={workers}"
            )
        equivalence_rows.append([
            f"window={window_ms}ms workers={workers}",
            "yes" if (same_values and same_ledgers) else "NO",
        ])

    # -- throughput: the measured claim ------------------------------------
    report, _, _ = _serve(table, requests, window_ms=2.0, workers=2,
                          mean_burst=mean_burst)
    if report.statuses.get("ok") != report.queries:
        failures.append(f"LOAD FAILURES: statuses {report.statuses}")

    floors = {}
    if not args.smoke:
        floors = FULL_FLOORS
    elif args.check:
        floors = SMOKE_FLOORS
    for metric, floor in floors.items():
        measured = getattr(report, metric)
        if measured < floor:
            failures.append(
                f"THROUGHPUT REGRESSION: {metric} {measured:.0f} below "
                f"the {floor:.0f} floor"
            )

    run_once(
        "serve_load",
        lambda: _serve(table, requests, window_ms=2.0, workers=2,
                       mean_burst=mean_burst)[0],
        runs=2 if args.smoke else 3, warmup=1,
        directory=os.path.join(os.path.dirname(__file__), os.pardir),
        metrics={
            "qps": round(report.qps, 1),
            "queries": report.queries,
            "latency_ms": {key: round(value, 3)
                           for key, value in report.latency_ms.items()},
            "coalesced": report.batching["coalesced"],
            "equivalent": not failures,
        },
    )

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=1, sort_keys=True)

    title = (
        f"E20{' (smoke)' if args.smoke else ''}: async batched serving, "
        f"{n_queries} Zipf queries over {n_rows} rows"
    )
    latency = report.latency_ms or {}
    table_text = format_table(
        title,
        ["measure", "value"],
        [
            ["sustained qps", round(report.qps, 1)],
            ["wall_s", round(report.wall_s, 4)],
            ["p50 latency (ms)", round(latency.get("p50", 0.0), 3)],
            ["p99 latency (ms)", round(latency.get("p99", 0.0), 3)],
            ["batches", report.batching["batches"]],
            ["coalesced", report.batching["coalesced"]],
            ["cache hit rate", (report.cache or {}).get("hit_rate")],
            *equivalence_rows,
        ],
    )
    if args.smoke:
        print("\n" + table_text)  # CI check only; results.txt is for full runs
    else:
        emit(table_text)
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
