"""E18 — relational kernels: vectorized join/aggregate vs dict merge.

ROADMAP claim: the :mod:`repro.relational` kernels make multi-table
responsibility *affordable* — a schema-validated, role-propagating join
must not cost more than the naive thing everyone writes instead (a
Python dict keyed on the join column).  Three checks:

* **Join throughput** — ``inner_join`` (searchsorted merge) vs a
  hand-rolled per-row dict merge building the same columns.  The
  vectorized kernel must win on the full-size workload.
* **Aggregate throughput** — ``group_aggregate`` (reduceat) vs a
  per-key Python accumulation loop, same comparison.
* **Semantic equality** — both implementations must produce identical
  values (the dict merge is the executable specification).

Every run appends a ``mode="experiment"`` record to
``BENCH_relational.json`` via :func:`repro.bench.run_once` — the same
trajectory file the suite's smoke/full gate uses, kept separate by mode.

Run directly (``python benchmarks/bench_e18_relational.py``); pass
``--smoke`` for the quick CI-sized variant exercised on every push.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from benchmarks._tools import SEED, emit, format_table  # noqa: E402
from repro.bench import run_once  # noqa: E402
from repro.data.synth import LendingRelationalGenerator  # noqa: E402
from repro.relational import group_aggregate, inner_join  # noqa: E402

#: The vectorized join must beat the dict merge by this factor on the
#: full-size run; smoke runs report the ratio without enforcing it.
MIN_JOIN_SPEEDUP = 1.5


def _timed(fn, repeats: int):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def dict_merge_join(left, right, key):
    """The hand-rolled baseline: per-row dict lookup, Python lists."""
    lookup = {}
    right_key = right.column(key)
    for index in range(right.n_rows):
        lookup.setdefault(right_key[index], []).append(index)
    out_left, out_right = [], []
    left_key = left.column(key)
    for index in range(left.n_rows):
        for match in lookup.get(left_key[index], ()):
            out_left.append(index)
            out_right.append(match)
    columns = {name: left.column(name)[out_left]
               for name in left.column_names}
    for name in right.column_names:
        if name != key:
            columns[name] = right.column(name)[out_right]
    return columns


def dict_aggregate(table, key, value):
    """Per-key Python accumulation: count and mean of ``value``."""
    sums, counts = {}, {}
    keys = table.column(key)
    values = table.column(value)
    for index in range(table.n_rows):
        group = keys[index]
        sums[group] = sums.get(group, 0.0) + values[index]
        counts[group] = counts.get(group, 0) + 1
    return {group: (counts[group], sums[group] / counts[group])
            for group in sums}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized quick run")
    args = parser.parse_args(argv)
    repeats = 2 if args.smoke else 3
    n_applicants = 2000 if args.smoke else 20_000

    rng = np.random.default_rng(SEED)
    dataset = LendingRelationalGenerator().generate_dataset(
        n_applicants, rng
    )
    applications = dataset.table("applications")
    applicants = dataset.table("applicants")

    failures = []

    # -- join: kernel vs dict merge --------------------------------------
    joined, kernel_join_s = _timed(
        lambda: inner_join(applications, applicants, "applicant_id"),
        repeats,
    )
    merged, dict_join_s = _timed(
        lambda: dict_merge_join(applications, applicants, "applicant_id"),
        repeats,
    )
    if joined.n_rows != len(merged["app_id"]):
        failures.append(
            f"JOIN MISMATCH: kernel {joined.n_rows} rows, "
            f"dict merge {len(merged['app_id'])}"
        )
    elif not all(
        np.array_equal(joined.column(name), merged[name])
        for name in merged
    ):
        failures.append("JOIN MISMATCH: kernel and dict merge differ")
    join_speedup = dict_join_s / kernel_join_s if kernel_join_s else 0.0

    # -- aggregate: kernel vs dict loop ----------------------------------
    agg, kernel_agg_s = _timed(
        lambda: group_aggregate(joined, "group", {
            "n": "count", "approval": ("approved", "mean"),
        }),
        repeats,
    )
    loop, dict_agg_s = _timed(
        lambda: dict_aggregate(joined, "group", "approved"),
        repeats,
    )
    for row in range(agg.n_rows):
        group = agg.column("group")[row]
        count, mean = loop[group]
        if (int(agg.column("n")[row]) != count
                or abs(agg.column("approval")[row] - mean) > 1e-12):
            failures.append(f"AGGREGATE MISMATCH: group {group!r}")
    agg_speedup = dict_agg_s / kernel_agg_s if kernel_agg_s else 0.0

    if not args.smoke and join_speedup < MIN_JOIN_SPEEDUP:
        failures.append(
            f"SPEEDUP REGRESSION: vectorized join only {join_speedup:.2f}x "
            f"over the dict merge (floor {MIN_JOIN_SPEEDUP}x)"
        )

    run_once(
        "relational",
        lambda: group_aggregate(
            inner_join(applications, applicants, "applicant_id"),
            "group", {"n": "count", "approval": ("approved", "mean")},
        ),
        runs=repeats, warmup=1,
        directory=os.path.join(os.path.dirname(__file__), os.pardir),
        metrics={
            "join_speedup_vs_dict": round(join_speedup, 3),
            "aggregate_speedup_vs_dict": round(agg_speedup, 3),
            "rows_joined": int(joined.n_rows),
        },
    )

    title = (
        f"E18{' (smoke)' if args.smoke else ''}: relational kernels vs "
        f"hand-rolled dict merge ({applications.n_rows} applications x "
        f"{applicants.n_rows} applicants)"
    )
    table = format_table(
        title,
        ["operation", "kernel_s", "dict_s", "speedup", "identical"],
        [
            ["inner_join", kernel_join_s, dict_join_s,
             join_speedup, "yes" if not any(
                 f.startswith("JOIN") for f in failures) else "NO"],
            ["group_aggregate", kernel_agg_s, dict_agg_s,
             agg_speedup, "yes" if not any(
                 f.startswith("AGGREGATE") for f in failures) else "NO"],
        ],
    )
    if args.smoke:
        print("\n" + table)  # CI check only: keep results.txt for full runs
    else:
        emit(table)
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
