"""E21 — sharded out-of-core FACT audits: scaling + byte identity + RSS.

ROADMAP claim: sharding is a wall-clock/memory knob, never a results
knob.  ``FACTAuditor`` over a ``PartitionedTable`` runs one map task
per shard (row-wise-pure partials) over the process backend plus exact
combines in shard order, and the report's fingerprint equals the
serial one's by construction.  This bench measures three promises:

* **Shard scaling** — the same audit runs serially and sharded at
  1/2/4 shards (``n_jobs`` matched to the shard count, process
  backend).  On a box with at least four cores the 4-shard run must
  beat serial by ``MIN_SHARDED_SPEEDUP``; on fewer cores the rows are
  reported but not enforced (map tasks have nothing to overlap onto).
* **Byte identity** — *every* sharded run, at every shard count, must
  reproduce the serial report's fingerprint exactly.  Enforced
  unconditionally, on any machine.
* **Bounded coordinator RSS** — two fresh subprocesses audit the same
  lazily-loaded shards: one materialises the whole table and runs
  serial, one audits the ``PartitionedTable`` out-of-core (on-disk
  spill store, partials tagged ``shard:<fp>``).  Their reports must
  match bit for bit, and in full runs the sharded coordinator's peak
  RSS must stay within ``MAX_RSS_RATIO`` of the serial process that
  held everything (smoke datasets are too small for RSS to clear
  interpreter noise, so smoke reports the ratio without enforcing).

Run directly (``python benchmarks/bench_e21_sharded_audit.py``); pass
``--smoke`` for the quick CI-sized variant exercised on every push.
The curated-suite twin (``python -m repro bench sharded_audit``)
tracks the cold 4-shard audit in ``BENCH_sharded_audit.json`` behind
the ``--check`` regression gate.
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import resource
import subprocess
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from benchmarks._tools import SEED, append_session, emit, format_table  # noqa: E402
from repro import obs  # noqa: E402
from repro.core.auditor import FACTAuditor  # noqa: E402
from repro.data.partition import PartitionedTable  # noqa: E402
from repro.data.synth import CreditScoringGenerator  # noqa: E402
from repro.learn.linear import LogisticRegression  # noqa: E402
from repro.learn.table_model import TableClassifier  # noqa: E402
from repro.store import ArtifactStore  # noqa: E402

#: The 4-shard process-backend audit must beat serial by this factor —
#: enforced only on machines with at least four cores to map onto.
MIN_SHARDED_SPEEDUP = 1.5

#: Full runs only: the out-of-core coordinator's peak RSS may not
#: exceed this multiple of the materialise-everything serial process.
MAX_RSS_RATIO = 1.10


def _sizes(smoke: bool):
    """(n_train, rows_per_shard, n_bootstrap) — 4 shards throughout."""
    return (1000, 1500, 60) if smoke else (4000, 12_500, 250)


def _load_shard(seed, rows):
    """Pure, picklable shard source: same seed, same bytes, every load."""
    generator = CreditScoringGenerator(label_bias=0.3, proxy_strength=0.8)
    return generator.generate(rows, np.random.default_rng(seed))


def _fit_model(n_train):
    generator = CreditScoringGenerator(label_bias=0.3, proxy_strength=0.8)
    train = generator.generate(n_train, np.random.default_rng(SEED))
    return TableClassifier(LogisticRegression()).fit(train)


def _lazy_parts(schema, rows_per_shard, n_shards=4):
    sources = [functools.partial(_load_shard, SEED + 100 + index,
                                 rows_per_shard)
               for index in range(n_shards)]
    return PartitionedTable.from_sources(
        sources, schema, shard_rows=[rows_per_shard] * n_shards
    )


def _timed(fn, repeats: int):
    """Best-of-``repeats`` wall-clock (the scheduling-noise-free floor)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _rss_probe(mode: str, smoke: bool) -> int:
    """Worker body for ``--rss-probe``: one audit, then a JSON line.

    Both modes audit the *same* lazily-loaded shards; ``serial``
    materialises them into one table first (the whole dataset plus the
    audit's working set lives in this process), ``sharded`` audits the
    ``PartitionedTable`` with an on-disk spill store (the coordinator
    holds roughly one shard plus the combined partials).
    """
    n_train, rows_per_shard, n_bootstrap = _sizes(smoke)
    model = _fit_model(n_train)
    schema = _load_shard(SEED + 100, 64).schema
    parts = _lazy_parts(schema, rows_per_shard)
    start = time.perf_counter()
    if mode == "serial":
        auditor = FACTAuditor(n_bootstrap=n_bootstrap)
        report = auditor.audit(model, parts.concat(),
                               np.random.default_rng(SEED + 1))
    else:
        store = ArtifactStore.on_disk(tempfile.mkdtemp(prefix="e21-spill-"))
        auditor = FACTAuditor(n_bootstrap=n_bootstrap, n_jobs=2,
                              backend="process", store=store)
        report = auditor.audit(model, parts,
                               np.random.default_rng(SEED + 1))
    wall = time.perf_counter() - start
    # Linux ru_maxrss is KiB; RUSAGE_SELF is the coordinator only — the
    # map-task children each hold one shard by construction.
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(json.dumps({"mode": mode, "rss_kb": rss_kb, "wall_s": wall,
                      "fingerprint": report.fingerprint()}))
    return 0


def _run_probe(mode: str, smoke: bool) -> dict:
    command = [sys.executable, os.path.abspath(__file__),
               "--rss-probe", mode]
    if smoke:
        command.append("--smoke")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", "")
    output = subprocess.run(command, check=True, capture_output=True,
                            text=True, env=env).stdout
    return json.loads(output.strip().splitlines()[-1])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized quick run")
    parser.add_argument("--rss-probe", choices=("serial", "sharded"),
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.rss_probe:
        return _rss_probe(args.rss_probe, args.smoke)

    repeats = 2
    cores = os.cpu_count() or 1
    n_train, rows_per_shard, n_bootstrap = _sizes(args.smoke)

    telemetry = obs.configure(clock=obs.WallClock())
    failures = []
    try:
        model = _fit_model(n_train)
        generator = CreditScoringGenerator(label_bias=0.3,
                                           proxy_strength=0.8)
        test = generator.generate(rows_per_shard * 4,
                                  np.random.default_rng(SEED + 50))

        def run(shards=None):
            if shards is None:
                auditor = FACTAuditor(n_bootstrap=n_bootstrap)
                return auditor.audit(model, test,
                                     np.random.default_rng(SEED + 1))
            auditor = FACTAuditor(n_bootstrap=n_bootstrap, n_jobs=shards,
                                  backend="process")
            parts = PartitionedTable.partition(test, n_shards=shards)
            return auditor.audit(model, parts,
                                 np.random.default_rng(SEED + 1))

        serial, serial_s = _timed(run, repeats)
        reference = serial.fingerprint()
        rows = [["serial (whole table)", serial_s, 1.0, "-"]]
        speedup_at_4 = 0.0
        for shards in (1, 2, 4):
            report, wall = _timed(lambda: run(shards), repeats)
            identical = report.fingerprint() == reference
            if not identical:
                failures.append(
                    f"BYTE-IDENTITY VIOLATION: {shards}-shard audit "
                    f"differs from the serial report"
                )
            speedup = serial_s / wall if wall > 0 else float("inf")
            if shards == 4:
                speedup_at_4 = speedup
            rows.append([
                f"sharded ({shards} shards, process)", wall, speedup,
                "yes" if identical else "NO",
            ])
        if cores >= 4 and speedup_at_4 < MIN_SHARDED_SPEEDUP:
            failures.append(
                f"SPEEDUP REGRESSION: 4-shard audit only "
                f"{speedup_at_4:.2f}x over serial on {cores} cores "
                f"(floor {MIN_SHARDED_SPEEDUP}x)"
            )

        probes = {mode: _run_probe(mode, args.smoke)
                  for mode in ("serial", "sharded")}
        if probes["serial"]["fingerprint"] != probes["sharded"]["fingerprint"]:
            failures.append(
                "BYTE-IDENTITY VIOLATION: out-of-core probe report "
                "differs from the materialised serial probe"
            )
        ratio = probes["sharded"]["rss_kb"] / probes["serial"]["rss_kb"]
        if not args.smoke and ratio > MAX_RSS_RATIO:
            failures.append(
                f"RSS REGRESSION: out-of-core coordinator peaked at "
                f"{ratio:.2f}x the serial process (cap {MAX_RSS_RATIO}x)"
            )
        rss_rows = [
            ["serial (materialised)", probes["serial"]["rss_kb"],
             probes["serial"]["wall_s"], "-"],
            ["sharded (spill store)", probes["sharded"]["rss_kb"],
             probes["sharded"]["wall_s"], f"{ratio:.2f}x"],
        ]
    finally:
        append_session(telemetry, "e21_sharded_audit")
        obs.reset()

    title = (
        f"E21{' (smoke)' if args.smoke else ''}: sharded out-of-core FACT "
        f"audit, {rows_per_shard * 4:,} test rows ({cores} cores; speedup "
        f"floor {'enforced' if cores >= 4 else 'reported only'})"
    )
    table = format_table(
        title,
        ["audit", "wall_s", "speedup_vs_serial", "identical"],
        rows,
    )
    rss_table = format_table(
        f"E21 coordinator peak RSS (fresh subprocesses; cap "
        f"{'enforced' if not args.smoke else 'reported only'})",
        ["probe", "rss_kb", "wall_s", "ratio"],
        rss_rows,
    )
    if args.smoke:
        print("\n" + table)
        print("\n" + rss_table)
    else:
        emit(table)
        emit(rss_table)
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
