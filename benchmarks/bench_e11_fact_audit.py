"""E11 — FACT by design, end to end (§3, §4).

Paper claims: §3 coins "green data science" for systems that deliver
value "while ensuring Fairness, Accuracy, Confidentiality, and
Transparency"; §4 asks "How can FACT elements be embedded in our
requirements?"

Design: the same hiring-decision task built twice — a careless pipeline
(raw identifiers kept, biased labels used as-is, no provenance) versus a
FACT-by-design pipeline (redaction, reweighing, provenance on).  Both are
audited by the same FACTAuditor against the same FACTPolicy; reported:
all four scorecard pillars, the grade, and the violation count.  Expected
shape: the careless pipeline fails the policy on multiple pillars; the
responsible one clears fairness and confidentiality and grades at least
two letters higher.
"""

import numpy as np

from benchmarks._tools import SEED, emit, format_table, run_once
from repro.core import FACTAuditor, FACTPolicy, build_scorecard
from repro.data import three_way_split
from repro.data.schema import ColumnRole, categorical
from repro.data.synth import CreditScoringGenerator
from repro.learn import LogisticRegression, TableClassifier
from repro.pipeline import (
    CleanStage,
    Pipeline,
    RedactStage,
    ReweighStage,
    TrainStage,
    ValidateSchemaStage,
)

N_ROWS = 5000


def _data():
    rng = np.random.default_rng(SEED)
    generator = CreditScoringGenerator(label_bias=0.35, proxy_strength=0.85)
    data = generator.generate(N_ROWS, rng)
    data = data.with_column(
        categorical("applicant_id", role=ColumnRole.IDENTIFIER),
        [f"app_{index:05d}" for index in range(data.n_rows)],
    )
    return three_way_split(data, 0.25, 0.15, rng), rng


def run_audits():
    (train, calibration, test), rng = _data()
    auditor = FACTAuditor()
    policy = FACTPolicy(max_calibration_error=0.06,
                        max_conformal_coverage_shortfall=0.04,
                        max_unique_row_fraction=None)

    careless = Pipeline([
        CleanStage(),
        TrainStage(TableClassifier(LogisticRegression())),
    ], provenance="off").run(train, rng)
    careless_report = auditor.audit(
        careless.model, test, rng, calibration=calibration,
        pipeline_result=careless, subject="careless",
    )

    responsible = Pipeline([
        ValidateSchemaStage(),
        CleanStage(),
        RedactStage(),
        ReweighStage(),
        TrainStage(TableClassifier(LogisticRegression())),
    ]).run(train, rng)
    responsible_test = test.drop(["applicant_id", "qualified"])
    responsible_report = auditor.audit(
        responsible.model, responsible_test, rng, calibration=calibration,
        pipeline_result=responsible, subject="responsible",
    )

    rows = []
    for name, report in (("careless", careless_report),
                         ("responsible", responsible_report)):
        scorecard = build_scorecard(report)
        violations = policy.check(report)
        rows.append([
            name,
            scorecard.fairness, scorecard.accuracy,
            scorecard.confidentiality, scorecard.transparency,
            scorecard.grade, len(violations),
        ])
    return rows, careless_report, responsible_report


def test_e11_fact_audit(benchmark):
    rows, careless_report, responsible_report = run_once(
        benchmark, run_audits, name="e11_fact_audit"
    )
    emit(format_table(
        "E11: green-data-science scorecard, careless vs FACT-by-design",
        ["pipeline", "fairness", "accuracy", "confidentiality",
         "transparency", "grade", "policy_violations"],
        rows,
    ))
    careless, responsible = rows[0], rows[1]
    # The careless pipeline violates the policy; the responsible one
    # strictly reduces the violation count.
    assert careless[6] >= 2
    assert responsible[6] < careless[6]
    # Pillar-level wins for the responsible design.
    assert responsible[1] > careless[1] + 15.0     # fairness
    assert responsible[3] >= careless[3]           # confidentiality
    # Identifier leak caught only in the careless run.
    assert careless_report.confidentiality.identifiers_present
    assert not responsible_report.confidentiality.identifiers_present
    # Provenance exists only in the responsible run.
    assert responsible_report.transparency.provenance_steps >= 5
    assert careless_report.transparency.provenance_steps == 0
