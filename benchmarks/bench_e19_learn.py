"""E19 — hot learn kernels + engine fusion: vectorized vs the old loops.

ROADMAP item 5: the measured speed pass the profiling/bench investment
was built for.  This bench pins every claim with the *old*
implementations carried along as executable baselines:

* **Tree fit** — presorted, fully vectorized masked-gain splitting vs
  the historical per-node argsort + Python boundary loop.  Fitted node
  state and predictions must be byte-identical.
* **k-NN search** — blocked partition-select ``nearest_indices`` vs the
  full stable ``argsort`` of every pool distance.  Neighbour indices
  must be byte-identical.
* **MLP training** — flat-parameter fused in-place Adam vs the
  per-layer allocating update loop.  Fitted weights, biases, and
  predictions must be byte-identical.
* **Engine stage fusion** — a warm cached linear table plan run with
  ``Executor(fuse=True)`` vs unfused: one store round-trip and zero
  intermediate-value fingerprints per chain, byte-identical results.

Every run appends a ``mode="experiment"`` record to ``BENCH_learn.json``
via :func:`repro.bench.run_once` — the same trajectory file the suite's
smoke/full gate uses, kept separate by mode.

Run directly (``python benchmarks/bench_e19_learn.py``); pass
``--smoke`` for the quick CI-sized variant, plus ``--check`` to enforce
the (relaxed) smoke-size speedup floors on every push.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from benchmarks._tools import SEED, emit, format_table  # noqa: E402
from repro.bench import run_once  # noqa: E402
from repro.data.schema import ColumnRole, Schema, numeric  # noqa: E402
from repro.data.table import Table  # noqa: E402
from repro.engine import Executor, Node, Plan  # noqa: E402
from repro.learn.mlp import MLPClassifier  # noqa: E402
from repro.learn.neighbors import (  # noqa: E402
    nearest_indices,
    pairwise_distances,
)
from repro.learn.tree import DecisionTreeClassifier  # noqa: E402
from repro.store import ArtifactStore, MemoryBackend  # noqa: E402

#: Full-size floors (ISSUE 8 acceptance criteria); smoke floors under
#: ``--check`` are deliberately loose — CI runners are noisy.
FULL_FLOORS = {"tree_fit": 3.0, "knn": 5.0, "mlp_epoch": 1.5,
               "fusion": 1.0}
SMOKE_FLOORS = {"tree_fit": 2.0, "knn": 1.5, "mlp_epoch": 1.1,
                "fusion": 1.0}


def _timed(fn, repeats: int):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


# -- naive baselines: the pre-optimisation implementations, verbatim ------


def _gini(pos: float, total: float) -> float:
    if total <= 0:
        return 0.0
    p = pos / total
    return 2.0 * p * (1.0 - p)


def naive_tree_fit(X, y, max_depth, min_samples_leaf):
    """The historical tree fit: per-node argsort + Python boundary loop.

    Returns the node list as parallel arrays (feature, threshold, left,
    right, probability) for exact comparison against the presorted
    vectorized implementation.
    """
    weights = np.ones(len(y))
    nodes: list[list] = []  # [feature, threshold, left, right, prob]

    def best_split(indices):
        w = weights[indices]
        labels = y[indices]
        total = w.sum()
        total_pos = float(w[labels == 1.0].sum())
        parent_impurity = _gini(total_pos, total)
        best = None
        for feature in range(X.shape[1]):
            values = X[indices, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            sorted_w = w[order]
            sorted_pos = sorted_w * (labels[order] == 1.0)
            cum_w = np.cumsum(sorted_w)
            cum_pos = np.cumsum(sorted_pos)
            boundaries = np.flatnonzero(np.diff(sorted_values) > 0)
            for boundary in boundaries:
                n_left = boundary + 1
                n_right = len(indices) - n_left
                if n_left < min_samples_leaf or n_right < min_samples_leaf:
                    continue
                left_w = cum_w[boundary]
                right_w = total - left_w
                left_pos = cum_pos[boundary]
                right_pos = total_pos - left_pos
                impurity = (left_w / total * _gini(left_pos, left_w)
                            + right_w / total * _gini(right_pos, right_w))
                gain = parent_impurity - impurity
                if gain <= 1e-12:
                    continue
                if best is None or gain > best[0]:
                    midpoint = 0.5 * (sorted_values[boundary]
                                      + sorted_values[boundary + 1])
                    best = (gain, int(feature), float(midpoint))
        if best is None:
            return None
        return best[1], best[2]

    def grow(indices, depth):
        node_index = len(nodes)
        w = weights[indices]
        total = w.sum()
        pos = float(w[y[indices] == 1.0].sum())
        probability = pos / total if total > 0 else 0.5
        nodes.append([-1, 0.0, -1, -1, probability])
        if (depth >= max_depth or len(indices) < 2 * min_samples_leaf
                or probability in (0.0, 1.0)):
            return node_index
        split = best_split(indices)
        if split is None:
            return node_index
        feature, threshold = split
        mask = X[indices, feature] <= threshold
        nodes[node_index][0] = feature
        nodes[node_index][1] = threshold
        nodes[node_index][2] = grow(indices[mask], depth + 1)
        nodes[node_index][3] = grow(indices[~mask], depth + 1)
        return node_index

    grow(np.arange(len(y)), 0)
    return nodes


def naive_tree_predict(nodes, X):
    """The historical stack-based batched descent."""
    out = np.empty(len(X), dtype=np.float64)
    stack = [(0, np.arange(len(X)))]
    while stack:
        node_index, rows = stack.pop()
        if len(rows) == 0:
            continue
        feature, threshold, left, right, probability = nodes[node_index]
        if feature == -1:
            out[rows] = probability
            continue
        mask = X[rows, feature] <= threshold
        stack.append((left, rows[mask]))
        stack.append((right, rows[~mask]))
    return out


def naive_nearest_indices(queries, pool, k):
    """The historical search: full distances + full stable argsort."""
    distances = pairwise_distances(queries, pool)
    return np.argsort(distances, axis=1, kind="stable")[:, :k]


def naive_mlp_fit(model: MLPClassifier, X, y):
    """The historical per-layer allocating Adam loop, on a fresh model.

    Mirrors the old ``MLPClassifier.fit`` body exactly; returns the
    fitted ``(weights, biases)`` for byte-comparison.
    """
    weights = np.ones(len(y))
    rng = np.random.default_rng(model.seed)
    model._initialise(X.shape[1], rng)
    m_w = [np.zeros_like(W) for W in model._weights]
    v_w = [np.zeros_like(W) for W in model._weights]
    m_b = [np.zeros_like(b) for b in model._biases]
    v_b = [np.zeros_like(b) for b in model._biases]
    beta1, beta2, eps = 0.9, 0.999, 1e-8
    step = 0
    for _ in range(model.epochs):
        order = rng.permutation(len(X))
        for start in range(0, len(X), model.batch_size):
            batch = order[start:start + model.batch_size]
            step += 1
            Xb, yb, wb = X[batch], y[batch], weights[batch]
            activations, probabilities = model._forward(Xb)
            delta = (wb * (probabilities - yb) / len(batch))[:, None]
            grads_w = [None] * len(model._weights)
            grads_b = [None] * len(model._weights)
            for layer in reversed(range(len(model._weights))):
                grads_w[layer] = (activations[layer].T @ delta
                                  + model.l2 * model._weights[layer])
                grads_b[layer] = delta.sum(axis=0)
                if layer > 0:
                    delta = delta @ model._weights[layer].T
                    delta *= activations[layer] > 0.0
            for layer in range(len(model._weights)):
                for params, grads, m, v in (
                    (model._weights, grads_w, m_w, v_w),
                    (model._biases, grads_b, m_b, v_b),
                ):
                    m[layer] = beta1 * m[layer] + (1 - beta1) * grads[layer]
                    v[layer] = (beta2 * v[layer]
                                + (1 - beta2) * grads[layer] ** 2)
                    m_hat = m[layer] / (1 - beta1 ** step)
                    v_hat = v[layer] / (1 - beta2 ** step)
                    params[layer] -= (model.learning_rate * m_hat
                                      / (np.sqrt(v_hat) + eps))
    return model._weights, model._biases


# -- fusion workload -------------------------------------------------------


def _fusion_plan(n_stages: int) -> Plan:
    """A linear chain of cacheable table transforms (pipeline-shaped)."""

    def shift(inputs, rng):
        table = list(inputs.values())[0]
        return Table._from_canonical(
            table.schema,
            {name: table.column(name) + 1.0 for name in table.column_names},
            table.n_rows,
        )

    nodes = []
    previous = "table"
    for index in range(n_stages):
        name = f"stage{index}"
        nodes.append(Node(name, shift, inputs=(previous,),
                          params={"stage": index}))
        previous = name
    return Plan(nodes, inputs=("table",))


def _fusion_table(n_rows: int) -> Table:
    rng = np.random.default_rng(SEED)
    schema = Schema([numeric(f"c{i}", role=ColumnRole.FEATURE)
                     for i in range(6)])
    return Table(schema, {f"c{i}": rng.standard_normal(n_rows)
                          for i in range(6)})


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized quick run")
    parser.add_argument("--check", action="store_true",
                        help="enforce speedup floors even at smoke size")
    args = parser.parse_args(argv)
    repeats = 2 if args.smoke else 3
    if args.smoke:
        n_train, n_query, k = 1200, 400, 10
        epochs, fusion_rows, fusion_stages = 3, 20_000, 8
        knn_pool_rows = None            # search the training set
    else:
        n_train, n_query, k = 6000, 800, 10
        epochs, fusion_rows, fusion_stages = 8, 40_000, 8
        # Dedicated situation-testing-sized pool: at full size the k-NN
        # claim is about searching a large population, where the full
        # argsort baseline degrades fastest.
        knn_pool_rows = 40_000

    rng = np.random.default_rng(SEED)
    X = rng.standard_normal((n_train, 12))
    logits = X[:, 0] - 0.7 * X[:, 1] + 0.5 * X[:, 2] * X[:, 3]
    y = (logits + 0.3 * rng.standard_normal(n_train) > 0).astype(float)
    queries = rng.standard_normal((n_query, 12))
    knn_pool = (X if knn_pool_rows is None
                else rng.standard_normal((knn_pool_rows, 12)))

    failures = []
    speedups = {}

    # -- tree fit: presorted vectorized vs boundary loop -----------------
    tree, fast_tree_s = _timed(
        lambda: DecisionTreeClassifier(max_depth=8,
                                       min_samples_leaf=5).fit(X, y),
        repeats,
    )
    naive_nodes, naive_tree_s = _timed(
        lambda: naive_tree_fit(X, y, max_depth=8, min_samples_leaf=5),
        max(1, repeats - 1),
    )
    arrays = tree._arrays()
    same_structure = (
        len(naive_nodes) == len(tree._nodes)
        and np.array_equal(arrays.feature,
                           np.array([n[0] for n in naive_nodes]))
        and np.array_equal(arrays.threshold,
                           np.array([n[1] for n in naive_nodes]))
        and np.array_equal(arrays.value,
                           np.array([n[4] for n in naive_nodes]))
    )
    if not same_structure:
        failures.append("TREE MISMATCH: vectorized fit built a different tree")
    if not np.array_equal(tree.predict_proba(queries),
                          naive_tree_predict(naive_nodes, queries)):
        failures.append("TREE MISMATCH: predictions differ")
    speedups["tree_fit"] = naive_tree_s / fast_tree_s if fast_tree_s else 0.0

    # -- k-NN: blocked partition-select vs full stable argsort -----------
    fast_idx, fast_knn_s = _timed(
        lambda: nearest_indices(queries, knn_pool, k), repeats
    )
    naive_idx, naive_knn_s = _timed(
        lambda: naive_nearest_indices(queries, knn_pool, k), repeats
    )
    if not np.array_equal(fast_idx, naive_idx):
        failures.append("KNN MISMATCH: neighbour indices differ")
    speedups["knn"] = naive_knn_s / fast_knn_s if fast_knn_s else 0.0

    # -- MLP: fused flat-parameter Adam vs per-layer loop ----------------
    fast_mlp, fast_mlp_s = _timed(
        lambda: MLPClassifier(hidden=(32, 16), epochs=epochs, batch_size=64,
                              seed=SEED).fit(X, y),
        repeats,
    )
    (naive_w, naive_b), naive_mlp_s = _timed(
        lambda: naive_mlp_fit(
            MLPClassifier(hidden=(32, 16), epochs=epochs, batch_size=64,
                          seed=SEED), X, y),
        max(1, repeats - 1),
    )
    if not (all(np.array_equal(a, b)
                for a, b in zip(fast_mlp._weights, naive_w))
            and all(np.array_equal(a, b)
                    for a, b in zip(fast_mlp._biases, naive_b))):
        failures.append("MLP MISMATCH: fitted parameters differ")
    speedups["mlp_epoch"] = (naive_mlp_s / fast_mlp_s
                             if fast_mlp_s else 0.0)  # same epoch count

    # -- engine fusion: warm cached linear plan, fused vs unfused --------
    plan = _fusion_plan(fusion_stages)
    table = _fusion_table(fusion_rows)
    # Generous byte budget: the fused chain stores one artifact holding
    # all stage outputs, which would blow the default 64 MB LRU cap at
    # full size and turn every "warm" run into a recompute.
    store_bytes = 1 << 30
    unfused_store = ArtifactStore(
        MemoryBackend(max_entries=64, max_bytes=store_bytes))
    fused_store = ArtifactStore(
        MemoryBackend(max_entries=64, max_bytes=store_bytes))
    unfused = Executor(observe=False)
    fused = Executor(observe=False, fuse=True)
    cold_unfused = unfused.run(plan, {"table": table}, store=unfused_store)
    cold_fused = fused.run(plan, {"table": table}, store=fused_store)
    warm_unfused, unfused_s = _timed(
        lambda: unfused.run(plan, {"table": table}, store=unfused_store),
        repeats + 1,
    )
    warm_fused, fused_s = _timed(
        lambda: fused.run(plan, {"table": table}, store=fused_store),
        repeats + 1,
    )
    for result in (cold_fused, warm_unfused, warm_fused):
        for name in (node.name for node in plan.nodes):
            mine = result[name]
            reference = cold_unfused[name]
            if not all(np.array_equal(mine.column(c), reference.column(c))
                       for c in reference.column_names):
                failures.append(f"FUSION MISMATCH: node {name} differs")
                break
    if not all(status == "hit" for status in warm_fused.statuses.values()):
        failures.append("FUSION MISMATCH: warm fused run was not all hits")
    speedups["fusion"] = unfused_s / fused_s if fused_s else 0.0

    floors = {}
    if not args.smoke:
        floors = FULL_FLOORS
    elif args.check:
        floors = SMOKE_FLOORS
    for metric, floor in floors.items():
        if speedups[metric] < floor:
            failures.append(
                f"SPEEDUP REGRESSION: {metric} only {speedups[metric]:.2f}x "
                f"over the pre-optimisation baseline (floor {floor}x)"
            )

    run_once(
        "learn",
        lambda: (
            DecisionTreeClassifier(max_depth=8, min_samples_leaf=5).fit(X, y),
            nearest_indices(queries, knn_pool, k),
        ),
        runs=repeats, warmup=1,
        directory=os.path.join(os.path.dirname(__file__), os.pardir),
        metrics={
            "tree_fit_speedup": round(speedups["tree_fit"], 3),
            "knn_speedup": round(speedups["knn"], 3),
            "mlp_epoch_speedup": round(speedups["mlp_epoch"], 3),
            "fusion_warm_speedup": round(speedups["fusion"], 3),
            "n_train": n_train,
        },
    )

    title = (
        f"E19{' (smoke)' if args.smoke else ''}: hot learn kernels + fusion "
        f"vs pre-optimisation baselines ({n_train} train rows)"
    )
    table_text = format_table(
        title,
        ["kernel", "fast_s", "naive_s", "speedup", "identical"],
        [
            ["tree fit", fast_tree_s, naive_tree_s, speedups["tree_fit"],
             "NO" if any(f.startswith("TREE") for f in failures) else "yes"],
            [f"k-NN (k={k}, pool {len(knn_pool)})", fast_knn_s,
             naive_knn_s, speedups["knn"],
             "NO" if any(f.startswith("KNN") for f in failures) else "yes"],
            [f"MLP ({epochs} epochs)", fast_mlp_s, naive_mlp_s,
             speedups["mlp_epoch"],
             "NO" if any(f.startswith("MLP") for f in failures) else "yes"],
            [f"warm plan ({fusion_stages} stages)", fused_s, unfused_s,
             speedups["fusion"],
             "NO" if any(f.startswith("FUSION") for f in failures)
             else "yes"],
        ],
    )
    if args.smoke:
        print("\n" + table_text)  # CI check only; results.txt is for full runs
    else:
        emit(table_text)
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
