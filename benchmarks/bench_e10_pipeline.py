"""E10 — accountability at Internet-Minute volume (§2-Q4, §3).

Paper claims: "The journey from raw data to meaningful inferences
involves multiple steps and actors, thus accountability and
comprehensibility are essential for transparency", and §3's Internet
Minute (1,000,000 Tinder swipes, 3,500,000 Google searches, … per
minute) frames the volume at which that accountability must operate.

Design: an event stream with the paper's service mix, pushed through a
redact→aggregate pipeline under three provenance modes; reported:
throughput (events/second of wall time) and the recorded trail sizes,
plus a lineage reconstruction check.  Expected shape: stage-level
provenance is nearly free; content fingerprinting costs a modest
constant factor; both leave full lineage reconstructable, which the
uninstrumented pipeline cannot offer at any price.
"""

import time

import numpy as np

from benchmarks._tools import SEED, emit, format_table, run_once
from repro.data.schema import ColumnRole, numeric
from repro.data.synth import InternetMinuteGenerator
from repro.pipeline import (
    FunctionStage,
    Pipeline,
    RedactStage,
)

SCALE = 2e-4  # ~2760 events per simulated minute
MINUTES = 4


def build_pipeline(provenance_mode):
    def add_size_flag(table):
        flag = (table["payload_bytes"] > 1000.0).astype(float)
        return table.with_column(
            numeric("large_payload", role=ColumnRole.METADATA), flag
        )

    def keep_eu(table):
        return table.filter(table["region"] == "eu")

    return Pipeline([
        RedactStage(),
        FunctionStage("flag_large", add_size_flag),
        FunctionStage("filter_eu", keep_eu),
    ], provenance=provenance_mode)


def run_modes():
    rng = np.random.default_rng(SEED)
    stream = InternetMinuteGenerator(
        scale=SCALE, minutes=MINUTES
    ).generate_stream(rng)
    # Warm-up pass so the first timed mode does not pay one-time costs.
    build_pipeline("fingerprint").run(stream, np.random.default_rng(SEED))
    rows = []
    lineages = {}
    for mode in ("off", "stage", "fingerprint"):
        pipeline = build_pipeline(mode)
        elapsed = float("inf")
        for _ in range(3):  # best-of-3 wall time
            start = time.perf_counter()
            result = pipeline.run(stream, np.random.default_rng(SEED))
            elapsed = min(elapsed, time.perf_counter() - start)
        graph = result.context.provenance
        rows.append([
            mode,
            stream.n_rows,
            elapsed * 1000.0,
            stream.n_rows / elapsed,
            graph.n_steps if graph else 0,
            len(result.context.audit),
        ])
        lineages[mode] = result.lineage()
    return rows, lineages


def test_e10_provenance_overhead(benchmark):
    (rows, lineages) = run_once(benchmark, run_modes, name="e10_pipeline")
    emit(format_table(
        f"E10: pipeline throughput vs provenance mode "
        f"({MINUTES} Internet Minutes at scale {SCALE:g})",
        ["provenance", "events", "wall_ms", "events_per_s",
         "steps_recorded", "audit_events"],
        rows,
    ))
    by_mode = {row[0]: row for row in rows}
    # Instrumented modes record the full trail; "off" records nothing.
    assert by_mode["off"][4] == 0
    assert by_mode["stage"][4] == 3
    assert by_mode["fingerprint"][4] == 3
    # Lineage reconstructable only when recorded.
    assert lineages["off"] == "provenance disabled"
    for mode in ("stage", "fingerprint"):
        for stage_name in ("redact", "flag_large", "filter_eu"):
            assert stage_name in lineages[mode]
    # The headline: sampled fingerprinting keeps full provenance within a
    # small constant of bare execution (often inside timing noise).
    assert by_mode["fingerprint"][2] < 5.0 * by_mode["off"][2] + 50.0
    assert by_mode["stage"][2] < 5.0 * by_mode["off"][2] + 50.0
