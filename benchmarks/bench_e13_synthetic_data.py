"""E13 — DP synthetic data: sharing without the data (§2-Q3).

Paper claim: "The goal should not be to prevent data from being
distributed and gathered, but to exploit data in a safe and controlled
manner" — the strongest form of which is releasing a *synthetic* table
instead of the real one.

Design: sweep ε for the marginal synthesiser on the credit data; report
(a) marginal total-variation distance to the real table, (b) utility of
the release for the downstream task — a model trained on synthetic data,
tested on real data — against train-on-real, and (c) the exact-row
overlap (privacy sanity).  Expected shape: TV falls and downstream
accuracy climbs toward the train-on-real ceiling as ε grows; overlap is
zero everywhere.
"""

import numpy as np

from benchmarks._tools import SEED, emit, format_table, run_once
from repro.confidentiality.synthesis import (
    MarginalSynthesizer,
    marginal_total_variation,
)
from repro.data.synth import CreditScoringGenerator
from repro.learn import LogisticRegression, TableClassifier
from repro.learn.metrics import accuracy, roc_auc

EPSILONS = (0.1, 0.5, 2.0, 10.0)
N_TRAIN, N_TEST = 4000, 2000


def _row_overlap(real, synthetic) -> float:
    real_rows = {
        tuple(np.round(value, 6) if isinstance(value, float) else value
              for value in real.row(index).values())
        for index in range(real.n_rows)
    }
    hits = 0
    for index in range(synthetic.n_rows):
        row = tuple(
            np.round(value, 6) if isinstance(value, float) else value
            for value in synthetic.row(index).values()
        )
        if row in real_rows:
            hits += 1
    return hits / synthetic.n_rows


def run_sweep():
    rng = np.random.default_rng(SEED)
    generator = CreditScoringGenerator(label_bias=0.2, proxy_strength=0.5)
    train, test = generator.generate_pair(N_TRAIN, N_TEST, rng)
    real_model = TableClassifier(LogisticRegression()).fit(train)
    ceiling = accuracy(real_model.labels(test), real_model.predict(test))

    rows = []
    for epsilon in EPSILONS:
        synthesizer = MarginalSynthesizer(epsilon=epsilon).fit(train, rng)
        synthetic = synthesizer.sample(N_TRAIN, rng)
        tv = float(np.mean([
            marginal_total_variation(train, synthetic, column)
            for column in train.column_names
        ]))
        synthetic_model = TableClassifier(LogisticRegression()).fit(synthetic)
        probabilities = synthetic_model.predict_proba(test)
        labels = synthetic_model.labels(test)
        downstream = accuracy(labels, (probabilities >= 0.5).astype(float))
        downstream_auc = roc_auc(labels, probabilities)
        rows.append([
            epsilon, tv, downstream, downstream_auc, ceiling,
            _row_overlap(train, synthetic),
        ])
    return rows


def test_e13_synthetic_data(benchmark):
    rows = run_once(benchmark, run_sweep, name="e13_synthetic")
    emit(format_table(
        "E13: DP synthetic-data release (train-on-synthetic, test-on-real)",
        ["epsilon", "mean_marginal_TV", "downstream_acc", "downstream_auc",
         "train_on_real_acc", "exact_row_overlap"],
        rows,
    ))
    tvs = [row[1] for row in rows]
    accs = [row[2] for row in rows]
    aucs = [row[3] for row in rows]
    # Utility rises with budget.
    assert tvs[-1] < tvs[0]
    assert accs[-1] > accs[0] - 0.02
    # At a generous budget the synthetic release supports the task within
    # a handful of points of training on the real data — and the model
    # has real ranking signal, not just the base rate.
    assert accs[-1] > rows[-1][4] - 0.08
    assert aucs[-1] > 0.6
    # And no synthetic row is a copied real record, at any epsilon.
    for row in rows:
        assert row[5] == 0.0
