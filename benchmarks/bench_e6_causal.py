"""E6 — observational adjustment vs the RCT gold standard (§2-Q2).

Paper claim: "Propensity score matching or inverse probability-weighed
regression adjustment are just two approaches developed to combat the
selection bias in observational data.  While these techniques address
the selection bias, their outcomes might still be far away from the
results one would obtain with a randomized controlled trial, as was
recently illustrated by Gordon et al. (2016)."

Design: the ad-campaign generator with known true lift.  Part A sweeps
observed-confounding strength: naive, PSM, IPW and AIPW biases vs the
ground truth, alongside the RCT estimate.  Part B adds *hidden*
confounding — the Gordon et al. regime — where even the adjusted
estimators drift.  Expected shape: naive bias grows with confounding;
adjusted estimators stay near truth under observed confounding but NOT
under hidden confounding; the RCT is unbiased throughout.
"""

import numpy as np

from benchmarks._tools import SEED, emit, format_table, run_once
from repro.accuracy.causal import compare_estimators
from repro.data.synth import AdCampaignGenerator

N_ROWS = 6000
CONFOUNDING = (0.0, 1.0, 2.0)
HIDDEN = (0.0, 1.5)


def _biases(generator, rng):
    observational = generator.generate_observational(N_ROWS, rng)
    rct = generator.generate_rct(N_ROWS, rng)
    X = np.column_stack([
        observational["activity"],
        observational["past_purchases"],
        observational["ad_affinity"],
    ])
    truth = generator.true_ate(observational)
    results = compare_estimators(
        X, observational["exposed"], observational["purchase"],
        rct_treatment=rct["exposed"], rct_outcome=rct["purchase"],
    )
    return truth, {
        name: estimate.ate - truth for name, estimate in results.items()
    }


def run_sweep():
    rows = []
    for confounding in CONFOUNDING:
        for hidden in HIDDEN:
            rng = np.random.default_rng(
                SEED + int(confounding * 10) + int(hidden * 100)
            )
            generator = AdCampaignGenerator(
                true_lift=0.4, confounding=confounding,
                hidden_confounding=hidden,
            )
            truth, biases = _biases(generator, rng)
            rows.append([
                confounding, hidden, truth,
                biases["naive"], biases["psm"], biases["ipw"],
                biases["aipw"], biases["rct"],
            ])
    return rows


def test_e6_causal_estimators(benchmark):
    rows = run_once(benchmark, run_sweep, name="e6_causal")
    emit(format_table(
        "E6: estimator bias vs ground-truth ad lift "
        "(negative = underestimate)",
        ["confounding", "hidden", "true_ATE", "naive_bias", "psm_bias",
         "ipw_bias", "aipw_bias", "rct_bias"],
        rows,
    ))
    by_key = {(row[0], row[1]): row for row in rows}
    # Naive bias grows with observed confounding.
    assert abs(by_key[(2.0, 0.0)][3]) > abs(by_key[(0.0, 0.0)][3])
    assert by_key[(2.0, 0.0)][3] > 0.1  # targeting inflates the lift
    # Adjusted estimators beat naive under observed confounding.
    strong = by_key[(2.0, 0.0)]
    for column in (4, 5, 6):  # psm, ipw, aipw
        assert abs(strong[column]) < abs(strong[3])
    assert abs(strong[6]) < 0.05  # aipw near truth
    # The Gordon et al. regime: hidden confounding defeats adjustment.
    hidden = by_key[(1.0, 1.5)]
    assert abs(hidden[6]) > 0.04  # aipw now biased
    # The RCT stays honest everywhere.
    for row in rows:
        assert abs(row[7]) < 0.05
