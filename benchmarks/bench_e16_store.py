"""E16 — the artifact store: cold vs warm FACT audits + incremental replay.

ROADMAP claim: re-auditing after a small change should cost what the
change costs, not what the audit costs.  The store memoises every
expensive pure stage under canonical fingerprints of (data content,
parameters, code version) and keeps the shared rng's stream continuous
across replays, so a warm audit is (a) much faster and (b) **byte-
identical** to the cold one.  This bench measures all three promises:

* **Warm speedup** — the same FACT audit runs cold (empty store) and
  warm (populated store); the table reports wall-clock and the factor.
  The acceptance bar is >= 5x on the repeated audit.
* **Byte identity** — the warm report's ``render()`` and ``to_dict()``
  must equal the cold one's exactly, and both must equal a storeless
  audit (the store must be invisible in results).
* **Incremental re-audit** — one parameter changes (the surrogate
  depth); only the transparency section recomputes, so the "changed"
  row lands between warm and cold.

Run directly (``python benchmarks/bench_e16_store.py``); pass
``--smoke`` for the quick CI-sized variant exercised on every push.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from benchmarks._tools import SEED, append_session, emit, format_table  # noqa: E402
from repro import obs  # noqa: E402
from repro.core.auditor import FACTAuditor  # noqa: E402
from repro.data.synth import CreditScoringGenerator  # noqa: E402
from repro.learn.linear import LogisticRegression  # noqa: E402
from repro.learn.table_model import TableClassifier  # noqa: E402
from repro.store import ArtifactStore  # noqa: E402

MIN_WARM_SPEEDUP = 5.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _setup(smoke: bool):
    # The warm path pays a fixed fingerprinting cost (~10ms); smoke must
    # stay large enough that the floor measures caching, not that cost.
    scale = 0.3 if smoke else 1.0
    n_train = int(3000 * scale) + 400
    n_test = int(1500 * scale) + 300
    rng = np.random.default_rng(SEED)
    generator = CreditScoringGenerator(label_bias=0.3, proxy_strength=0.8)
    train, test = generator.generate_pair(n_train, n_test, rng)
    mask = np.arange(test.n_rows) < test.n_rows // 3
    calibration, held_out = test.filter(mask), test.filter(~mask)
    model = TableClassifier(LogisticRegression()).fit(train)
    n_bootstrap = int(400 * scale) + 60
    return model, held_out, calibration, n_bootstrap


def _audit(model, test, calibration, n_bootstrap, store, **overrides):
    auditor = FACTAuditor(n_bootstrap=n_bootstrap, store=store, **overrides)
    return auditor.audit(
        model, test, np.random.default_rng(SEED + 1),
        calibration=calibration,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized quick run")
    args = parser.parse_args(argv)

    telemetry = obs.configure(clock=obs.WallClock())
    failures = []
    try:
        model, test, calibration, n_bootstrap = _setup(args.smoke)
        run = lambda store, **kw: _audit(  # noqa: E731
            model, test, calibration, n_bootstrap, store, **kw
        )

        baseline, _ = _timed(lambda: run(None))  # warm numerics, no store
        store = ArtifactStore.in_memory()
        cold_report, cold_s = _timed(lambda: run(store))
        warm_report, warm_s = _timed(lambda: run(store))
        changed_report, changed_s = _timed(
            lambda: run(store, surrogate_depth=3)
        )
        warm_speedup = cold_s / warm_s if warm_s > 0 else float("inf")

        identical = (
            warm_report.render() == cold_report.render()
            and warm_report.to_dict() == cold_report.to_dict()
            and cold_report.render() == baseline.render()
        )
        if not identical:
            failures.append(
                "BYTE-IDENTITY VIOLATION: warm audit differs from cold"
            )
        changed_matches = changed_report.render() == run(
            None, surrogate_depth=3
        ).render()
        if not changed_matches:
            failures.append(
                "INCREMENTAL VIOLATION: partial recompute differs from a "
                "storeless audit of the changed parameters"
            )
        if warm_speedup < MIN_WARM_SPEEDUP:
            failures.append(
                f"SPEEDUP REGRESSION: warm audit only {warm_speedup:.1f}x "
                f"over cold (floor {MIN_WARM_SPEEDUP}x)"
            )

        stats = store.stats()
        rows = [
            ["cold (empty store)", cold_s, 1.0, "-"],
            ["warm (full replay)", warm_s, warm_speedup,
             "yes" if identical else "NO"],
            ["changed surrogate_depth", changed_s,
             cold_s / changed_s if changed_s > 0 else float("inf"),
             "yes" if changed_matches else "NO"],
        ]
    finally:
        append_session(telemetry, "e16_store")
        obs.reset()

    title = (
        f"E16{' (smoke)' if args.smoke else ''}: content-addressed FACT "
        f"re-audits (floor {MIN_WARM_SPEEDUP:.0f}x; "
        f"{stats['entries']} entries, {int(stats['bytes'])} bytes, "
        f"hit rate {stats['hit_rate']:.2f})"
    )
    table = format_table(
        title,
        ["audit", "wall_s", "speedup_vs_cold", "identical"],
        rows,
    )
    if args.smoke:
        print("\n" + table)  # CI check only: keep results.txt for full runs
    else:
        emit(table)
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
