"""E7 — utility under a strict privacy budget (§2-Q3).

Paper claim: "The focus should not be on circumventing the sharing of
data, but on innovative approaches like confidentiality-preserving
analysis techniques (e.g., techniques that work under a strict privacy
budget)."

Design: sweep ε and measure what the budget buys — error of DP mean and
histogram queries, and accuracy of two ε-DP logistic regressions against
the non-private reference.  Expected shape: utility rises monotonically
(in trend) with ε; by ε ≈ 2 the DP classifier is within a few points of
the non-private one, the paper's "safe and controlled" sweet spot.
"""

import numpy as np

from benchmarks._tools import SEED, emit, format_table, run_once
from repro.confidentiality import (
    NoisyGradientLogisticRegression,
    OutputPerturbationLogisticRegression,
    PrivacyAccountant,
    dp_histogram,
    dp_mean,
)
from repro.data.synth import CensusIncomeGenerator
from repro.learn import LogisticRegression, TableClassifier
from repro.learn.metrics import accuracy

EPSILONS = (0.05, 0.2, 1.0, 5.0)
N_QUERY_TRIALS = 60
N_TRAIN, N_TEST = 3000, 1500
N_MODEL_SEEDS = 5


def run_sweep():
    rng = np.random.default_rng(SEED)
    generator = CensusIncomeGenerator()
    train, test = generator.generate_pair(N_TRAIN, N_TEST, rng)
    ages = train["age"]
    occupations = train["occupation"]
    occupation_levels = sorted(set(occupations.tolist()))
    true_mean = float(ages.mean())
    true_hist = {
        level: float(np.sum(occupations == level))
        for level in occupation_levels
    }

    nonprivate = TableClassifier(LogisticRegression()).fit(train)
    reference_accuracy = accuracy(
        nonprivate.labels(test), nonprivate.predict(test)
    )

    rows = []
    for epsilon in EPSILONS:
        accountant = PrivacyAccountant(10_000.0)
        mean_errors = [
            abs(dp_mean(ages, 18.0, 80.0, epsilon, accountant, rng) - true_mean)
            for _ in range(N_QUERY_TRIALS)
        ]
        hist_errors = []
        for _ in range(N_QUERY_TRIALS // 3):
            noisy = dp_histogram(
                occupations, occupation_levels, epsilon, accountant, rng
            )
            hist_errors.append(np.mean([
                abs(noisy[level] - true_hist[level])
                for level in occupation_levels
            ]))

        output_scores, gradient_scores = [], []
        for seed in range(N_MODEL_SEEDS):
            output_model = TableClassifier(OutputPerturbationLogisticRegression(
                epsilon=epsilon, l2=1e-3, seed=seed
            )).fit(train)
            output_scores.append(accuracy(
                output_model.labels(test), output_model.predict(test)
            ))
            gradient_model = TableClassifier(NoisyGradientLogisticRegression(
                epsilon=epsilon, n_steps=30, seed=seed
            )).fit(train)
            gradient_scores.append(accuracy(
                gradient_model.labels(test), gradient_model.predict(test)
            ))
        rows.append([
            epsilon,
            float(np.mean(mean_errors)),
            float(np.mean(hist_errors)),
            float(np.mean(output_scores)),
            float(np.mean(gradient_scores)),
            reference_accuracy,
        ])
    return rows


def test_e7_privacy_utility(benchmark):
    rows = run_once(benchmark, run_sweep, name="e7_privacy_utility")
    emit(format_table(
        "E7: privacy-utility curves (errors down, accuracy up with epsilon)",
        ["epsilon", "mean_query_err", "hist_bin_err",
         "acc_output_pert", "acc_noisy_gd", "acc_non_private"],
        rows,
    ))
    # Query errors shrink monotonically in epsilon.
    mean_errors = [row[1] for row in rows]
    assert mean_errors[0] > mean_errors[-1] * 3
    hist_errors = [row[2] for row in rows]
    assert hist_errors[0] > hist_errors[-1] * 3
    # Classifier accuracy climbs toward the non-private reference.
    assert rows[-1][3] >= rows[0][3]
    assert rows[-1][4] >= rows[0][4]
    assert rows[-1][4] >= rows[-1][5] - 0.06
