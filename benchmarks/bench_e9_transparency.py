"""E9 — the accuracy/comprehensibility frontier (§2-Q4).

Paper claim: "the neural networks used by the deep learning approach
cannot be understood by humans.  Hence, they serve as a black box that
apparently makes good decisions, but cannot rationalize them.  In
several domains, this is unacceptable."

Design: Part A — four model families on the non-linear census task:
accuracy, a size proxy for opacity, surrogate fidelity at depth 3, and
local-explanation fit.  Part B — the fidelity-by-depth curve for the MLP
black box: how big must a human-readable rule set be to faithfully
rationalise it?  Expected shape: the opaque models win on accuracy; a
depth-3 surrogate rationalises them imperfectly, with fidelity climbing
toward 1 as the rule set is allowed to grow.
"""

import numpy as np

from benchmarks._tools import SEED, emit, format_table, run_once
from repro.data.synth import CensusIncomeGenerator
from repro.learn import (
    DecisionTreeClassifier,
    GradientBoostingClassifier,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
    TableClassifier,
)
from repro.learn.metrics import accuracy
from repro.transparency import (
    LocalSurrogateExplainer,
    fidelity_by_depth,
    fit_surrogate,
)

N_TRAIN, N_TEST = 5000, 2000
DEPTHS = (1, 2, 3, 5, 8)


def _size_proxy(name, model):
    estimator = model.estimator
    if name == "mlp":
        return estimator.n_parameters
    if name == "tree":
        return estimator.n_leaves
    if name in ("forest", "gbm"):
        return sum(tree.n_leaves for tree in estimator._trees)
    return len(estimator.coef_) + 1


def run_frontier():
    rng = np.random.default_rng(SEED)
    generator = CensusIncomeGenerator()
    train, test = generator.generate_pair(N_TRAIN, N_TEST, rng)
    models = {
        "logistic": LogisticRegression(),
        "tree(d4)": DecisionTreeClassifier(max_depth=4),
        "forest": RandomForestClassifier(n_trees=60, max_depth=10, seed=2),
        "gbm": GradientBoostingClassifier(n_stages=120, max_depth=3,
                                          learning_rate=0.15, seed=2),
        "mlp": MLPClassifier(hidden=(64, 32), epochs=80, seed=2),
    }
    rows = []
    mlp_model = None
    for name, estimator in models.items():
        wrapped = TableClassifier(estimator).fit(train)
        X_test = wrapped.encoder.transform(test)
        score = accuracy(wrapped.labels(test), wrapped.predict(test))
        surrogate = fit_surrogate(estimator, X_test, max_depth=3)
        explainer = LocalSurrogateExplainer(
            estimator, X_test[:400], feature_names=wrapped.feature_names
        )
        local_rng = np.random.default_rng(SEED + 7)
        local_fits = [
            explainer.explain(X_test[index], local_rng).local_fit_r2
            for index in range(5)
        ]
        rows.append([
            "mlp" if name == "mlp" else name,
            score,
            _size_proxy("mlp" if name == "mlp" else name.split("(")[0], wrapped),
            surrogate.fidelity,
            float(np.mean(local_fits)),
        ])
        if name == "mlp":
            mlp_model = (estimator, X_test)
    return rows, mlp_model


def run_depth_curve(mlp_model):
    estimator, X_test = mlp_model
    curve = fidelity_by_depth(estimator, X_test, list(DEPTHS))
    return [[depth, fidelity] for depth, fidelity in curve.items()]


def test_e9_model_frontier(benchmark):
    rows, mlp_model = run_once(
        benchmark, run_frontier, name="e9_transparency"
    )
    emit(format_table(
        "E9a: accuracy vs opacity vs explainability",
        ["model", "accuracy", "size_proxy", "surrogate_fid(d3)",
         "local_fit_r2"],
        rows,
    ))
    by_name = {row[0]: row for row in rows}
    # The black boxes out-predict the depth-4 tree on the non-linear task.
    assert by_name["mlp"][1] > by_name["tree(d4)"][1] - 0.01
    assert by_name["forest"][1] > by_name["tree(d4)"][1] - 0.01
    # And they are orders of magnitude bigger.
    assert by_name["mlp"][2] > 50 * by_name["tree(d4)"][2]
    # Depth-3 rationalisations of any model are imperfect but substantial.
    for row in rows:
        assert 0.7 < row[3] <= 1.0

    depth_rows = run_depth_curve(mlp_model)
    emit(format_table(
        "E9b: MLP surrogate fidelity vs allowed rule-set depth",
        ["tree_depth", "fidelity_to_mlp"],
        depth_rows,
    ))
    fidelities = [row[1] for row in depth_rows]
    assert all(b >= a - 0.02 for a, b in zip(fidelities, fidelities[1:]))
    assert fidelities[-1] > fidelities[0]
    assert fidelities[-1] > 0.9
