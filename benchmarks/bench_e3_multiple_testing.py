"""E3 — the terrorist-predictor fishing expedition (§2-Q2).

Paper claim, verbatim scenario: "If we have one response variable (e.g.,
'will someone conduct a terrorist attack') and many predictor variables
('eye color', 'high school math grade', 'first car brand', etc.), then
it is likely that just by accident a combination of predictor variables
explains the response variable for a given data set."

Design: response and predictors independent by construction; sweep the
number of predictors tested; count "significant" predictors raw and
under each correction.  Expected shape: raw discoveries grow ≈ α·p
(all of them false); FWER/FDR corrections hold them near zero at every
scale.
"""

import numpy as np

from benchmarks._tools import SEED, emit, format_table, run_once
from repro.accuracy.forking_paths import (
    expected_false_positives,
    generate_noise_study,
    hunt_spurious_predictors,
)

N_ROWS = 500
PREDICTOR_COUNTS = (20, 100, 500)
N_REPEATS = 5


def run_sweep():
    rows = []
    for n_predictors in PREDICTOR_COUNTS:
        totals = {key: 0.0 for key in
                  ("none", "bonferroni", "holm",
                   "benjamini_hochberg", "benjamini_yekutieli")}
        for repeat in range(N_REPEATS):
            rng = np.random.default_rng(SEED + 1000 * n_predictors + repeat)
            response, predictors, names = generate_noise_study(
                N_ROWS, n_predictors, rng
            )
            scan = hunt_spurious_predictors(response, predictors, names)
            for key in totals:
                totals[key] += scan.discoveries[key] / N_REPEATS
        rows.append([
            n_predictors,
            expected_false_positives(n_predictors),
            totals["none"],
            totals["bonferroni"],
            totals["holm"],
            totals["benjamini_hochberg"],
            totals["benjamini_yekutieli"],
        ])
    return rows


def test_e3_multiple_testing(benchmark):
    rows = run_once(benchmark, run_sweep, name="e3_multiple_testing")
    emit(format_table(
        "E3: false 'discoveries' on pure noise (mean of "
        f"{N_REPEATS} runs, n={N_ROWS}, alpha=0.05)",
        ["predictors", "expected(a*p)", "raw", "bonferroni", "holm",
         "BH", "BY"],
        rows,
    ))
    for row in rows:
        n_predictors, expected, raw = row[0], row[1], row[2]
        # Raw testing tracks alpha * p (the paper's 'just by accident').
        assert abs(raw - expected) < max(4.0, 0.6 * expected)
        # Corrections keep the family essentially clean.
        assert row[3] <= 1.0   # bonferroni
        assert row[4] <= 1.0   # holm
        assert row[5] <= 1.5   # BH
    # The trap scales: more hypotheses, more raw false positives.
    assert rows[-1][2] > rows[0][2]
