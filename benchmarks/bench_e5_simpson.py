"""E5 — Simpson's paradox, detected rather than suffered (§2-Q2).

Paper claim: "The paradox describes a phenomenon in which a trend appears
in different groups of data but disappears or reverses when these groups
are combined.  It is frightening to see data scientists nowadays who seem
not to be aware of the many pitfalls."

Design: the two classic instances (admissions-style and treatment-style),
generated with known within-stratum effects whose sign the aggregate
reverses.  The bench reports, per dataset: the naive aggregate effect,
the stratified (back-door standardised) effect, the known ground truth,
and the detector's verdict.  Expected shape: aggregate and adjusted
effects have opposite signs; the adjusted one matches the injected truth.
"""

import numpy as np

from benchmarks._tools import SEED, emit, format_table, run_once
from repro.accuracy.simpson import detect_simpsons_paradox
from repro.data.schema import numeric
from repro.data.synth import AdmissionsGenerator, TreatmentParadoxGenerator

N_ROWS = 30000


def run_detection():
    rng = np.random.default_rng(SEED)
    rows = []

    admissions_gen = AdmissionsGenerator(within_department_edge=0.06)
    admissions = admissions_gen.generate(N_ROWS, rng)
    admissions = admissions.with_column(
        numeric("is_b"), (admissions["group"] == "B").astype(float)
    )
    finding = detect_simpsons_paradox(
        admissions, "is_b", "admitted", stratifiers=["department"]
    )[0]
    rows.append([
        "admissions (B vs A)",
        finding.aggregate_difference,
        finding.adjusted_difference,
        admissions_gen.within_department_edge,
        "REVERSED" if finding.reverses else "consistent",
    ])

    treatment_gen = TreatmentParadoxGenerator(treatment_benefit=0.05)
    treatment = treatment_gen.generate(N_ROWS, rng)
    finding = detect_simpsons_paradox(
        treatment, "treated", "recovered", stratifiers=["severity"]
    )[0]
    rows.append([
        "treatment (T1 vs T0)",
        finding.aggregate_difference,
        finding.adjusted_difference,
        treatment_gen.treatment_benefit,
        "REVERSED" if finding.reverses else "consistent",
    ])
    return rows


def test_e5_simpsons_paradox(benchmark):
    rows = run_once(benchmark, run_detection, name="e5_simpson")
    emit(format_table(
        "E5: aggregate vs stratified effects (known truth injected)",
        ["dataset", "aggregate_diff", "adjusted_diff", "true_effect",
         "detector"],
        rows,
    ))
    for row in rows:
        aggregate, adjusted, truth, verdict = row[1], row[2], row[3], row[4]
        assert verdict == "REVERSED"
        # Signs flip between aggregate and stratified views.
        assert aggregate < 0 < adjusted
        # The stratified estimate recovers the injected effect.
        assert abs(adjusted - truth) < 0.03
        # The naive aggregate is not just wrong, it is *sign*-wrong.
        assert abs(aggregate - truth) > abs(adjusted - truth)
