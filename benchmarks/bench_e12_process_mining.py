"""E12 — responsible process mining (Q3/Q4 in the authors' home field).

The editorial cites van der Aalst's *Process Mining: Data Science in
Action*, and the Responsible Data Science initiative's flagship problem
was exactly this: an event log is a set of personal histories, a process
model is an explanation of an organisation — mining must serve Q4
(transparency) without violating Q3 (confidentiality).

Design: a known ground-truth order-to-cash process.  Part A: sweep ε for
DP model release; score the released model's edge-set F1 against the
true model and its fitness/precision on the log.  Part B: k-anonymous
log release; report variant uniqueness (re-identifiability) and trace
suppression vs k.  Expected shape: model quality rises with ε and is
near-perfect by ε ≈ 10; uniqueness drops to 0 at any k ≥ 2 with
suppression growing slowly in k.
"""

import numpy as np

from benchmarks._tools import SEED, emit, format_table, run_once
from repro.confidentiality import PrivacyAccountant
from repro.process import (
    OrderProcessGenerator,
    discover_dfg_model,
    dp_discover_model,
    evaluate,
    k_anonymous_log,
    variant_uniqueness,
)

N_CASES = 1500
EPSILONS = (0.2, 1.0, 5.0, 20.0)
K_LEVELS = (2, 5, 20)


def _edge_f1(mined, true_model) -> float:
    mined_edges = set(mined.edges)
    true_edges = set(true_model.edges)
    if not mined_edges:
        return 0.0
    precision = len(mined_edges & true_edges) / len(mined_edges)
    recall = len(mined_edges & true_edges) / len(true_edges)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def run_dp_release():
    # Clean log: part A isolates the DP noise (recording noise is E12b's
    # and the discovery unit tests' concern, and would confound F1 here).
    rng = np.random.default_rng(SEED)
    generator = OrderProcessGenerator(noise=0.0)
    log = generator.generate(N_CASES, rng)
    true_model = generator.true_model()

    rows = []
    baseline = discover_dfg_model(log)
    baseline_result = evaluate(log, baseline)
    rows.append([
        "non-private", _edge_f1(baseline, true_model),
        baseline_result.fitness, baseline_result.precision,
    ])
    # The analyst's domain threshold: an edge must be supported by at
    # least 1% of cases.  With this threshold fixed, the privacy budget
    # alone decides whether DP noise floods it.
    support_floor = 0.01 * N_CASES
    for epsilon in EPSILONS:
        accountant = PrivacyAccountant(1000.0)
        f1_values, fitness_values, precision_values = [], [], []
        for repeat in range(5):
            repeat_rng = np.random.default_rng(SEED + repeat)
            model = dp_discover_model(log, epsilon, accountant, repeat_rng,
                                      minimum_weight=support_floor)
            result = evaluate(log, model)
            f1_values.append(_edge_f1(model, true_model))
            fitness_values.append(result.fitness)
            precision_values.append(result.precision)
        rows.append([
            f"DP eps={epsilon:g}",
            float(np.mean(f1_values)),
            float(np.mean(fitness_values)),
            float(np.mean(precision_values)),
        ])
    return rows


def run_k_release():
    rng = np.random.default_rng(SEED + 1)
    log = OrderProcessGenerator(noise=0.1).generate(N_CASES, rng)
    rows = [[
        "raw", 1, variant_uniqueness(log), 0.0,
    ]]
    for k in K_LEVELS:
        released, info = k_anonymous_log(log, k=k)
        rows.append([
            f"k={k}", k, variant_uniqueness(released), info.suppression_rate,
        ])
    return rows


def test_e12_dp_model_release(benchmark):
    rows = run_once(benchmark, run_dp_release, name="e12_process_dp")
    emit(format_table(
        "E12a: DP process-model release vs ground truth (mean of 5 draws)",
        ["release", "edge_F1_vs_truth", "fitness", "precision"],
        rows,
    ))
    by_name = {row[0]: row for row in rows}
    assert by_name["non-private"][1] > 0.95
    f1_curve = [row[1] for row in rows[1:]]
    # Model quality rises with the budget...
    assert f1_curve[-1] > f1_curve[0]
    # ...and the top budget is near the non-private ceiling.
    assert f1_curve[-1] > 0.9


def test_e12_k_anonymous_log_release(benchmark):
    rows = run_once(benchmark, run_k_release, name="e12_process_k")
    emit(format_table(
        "E12b: k-anonymous event-log release",
        ["release", "k", "variant_uniqueness", "trace_suppression"],
        rows,
    ))
    raw = rows[0]
    assert raw[2] > 0.0           # raw log has re-identifiable histories
    for row in rows[1:]:
        assert row[2] == 0.0      # releases never contain a unique history
    suppression = [row[3] for row in rows[1:]]
    assert all(b >= a for a, b in zip(suppression, suppression[1:]))
    assert suppression[-1] < 0.6  # the release keeps most behaviour
