"""E2 — the mitigation comparison (§2-Q1).

Paper claim: "approaches are needed to detect unfair decisions … and to
find ways to ensure fairness."

Design: one biased lending dataset (label bias 0.35, categorical proxy
0.85, numeric proxy 0.7); seven mitigation strategies spanning all three
pipeline stages, against the unmitigated baseline.  Reported per method:
accuracy against the *recorded* labels, accuracy against the *latent
oracle* qualifications (which the paper's fairness argument is really
about), and the fairness metrics.  Expected shape: every mitigation
improves DI; oracle accuracy *rises* for several of them (the biased
labels were wrong about group B), so fairness here is not a pure
accuracy trade.
"""

import numpy as np

from benchmarks._tools import SEED, emit, format_table, run_once
from repro.data.synth import CreditScoringGenerator
from repro.fairness import (
    ExponentiatedGradientReducer,
    FairPenaltyLogisticRegression,
    GroupThresholdOptimizer,
    RejectOptionClassifier,
    audit_decisions,
    disparate_impact_repair,
    massage,
    reweigh,
)
from repro.learn import LogisticRegression, TableClassifier
from repro.learn.metrics import accuracy

N_TRAIN, N_TEST = 4000, 2000


def _evaluate(name, decisions, test):
    recorded = test["approved"]
    oracle = test["qualified"]
    report = audit_decisions(recorded, decisions, test["group"])
    return [
        name,
        accuracy(recorded, decisions),
        accuracy(oracle, decisions),
        report.disparate_impact_ratio,
        report.statistical_parity_difference,
        report.equalized_odds_difference,
    ]


def run_comparison():
    rng = np.random.default_rng(SEED)
    generator = CreditScoringGenerator(
        label_bias=0.35, proxy_strength=0.85, numeric_proxy_strength=0.7
    )
    train, test = generator.generate_pair(N_TRAIN, N_TEST, rng)
    rows = []

    baseline = TableClassifier(LogisticRegression()).fit(train)
    rows.append(_evaluate("baseline", baseline.predict(test), test))

    reweighed = TableClassifier(LogisticRegression()).fit(
        train, sample_weight=reweigh(train)
    )
    rows.append(_evaluate("pre: reweighing", reweighed.predict(test), test))

    massaged_train = massage(train, baseline)
    massaged = TableClassifier(LogisticRegression()).fit(massaged_train)
    rows.append(_evaluate("pre: massaging", massaged.predict(test), test))

    repaired_train = disparate_impact_repair(train, 1.0)
    repaired_test = disparate_impact_repair(test, 1.0)
    repaired = TableClassifier(LogisticRegression()).fit(repaired_train)
    rows.append(_evaluate("pre: DI repair", repaired.predict(repaired_test), test))

    penalty = FairPenaltyLogisticRegression(fairness=10.0)
    penalty.set_group(train["group"])
    penalised = TableClassifier(penalty).fit(train)
    rows.append(_evaluate("in: cov penalty", penalised.predict(test), test))

    reducer = ExponentiatedGradientReducer(LogisticRegression(), max_rounds=30)
    reducer.set_group(train["group"])
    reduced = TableClassifier(reducer).fit(train)
    rows.append(_evaluate("in: exp gradient", reduced.predict(test), test))

    optimizer = GroupThresholdOptimizer("demographic_parity")
    optimizer.fit(baseline.predict_proba(train), baseline.labels(train),
                  train["group"])
    thresholded = optimizer.predict(baseline.predict_proba(test), test["group"])
    rows.append(_evaluate("post: group thresholds", thresholded, test))

    rejected = RejectOptionClassifier("B", band=0.15).predict(
        baseline.predict_proba(test), test["group"]
    )
    rows.append(_evaluate("post: reject option", rejected, test))
    return rows


def test_e2_mitigation_comparison(benchmark):
    rows = run_once(benchmark, run_comparison, name="e2_mitigation")
    emit(format_table(
        "E2: mitigation comparison on biased lending data",
        ["method", "acc(recorded)", "acc(oracle)", "DI_ratio", "SPD", "EOD"],
        rows,
    ))
    by_name = {row[0]: row for row in rows}
    baseline_di = by_name["baseline"][3]
    # Every mitigation improves disparate impact over the baseline.
    for name, row in by_name.items():
        if name != "baseline":
            assert row[3] > baseline_di, name
    # At least one mitigation ~reaches the four-fifths bar.
    assert max(row[3] for row in rows) > 0.9
    # Reweighing improves accuracy against the latent oracle.
    assert by_name["pre: reweighing"][2] >= by_name["baseline"][2] - 0.01
