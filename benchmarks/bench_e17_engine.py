"""E17 — the dataflow engine: concurrent pillar sections vs sequential.

ROADMAP claim: parallelism is a wall-clock knob, never a results knob —
now at the level of whole audit sections, not just inner resampling
loops.  ``FACTAuditor.audit`` builds a four-node ``repro.engine.Plan``
(all sections at dependency level 0) and the ``Executor`` fans a level's
ready nodes out through ``repro.parallel``.  This bench measures both
promises:

* **Section-level speedup** — the same audit runs sequentially
  (``n_jobs=1``) and with concurrent sections (``n_jobs=2``/``4``,
  thread backend).  On a multi-core box the concurrent run must beat
  the sequential wall-clock; on a single core the speedup row is
  reported but not enforced (there is nothing to overlap onto).
* **Byte identity** — every ``n_jobs`` × backend × store combination
  must produce a report with *exactly* the sequential run's fingerprint.
  This is enforced unconditionally, on any machine.
* **Incremental + concurrent** — a warm store replays all four sections;
  the row lands far below both timed runs while staying identical.

Run directly (``python benchmarks/bench_e17_engine.py``); pass
``--smoke`` for the quick CI-sized variant exercised on every push.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from benchmarks._tools import SEED, append_session, emit, format_table  # noqa: E402
from repro import obs  # noqa: E402
from repro.core.auditor import FACTAuditor  # noqa: E402
from repro.data.synth import CreditScoringGenerator  # noqa: E402
from repro.learn.linear import LogisticRegression  # noqa: E402
from repro.learn.table_model import TableClassifier  # noqa: E402
from repro.store import ArtifactStore  # noqa: E402

#: The concurrent audit must beat sequential by this factor — enforced
#: only when the machine has at least two cores to overlap sections on.
MIN_CONCURRENT_SPEEDUP = 1.05


def _timed(fn, repeats: int):
    """Best-of-``repeats`` wall-clock (the scheduling-noise-free floor)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _setup(smoke: bool):
    scale = 0.3 if smoke else 1.0
    n_train = int(4000 * scale) + 500
    n_test = int(2000 * scale) + 400
    rng = np.random.default_rng(SEED)
    generator = CreditScoringGenerator(label_bias=0.3, proxy_strength=0.8)
    train, test = generator.generate_pair(n_train, n_test, rng)
    mask = np.arange(test.n_rows) < test.n_rows // 3
    calibration, held_out = test.filter(mask), test.filter(~mask)
    model = TableClassifier(LogisticRegression()).fit(train)
    n_bootstrap = int(1200 * scale) + 100
    return model, held_out, calibration, n_bootstrap


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized quick run")
    args = parser.parse_args(argv)
    repeats = 3 if args.smoke else 2
    cores = os.cpu_count() or 1

    telemetry = obs.configure(clock=obs.WallClock())
    failures = []
    try:
        model, test, calibration, n_bootstrap = _setup(args.smoke)

        def run(n_jobs, backend="thread", store=None):
            auditor = FACTAuditor(
                n_bootstrap=n_bootstrap, n_jobs=n_jobs, backend=backend,
                store=store,
            )
            # Same seed every run: only wall-clock may differ.
            return auditor.audit(
                model, test, np.random.default_rng(SEED + 1),
                calibration=calibration,
            )

        sequential, seq_s = _timed(lambda: run(1, "serial"), repeats)
        reference = sequential.fingerprint()

        rows = [["sequential (n_jobs=1)", seq_s, 1.0, "-"]]
        for n_jobs in (2, 4):
            report, wall = _timed(lambda: run(n_jobs), repeats)
            identical = report.fingerprint() == reference
            if not identical:
                failures.append(
                    f"BYTE-IDENTITY VIOLATION: n_jobs={n_jobs} audit "
                    f"differs from the sequential report"
                )
            rows.append([
                f"concurrent (n_jobs={n_jobs})", wall,
                seq_s / wall if wall > 0 else float("inf"),
                "yes" if identical else "NO",
            ])
        concurrent_speedup = rows[-1][2]

        store = ArtifactStore.in_memory()
        run(4, store=store)  # cold fill
        warm, warm_s = _timed(lambda: run(4, store=store), repeats)
        warm_identical = warm.fingerprint() == reference
        if not warm_identical:
            failures.append(
                "BYTE-IDENTITY VIOLATION: warm concurrent audit differs "
                "from the storeless sequential report"
            )
        rows.append([
            "concurrent + warm store", warm_s,
            seq_s / warm_s if warm_s > 0 else float("inf"),
            "yes" if warm_identical else "NO",
        ])

        if cores >= 2 and concurrent_speedup < MIN_CONCURRENT_SPEEDUP:
            failures.append(
                f"SPEEDUP REGRESSION: concurrent sections only "
                f"{concurrent_speedup:.2f}x over sequential on {cores} "
                f"cores (floor {MIN_CONCURRENT_SPEEDUP}x)"
            )
    finally:
        append_session(telemetry, "e17_engine")
        obs.reset()

    title = (
        f"E17{' (smoke)' if args.smoke else ''}: engine-level concurrent "
        f"FACT sections ({cores} cores; speedup floor "
        f"{'enforced' if cores >= 2 else 'reported only'})"
    )
    table = format_table(
        title,
        ["audit", "wall_s", "speedup_vs_sequential", "identical"],
        rows,
    )
    if args.smoke:
        print("\n" + table)  # CI check only: keep results.txt for full runs
    else:
        emit(table)
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
