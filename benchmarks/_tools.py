"""Shared helpers for the experiment benches.

Each bench regenerates one table/figure of the reproduction (see
DESIGN.md's experiment index).  The *printed table* is the artefact; the
pytest-benchmark timing wraps the experiment's core computation so
``pytest benchmarks/ --benchmark-only`` both reproduces the numbers and
times the system.  Run with ``-s`` to see the tables inline; they are
also appended to ``benchmarks/results.txt``.

Every bench additionally runs under a wall-clock :mod:`repro.obs`
telemetry session, so each invocation appends its span tree and metric
summaries to ``benchmarks/telemetry.jsonl`` — the perf trajectory the
ROADMAP's "fast as the hardware allows" goal is measured against.
Inspect it with ``python -m repro telemetry benchmarks/telemetry.jsonl``.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro import obs

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")
TELEMETRY_PATH = os.path.join(os.path.dirname(__file__), "telemetry.jsonl")
SEED = 20170626  # the editorial's publication date


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table (the shape the paper's tables would have)."""
    rendered_rows = [
        [f"{value:.4f}" if isinstance(value, float) else str(value)
         for value in row]
        for row in rows
    ]
    widths = [
        max(len(str(headers[index])),
            *(len(row[index]) for row in rendered_rows))
        for index in range(len(headers))
    ] if rendered_rows else [len(str(h)) for h in headers]
    lines = [f"== {title} =="]
    lines.append("  ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    ))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(
            cell.ljust(width) for cell, width in zip(row, widths)
        ))
    return "\n".join(lines)


def emit(text: str) -> None:
    """Print a table and append it to the results file."""
    print("\n" + text)
    with open(RESULTS_PATH, "a") as handle:
        handle.write(text + "\n\n")


def run_once(benchmark, fn):
    """Time ``fn`` exactly once through pytest-benchmark and return it.

    The experiments are deterministic and heavy; one round gives the
    timing without multiplying the work.  The call runs inside a
    wall-clock telemetry session whose merged records are appended to
    :data:`TELEMETRY_PATH`.
    """
    telemetry = obs.configure(clock=obs.WallClock())
    try:
        with telemetry.tracer.span(
            f"bench:{getattr(fn, '__qualname__', type(fn).__name__)}"
        ):
            return benchmark.pedantic(fn, rounds=1, iterations=1)
    finally:
        obs.write_jsonl(TELEMETRY_PATH, telemetry.to_dicts(), append=True)
        obs.reset()
