"""Shared helpers for the experiment benches.

Each bench regenerates one table/figure of the reproduction (see
DESIGN.md's experiment index).  The *printed table* is the artefact; the
pytest-benchmark timing wraps the experiment's core computation so
``pytest benchmarks/ --benchmark-only`` both reproduces the numbers and
times the system.  Run with ``-s`` to see the tables inline; they are
also appended to ``benchmarks/results.txt``.

Every bench additionally runs under a wall-clock :mod:`repro.obs`
telemetry session appended to ``telemetry.jsonl`` (location overridable
via ``REPRO_TELEMETRY_PATH``, mirroring ``REPRO_N_JOBS`` /
``REPRO_STORE``).  Sessions are delimited by marker records and the
file is rotated down to the last :data:`MAX_TELEMETRY_SESSIONS` on each
append, so it never grows without bound.  Named ``run_once`` calls also
append a record to the bench's ``BENCH_<name>.json`` perf trajectory —
see :mod:`repro.bench`.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro import obs
from repro.bench import (
    TELEMETRY_PATH_ENV,
    BenchRecord,
    append_record,
    format_table,
    rotate_jsonl_sessions,
    session_marker,
    trajectory_path,
)

__all__ = ["RESULTS_PATH", "TELEMETRY_PATH", "SEED", "MAX_TELEMETRY_SESSIONS",
           "format_table", "emit", "telemetry_path", "append_session",
           "run_once"]

_HERE = os.path.dirname(__file__)
RESULTS_PATH = os.path.join(_HERE, "results.txt")
#: Import-time default; :func:`telemetry_path` re-reads the env so tests
#: (and CI) can redirect per invocation.
TELEMETRY_PATH = os.environ.get(
    TELEMETRY_PATH_ENV, os.path.join(_HERE, "telemetry.jsonl")
)
SEED = 20170626  # the editorial's publication date

#: Keep this many appended sessions in telemetry.jsonl.
MAX_TELEMETRY_SESSIONS = 24


def telemetry_path() -> str:
    """Where bench telemetry goes (``REPRO_TELEMETRY_PATH`` wins)."""
    return os.environ.get(
        TELEMETRY_PATH_ENV, os.path.join(_HERE, "telemetry.jsonl")
    )


def emit(text: str) -> None:
    """Print a table and append it to the results file."""
    print("\n" + text)
    with open(RESULTS_PATH, "a") as handle:
        handle.write(text + "\n\n")


def append_session(telemetry, label: str) -> None:
    """One marker + the session's merged records, then rotate."""
    path = telemetry_path()
    records = [session_marker(label)] + telemetry.to_dicts()
    obs.write_jsonl(path, records, append=True)
    rotate_jsonl_sessions(path, MAX_TELEMETRY_SESSIONS)


def run_once(benchmark, fn, name: str | None = None):
    """Time ``fn`` exactly once through pytest-benchmark and return it.

    The experiments are deterministic and heavy; one round gives the
    timing without multiplying the work.  The call runs inside a
    wall-clock telemetry session appended to :func:`telemetry_path`.
    When ``name`` is given, the measured wall time is also appended to
    ``BENCH_<name>.json`` next to ``telemetry.jsonl`` — a per-experiment
    perf trajectory alongside the suite's (``python -m repro bench``).
    """
    label = getattr(fn, "__qualname__", type(fn).__name__)
    telemetry = obs.configure(clock=obs.WallClock())
    try:
        with telemetry.tracer.span(f"bench:{label}") as span:
            result = benchmark.pedantic(fn, rounds=1, iterations=1)
    finally:
        append_session(telemetry, name or label)
        obs.reset()
    if name is not None:
        record = BenchRecord(
            name=name, mode="experiment", runs=1, warmup=0,
            metrics={"wall_s_median": round(span.duration, 6),
                     "wall_s_min": round(span.duration, 6)},
        ).stamp(cwd=_HERE)
        append_record(
            trajectory_path(name, os.path.dirname(telemetry_path())), record
        )
    return result
