"""E4 — guaranteed accuracy via conformal prediction (§2-Q2).

Paper claim: "data science approaches should not just present results or
make predictions, but also explicitly provide meta-information on the
accuracy of the output" / "how to answer questions with a guaranteed
level of accuracy?"

Design: split-conformal prediction sets around three different model
families, over a sweep of nominal miscoverage levels α.  Expected shape:
empirical coverage ≥ 1−α for every (model, α) cell — the guarantee is
distribution-free and model-agnostic — while the mean set size (the
price of the guarantee) shrinks as the model improves and as α grows.
"""

import numpy as np

from benchmarks._tools import SEED, emit, format_table, run_once
from repro.accuracy.conformal import SplitConformalClassifier
from repro.data import three_way_split
from repro.data.synth import CensusIncomeGenerator
from repro.learn import (
    GaussianNaiveBayes,
    LogisticRegression,
    RandomForestClassifier,
    TableClassifier,
)

ALPHAS = (0.05, 0.1, 0.2)
N_ROWS = 6000


def run_sweep():
    rng = np.random.default_rng(SEED)
    data = CensusIncomeGenerator().generate(N_ROWS, rng)
    train, calibration, test = three_way_split(data, 0.25, 0.25, rng)
    models = {
        "logistic": LogisticRegression(),
        "forest": RandomForestClassifier(n_trees=30, max_depth=8, seed=1),
        "naive_bayes": GaussianNaiveBayes(),
    }
    rows = []
    for name, estimator in models.items():
        wrapped = TableClassifier(estimator).fit(train)
        X_cal = wrapped.encoder.transform(calibration)
        y_cal = wrapped.labels(calibration)
        X_test = wrapped.encoder.transform(test)
        y_test = wrapped.labels(test)
        for alpha in ALPHAS:
            conformal = SplitConformalClassifier(estimator, alpha=alpha)
            conformal.calibrate(X_cal, y_cal)
            rows.append([
                name, alpha, 1.0 - alpha,
                conformal.coverage(X_test, y_test),
                conformal.mean_set_size(X_test),
            ])
    return rows


def test_e4_conformal_coverage(benchmark):
    rows = run_once(benchmark, run_sweep, name="e4_conformal")
    emit(format_table(
        "E4: conformal coverage guarantee across models and alpha",
        ["model", "alpha", "nominal", "coverage", "mean_set_size"],
        rows,
    ))
    for row in rows:
        nominal, coverage, set_size = row[2], row[3], row[4]
        # The guarantee: coverage >= nominal (finite-sample slack 3pts).
        assert coverage >= nominal - 0.03, row
        assert 1.0 <= set_size <= 2.0
    # Larger alpha buys smaller sets, per model.
    for model in {row[0] for row in rows}:
        sizes = [row[4] for row in rows if row[0] == model]
        assert sizes[0] >= sizes[-1] - 1e-9


def run_group_conditional():
    """E4b: marginal vs group-conditional coverage when one group's
    scores are noisier — the Q1×Q2 crossover."""
    from repro.accuracy.conformal import GroupConditionalConformalClassifier

    rng = np.random.default_rng(SEED + 1)
    n = 9000
    group = np.where(rng.random(n) < 0.3, "B", "A").astype(object)
    X = rng.standard_normal((n, 3))
    noise = np.where(group == "B", 2.5, 0.5)
    y = (X @ np.array([1.5, -1.0, 0.5])
         + noise * rng.standard_normal(n) > 0).astype(float)
    train, cal, test = slice(0, 3000), slice(3000, 6000), slice(6000, n)
    model = LogisticRegression().fit(X[train], y[train])

    marginal = SplitConformalClassifier(model, alpha=0.1)
    marginal.calibrate(X[cal], y[cal])
    sets = marginal.predict_sets(X[test])
    covered = np.asarray([
        s.covers(label) for s, label in zip(sets, y[test])
    ])
    grouped = GroupConditionalConformalClassifier(model, alpha=0.1)
    grouped.calibrate(X[cal], y[cal], group[cal])
    grouped_coverage = grouped.coverage_by_group(
        X[test], y[test], group[test]
    )
    rows = []
    for value in ("A", "B"):
        mask = group[test] == value
        rows.append([
            value,
            float(covered[mask].mean()),
            grouped_coverage[value],
        ])
    return rows


def test_e4b_equalized_coverage(benchmark):
    rows = run_once(benchmark, run_group_conditional, name="e4_conformal_group")
    emit(format_table(
        "E4b: per-group coverage, marginal vs group-conditional "
        "(nominal 90%; group B's scores are noisier)",
        ["group", "marginal_coverage", "group_conditional_coverage"],
        rows,
    ))
    by_group = {row[0]: row for row in rows}
    # Group-conditional calibration restores the guarantee per group.
    for value in ("A", "B"):
        assert by_group[value][2] >= 0.9 - 0.03
    # And it closes (or at least never widens) the coverage gap.
    marginal_gap = abs(by_group["A"][1] - by_group["B"][1])
    grouped_gap = abs(by_group["A"][2] - by_group["B"][2])
    assert grouped_gap <= marginal_gap + 0.02
