"""The experiment battery: one bench module per table/figure in DESIGN.md."""
