"""E8 — what leaks, measured by attack (§2-Q3).

Paper claim: "Confidential data may be shared unintentionally or abused
by third parties … If individuals do not trust the data science
pipeline and worry about confidentiality, they will not share their
data."

Design: Part A — a Sweeney-style linkage attack against releases of a
census-shaped table at increasing Mondrian k; reported: re-identification
rate, residual k-anonymity, information loss.  Part B — membership
inference against an ε-DP released mean across ε, against the theoretical
(e^ε−1)/(e^ε+1) bound.  Expected shape: raw release re-identifies ~all
rows; k ≥ 2 already zeroes confident linkage while information loss grows
slowly in k; the inference advantage decays with ε and respects the bound.
"""

import numpy as np

from benchmarks._tools import SEED, emit, format_table, run_once
from repro.confidentiality import (
    MondrianAnonymizer,
    assess_risk,
    generalization_information_loss,
    k_anonymity_level,
    linkage_attack,
    membership_inference_on_mean,
    theoretical_membership_advantage,
)
from repro.data.schema import ColumnRole, categorical
from repro.data.synth import CensusIncomeGenerator

N_ROWS = 2000
K_LEVELS = (2, 5, 10, 25)
QUASI_IDENTIFIERS = ["age", "occupation", "zipcode"]
EPSILONS = (0.1, 0.5, 1.0, 2.0)


def run_linkage():
    rng = np.random.default_rng(SEED)
    census = CensusIncomeGenerator().generate(N_ROWS, rng)
    released = census.with_column(
        categorical("uid", role=ColumnRole.IDENTIFIER),
        [f"u{index}" for index in range(census.n_rows)],
    )
    auxiliary = released.select(
        [*QUASI_IDENTIFIERS, "uid"]
    ).rename({"uid": "name"})

    rows = []
    raw_attack = linkage_attack(
        released, auxiliary, QUASI_IDENTIFIERS, "uid", "name"
    )
    rows.append([
        "raw", 1, raw_attack.reidentification_rate,
        assess_risk(census, QUASI_IDENTIFIERS).unique_row_fraction,
        0.0,
    ])
    for k in K_LEVELS:
        anonymized = MondrianAnonymizer(k=k).anonymize(released)
        attack = linkage_attack(
            anonymized, auxiliary, QUASI_IDENTIFIERS, "uid", "name"
        )
        rows.append([
            f"mondrian k={k}",
            k_anonymity_level(anonymized, QUASI_IDENTIFIERS),
            attack.reidentification_rate,
            assess_risk(anonymized, QUASI_IDENTIFIERS).unique_row_fraction,
            generalization_information_loss(census, anonymized,
                                            QUASI_IDENTIFIERS),
        ])
    return rows


def run_membership():
    rng = np.random.default_rng(SEED + 1)
    values = rng.normal(50.0, 10.0, 300)
    rows = []
    for epsilon in EPSILONS:
        result = membership_inference_on_mean(
            values, 99.0, epsilon, rng, 0.0, 100.0, n_trials=2000
        )
        rows.append([
            epsilon, result.advantage,
            theoretical_membership_advantage(epsilon),
        ])
    return rows


def test_e8_linkage_attack(benchmark):
    rows = run_once(benchmark, run_linkage, name="e8_linkage")
    emit(format_table(
        "E8a: linkage-attack re-identification vs anonymisation level",
        ["release", "achieved_k", "reid_rate", "unique_rows", "info_loss"],
        rows,
    ))
    raw, anonymized = rows[0], rows[1:]
    assert raw[2] > 0.9             # raw release: near-total re-identification
    for row in anonymized:
        assert row[2] == 0.0        # any k >= 2 zeroes confident linkage
    losses = [row[4] for row in anonymized]
    assert all(b >= a - 1e-9 for a, b in zip(losses, losses[1:]))  # loss grows in k
    assert losses[-1] < 0.8         # but stays far from total destruction


def test_e8_membership_inference(benchmark):
    rows = run_once(benchmark, run_membership, name="e8_membership")
    emit(format_table(
        "E8b: membership-inference advantage vs epsilon (DP bound shown)",
        ["epsilon", "empirical_advantage", "dp_bound"],
        rows,
    ))
    advantages = [row[1] for row in rows]
    assert advantages[-1] > advantages[0]   # more budget, more leakage
    for epsilon, advantage, bound in rows:
        assert advantage <= bound + 0.06    # bound respected (noise slack)
