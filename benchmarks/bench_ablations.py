"""Ablations A1-A3 — the design choices DESIGN.md calls out.

* A1: privacy-budget composition strategy — how many ε₀ releases one
  total budget affords under basic vs advanced composition.  The
  crossover (advanced wins only for small ε₀) is the design reason the
  toolkit ships both accountants.
* A2: mitigation stage placement — the same fairness goal pursued pre-,
  in-, and post-processing, under one budgeted comparison.  Placement is
  a real design choice: post-processing needs the sensitive attribute at
  decision time, pre-processing does not.
* A3: provenance granularity — fingerprint-level vs stage-level trails
  cost different amounts as tables grow; the bench locates the constant.
"""

import time

import numpy as np

from benchmarks._tools import SEED, emit, format_table, run_once
from repro.confidentiality import max_queries_advanced, max_queries_basic
from repro.data.synth import (
    CreditScoringGenerator,
    InternetMinuteGenerator,
    RecidivismGenerator,
)
from repro.fairness import (
    GroupThresholdOptimizer,
    FairPenaltyLogisticRegression,
    assess_impossibility,
    audit_decisions,
    audit_model,
    group_rates,
    reweigh,
)
from repro.learn import LogisticRegression, TableClassifier
from repro.learn.metrics import accuracy
from repro.pipeline import FunctionStage, Pipeline, RedactStage


def run_a1():
    budget, delta = 1.0, 1e-6
    rows = []
    for per_query in (0.2, 0.05, 0.01, 0.002):
        basic = max_queries_basic(budget, per_query)
        advanced = max_queries_advanced(budget, per_query, delta)
        rows.append([
            per_query, basic, advanced,
            "advanced" if advanced > basic else "basic",
        ])
    return rows


def test_a1_composition_strategy(benchmark):
    rows = run_once(benchmark, run_a1, name="a1")
    emit(format_table(
        "A1: queries affordable at total epsilon=1.0 (delta'=1e-6)",
        ["per_query_eps", "basic", "advanced", "winner"],
        rows,
    ))
    winners = [row[3] for row in rows]
    # Crossover exists: basic wins for large per-query cost, advanced for small.
    assert winners[0] == "basic"
    assert winners[-1] == "advanced"
    # Advanced buys strictly more at the smallest per-query epsilon.
    assert rows[-1][2] > 2 * rows[-1][1]


def run_a2():
    rng = np.random.default_rng(SEED)
    generator = CreditScoringGenerator(
        label_bias=0.35, proxy_strength=0.85, numeric_proxy_strength=0.7
    )
    train, test = generator.generate_pair(4000, 2000, rng)
    labels_test = test["approved"]
    group_test = test["group"]
    rows = []

    def record(name, decisions, needs_group_at_decision):
        report = audit_decisions(labels_test, decisions, group_test)
        rows.append([
            name,
            accuracy(labels_test, decisions),
            report.disparate_impact_ratio,
            "yes" if needs_group_at_decision else "no",
        ])

    baseline = TableClassifier(LogisticRegression()).fit(train)
    record("none (baseline)", baseline.predict(test), False)

    pre = TableClassifier(LogisticRegression()).fit(
        train, sample_weight=reweigh(train)
    )
    record("pre (reweighing)", pre.predict(test), False)

    penalty = FairPenaltyLogisticRegression(fairness=10.0)
    penalty.set_group(train["group"])
    inproc = TableClassifier(penalty).fit(train)
    record("in (cov penalty)", inproc.predict(test), False)

    optimizer = GroupThresholdOptimizer("demographic_parity")
    optimizer.fit(baseline.predict_proba(train), baseline.labels(train),
                  train["group"])
    post = optimizer.predict(baseline.predict_proba(test), group_test)
    record("post (thresholds)", post, True)
    return rows


def test_a2_mitigation_placement(benchmark):
    rows = run_once(benchmark, run_a2, name="a2")
    emit(format_table(
        "A2: where in the pipeline to mitigate",
        ["stage", "accuracy", "DI_ratio", "group_needed_at_decision"],
        rows,
    ))
    by_name = {row[0]: row for row in rows}
    # All three placements fix the disparity the baseline has.
    for name in ("pre (reweighing)", "in (cov penalty)", "post (thresholds)"):
        assert by_name[name][2] > by_name["none (baseline)"][2] + 0.1
    # Only post-processing requires the protected attribute at decision
    # time — the deployment constraint the ablation is about.
    assert by_name["post (thresholds)"][3] == "yes"
    assert by_name["pre (reweighing)"][3] == "no"


def run_a3():
    rows = []
    for n_events in (2000, 8000, 32000):
        rng = np.random.default_rng(SEED)
        stream = InternetMinuteGenerator().generate(n_events, rng)
        pipeline_cache = {
            mode: Pipeline([
                RedactStage(),
                FunctionStage("identity", lambda table: table),
            ], provenance=mode)
            for mode in ("off", "stage", "fingerprint")
        }
        # Warm-up.
        pipeline_cache["fingerprint"].run(stream, np.random.default_rng(0))
        timings = {}
        for mode, pipeline in pipeline_cache.items():
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                pipeline.run(stream, np.random.default_rng(0))
                best = min(best, time.perf_counter() - start)
            timings[mode] = best * 1000.0
        rows.append([
            n_events, timings["off"], timings["stage"],
            timings["fingerprint"],
            timings["fingerprint"] / max(timings["off"], 1e-9),
        ])
    return rows


def test_a3_provenance_granularity(benchmark):
    rows = run_once(benchmark, run_a3, name="a3")
    emit(format_table(
        "A3: provenance cost by granularity (best-of-3 wall ms)",
        ["events", "off_ms", "stage_ms", "fingerprint_ms",
         "fingerprint_overhead_x"],
        rows,
    ))
    for row in rows:
        # Fingerprinting samples a fixed number of rows per table, so its
        # overhead factor stays a small constant as the data grows.
        assert row[4] < 5.0
    # And the factor does not blow up with scale: the largest stream's
    # overhead factor is no worse than 3x the smallest stream's.
    assert rows[-1][4] < 3.0 * max(rows[0][4], 1.0)


def run_a4():
    """A4: the impossibility theorem, measured.

    On recidivism-shaped data with a measurement-driven base-rate gap,
    Chouldechova's identity says equal PPV + equal FNR would force an
    FPR gap of a computable size; a real model cannot satisfy all three,
    so the disparity must surface *somewhere*.  The table shows where:
    the forced-FPR floor, and the model's measured FPR and PPV gaps.
    """
    rows = []
    for policing_gap in (0.0, 0.5, 1.0):
        rng = np.random.default_rng(SEED + int(policing_gap * 10))
        generator = RecidivismGenerator(policing_gap=policing_gap)
        train, test = generator.generate_pair(6000, 3000, rng)
        model = TableClassifier(LogisticRegression()).fit(train)
        decisions = model.predict(test)
        labels = model.labels(test)
        rates = group_rates(labels, decisions, test["group"])
        ppv_values = rates.per_group("precision").values()
        fnr_values = rates.per_group("false_negative_rate").values()
        assessment = assess_impossibility(
            labels, test["group"],
            target_ppv=float(np.mean(list(ppv_values))),
            target_fnr=float(np.mean(list(fnr_values))),
        )
        rows.append([
            policing_gap,
            assessment.base_rate_gap,
            assessment.forced_fpr_gap,
            rates.difference("false_positive_rate"),
            rates.difference("precision"),
        ])
    return rows


def test_a4_impossibility(benchmark):
    rows = run_once(benchmark, run_a4, name="a4")
    emit(format_table(
        "A4: base-rate gap -> disparity no score can avoid "
        "(it surfaces as FPR gap, PPV gap, or both)",
        ["policing_gap", "base_rate_gap", "forced_fpr_gap",
         "measured_fpr_gap", "measured_ppv_gap"],
        rows,
    ))
    by_gap = {row[0]: row for row in rows}
    # No measurement bias, no forced gap.
    assert by_gap[0.0][2] < 0.05
    # Measurement bias creates a base-rate gap, and with it a floor.
    assert by_gap[1.0][1] > 0.05
    assert by_gap[1.0][2] > by_gap[0.0][2]
    # The theorem: with a real base-rate gap, the model's combined
    # (FPR + PPV) disparity cannot fall below the forced floor — if the
    # FPR gap is small, calibration/PPV parity paid for it.
    assert by_gap[1.0][3] + by_gap[1.0][4] > by_gap[1.0][2] - 0.02
