"""E14 — multi-tenant DP query serving: cache-driven ε savings + throughput.

ROADMAP claim: a production-scale system "serving heavy traffic" under
the paper's strict-privacy-budget regime (§2-Q3).  Serving workloads are
heavily skewed — popular queries repeat — and DP's closure under
post-processing makes every repeat *free*: replaying a released noisy
answer costs zero additional ε and no table scan.

Two experiments:

* **A (budget):** a Zipf-skewed workload of repeated queries served with
  the answer cache on vs. off.  The savings factor is total-ε(off) /
  total-ε(on); the acceptance bar is ≥ 2x, the expected value is close
  to the workload's repeat factor.
* **B (throughput):** the same in-memory tables (no file or network I/O
  in the serving path) behind a modeled constant backend answer latency,
  served three ways: a single-threaded loop (the pre-serve baseline), a
  4-worker pool with the cache off (pure latency overlap, which a
  thread-per-query pool bounds at ~4x), and the full serving layer —
  4-worker pool plus answer cache plus single-flight coalescing — whose
  throughput clears 4x with a wide margin because repeats cost neither
  ε nor a backend round-trip.  A zero-latency pure-CPU run is reported
  for reference (bounded by the host's core count — ~1x on a
  single-core runner).
"""

import time

import numpy as np

from benchmarks._tools import SEED, emit, format_table, run_once
from repro.data.synth import CensusIncomeGenerator
from repro.serve import QueryRequest, QueryServer

N_ROWS = 20_000
N_TEMPLATES = 40
N_REQUESTS = 300
ZIPF_EXPONENT = 1.2
TENANTS = ("ads", "health", "policy")
LATENCY_S = 0.015
N_THROUGHPUT_REQUESTS = 80

OCCUPATIONS = ("clerical", "managerial", "manual", "sales", "service",
               "technical")


def build_templates():
    """Distinct query templates the Zipf workload draws from."""
    templates = []
    for index in range(N_TEMPLATES):
        epsilon = (0.02, 0.05, 0.1)[index % 3]
        style = index % 4
        if style == 0:
            templates.append(dict(kind="count", epsilon=epsilon))
        elif style == 1:
            templates.append(dict(
                kind="mean", column="age", lower=18.0,
                upper=80.0 + index, epsilon=epsilon,
            ))
        elif style == 2:
            templates.append(dict(
                kind="quantile", column="hours_per_week", lower=0.0,
                upper=100.0, q=round(0.1 + 0.02 * index, 3), epsilon=epsilon,
            ))
        else:
            templates.append(dict(
                kind="histogram", column="occupation",
                bins=list(OCCUPATIONS[: 2 + index % 5]), epsilon=epsilon,
            ))
    return templates


def zipf_workload(templates, rng):
    """N_REQUESTS draws with probability ∝ 1/rank^ZIPF_EXPONENT."""
    ranks = np.arange(1, len(templates) + 1, dtype=np.float64)
    probabilities = ranks ** -ZIPF_EXPONENT
    probabilities /= probabilities.sum()
    choices = rng.choice(len(templates), size=N_REQUESTS, p=probabilities)
    return [
        QueryRequest(tenant=TENANTS[i % len(TENANTS)], **templates[choice])
        for i, choice in enumerate(choices)
    ]


def serve_workload(table, requests, cache_on, workers=4):
    server = QueryServer(workers=workers, seed=SEED, cache=cache_on)
    server.register_table("census", table)
    for tenant in TENANTS:
        server.register_tenant(tenant, epsilon_budget=1000.0)
    with server:
        results = server.submit_batch(requests)
    assert all(result.ok for result in results), "workload must fit the budget"
    total_epsilon = sum(
        server.budget.accountant(tenant).epsilon_spent for tenant in TENANTS
    )
    hits = sum(result.cached for result in results)
    return total_epsilon, hits


def throughput(table, requests, workers, latency_s, cache_on):
    server = QueryServer(workers=workers, seed=SEED, cache=cache_on,
                         backend_latency_s=latency_s)
    server.register_table("census", table)
    for tenant in TENANTS:
        server.register_tenant(tenant, epsilon_budget=1000.0)
    with server:
        start = time.perf_counter()
        results = server.submit_batch(requests)
        elapsed = time.perf_counter() - start
    assert all(result.ok for result in results)
    return len(results) / elapsed


def run_serving():
    rng = np.random.default_rng(SEED)
    table = CensusIncomeGenerator().generate(N_ROWS, rng)
    templates = build_templates()
    requests = zipf_workload(templates, rng)

    epsilon_off, _ = serve_workload(table, requests, cache_on=False)
    epsilon_on, hits = serve_workload(table, requests, cache_on=True)
    savings = epsilon_off / epsilon_on

    load = requests[:N_THROUGHPUT_REQUESTS]
    qps_seq = throughput(table, load, workers=1, latency_s=LATENCY_S,
                         cache_on=False)
    qps_pool = throughput(table, load, workers=4, latency_s=LATENCY_S,
                          cache_on=False)
    qps_full = throughput(table, load, workers=4, latency_s=LATENCY_S,
                          cache_on=True)
    qps_cpu_1 = throughput(table, load, workers=1, latency_s=0.0,
                           cache_on=False)
    qps_cpu_4 = throughput(table, load, workers=4, latency_s=0.0,
                           cache_on=False)

    budget_rows = [
        ["cache off", N_REQUESTS, 0, epsilon_off, 1.0],
        ["cache on", N_REQUESTS, hits, epsilon_on, savings],
    ]
    throughput_rows = [
        ["single-threaded", qps_seq, 1.0],
        ["4-worker pool, cache off", qps_pool, qps_pool / qps_seq],
        ["4-worker pool + cache", qps_full, qps_full / qps_seq],
        ["pure CPU, 1 worker (reference)", qps_cpu_1, qps_cpu_1 / qps_cpu_1],
        ["pure CPU, 4 workers (reference)", qps_cpu_4, qps_cpu_4 / qps_cpu_1],
    ]
    return budget_rows, throughput_rows


def test_e14_serving(benchmark):
    budget_rows, throughput_rows = run_once(
        benchmark, run_serving, name="e14_serving"
    )
    emit(format_table(
        "E14a: Zipf workload, total epsilon with the DP answer cache on vs off",
        ["mode", "requests", "cache_hits", "total_epsilon", "savings_x"],
        budget_rows,
    ))
    emit(format_table(
        "E14b: serving throughput, 15ms modeled backend latency",
        ["mode", "queries_per_s", "speedup_x"],
        throughput_rows,
    ))
    # The cache must at least halve the budget burn on a skewed workload.
    assert budget_rows[1][4] >= 2.0
    # Identical released answers, identical request stream: the ε saved
    # is exactly the repeated fraction of the workload.
    assert budget_rows[1][2] > 0
    # Pure latency overlap approaches the pool width (4 workers)...
    assert throughput_rows[1][2] >= 3.0
    # ...and the full serving layer (pool + replay + coalescing) clears
    # 4x single-threaded with room to spare.
    assert throughput_rows[2][2] >= 4.0
