"""A sharded, out-of-core FACT audit — byte-identical to the serial one.

When the test set is too large for one worker (the paper's setting is
institutional: census extracts, lending books, event logs), the table
becomes a ``PartitionedTable`` — ordered row-range shards behind lazy,
pure loader callables, so *no single Table ever exists in memory*.
``FACTAuditor`` turns the audit into one map task per shard (labels,
probabilities, decisions, encoded features, quasi-identifier class
counts are all row-wise pure) plus exact combines in shard order, and
with a store attached each partial spills to disk tagged by its
shard's fingerprint — the coordinator holds about one shard at a time.

The punchline is the same contract the rest of the engine keeps:
sharding is a wall-clock/memory knob, never a results knob.  The
sharded report's fingerprint equals the serial one's, bit for bit.

The default run is sized down (4 shards x 5 000 rows) so it finishes in
seconds *and* can afford the serial comparison audit; pass ``--full``
for the real out-of-core shape — 10 000 000 rows as 500 shards of
20 000, which never materialises and skips the serial check.

Run:  python examples/sharded_audit.py [--full]
"""

import functools
import sys
import tempfile
import time

import numpy as np

from repro import (
    ArtifactStore,
    CreditScoringGenerator,
    FACTAuditor,
    LogisticRegression,
    TableClassifier,
)
from repro.data import PartitionedTable


def load_shard(seed, rows):
    """A pure, picklable shard source: same seed, same bytes, every load."""
    generator = CreditScoringGenerator(label_bias=0.3, proxy_strength=0.8)
    return generator.generate(rows, np.random.default_rng(seed))


def main():
    full = "--full" in sys.argv[1:]
    n_shards, rows_per_shard = (500, 20_000) if full else (4, 5_000)

    rng = np.random.default_rng(0)
    generator = CreditScoringGenerator(label_bias=0.3, proxy_strength=0.8)
    train = generator.generate(6_000, rng)
    model = TableClassifier(LogisticRegression()).fit(train)

    # The test set never exists as one table: each shard is a callable
    # the engine materialises on demand, one map task at a time.
    sources = [
        functools.partial(load_shard, 1_000 + index, rows_per_shard)
        for index in range(n_shards)
    ]
    parts = PartitionedTable.from_sources(
        sources, train.schema, shard_rows=[rows_per_shard] * n_shards
    )
    print(f"partitioned test set: {n_shards} shards x {rows_per_shard:,} "
          f"rows = {n_shards * rows_per_shard:,} rows (lazy)")

    # The store is where partials spill (tagged ``shard:<fp>``) — and
    # what makes a re-audit after editing one shard cost one shard.
    store = ArtifactStore.on_disk(tempfile.mkdtemp(prefix="fact-shards-"))
    auditor = FACTAuditor(n_bootstrap=200, n_jobs=2, backend="process",
                          store=store)
    start = time.perf_counter()
    sharded = auditor.audit(model, parts, np.random.default_rng(7))
    sharded_s = time.perf_counter() - start
    print(f"sharded audit: {sharded_s:.2f}s   "
          f"fingerprint {sharded.fingerprint()}")

    if full:
        print("(--full skips the serial comparison: the whole table "
              "would have to materialise)")
        return

    serial = FACTAuditor(n_bootstrap=200).audit(
        model, parts.concat(), np.random.default_rng(7)
    )
    print(f"serial audit fingerprint:  {serial.fingerprint()}")
    assert sharded.fingerprint() == serial.fingerprint()
    print("byte-identical: True — sharding changed memory and wall-clock, "
          "not one byte of the report")


if __name__ == "__main__":
    main()
