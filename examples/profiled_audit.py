"""A profiled FACT audit: where the wall time, CPU, and memory go.

Turns on the opt-in profiling collector (`obs.configure(profile=True,
trace_malloc=True)`), runs a concurrent four-section FACT audit through
the dataflow engine, exports the telemetry, and renders the profile —
hot nodes, the plan's critical path vs. total work (the theoretical
speedup its shape allows), cache efficiency, and parallel pool usage.
The same rendering is available any time afterwards with::

    python -m repro profile profile_run.jsonl

Run:  python examples/profiled_audit.py
"""

import numpy as np

from repro import obs
from repro.core.auditor import FACTAuditor
from repro.data.synth import CreditScoringGenerator
from repro.learn import LogisticRegression, TableClassifier
from repro.store import ArtifactStore

EXPORT_PATH = "profile_run.jsonl"
SEED = 20170626


def main():
    rng = np.random.default_rng(SEED)

    # Profiling measures real resources, so pair the collector with a
    # wall clock; deterministic runs keep the default TickClock and
    # leave the collector off.
    telemetry = obs.configure(clock=obs.WallClock(),
                              export_path=EXPORT_PATH,
                              profile=True, trace_malloc=True)

    generator = CreditScoringGenerator(label_bias=0.3, proxy_strength=0.8)
    train, test = generator.generate_pair(3000, 1500, rng)
    mask = np.arange(test.n_rows) < test.n_rows // 3
    calibration, held_out = test.filter(mask), test.filter(~mask)
    model = TableClassifier(LogisticRegression()).fit(train)

    auditor = FACTAuditor(n_bootstrap=300, n_jobs=2, backend="thread",
                          store=ArtifactStore.in_memory())
    report = auditor.audit(model, held_out,
                           np.random.default_rng(SEED + 1),
                           calibration=calibration)
    print(f"audited: fingerprint {report.fingerprint()[:16]}…\n")

    records = telemetry.to_dicts()
    telemetry.flush()
    print(obs.render_profile(records))
    print(f"\nwrote {EXPORT_PATH} — re-render with: "
          f"python -m repro profile {EXPORT_PATH}")
    obs.reset()


if __name__ == "__main__":
    main()
