"""Fair lending (Q1): detect discrimination, explain it, fix it.

The full fairness workflow on a redlined credit dataset:

1. audit the baseline model's group metrics;
2. find *why* it discriminates (proxy detection, worst-off subgroups,
   individual situation testing);
3. compare mitigation at all three pipeline stages;
4. ship the winner with a model card.

Run:  python examples/fair_lending.py
"""

import numpy as np

from repro import CreditScoringGenerator, LogisticRegression, TableClassifier
from repro.data import train_test_split
from repro.fairness import (
    GroupThresholdOptimizer,
    audit_decisions,
    audit_model,
    detect_proxies,
    find_worst_subgroups,
    reweigh,
    situation_test,
)
from repro.learn.metrics import accuracy
from repro.transparency import build_model_card


def main():
    rng = np.random.default_rng(7)
    generator = CreditScoringGenerator(
        label_bias=0.35, proxy_strength=0.85, numeric_proxy_strength=0.6
    )
    data = generator.generate(6000, rng)
    train, test = train_test_split(data, 0.3, rng, stratify_by="group")

    # -- 1. baseline audit ------------------------------------------------
    baseline = TableClassifier(LogisticRegression()).fit(train)
    report = audit_model(baseline, test)
    print(report.render())

    # -- 2. diagnosis -----------------------------------------------------
    proxies = detect_proxies(train)
    print(f"\ncan features predict the group? joint AUC = {proxies.joint_auc:.3f}")
    for name, auc in proxies.strongest(3):
        print(f"  proxy candidate: {name} (AUC {auc:.3f})")

    decisions = baseline.predict(test)
    for subgroup in find_worst_subgroups(test, decisions, max_conditions=2,
                                         min_size=40, top=3):
        print(f"  worst-off: {subgroup.describe()} "
              f"(selection {subgroup.selection_rate:.2f}, "
              f"shortfall {subgroup.shortfall:+.2f}, n={subgroup.size})")

    X_test = baseline.encoder.transform(test)
    st = situation_test(X_test, decisions, test["group"], "B")
    print(f"  situation testing: {st.flagged_fraction:.1%} of group-B "
          f"applicants have favoured cross-group twins "
          f"(mean gap {st.mean_gap:+.2f})")

    # -- 3. mitigation ----------------------------------------------------
    print("\nmitigation comparison (accuracy vs recorded labels / DI ratio):")
    labels = baseline.labels(test)

    reweighed = TableClassifier(LogisticRegression()).fit(
        train, sample_weight=reweigh(train)
    )
    for name, decided in (
        ("baseline", decisions),
        ("reweighing (pre)", reweighed.predict(test)),
    ):
        audit = audit_decisions(labels, decided, test["group"])
        print(f"  {name:>18}: acc={accuracy(labels, decided):.3f} "
              f"DI={audit.disparate_impact_ratio:.3f}")

    optimizer = GroupThresholdOptimizer("demographic_parity")
    optimizer.fit(baseline.predict_proba(train), baseline.labels(train),
                  train["group"])
    post = optimizer.predict(baseline.predict_proba(test), test["group"])
    audit = audit_decisions(labels, post, test["group"])
    print(f"  {'thresholds (post)':>18}: acc={accuracy(labels, post):.3f} "
          f"DI={audit.disparate_impact_ratio:.3f}")

    # -- 4. ship with a card ------------------------------------------------
    card = build_model_card(
        reweighed, train, test,
        name="credit-lr-reweighed",
        intended_use="pre-screening of consumer loan applications",
        rng=rng,
        limitations=[
            "trained on synthetic data with injected historical bias",
            "reweighing corrects selection rates, not every error-rate gap",
        ],
        prohibited_uses=["employment, housing, or insurance decisions"],
    )
    print("\n" + card.render())


if __name__ == "__main__":
    main()
