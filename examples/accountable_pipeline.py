"""Accountable pipeline (Q4 + §3): provenance at Internet-Minute volume.

Builds the FACT-instrumented pipeline over the paper's "Internet Minute"
event stream: every stage is recorded, every artefact fingerprinted, so
"how was this number produced?" and "what did this tainted input touch?"
are both one query.  Finishes with policy-gated deployment of a decision
model trained downstream of the stream.

Run:  python examples/accountable_pipeline.py
"""

import numpy as np

from repro.core import FACTAuditor, FACTPolicy, build_scorecard
from repro.data import three_way_split
from repro.data.schema import ColumnRole, numeric
from repro.data.synth import CreditScoringGenerator, InternetMinuteGenerator
from repro.exceptions import PolicyViolation
from repro.learn import LogisticRegression, TableClassifier
from repro.pipeline import (
    CleanStage,
    DecideStage,
    FunctionStage,
    Pipeline,
    PredictStage,
    RedactStage,
    ReweighStage,
    TrainStage,
    ValidateSchemaStage,
)


def main():
    rng = np.random.default_rng(5)

    # -- part 1: the event stream -----------------------------------------
    stream = InternetMinuteGenerator(scale=1e-4, minutes=2).generate_stream(rng)
    print(f"simulated stream: {stream.n_rows} events over 2 minutes "
          f"(paper mix: snaps, searches, swipes, ...)")

    def flag_heavy(table):
        flag = (table["payload_bytes"] > 2000.0).astype(float)
        return table.with_column(
            numeric("heavy", role=ColumnRole.METADATA), flag
        )

    stream_pipeline = Pipeline([
        RedactStage(),                       # pseudonymise user ids first
        FunctionStage("flag_heavy", flag_heavy),
        FunctionStage("keep_eu", lambda t: t.filter(t["region"] == "eu")),
    ], actor="stream-ingest")
    result = stream_pipeline.run(stream, rng)
    print(f"after pipeline: {result.table.n_rows} EU events, "
          f"user ids look like {result.table['user_id'][0]!r}")
    print("\nfull lineage of the released table:")
    print(result.lineage())
    print("\naudit trail:")
    print(result.context.audit.render())

    # -- part 2: policy-gated model deployment ------------------------------
    print("\n--- decision pipeline with a FACT gate ---")
    data = CreditScoringGenerator(label_bias=0.3, proxy_strength=0.8).generate(5000, rng)
    train, calibration, test = three_way_split(data, 0.25, 0.15, rng)
    auditor = FACTAuditor()
    policy = FACTPolicy(name="lending-gate",
                        max_calibration_error=0.08,
                        max_conformal_coverage_shortfall=0.05,
                        max_unique_row_fraction=None)

    def deploy(pipeline, label):
        run = pipeline.run(train, rng)
        report = auditor.audit(run.model, test, rng,
                               calibration=calibration, pipeline_result=run,
                               subject=label)
        print(f"\n{label}: scorecard grade "
              f"{build_scorecard(report).grade}")
        try:
            policy.enforce(report)
            print(f"{label}: PASSED the FACT gate — deployable")
        except PolicyViolation as violation:
            print(f"{label}: BLOCKED — {violation}")

    naive = Pipeline([
        ValidateSchemaStage(), CleanStage(),
        TrainStage(TableClassifier(LogisticRegression())),
        PredictStage(), DecideStage(),
    ], actor="naive-team")
    deploy(naive, "naive pipeline")

    responsible = Pipeline([
        ValidateSchemaStage(), CleanStage(), ReweighStage(),
        TrainStage(TableClassifier(LogisticRegression())),
        PredictStage(), DecideStage(),
    ], actor="responsible-team")
    deploy(responsible, "responsible pipeline")


if __name__ == "__main__":
    main()
