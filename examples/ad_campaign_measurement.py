"""Ad-campaign measurement (Q2): guesswork vs guarantees.

The Gordon et al. (2016) scenario the paper cites: how much did the ad
campaign really lift purchases?  The example shows every Q2 pitfall and
its remedy:

1. the naive observational estimate (and how wrong it is);
2. propensity-score matching, IPW and doubly-robust AIPW vs the RCT;
3. Simpson's paradox hiding in a campaign breakdown;
4. a metric-fishing expedition neutralised by multiple-testing control;
5. a conformal guarantee on the purchase-prediction model.

Run:  python examples/ad_campaign_measurement.py
"""

import numpy as np

from repro.accuracy import (
    SplitConformalClassifier,
    bootstrap_ci,
    compare_estimators,
    detect_simpsons_paradox,
    generate_noise_study,
    hunt_spurious_predictors,
)
from repro.data import three_way_split
from repro.data.schema import numeric
from repro.data.synth import AdCampaignGenerator, TreatmentParadoxGenerator
from repro.learn import LogisticRegression, TableClassifier


def main():
    rng = np.random.default_rng(3)
    generator = AdCampaignGenerator(true_lift=0.4, confounding=1.5)

    # -- 1 & 2. causal estimation -----------------------------------------
    observational = generator.generate_observational(8000, rng)
    rct = generator.generate_rct(8000, rng)
    truth = generator.true_ate(observational)
    X = np.column_stack([
        observational["activity"],
        observational["past_purchases"],
        observational["ad_affinity"],
    ])
    print(f"ground-truth lift (oracle): {truth:+.4f}\n")
    results = compare_estimators(
        X, observational["exposed"], observational["purchase"],
        rct_treatment=rct["exposed"], rct_outcome=rct["purchase"],
        truth=truth,
    )
    for estimate in results.values():
        print(f"  {estimate}  {estimate.detail}")
    print("  -> the naive estimate would have tripled the campaign budget;"
          " the adjusted ones would not\n")

    # -- 3. Simpson's paradox in the breakdown -------------------------------
    campaign = TreatmentParadoxGenerator(treatment_benefit=0.05).generate(20000, rng)
    campaign = campaign.rename({
        "severity": "customer_tier", "treated": "saw_new_creative",
        "recovered": "purchased",
    })
    finding = detect_simpsons_paradox(
        campaign, "saw_new_creative", "purchased",
        stratifiers=["customer_tier"],
    )[0]
    print(finding.render())
    print("  -> report the adjusted number, not the aggregate\n")

    # -- 4. metric fishing --------------------------------------------------
    response, predictors, names = generate_noise_study(600, 150, rng)
    scan = hunt_spurious_predictors(response, predictors, names)
    print("fishing expedition over 150 random 'conversion drivers':")
    print(f"  raw significant: {scan.discoveries['none']} "
          f"(expected by chance: {150 * 0.05:.0f})")
    print(f"  after Holm: {scan.discoveries['holm']}, "
          f"after BH: {scan.discoveries['benjamini_hochberg']}")
    top_name, top_p = scan.top_predictors[0]
    print(f"  the analyst would have reported {top_name!r} (p={top_p:.4f})\n")

    # -- 5. a guaranteed predictor -------------------------------------------
    train, calibration, test = three_way_split(
        observational.with_column(
            numeric("purchase", role=observational.schema["purchase"].role),
            observational["purchase"],
        ),
        0.25, 0.25, rng,
    )
    model = TableClassifier(LogisticRegression()).fit(train)
    conformal = SplitConformalClassifier(model.estimator, alpha=0.1)
    conformal.calibrate(
        model.encoder.transform(calibration), model.labels(calibration)
    )
    X_test = model.encoder.transform(test)
    coverage = conformal.coverage(X_test, model.labels(test))
    print(f"conformal purchase predictor: nominal 90% coverage, "
          f"empirical {coverage:.1%}, "
          f"mean set size {conformal.mean_set_size(X_test):.2f}")

    interval = bootstrap_ci(
        observational["purchase"], np.mean, rng
    )
    print(f"baseline purchase rate: {interval} — "
          "always report the interval, never just the point")

    # -- 6. who does the ad actually work on? -------------------------------
    from repro.accuracy.causal import TLearner, effects_by_group, policy_value

    rct_again = AdCampaignGenerator(true_lift=0.4).generate_rct(8000, rng)
    X_rct = np.column_stack([
        rct_again["activity"], rct_again["past_purchases"],
        rct_again["ad_affinity"],
    ])
    learner = TLearner(LogisticRegression()).fit(
        X_rct, rct_again["exposed"], rct_again["purchase"]
    )
    effects = learner.effect(X_rct)
    activity_band = np.where(
        rct_again["activity"] > np.median(rct_again["activity"]),
        "high_activity", "low_activity",
    )
    print("\nheterogeneous effects (T-learner on the RCT):")
    for segment in effects_by_group(effects, activity_band):
        print(f"  {segment.name}: mean lift {segment.mean_effect:+.4f} "
              f"(n={segment.n})")
    print(f"  value of targeting the top 30%: "
          f"{policy_value(effects, 0.3):+.4f} per user vs "
          f"{policy_value(effects, 1.0):+.4f} for blanket exposure")


if __name__ == "__main__":
    main()
