"""The FACT audit as a dataflow plan: concurrent, memoised, identical.

``FACTAuditor.audit`` no longer runs its four pillar sections in a
hand-written sequence — it builds a four-node ``repro.engine.Plan``
(every section at dependency level 0) and hands it to the engine's
``Executor``.  That buys three things at once, demonstrated below:

1. **Concurrency without nondeterminism** — with workers, the four
   sections run simultaneously, and the report's fingerprint is
   byte-identical to the sequential run (each section owns a
   ``SeedSequence``-spawned stream assigned in plan order).
2. **Incremental re-audit** — with an ``ArtifactStore``, each node is
   memoised under a key derived from its code + params + input content;
   after changing one section's parameters, only that section
   recomputes, and it still recomputes *concurrently* with nothing.
3. **One plan, inspectable** — ``plan.describe()`` shows the schedule
   the auditor will run before anything executes.

Run:  python examples/audit_plan.py
"""

import time

import numpy as np

from repro import (
    ArtifactStore,
    CreditScoringGenerator,
    FACTAuditor,
    LogisticRegression,
    TableClassifier,
)
from repro.data import three_way_split


def timed_audit(model, test, calibration, **auditor_kwargs):
    auditor = FACTAuditor(n_bootstrap=800, **auditor_kwargs)
    start = time.perf_counter()
    # Same seed each time: the comparisons isolate workers and caching.
    report = auditor.audit(
        model, test, np.random.default_rng(7), calibration=calibration
    )
    return report, time.perf_counter() - start


def main():
    rng = np.random.default_rng(0)
    generator = CreditScoringGenerator(label_bias=0.3, proxy_strength=0.8)
    data = generator.generate(6000, rng)
    train, calibration, test = three_way_split(data, 0.25, 0.15, rng)
    model = TableClassifier(LogisticRegression()).fit(train)

    # 1. The audit's schedule, before anything runs: four pillar nodes,
    #    one level — all independent, all eligible to run concurrently.
    plan = FACTAuditor().build_plan(model, test, calibration=calibration)
    print(plan.describe())
    print()

    # 2. Sequential vs concurrent: same bytes, less wall-clock.
    seq, seq_s = timed_audit(model, test, calibration, n_jobs=1)
    par, par_s = timed_audit(model, test, calibration,
                             n_jobs=4, backend="thread")
    print(f"sequential audit: {seq_s:.2f}s  fingerprint {seq.fingerprint()}")
    print(f"concurrent audit: {par_s:.2f}s  fingerprint {par.fingerprint()}")
    print(f"speedup: {seq_s / par_s:.1f}x; "
          f"byte-identical: {par.fingerprint() == seq.fingerprint()}")

    # 3. Incremental *and* concurrent: cold-fill the store, then deepen
    #    the transparency surrogate.  Only that node's key changes, so
    #    the other three sections replay and one recomputes.
    store = ArtifactStore()
    timed_audit(model, test, calibration, n_jobs=4, store=store)
    misses_before = store.misses
    changed, changed_s = timed_audit(
        model, test, calibration, n_jobs=4, store=store, surrogate_depth=6
    )
    print(f"\nchanged surrogate_depth=6: {changed_s:.2f}s, "
          f"{store.misses - misses_before} section recomputed "
          f"(fingerprint {changed.fingerprint()})")
    print(f"store stats: {store.stats()}")


if __name__ == "__main__":
    main()
