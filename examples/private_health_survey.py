"""Private health survey (Q3): answer questions without revealing secrets.

A health authority wants statistics and a shareable dataset from a
sensitive survey.  The example walks the confidentiality toolbox:

1. DP queries under a strict, *enforced* privacy budget;
2. local DP (randomised response) for the most sensitive question;
3. a release: pseudonymised identifiers + Mondrian k-anonymity,
   validated by actually attacking it;
4. a DP-trained risk model.

Run:  python examples/private_health_survey.py
"""

import numpy as np

from repro.confidentiality import (
    MondrianAnonymizer,
    OutputPerturbationLogisticRegression,
    PrivacyAccountant,
    Pseudonymizer,
    assess_risk,
    dp_histogram,
    dp_mean,
    k_anonymity_level,
    linkage_attack,
    randomized_response,
    randomized_response_estimate,
)
from repro.data.schema import ColumnRole, Schema, categorical, numeric
from repro.data.synth.base import bernoulli, sigmoid
from repro.data.table import Table
from repro.exceptions import PrivacyBudgetError
from repro.learn import TableClassifier
from repro.learn.metrics import accuracy


def make_survey(n, rng):
    """A synthetic patient survey with identifiers and a stigmatised flag."""
    age = np.clip(rng.normal(52, 14, n), 18, 95)
    bmi = np.clip(rng.normal(27, 5, n), 15, 55)
    smoker = bernoulli(np.full(n, 0.22), rng)
    condition = bernoulli(
        sigmoid(0.06 * (age - 50) + 0.1 * (bmi - 27) + 1.2 * smoker - 1.0), rng
    )
    schema = Schema([
        categorical("patient_id", role=ColumnRole.IDENTIFIER),
        numeric("age", role=ColumnRole.QUASI_IDENTIFIER),
        numeric("bmi", role=ColumnRole.QUASI_IDENTIFIER),
        categorical("clinic", role=ColumnRole.QUASI_IDENTIFIER),
        numeric("smoker"),
        numeric("condition", role=ColumnRole.TARGET),
    ])
    return Table(schema, {
        "patient_id": [f"pt_{index:05d}" for index in range(n)],
        "age": age,
        "bmi": bmi,
        "clinic": [f"clinic_{index}" for index in rng.integers(0, 12, n)],
        "smoker": smoker,
        "condition": condition,
    })


def main():
    rng = np.random.default_rng(11)
    survey = make_survey(4000, rng)

    # -- 1. budgeted DP statistics -----------------------------------------
    accountant = PrivacyAccountant(epsilon_budget=1.0)
    mean_age = dp_mean(survey["age"], 18, 95, 0.3, accountant, rng,
                       label="mean_age")
    clinics = sorted(set(survey["clinic"].tolist()))
    histogram = dp_histogram(survey["clinic"], clinics, 0.3, accountant, rng,
                             label="clinic_load")
    print(f"DP mean age: {mean_age:.1f} (true {survey['age'].mean():.1f})")
    busiest = max(histogram, key=histogram.get)
    print(f"DP busiest clinic: {busiest} (~{histogram[busiest]:.0f} patients)")
    print(accountant.render_ledger())

    try:
        dp_mean(survey["bmi"], 15, 55, 0.9, accountant, rng, label="mean_bmi")
    except PrivacyBudgetError as error:
        print(f"budget enforcement works: {error}")

    # -- 2. local DP for the stigmatised question ----------------------------
    noisy_smoker = randomized_response(survey["smoker"], epsilon=1.0, rng=rng)
    estimate = randomized_response_estimate(noisy_smoker, epsilon=1.0)
    print(f"\nrandomised-response smoking rate: {estimate:.3f} "
          f"(true {survey['smoker'].mean():.3f}) — "
          "no individual's answer is trustworthy, the aggregate is")

    # -- 3. a defensible release -------------------------------------------
    raw_risk = assess_risk(survey)
    print(f"\nbefore release: {raw_risk.render()}")
    release = Pseudonymizer().pseudonymize(survey)
    release = MondrianAnonymizer(k=10).anonymize(release)
    safe_risk = assess_risk(release)
    print(f"after release:  {safe_risk.render()}")
    print(f"achieved k-anonymity: {k_anonymity_level(release)}")

    # Validate by attacking: an insurer with age/bmi/clinic tries to re-identify.
    auxiliary = survey.select(
        ["age", "bmi", "clinic", "patient_id"]
    ).rename({"patient_id": "who"})
    before = linkage_attack(
        survey, auxiliary, ["age", "bmi", "clinic"], "patient_id", "who"
    )
    after = linkage_attack(
        release, auxiliary, ["age", "bmi", "clinic"], "patient_id", "who"
    )
    print(f"linkage attack re-identifies {before.reidentification_rate:.1%} "
          f"of the raw table, {after.reidentification_rate:.1%} of the release")

    # -- 4. a DP risk model ----------------------------------------------------
    model_accountant = PrivacyAccountant(epsilon_budget=2.0)
    dp_model = TableClassifier(OutputPerturbationLogisticRegression(
        epsilon=2.0, l2=1e-3, accountant=model_accountant
    )).fit(survey)
    score = accuracy(dp_model.labels(survey), dp_model.predict(survey))
    print(f"\nDP(eps=2) condition-risk model accuracy: {score:.3f}")
    print(model_accountant.render_ledger())


if __name__ == "__main__":
    main()
