"""An incremental FACT re-audit: edit one stage, replay the rest.

A full FACT audit is expensive — bootstrap intervals, conformal
calibration, permutation importances.  With an ``ArtifactStore``, each
pillar section is memoised under a canonical fingerprint of exactly the
data, parameters, and code it depends on, and the shared rng's stream
stays continuous across replays.  So a re-audit after one change costs
what the *change* costs, and everything untouched replays byte-for-byte
— provable by comparing one short hash (``report.fingerprint()``).

Run:  python examples/incremental_audit.py
"""

import tempfile
import time

import numpy as np

from repro import (
    ArtifactStore,
    CreditScoringGenerator,
    FACTAuditor,
    LogisticRegression,
    TableClassifier,
)
from repro.data import three_way_split


def timed_audit(store, model, test, calibration, **auditor_kwargs):
    auditor = FACTAuditor(n_bootstrap=800, store=store, **auditor_kwargs)
    start = time.perf_counter()
    # Same seed each time: the comparison isolates the store.
    report = auditor.audit(
        model, test, np.random.default_rng(7), calibration=calibration
    )
    return report, time.perf_counter() - start


def main():
    rng = np.random.default_rng(0)
    generator = CreditScoringGenerator(label_bias=0.3, proxy_strength=0.8)
    data = generator.generate(6000, rng)
    train, calibration, test = three_way_split(data, 0.25, 0.15, rng)
    model = TableClassifier(LogisticRegression()).fit(train)

    # An on-disk store warms *across* processes: re-running this script
    # against the same directory would start at the warm timings.
    store = ArtifactStore.on_disk(
        tempfile.mkdtemp(prefix="fact-cache-")
    )

    cold, cold_s = timed_audit(store, model, test, calibration)
    warm, warm_s = timed_audit(store, model, test, calibration)
    print(f"cold audit: {cold_s:.2f}s   fingerprint {cold.fingerprint()}")
    print(f"warm audit: {warm_s:.2f}s   fingerprint {warm.fingerprint()}")
    print(f"speedup: {cold_s / warm_s:.1f}x; "
          f"byte-identical: {warm.render() == cold.render()}")

    # Edit "one stage" — a deeper transparency surrogate.  Only the
    # transparency section's fingerprint changes, so only it recomputes;
    # fairness, accuracy and confidentiality replay from the store.
    misses_before = store.misses
    changed, changed_s = timed_audit(
        store, model, test, calibration, surrogate_depth=6
    )
    print(f"\nchanged surrogate_depth=6: {changed_s:.2f}s "
          f"({store.misses - misses_before} section recomputed, "
          f"fingerprint {changed.fingerprint()})")
    print(f"stats: {store.stats()}")
    print()
    print(changed.render())


if __name__ == "__main__":
    main()
