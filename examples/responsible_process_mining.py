"""Responsible process mining: the RDS initiative's home problem.

An event log is a set of personal histories; a process model is an
explanation of how an organisation really works.  This example mines an
order-to-cash process responsibly:

1. discover and conformance-check a model from the raw log (Q4);
2. show why the raw log must not leave the building (unique variants
   re-identify people);
3. release a differentially private model instead — budgeted, audited;
4. release a k-anonymous log for researchers who need traces.

Run:  python examples/responsible_process_mining.py
"""

import numpy as np

from repro.confidentiality import PrivacyAccountant
from repro.process import (
    OrderProcessGenerator,
    discover_dfg_model,
    dp_discover_model,
    evaluate,
    k_anonymous_log,
    variant_uniqueness,
)


def main():
    rng = np.random.default_rng(17)
    generator = OrderProcessGenerator(rework_probability=0.25, noise=0.08)
    log = generator.generate(2000, rng)
    print("event log:", log.statistics())

    # -- 1. transparent discovery -------------------------------------------
    model = discover_dfg_model(log, noise_threshold=0.05)
    print("\n" + model.render(top=8))
    conformance = evaluate(log, model)
    print(f"fitness {conformance.fitness:.3f}, "
          f"precision {conformance.precision:.3f}, "
          f"f-score {conformance.f_score:.3f} "
          f"({conformance.n_perfect_traces}/{conformance.n_traces} traces replay cleanly)")

    # -- 2. why the log itself is dangerous -----------------------------------
    uniqueness = variant_uniqueness(log)
    print(f"\n{uniqueness:.1%} of cases have a UNIQUE history — each one "
          "re-identifiable from the log alone (no names needed)")

    # -- 3. DP model release ----------------------------------------------------
    accountant = PrivacyAccountant(epsilon_budget=3.0)
    released_model = dp_discover_model(
        log, epsilon=2.0, accountant=accountant, rng=rng,
        minimum_weight=0.01 * len(log),
    )
    release_conformance = evaluate(log, released_model)
    print(f"\nDP-released model (eps=2): {released_model.n_edges} edges, "
          f"fitness {release_conformance.fitness:.3f} on the private log")
    print(accountant.render_ledger())

    # -- 4. k-anonymous log release -----------------------------------------------
    released_log, info = k_anonymous_log(log, k=10)
    print(f"\nk=10 log release: kept {info.n_released_traces}/{len(log)} traces "
          f"({info.suppression_rate:.1%} suppressed, "
          f"{info.n_suppressed_variants} rare variants withheld)")
    print(f"released-log variant uniqueness: "
          f"{variant_uniqueness(released_log):.1%}")
    sample = released_log.traces[0]
    print(f"sample released trace: {sample.case_id} -> "
          f"{' > '.join(sample.activities[:5])} ...")


if __name__ == "__main__":
    main()
