"""A traced fair-lending pipeline run: telemetry end to end.

Configures the `repro.obs` telemetry layer, runs the same staged
fair-lending pipeline as `accountable_pipeline.py`, and shows where the
rows, the time, and the privacy budget went — as a span tree, a metrics
table, and one merged JSONL file you can re-inspect any time with::

    python -m repro telemetry telemetry_run.jsonl

Run:  python examples/telemetry_pipeline.py
"""

import numpy as np

from repro import obs
from repro.confidentiality.accountant import PrivacyAccountant
from repro.data.synth import CreditScoringGenerator
from repro.learn import LogisticRegression, TableClassifier
from repro.pipeline import (
    CleanStage,
    DecideStage,
    FairnessDriftMonitor,
    Pipeline,
    PredictStage,
    ReweighStage,
    TrainStage,
    ValidateSchemaStage,
)

EXPORT_PATH = "telemetry_run.jsonl"


def main():
    rng = np.random.default_rng(0)

    # The default TickClock keeps this run byte-reproducible; swap in
    # obs.WallClock() for real timestamps in a deployment.
    telemetry = obs.configure(export_path=EXPORT_PATH)

    generator = CreditScoringGenerator(label_bias=0.3, proxy_strength=0.8)
    data = generator.generate(4000, rng)

    accountant = PrivacyAccountant(epsilon_budget=1.0)
    accountant.spend(0.25, label="marginal release")  # gauge sample 1

    pipeline = Pipeline([
        ValidateSchemaStage(),
        CleanStage(),
        ReweighStage(),
        TrainStage(TableClassifier(LogisticRegression())),
        PredictStage(),
        DecideStage(),
    ], accountant=accountant)
    result = pipeline.run(data, rng)

    # Post-deployment batches flow through the same metrics registry.
    monitor = FairnessDriftMonitor(
        reference_scores=result.table.column("score"), psi_threshold=0.1
    )
    monitor.observe(rng.uniform(0.4, 1.0, size=300))
    telemetry.flush(audit=result.context.audit)

    records = obs.read_telemetry(EXPORT_PATH)
    print(obs.render_span_tree(records))
    print()
    print(obs.render_metrics_table(records))
    print()
    print(obs.render_audit_tail(records, last=5))
    print(f"\nwrote {len(records)} telemetry records to {EXPORT_PATH}")
    print(f"inspect again with: python -m repro telemetry {EXPORT_PATH}")


if __name__ == "__main__":
    main()
