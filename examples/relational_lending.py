"""Relational lending (Q1 + §5): a join re-introduces what redaction removed.

Three related tables — zones, applicants, loan applications — with a
known causal structure: application features are group-blind, historical
approvals are biased against group B, and residential segregation ties
group to zone.  The walk-through:

1. the single-table pipeline (applications only) trains a model whose
   fairness audit PASSES — the features really are clean;
2. joining in applicants ⋈ zones hands the model ``area_score``, a
   spatial proxy for group; the same audit now FAILS;
3. FACT role propagation has already marked the join: ``group`` arrived
   SENSITIVE, the link keys arrived IDENTIFIER, and the proxy scan
   measures what the declarations cannot know — ``area_score`` and
   ``zone_id`` re-encode group;
4. applying the scan promotes the proxies to QUASI_IDENTIFIER, the
   feature table drops them, and parity returns.

Run:  python examples/relational_lending.py
"""

import numpy as np

from repro.data.synth import LendingRelationalGenerator
from repro.fairness.metrics import (
    disparate_impact_ratio,
    statistical_parity_difference,
)
from repro.learn import LogisticRegression
from repro.learn.preprocessing import FeatureEncoder
from repro.relational import inner_join, proxy_scan

FOUR_FIFTHS = 0.8


def audit(table, group, label):
    """Train on the table's FEATURE columns, audit selection parity."""
    features = table.feature_table()
    encoder = FeatureEncoder()
    X = encoder.fit_transform(features)
    model = LogisticRegression(l2=1.0).fit(X, table.column("approved"))
    decisions = (model.predict_proba(X) >= 0.5).astype(float)
    spd = statistical_parity_difference(decisions, group)
    di = disparate_impact_ratio(decisions, group)
    verdict = "PASS" if di >= FOUR_FIFTHS else "FAIL"
    print(f"  {label}")
    print(f"    features: {features.schema.feature_names}")
    print(f"    SPD={spd:.3f}  DI={di:.3f}  four-fifths rule: {verdict}")
    return di


def main():
    rng = np.random.default_rng(7)
    generator = LendingRelationalGenerator(
        label_bias=0.4, segregation=0.9
    )
    dataset = generator.generate_dataset(1500, rng)
    print(f"generated {dataset!r}")
    print(f"dataset fingerprint: {dataset.content_fingerprint()}")

    # The joined view: applications ⋈ applicants ⋈ zones.  Roles are
    # derived, not copied — group arrives SENSITIVE, the keys IDENTIFIER.
    flat = inner_join(
        dataset.join("applications", "applicants"),
        dataset.table("zones"), "zone_id",
    )
    group = flat.column("group")

    print("\n1. single-table pipeline (applications features only):")
    single = flat.select([
        "app_id", "applicant_id", "income", "debt_ratio",
        "credit_history", "qualified", "approved",
    ])
    audit(single, group, "applications only — redaction looks sufficient")

    print("\n2. the joined dataset hands the model the spatial proxy:")
    audit(flat, group, "applications ⋈ applicants ⋈ zones")

    print("\n3. the post-join proxy scan measures the re-encoding:")
    scan = proxy_scan(flat, subject="applications ⋈ applicants ⋈ zones")
    print("  " + scan.render().replace("\n", "\n  "))

    print("\n4. applying the scan (flagged columns → QUASI_IDENTIFIER):")
    mitigated = scan.apply(flat)
    di = audit(mitigated, group, "joined, proxies quarantined")
    assert di >= FOUR_FIFTHS, "mitigation should restore parity"

    print("\nsame rows, same model, three verdicts — the fairness of a")
    print("feature set is a property of the schema that produced it.")


if __name__ == "__main__":
    main()
