"""Engine stage fusion on a cached pipeline: fewer spans, same bytes.

Runs the same cacheable pipeline twice against one artifact store —
once stage-by-stage, once with ``Pipeline(fuse=True)``, which executes
maximal chains of consecutive cacheable stages as single fused units
(one cache key, one store round-trip, one ``stage:a+b+...`` span).
The script then *proves* the fusion contract on the exported telemetry:

* every output column is byte-identical to the unfused run;
* the fused chain emits exactly one span, still carrying the
  ``cache="hit"|"miss"`` attribute plus ``fused=<member count>``;
* the warm fused run replays the whole chain from one stored artifact.

Exits non-zero if any of that fails — CI runs this as a gate.

Run:  python examples/fused_pipeline.py
"""

import sys

import numpy as np

from repro import obs
from repro.data.synth import CreditScoringGenerator
from repro.learn import LogisticRegression, TableClassifier
from repro.pipeline import Pipeline
from repro.pipeline.stage import (
    CleanStage,
    DecideStage,
    PredictStage,
    RedactStage,
    TrainStage,
)
from repro.store import ArtifactStore

EXPORT_PATH = "fused_run.jsonl"
SEED = 20170626


def build(store, fuse):
    return Pipeline([
        CleanStage(),
        RedactStage(),
        TrainStage(TableClassifier(LogisticRegression())),
        PredictStage(),
        DecideStage(threshold=0.4),
    ], store=store, fuse=fuse)


def main() -> int:
    rng = np.random.default_rng(SEED)
    table = CreditScoringGenerator(label_bias=0.3).generate(4000, rng)

    plain = build(ArtifactStore(), fuse=False).run(
        table, np.random.default_rng(SEED + 1)
    )

    telemetry = obs.configure(export_path=EXPORT_PATH)
    store = ArtifactStore()
    for _ in range(2):                        # cold, then warm from cache
        fused = build(store, fuse=True).run(
            table, np.random.default_rng(SEED + 1)
        )
    telemetry.flush()

    failures = []
    for name in plain.table.column_names:
        if not np.array_equal(fused.table.column(name),
                              plain.table.column(name)):
            failures.append(f"column {name!r} differs under fusion")

    spans = [r for r in telemetry.to_dicts() if r.get("record") == "span"]
    chain_spans = [s for s in spans if s["attributes"].get("fused")]
    if not chain_spans:
        failures.append("no fused chain span was emitted")
    for span in chain_spans:
        if span["attributes"].get("cache") not in ("hit", "miss"):
            failures.append(f"span {span['name']} lost its cache attribute")
    by_chain: dict[str, list[str]] = {}
    for span in chain_spans:
        by_chain.setdefault(span["name"], []).append(
            span["attributes"].get("cache")
        )
    for name, statuses in by_chain.items():
        if statuses != ["miss", "hit"]:
            failures.append(
                f"{name}: expected cold miss then warm hit, got {statuses}"
            )

    for span in chain_spans:
        print(f"fused span: {span['name']}  "
              f"members={span['attributes']['fused']}  "
              f"cache={by_chain[span['name']]}")
        break
    stage_spans = [s for s in spans if s["name"].startswith("stage:")]
    print(f"stage spans per fused run: {len(stage_spans) // 2} "
          f"(5 stages unfused)")
    print(f"outputs byte-identical to the unfused pipeline: "
          f"{'yes' if not failures else 'NO'}")
    print(f"wrote {EXPORT_PATH} — render with: "
          f"python -m repro profile {EXPORT_PATH}")
    obs.reset()

    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
