"""A FACT report built with ``n_jobs=4`` — parallel, yet bit-identical.

The audit's heaviest internals (bootstrap intervals behind every
headline number, permutation importances behind the transparency
section) are embarrassingly parallel resampling loops.  This example
runs the same audit serially and with a 4-way fan-out and proves the
two reports agree to the last bit: ``n_jobs`` is a wall-clock knob,
never a results knob.

Run:  python examples/parallel_report.py
"""

import time

import numpy as np

from repro import (
    CreditScoringGenerator,
    FACTAuditor,
    LogisticRegression,
    TableClassifier,
)
from repro.data import three_way_split


def main():
    rng = np.random.default_rng(0)
    generator = CreditScoringGenerator(label_bias=0.3, proxy_strength=0.8)
    data = generator.generate(6000, rng)
    train, calibration, test = three_way_split(data, 0.25, 0.15, rng)
    model = TableClassifier(LogisticRegression()).fit(train)

    # The audit consumes randomness (bootstrap resamples, importance
    # shuffles); identical seeds isolate the n_jobs comparison.
    serial_auditor = FACTAuditor(n_bootstrap=1000, n_jobs=1)
    parallel_auditor = FACTAuditor(n_bootstrap=1000, n_jobs=4,
                                   backend="thread")

    start = time.perf_counter()
    serial = serial_auditor.audit(
        model, test, np.random.default_rng(7), calibration=calibration
    )
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = parallel_auditor.audit(
        model, test, np.random.default_rng(7), calibration=calibration
    )
    parallel_s = time.perf_counter() - start

    print(parallel.render())
    print()
    print(f"serial audit:   {serial_s:.2f}s")
    print(f"parallel audit: {parallel_s:.2f}s (n_jobs=4)")

    same = (
        serial.accuracy.accuracy == parallel.accuracy.accuracy
        and serial.accuracy.auc == parallel.accuracy.auc
        and serial.transparency.top_features == parallel.transparency.top_features
    )
    print(f"bit-identical reports: {same}")
    if not same:
        raise SystemExit("determinism violated — this should never print")


if __name__ == "__main__":
    main()
