"""Quickstart: audit a decision model against all four FACT questions.

Generates a lending dataset with known injected bias, trains a model
that never sees the protected attribute, and shows that the FACT audit
catches the unfairness anyway — the paper's central warning in ~30 lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CreditScoringGenerator,
    FACTAuditor,
    FACTPolicy,
    LogisticRegression,
    TableClassifier,
    build_scorecard,
)
from repro.data import three_way_split


def main():
    rng = np.random.default_rng(0)

    # A lender's historical data: group-blind latent creditworthiness,
    # but 30% of qualified group-B applicants were denied (label bias)
    # and "neighborhood" encodes the group (proxy strength 0.8).
    generator = CreditScoringGenerator(label_bias=0.3, proxy_strength=0.8)
    data = generator.generate(6000, rng)
    train, calibration, test = three_way_split(data, 0.25, 0.15, rng)

    # The model is trained WITHOUT the sensitive attribute.
    model = TableClassifier(LogisticRegression()).fit(train)
    print(f"model features: {model.feature_names}\n")

    # One call, four pillars.
    report = FACTAuditor().audit(model, test, rng, calibration=calibration)
    print(report.render())
    print()
    print(build_scorecard(report).render())
    print()

    # Design-time requirements, checked mechanically (§4 of the paper).
    violations = FACTPolicy().check(report)
    print(f"policy violations: {len(violations)}")
    for violation in violations:
        print(f"  - {violation.render()}")


if __name__ == "__main__":
    main()
