"""A multi-tenant DP query server, end to end.

Registers a census table, gives three tenants separate privacy budgets,
and serves a mixed workload with repeats — showing how the answer cache
replays released answers at zero additional ε-cost, how a tenant at
budget exhaustion gets a structured rejection (never an exception), and
where it all shows up in the `repro.obs` telemetry render.

Also writes ``serve_demo.csv`` so the same table can be queried from the
command line with the committed batch::

    python -m repro serve examples/serve_queries.jsonl --data serve_demo.csv

Run:  python examples/dp_query_server.py
"""

import numpy as np

from repro import obs
from repro.data.io import write_csv
from repro.data.synth import CensusIncomeGenerator
from repro.serve import QueryRequest, QueryServer

EXPORT_PATH = "serve_run.jsonl"
CSV_PATH = "serve_demo.csv"


def main():
    rng = np.random.default_rng(0)
    table = CensusIncomeGenerator().generate(5000, rng)
    write_csv(table, CSV_PATH)

    telemetry = obs.configure(export_path=EXPORT_PATH)

    server = QueryServer(workers=4, seed=7)
    server.register_table("census", table)
    server.register_tenant("ads", epsilon_budget=0.5)
    server.register_tenant("health", epsilon_budget=1.0)
    server.register_tenant("skimper", epsilon_budget=0.05)

    mean_age = dict(kind="mean", column="age", lower=18, upper=80,
                    epsilon=0.1)
    workload = [
        QueryRequest(tenant="ads", **mean_age),
        QueryRequest(tenant="ads", kind="count", epsilon=0.05),
        # Identical query, same tenant: a free cache replay.
        QueryRequest(tenant="ads", **mean_age),
        # Identical query, *different* tenant: released answers are
        # public post-processing, so this is free for health too.
        QueryRequest(tenant="health", **mean_age),
        QueryRequest(tenant="health", kind="histogram", column="occupation",
                     bins=("clerical", "managerial", "manual", "sales",
                           "service", "technical"), epsilon=0.2),
        QueryRequest(tenant="health", kind="quantile",
                     column="hours_per_week", lower=0, upper=100, q=0.5,
                     epsilon=0.1),
        # A tiny-budget tenant replaying a cached release: still free.
        QueryRequest(tenant="skimper", **mean_age),
        # But a *fresh* release over its budget: structured rejection,
        # ε=0 spent, and the server loop never raises.
        QueryRequest(tenant="skimper", kind="mean", column="hours_per_week",
                     lower=0, upper=100, epsilon=0.1),
        QueryRequest(tenant="skimper", kind="count", epsilon=0.02),
    ]

    print("=== responses ===")
    results = server.submit_batch(workload)
    for request, result in zip(workload, results):
        value = (f"{result.value:.2f}" if isinstance(result.value, float)
                 else result.value)
        note = " (cache replay, free)" if result.cached else ""
        if result.ok:
            print(f"  {request.tenant:8s} {request.kind:9s} -> {value}"
                  f"  ε_charged={result.epsilon_charged:g}{note}")
        else:
            print(f"  {request.tenant:8s} {request.kind:9s} -> "
                  f"{result.status}: {result.detail}")
    server.close()

    print("\n=== budgets ===")
    for tenant, budget in sorted(server.stats()["tenants"].items()):
        print(f"  {tenant}: ε spent {budget['epsilon_spent']:g}, "
              f"remaining {budget['epsilon_remaining']:g}")
    cache = server.cache.stats()
    print(f"\ncache: {cache['hits']:.0f} replays / "
          f"{cache['misses']:.0f} fresh releases "
          f"(hit rate {cache['hit_rate']:.0%})")

    telemetry.flush()
    records = obs.read_telemetry(EXPORT_PATH)
    print("\n=== telemetry ===")
    print(obs.render_metrics_table(records))
    print(f"\nwrote {CSV_PATH} and {EXPORT_PATH}")
    print(f"inspect again with: python -m repro telemetry {EXPORT_PATH}")


if __name__ == "__main__":
    main()
