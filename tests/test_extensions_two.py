"""Unit tests for boosting, impossibility, ICE, local DP, and the CLI."""

import numpy as np
import pytest

from repro.confidentiality.local_dp import UnaryEncodingOracle
from repro.data.synth import RecidivismGenerator
from repro.exceptions import DataError, FairnessError
from repro.fairness.impossibility import (
    assess_impossibility,
    feasible_fairness_criteria,
    implied_false_positive_rate,
)
from repro.learn.boosting import GradientBoostingClassifier
from repro.learn.metrics import accuracy, roc_auc
from repro.transparency.ice import ice_curves


# -- gradient boosting ---------------------------------------------------------

def test_boosting_solves_xor(rng):
    X = rng.uniform(-1, 1, (1200, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(float)
    model = GradientBoostingClassifier(n_stages=60, max_depth=3).fit(
        X[:800], y[:800]
    )
    assert accuracy(y[800:], model.predict(X[800:])) > 0.95
    assert model.n_trees == 60


def test_boosting_beats_single_stage(toy_classification):
    X, y = toy_classification
    one = GradientBoostingClassifier(n_stages=1).fit(X, y)
    many = GradientBoostingClassifier(n_stages=80).fit(X, y)
    assert roc_auc(y, many.predict_proba(X)) > roc_auc(y, one.predict_proba(X))


def test_boosting_deterministic_with_subsample(toy_classification):
    X, y = toy_classification
    a = GradientBoostingClassifier(n_stages=10, subsample=0.7, seed=4)
    b = GradientBoostingClassifier(n_stages=10, subsample=0.7, seed=4)
    np.testing.assert_allclose(
        a.fit(X, y).predict_proba(X), b.fit(X, y).predict_proba(X)
    )


def test_boosting_respects_sample_weights(rng):
    X = np.linspace(-1, 1, 300).reshape(-1, 1)
    y = (X[:, 0] > 0).astype(float)
    weights = np.where(y == 0.0, 20.0, 1.0)
    weighted = GradientBoostingClassifier(n_stages=30).fit(
        X, y, sample_weight=weights
    )
    plain = GradientBoostingClassifier(n_stages=30).fit(X, y)
    assert weighted.predict(X).sum() <= plain.predict(X).sum()


def test_boosting_validation():
    with pytest.raises(DataError):
        GradientBoostingClassifier(n_stages=0)
    with pytest.raises(DataError):
        GradientBoostingClassifier(learning_rate=0.0)
    with pytest.raises(DataError):
        GradientBoostingClassifier(subsample=1.5)


# -- impossibility -------------------------------------------------------------------

def test_identity_matches_direct_computation():
    # p=0.5, PPV=0.8, FNR=0.2 -> FPR = 1 * 0.25 * 0.8 = 0.2
    assert implied_false_positive_rate(0.5, 0.8, 0.2) == pytest.approx(0.2)


def test_equal_base_rates_force_no_gap(rng):
    n = 1000
    group = np.asarray(["A"] * 500 + ["B"] * 500, dtype=object)
    y = np.concatenate([
        (rng.random(500) < 0.4), (rng.random(500) < 0.4)
    ]).astype(float)
    assessment = assess_impossibility(y, group)
    assert assessment.forced_fpr_gap < 0.05


def test_unequal_base_rates_force_gap(rng):
    gapped = RecidivismGenerator(policing_gap=1.0).generate(6000, rng)
    assessment = assess_impossibility(
        gapped["reoffended"], gapped["group"]
    )
    assert assessment.base_rate_gap > 0.05
    assert assessment.forced_fpr_gap > 0.02
    assert "forced FPR gap" in assessment.render()


def test_feasibility_table(rng):
    n = 2000
    group = np.asarray(["A"] * 1000 + ["B"] * 1000, dtype=object)
    equal = np.concatenate([
        rng.random(1000) < 0.3, rng.random(1000) < 0.3
    ]).astype(float)
    unequal = np.concatenate([
        rng.random(1000) < 0.6, rng.random(1000) < 0.3
    ]).astype(float)
    assert feasible_fairness_criteria(equal, group)[
        "calibration_and_equalized_odds"]
    assert not feasible_fairness_criteria(unequal, group)[
        "calibration_and_equalized_odds"]
    # The single criteria stay individually achievable either way.
    assert feasible_fairness_criteria(unequal, group)["calibration_alone"]


def test_impossibility_validation():
    with pytest.raises(FairnessError):
        implied_false_positive_rate(0.0, 0.8, 0.2)
    with pytest.raises(FairnessError):
        assess_impossibility(np.ones(10), np.asarray(["A"] * 5 + ["B"] * 5))


# -- ICE curves -------------------------------------------------------------------------

def test_ice_mean_is_partial_dependence(toy_classification):
    from repro.learn import LogisticRegression
    from repro.transparency import partial_dependence

    X, y = toy_classification
    model = LogisticRegression().fit(X, y)
    ice = ice_curves(model, X[:100], 0, grid_size=10)
    pd = partial_dependence(model, X[:100], 0, grid_size=10)
    np.testing.assert_allclose(ice.partial_dependence, pd.response, atol=1e-9)


def test_ice_flags_heterogeneous_effects(rng):
    # y depends on x0 * sign(x1): the average effect of x0 is ~zero, the
    # individual effects are strong and opposite.
    from repro.learn import MLPClassifier

    X = rng.uniform(-1, 1, (800, 2))
    y = (X[:, 0] * np.sign(X[:, 1]) > 0).astype(float)
    model = MLPClassifier(hidden=(16, 8), epochs=100, seed=0).fit(X, y)
    ice = ice_curves(model, X, 0, max_individuals=80)
    assert ice.heterogeneity > 0.1
    assert abs(ice.partial_dependence[-1] - ice.partial_dependence[0]) < 0.25


def test_ice_homogeneous_for_linear(toy_classification):
    from repro.learn import LogisticRegression

    X, y = toy_classification
    model = LogisticRegression().fit(X, y)
    ice = ice_curves(model, X, 2, max_individuals=50)  # dead feature
    assert ice.heterogeneity < 0.05
    assert ice.fraction_non_monotone() < 0.6


def test_ice_validation(toy_classification):
    from repro.learn import LogisticRegression

    X, y = toy_classification
    model = LogisticRegression().fit(X, y)
    with pytest.raises(DataError):
        ice_curves(model, X, 99)
    with pytest.raises(DataError):
        ice_curves(model, X, 0, grid_size=1)


# -- local DP ----------------------------------------------------------------------------

def test_unary_encoding_recovers_frequencies(rng):
    categories = ["a", "b", "c", "d"]
    truth = rng.choice(categories, size=20000, p=[0.5, 0.3, 0.15, 0.05])
    oracle = UnaryEncodingOracle(categories, epsilon=2.0)
    reports = oracle.randomize_all(truth, rng)
    estimates = oracle.estimate(reports).as_dict()
    for category, probability in zip(categories, [0.5, 0.3, 0.15, 0.05]):
        assert estimates[category] == pytest.approx(probability, abs=0.04)


def test_unary_encoding_error_shrinks_with_epsilon(rng):
    categories = ["x", "y"]
    tight = UnaryEncodingOracle(categories, epsilon=4.0)
    loose = UnaryEncodingOracle(categories, epsilon=0.5)
    assert tight.expected_error(1000) < loose.expected_error(1000)
    assert loose.expected_error(10000) < loose.expected_error(100)


def test_unary_encoding_single_report_is_noisy(rng):
    oracle = UnaryEncodingOracle(["a", "b", "c"], epsilon=1.0)
    report = oracle.randomize("a", rng)
    assert report.shape == (3,)
    assert set(np.unique(report)) <= {0.0, 1.0}


def test_unary_encoding_validation(rng):
    with pytest.raises(DataError):
        UnaryEncodingOracle(["only"], epsilon=1.0)
    with pytest.raises(DataError):
        UnaryEncodingOracle(["a", "a"], epsilon=1.0)
    oracle = UnaryEncodingOracle(["a", "b"], epsilon=1.0)
    with pytest.raises(DataError):
        oracle.randomize("z", rng)
    with pytest.raises(DataError):
        oracle.estimate(np.ones((5, 3)))


# -- CLI --------------------------------------------------------------------------------

@pytest.fixture
def credit_csv(tmp_path, rng):
    from repro.data.io import write_csv
    from repro.data.synth import CreditScoringGenerator

    path = tmp_path / "credit.csv"
    table = CreditScoringGenerator(
        label_bias=0.3, proxy_strength=0.7
    ).generate(800, rng)
    write_csv(table, path)
    return str(path)


def test_cli_audit(credit_csv, capsys):
    from repro.cli import main

    code = main(["audit", credit_csv])
    out = capsys.readouterr().out
    assert code == 0
    assert "FACT report" in out
    assert "green data science scorecard" in out


def test_cli_audit_strict_fails_on_violations(credit_csv, capsys):
    from repro.cli import main

    code = main(["audit", credit_csv, "--strict"])
    out = capsys.readouterr().out
    if "policy violations: 0" not in out:
        assert code == 1


def test_cli_datasheet(credit_csv, capsys):
    from repro.cli import main

    assert main(["datasheet", credit_csv, "--name", "demo"]) == 0
    assert "# Datasheet: demo" in capsys.readouterr().out


def test_cli_anonymize(credit_csv, tmp_path, capsys):
    from repro.cli import main
    from repro.data.io import read_csv

    output = str(tmp_path / "anon.csv")
    code = main([
        "anonymize", credit_csv, "-k", "5",
        "--quasi", "income", "--quasi", "employment_years",
        "-o", output,
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "before:" in out and "after:" in out
    released = read_csv(output)
    assert released.n_rows > 0
    from repro.confidentiality import k_anonymity_level

    assert k_anonymity_level(
        released, ["income", "employment_years"]
    ) >= 5


def test_cli_anonymize_requires_quasi(credit_csv, capsys):
    from repro.cli import main

    assert main(["anonymize", credit_csv]) == 2
    assert "--quasi" in capsys.readouterr().err


def test_cli_synthesize(credit_csv, tmp_path, capsys):
    from repro.cli import main
    from repro.data.io import read_csv

    output = str(tmp_path / "synthetic.csv")
    code = main([
        "synthesize", credit_csv, "--epsilon", "5", "--rows", "200",
        "-o", output,
    ])
    assert code == 0
    synthetic = read_csv(output)
    assert synthetic.n_rows == 200


def test_cli_audit_json(credit_csv, capsys):
    import json

    from repro.cli import main

    assert main(["audit", credit_csv, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "fairness" in payload and "accuracy" in payload
