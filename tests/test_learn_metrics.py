"""Unit tests for classification metrics."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.learn.metrics import (
    accuracy,
    brier_score,
    confusion_matrix,
    f1_score,
    log_loss,
    mean_absolute_error,
    mean_squared_error,
    precision,
    recall,
    roc_auc,
    roc_curve,
)

Y_TRUE = np.array([1, 1, 0, 0, 1, 0], dtype=float)
Y_PRED = np.array([1, 0, 0, 1, 1, 0], dtype=float)


def test_confusion_counts():
    cm = confusion_matrix(Y_TRUE, Y_PRED)
    assert (cm.tp, cm.fp, cm.tn, cm.fn) == (2, 1, 2, 1)
    assert cm.n == 6
    assert cm.accuracy == pytest.approx(4 / 6)
    assert cm.precision == pytest.approx(2 / 3)
    assert cm.recall == pytest.approx(2 / 3)
    assert cm.false_positive_rate == pytest.approx(1 / 3)
    assert cm.false_negative_rate == pytest.approx(1 / 3)
    assert cm.selection_rate == pytest.approx(0.5)


def test_scalar_metrics():
    assert accuracy(Y_TRUE, Y_PRED) == pytest.approx(4 / 6)
    assert precision(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)
    assert recall(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)
    assert f1_score(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)


def test_degenerate_precision_is_zero():
    cm = confusion_matrix(np.array([1.0, 0.0]), np.array([0.0, 0.0]))
    assert cm.precision == 0.0
    assert cm.f1 == 0.0


def test_auc_perfect_and_random():
    y = np.array([0, 0, 1, 1], dtype=float)
    assert roc_auc(y, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0
    assert roc_auc(y, np.array([0.9, 0.8, 0.2, 0.1])) == 0.0
    assert roc_auc(y, np.array([0.5, 0.5, 0.5, 0.5])) == 0.5


def test_auc_handles_ties_with_midranks():
    y = np.array([0, 1, 0, 1], dtype=float)
    scores = np.array([0.3, 0.3, 0.1, 0.9])
    # Pairs: (0.3 vs 0.3)=0.5, (0.3 vs 0.9)=1, (0.1 vs 0.3)=1, (0.1 vs 0.9)=1
    assert roc_auc(y, scores) == pytest.approx(3.5 / 4)


def test_auc_requires_both_classes():
    with pytest.raises(DataError):
        roc_auc(np.ones(4), np.linspace(0, 1, 4))


def test_roc_curve_endpoints():
    y = np.array([0, 0, 1, 1], dtype=float)
    scores = np.array([0.1, 0.4, 0.35, 0.8])
    fpr, tpr, thresholds = roc_curve(y, scores)
    assert fpr[0] == 0.0 and tpr[0] == 0.0
    assert fpr[-1] == 1.0 and tpr[-1] == 1.0
    assert np.all(np.diff(fpr) >= 0)
    assert np.all(np.diff(tpr) >= 0)
    assert thresholds[0] == np.inf


def test_log_loss_and_brier():
    y = np.array([1.0, 0.0])
    good = np.array([0.9, 0.1])
    bad = np.array([0.1, 0.9])
    assert log_loss(y, good) < log_loss(y, bad)
    assert brier_score(y, good) == pytest.approx(0.01)
    # Log loss never infinite thanks to clipping.
    assert np.isfinite(log_loss(y, np.array([1.0, 0.0])))


def test_regression_metrics():
    y = np.array([1.0, 2.0, 3.0])
    pred = np.array([1.0, 2.5, 2.0])
    assert mean_squared_error(y, pred) == pytest.approx((0 + 0.25 + 1.0) / 3)
    assert mean_absolute_error(y, pred) == pytest.approx(0.5)


def test_metric_input_validation():
    with pytest.raises(DataError):
        accuracy(np.array([1.0]), np.array([1.0, 0.0]))
    with pytest.raises(DataError):
        accuracy(np.array([]), np.array([]))
