"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.accuracy.multiple_testing import (
    benjamini_hochberg,
    bonferroni,
    holm,
)
from repro.data.synth.base import sigmoid
from repro.data.table import Table
from repro.fairness.metrics import (
    disparate_impact_ratio,
    statistical_parity_difference,
)
from repro.fairness.preprocessing import reweighing_weights
from repro.learn.metrics import accuracy, confusion_matrix, roc_auc

# -- strategies ------------------------------------------------------------------

p_values = arrays(
    np.float64, st.integers(1, 40),
    elements=st.floats(0.0, 1.0, allow_nan=False),
)

binary = st.integers(0, 1)


@st.composite
def labelled_groups(draw):
    """Aligned (y_true, y_pred, group) with both groups and both labels."""
    n = draw(st.integers(4, 60))
    y_true = np.asarray(draw(st.lists(binary, min_size=n, max_size=n)), float)
    y_pred = np.asarray(draw(st.lists(binary, min_size=n, max_size=n)), float)
    group = np.asarray(
        draw(st.lists(st.sampled_from(["A", "B"]), min_size=n, max_size=n)),
        dtype=object,
    )
    # Guarantee both groups appear.
    group[0], group[1] = "A", "B"
    return y_true, y_pred, group


# -- multiple testing invariants ----------------------------------------------------

@given(p_values)
@settings(max_examples=60, deadline=None)
def test_adjusted_p_values_dominate_raw(p):
    for procedure in (bonferroni, holm, benjamini_hochberg):
        result = procedure(p)
        assert np.all(result.adjusted >= p - 1e-12)
        assert np.all(result.adjusted <= 1.0 + 1e-12)


@given(p_values)
@settings(max_examples=60, deadline=None)
def test_corrections_are_order_equivariant(p):
    order = np.argsort(p, kind="stable")
    for procedure in (bonferroni, holm, benjamini_hochberg):
        adjusted = procedure(p).adjusted
        # Sorted raw p-values map to sorted adjusted p-values.
        assert np.all(np.diff(adjusted[order]) >= -1e-12)


@given(p_values)
@settings(max_examples=60, deadline=None)
def test_holm_rejects_at_least_bonferroni(p):
    assert holm(p).n_rejected >= bonferroni(p).n_rejected


# -- fairness invariants ----------------------------------------------------------------

@given(labelled_groups())
@settings(max_examples=60, deadline=None)
def test_fairness_metric_ranges(data):
    y_true, y_pred, group = data
    spd = statistical_parity_difference(y_pred, group)
    di = disparate_impact_ratio(y_pred, group)
    assert 0.0 <= spd <= 1.0
    assert 0.0 <= di <= 1.0


@given(labelled_groups())
@settings(max_examples=60, deadline=None)
def test_fairness_metrics_invariant_to_group_relabeling(data):
    y_true, y_pred, group = data
    swapped = np.where(group == "A", "B", "A").astype(object)
    assert statistical_parity_difference(y_pred, group) == \
        statistical_parity_difference(y_pred, swapped)
    assert disparate_impact_ratio(y_pred, group) == \
        disparate_impact_ratio(y_pred, swapped)


@given(labelled_groups())
@settings(max_examples=60, deadline=None)
def test_reweighing_makes_group_label_independent(data):
    y_true, _, group = data
    # Reweighing can only achieve independence when every (group, label)
    # cell is populated — a cell with zero mass stays at zero mass.
    for g in ("A", "B"):
        for label in (0.0, 1.0):
            assume(((group == g) & (y_true == label)).any())
    weights = reweighing_weights(y_true, group)
    assert np.all(weights > 0)
    total = weights.sum()
    for g in ("A", "B"):
        for label in (0.0, 1.0):
            mask = (group == g) & (y_true == label)
            if not mask.any():
                continue
            joint = weights[mask].sum() / total
            marginal_g = weights[group == g].sum() / total
            marginal_y = weights[y_true == label].sum() / total
            assert abs(joint - marginal_g * marginal_y) < 1e-9


# -- metric invariants ---------------------------------------------------------------

@given(labelled_groups())
@settings(max_examples=60, deadline=None)
def test_confusion_matrix_partitions(data):
    y_true, y_pred, _ = data
    cm = confusion_matrix(y_true, y_pred)
    assert cm.tp + cm.fp + cm.tn + cm.fn == len(y_true)
    assert 0.0 <= cm.accuracy <= 1.0
    assert cm.accuracy == accuracy(y_true, y_pred)


@given(st.integers(2, 50), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_auc_complement_symmetry(n, seed):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n).astype(float)
    if y.min() == y.max():
        y[0] = 1.0 - y[0]
    scores = rng.random(n)
    assert roc_auc(y, scores) + roc_auc(y, -scores) == pytest.approx(1.0)


# -- sigmoid / table invariants -----------------------------------------------------------

@given(arrays(np.float64, st.integers(1, 50),
              elements=st.floats(-700, 700, allow_nan=False)))
@settings(max_examples=60, deadline=None)
def test_sigmoid_bounded_and_monotone(z):
    out = np.asarray(sigmoid(z))
    assert np.all((out >= 0.0) & (out <= 1.0))
    order = np.argsort(z)
    assert np.all(np.diff(out[order]) >= -1e-12)


@st.composite
def small_tables(draw):
    n = draw(st.integers(1, 20))
    x = draw(st.lists(
        st.floats(-1e6, 1e6, allow_nan=False), min_size=n, max_size=n
    ))
    c = draw(st.lists(st.sampled_from(["u", "v", "w"]), min_size=n, max_size=n))
    return Table.from_dict({"x": x, "c": c})


@given(small_tables())
@settings(max_examples=60, deadline=None)
def test_table_filter_take_roundtrip(table):
    mask = np.asarray(table["x"]) >= 0
    kept = table.filter(mask)
    assert kept.n_rows == int(mask.sum())
    indices = np.flatnonzero(mask)
    assert kept == table.take(indices)


@given(small_tables())
@settings(max_examples=60, deadline=None)
def test_table_concat_length_additive(table):
    doubled = table.concat([table, table])
    assert doubled.n_rows == 2 * table.n_rows
    assert doubled.take(range(table.n_rows)) == table


@given(small_tables(), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_table_shuffle_is_permutation(table, seed):
    rng = np.random.default_rng(seed)
    shuffled = table.shuffle(rng)
    assert sorted(shuffled["x"].tolist()) == sorted(table["x"].tolist())
    assert shuffled.value_counts("c") == table.value_counts("c")
