"""Unit tests for CSV persistence."""

import numpy as np
import pytest

from repro.data.io import read_csv, read_csv_string, write_csv
from repro.data.schema import ColumnRole, ColumnType
from repro.exceptions import DataError


def test_roundtrip_preserves_schema(small_table, tmp_path):
    path = tmp_path / "table.csv"
    write_csv(small_table, path)
    loaded = read_csv(path)
    assert loaded.column_names == small_table.column_names
    assert loaded.schema["group"].role is ColumnRole.SENSITIVE
    assert loaded.schema["approved"].role is ColumnRole.TARGET
    np.testing.assert_allclose(loaded["income"], small_table["income"])
    assert loaded == small_table


def test_roundtrip_without_metadata(small_table, tmp_path):
    path = tmp_path / "plain.csv"
    write_csv(small_table, path, with_metadata=False)
    loaded = read_csv(path)
    # Without metadata all roles default to FEATURE.
    assert loaded.schema["group"].role is ColumnRole.FEATURE
    np.testing.assert_allclose(loaded["debt"], small_table["debt"])


def test_read_plain_string_infers_types():
    table = read_csv_string("a,b\n1.5,x\n2.5,y\n")
    assert table.schema["a"].ctype is ColumnType.NUMERIC
    assert table.schema["b"].ctype is ColumnType.CATEGORICAL
    assert table.n_rows == 2


def test_empty_csv_rejected():
    with pytest.raises(DataError, match="empty"):
        read_csv_string("")


def test_ragged_rows_rejected():
    with pytest.raises(DataError, match="fields"):
        read_csv_string("a,b\n1,2\n3\n")


def test_missing_numeric_becomes_nan():
    table = read_csv_string("a,b\n1,x\n,y\n")
    assert np.isnan(table["a"][1])


def test_explicit_schema_overrides(small_table, tmp_path):
    path = tmp_path / "t.csv"
    write_csv(small_table, path)
    explicit = small_table.schema
    loaded = read_csv(path, schema=explicit)
    assert loaded.schema is explicit
