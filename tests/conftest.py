"""Shared fixtures: deterministic generators and small canonical tables."""

import numpy as np
import pytest

from repro.data.schema import (
    ColumnRole,
    Schema,
    categorical,
    numeric,
)
from repro.data.table import Table
from repro.data.synth import CensusIncomeGenerator, CreditScoringGenerator


@pytest.fixture
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_table():
    """A 6-row table with every FACT role represented."""
    schema = Schema([
        numeric("income"),
        numeric("debt"),
        categorical("city", role=ColumnRole.QUASI_IDENTIFIER),
        categorical("group", role=ColumnRole.SENSITIVE),
        categorical("ssn", role=ColumnRole.IDENTIFIER),
        numeric("approved", role=ColumnRole.TARGET),
    ])
    return Table(schema, {
        "income": [10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
        "debt": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        "city": ["north", "north", "south", "south", "north", "south"],
        "group": ["A", "B", "A", "B", "A", "B"],
        "ssn": ["s1", "s2", "s3", "s4", "s5", "s6"],
        "approved": [0.0, 0.0, 1.0, 0.0, 1.0, 1.0],
    })


@pytest.fixture
def credit_tables(rng):
    """(train, test) from the biased credit generator."""
    generator = CreditScoringGenerator(label_bias=0.3, proxy_strength=0.8)
    return generator.generate_pair(1200, 600, rng)


@pytest.fixture
def census_tables(rng):
    """(train, test) from the census generator."""
    generator = CensusIncomeGenerator()
    return generator.generate_pair(1200, 600, rng)


@pytest.fixture
def toy_classification(rng):
    """A linearly separable-ish (X, y) pair for estimator tests."""
    X = rng.standard_normal((400, 4))
    weights = np.array([2.0, -1.5, 0.0, 1.0])
    logits = X @ weights
    y = (logits + 0.5 * rng.standard_normal(400) > 0).astype(np.float64)
    return X, y
