"""Tests for ``repro.relational`` — multi-table datasets and join-aware FACT.

The contract under test: relational wiring fails loudly at construction
time (dangling FKs, type mismatches, ownership cycles, integrity
violations), joins and aggregations are deterministic order-stable
kernels whose outputs are bit-identical for every ``n_jobs``/backend/
store combination, FACT roles propagate through joins (with fan-out
promoting keys to quasi-identifiers), and the proxy scan catches what a
single-table audit structurally cannot — a join re-introducing a proxy
for a sensitive attribute.
"""

import numpy as np
import pytest

from repro.data.schema import ColumnRole, Schema, categorical, numeric
from repro.data.synth import LendingRelationalGenerator
from repro.data.table import Table
from repro.engine import Executor, Plan
from repro.exceptions import (
    DataError,
    FairnessError,
    PlanError,
    SchemaError,
)
from repro.relational import (
    AddColumn,
    AddTable,
    Dataset,
    ForeignKey,
    RelSchema,
    RenameColumn,
    SchemaRegistry,
    TableSpec,
    aggregate_node,
    group_aggregate,
    inner_join,
    join_node,
    left_join,
    propagate_key_role,
    proxy_scan,
    strictest_role,
)
from repro.store import ArtifactStore, dataset_fingerprint, table_fingerprint


def users_table():
    return Table(
        Schema([
            categorical("uid", role=ColumnRole.IDENTIFIER),
            categorical("region"),
            numeric("score"),
        ]),
        {"uid": ["u1", "u2", "u3", ""],
         "region": ["eu", "us", "eu", "us"],
         "score": [1.0, 2.0, 3.0, 4.0]},
    )


def txns_table():
    return Table(
        Schema([
            categorical("tid", role=ColumnRole.IDENTIFIER),
            categorical("uid"),
            numeric("amount"),
        ]),
        {"tid": [f"t{i}" for i in range(7)],
         "uid": ["u2", "u1", "u9", "", "u2", "u1", "u2"],
         "amount": [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0]},
    )


def small_dataset():
    users = Table(
        Schema([categorical("uid", role=ColumnRole.IDENTIFIER),
                categorical("region")]),
        {"uid": ["u1", "u2"], "region": ["eu", "us"]},
    )
    txns = Table(
        Schema([categorical("tid", role=ColumnRole.IDENTIFIER),
                categorical("uid"), numeric("amount")]),
        {"tid": ["t1", "t2", "t3"], "uid": ["u1", "u2", "u1"],
         "amount": [10.0, 20.0, 30.0]},
    )
    schema = RelSchema("shop", [
        TableSpec("users", users.schema, key="uid"),
        TableSpec("txns", txns.schema, key="tid",
                  foreign_keys=(ForeignKey("uid", "users", "uid"),)),
    ])
    return Dataset(schema, {"users": users, "txns": txns})


class TestRelSchema:
    def test_dangling_fk_table_rejected(self):
        txns = txns_table()
        with pytest.raises(SchemaError, match="unknown table"):
            RelSchema("s", [
                TableSpec("txns", txns.schema,
                          foreign_keys=(ForeignKey("uid", "nope", "uid"),)),
            ])

    def test_dangling_fk_column_rejected(self):
        users, txns = users_table(), txns_table()
        with pytest.raises(SchemaError, match="does not exist"):
            RelSchema("s", [
                TableSpec("users", users.schema),
                TableSpec("txns", txns.schema,
                          foreign_keys=(ForeignKey("uid", "users", "ghost"),)),
            ])

    def test_fk_type_mismatch_rejected(self):
        users, txns = users_table(), txns_table()
        with pytest.raises(SchemaError, match="categorical.*numeric"):
            RelSchema("s", [
                TableSpec("users", users.schema),
                TableSpec("txns", txns.schema,
                          foreign_keys=(ForeignKey("uid", "users", "score"),)),
            ])

    def test_ownership_cycle_rejected(self):
        a = Schema([categorical("ka"), categorical("ref_b")])
        b = Schema([categorical("kb"), categorical("ref_a")])
        with pytest.raises(SchemaError, match="cycle"):
            RelSchema("s", [
                TableSpec("a", a, foreign_keys=(ForeignKey("ref_b", "b", "kb"),)),
                TableSpec("b", b, foreign_keys=(ForeignKey("ref_a", "a", "ka"),)),
            ])

    def test_duplicate_table_names_rejected(self):
        users = users_table()
        with pytest.raises(SchemaError, match="duplicate"):
            RelSchema("s", [TableSpec("users", users.schema),
                            TableSpec("users", users.schema)])

    def test_key_must_be_a_column(self):
        with pytest.raises(SchemaError, match="declares key"):
            TableSpec("users", users_table().schema, key="ghost")

    def test_fk_column_must_exist_in_owner(self):
        with pytest.raises(SchemaError, match="foreign key"):
            TableSpec("txns", txns_table().schema,
                      foreign_keys=(ForeignKey("ghost", "users", "uid"),))

    def test_identity_carries_version_and_migrations(self):
        schema = small_dataset().schema
        identity = schema.identity()
        assert identity["version"] == 1
        assert identity["migrations"] == []
        assert [t["name"] for t in identity["tables"]] == ["users", "txns"]

    def test_foreign_keys_between(self):
        schema = small_dataset().schema
        links = schema.foreign_keys_between("txns", "users")
        assert [fk.column for fk in links] == ["uid"]
        assert schema.foreign_keys_between("users", "txns") == []


class TestDataset:
    def test_missing_member_table_rejected(self):
        ds = small_dataset()
        with pytest.raises(SchemaError, match="missing"):
            Dataset(ds.schema, {"users": ds.table("users")})

    def test_column_mismatch_rejected(self):
        ds = small_dataset()
        wrong = ds.table("users").drop(["region"])
        with pytest.raises(SchemaError, match="declaration"):
            Dataset(ds.schema, {"users": wrong, "txns": ds.table("txns")})

    def test_duplicate_primary_key_rejected(self):
        ds = small_dataset()
        dupe = Table(ds.table("users").schema,
                     {"uid": ["u1", "u1"], "region": ["eu", "us"]})
        with pytest.raises(DataError, match="duplicate key"):
            ds.with_table("users", dupe)

    def test_missing_primary_key_rejected(self):
        ds = small_dataset()
        holed = Table(ds.table("users").schema,
                      {"uid": ["u1", ""], "region": ["eu", "us"]})
        with pytest.raises(DataError, match="missing"):
            ds.with_table("users", holed)

    def test_dangling_fk_value_rejected(self):
        ds = small_dataset()
        orphan = Table(ds.table("txns").schema,
                       {"tid": ["t1"], "uid": ["u9"], "amount": [1.0]})
        with pytest.raises(DataError, match="no match in users.uid"):
            ds.with_table("txns", orphan)

    def test_missing_fk_value_is_an_optional_link(self):
        ds = small_dataset()
        optional = Table(ds.table("txns").schema,
                         {"tid": ["t1"], "uid": [""], "amount": [1.0]})
        assert ds.with_table("txns", optional).table("txns").n_rows == 1

    def test_fingerprint_tracks_content(self):
        ds = small_dataset()
        same = small_dataset()
        assert ds.content_fingerprint() == same.content_fingerprint()
        changed = ds.with_table(
            "txns",
            Table(ds.table("txns").schema,
                  {"tid": ["t1", "t2", "t3"], "uid": ["u1", "u2", "u1"],
                   "amount": [10.0, 20.0, 31.0]}),
        )
        assert changed.content_fingerprint() != ds.content_fingerprint()
        assert ds.content_fingerprint() == dataset_fingerprint(ds)

    def test_join_follows_declared_fks_only(self):
        ds = small_dataset()
        flat = ds.join("txns", "users")
        assert list(flat.column("region")) == ["eu", "us", "eu"]
        with pytest.raises(SchemaError, match="no foreign key"):
            ds.join("users", "txns")
        with pytest.raises(DataError, match="how"):
            ds.join("txns", "users", how="outer")


class TestMigrations:
    def test_add_column_bumps_version_and_fingerprint(self):
        ds = small_dataset()
        migrated = ds.migrate(
            AddColumn("users", numeric("age"), default=30.0)
        )
        assert migrated.schema.version == 2
        assert list(migrated.table("users").column("age")) == [30.0, 30.0]
        assert migrated.schema.migrations[-1]["op"] == "add_column"
        assert migrated.content_fingerprint() != ds.content_fingerprint()

    def test_history_distinguishes_same_shape(self):
        # Two routes to the same shape must hash differently: the
        # migration log is part of the identity.
        ds = small_dataset()
        via_migration = ds.migrate(AddColumn("users", numeric("age")))
        direct_schema = RelSchema("shop", [
            TableSpec("users", via_migration.table("users").schema,
                      key="uid"),
            ds.schema.table("txns"),
        ])
        direct = Dataset(direct_schema, dict(via_migration.tables))
        assert (via_migration.content_fingerprint()
                != direct.content_fingerprint())

    def test_rename_rewrites_foreign_keys_on_both_ends(self):
        ds = small_dataset()
        migrated = ds.migrate(RenameColumn("users", "uid", "user_id"))
        assert migrated.schema.table("users").key == "user_id"
        fk = migrated.schema.table("txns").foreign_keys[0]
        assert fk.references_column == "user_id"
        # The child side renames independently.
        both = migrated.migrate(RenameColumn("txns", "uid", "user_id"))
        fk = both.schema.table("txns").foreign_keys[0]
        assert fk.column == "user_id"
        assert both.join("txns", "users").n_rows == 3

    def test_add_table(self):
        ds = small_dataset()
        audits = Table(
            Schema([categorical("aid", role=ColumnRole.IDENTIFIER),
                    categorical("uid")]),
            {"aid": ["a1"], "uid": ["u1"]},
        )
        migrated = ds.migrate(AddTable(
            TableSpec("audits", audits.schema, key="aid",
                      foreign_keys=(ForeignKey("uid", "users", "uid"),)),
            audits,
        ))
        assert "audits" in migrated.table_names
        assert migrated.schema.version == 2

    def test_migration_errors(self):
        ds = small_dataset()
        with pytest.raises(SchemaError, match="at least one"):
            ds.migrate()
        with pytest.raises(SchemaError, match="not a migration op"):
            ds.migrate(object())
        with pytest.raises(SchemaError, match="already has"):
            ds.migrate(AddColumn("users", categorical("region")))
        with pytest.raises(SchemaError, match="no table"):
            ds.migrate(AddColumn("ghost", numeric("x")))


class TestJoinKernels:
    def test_inner_join_drops_missing_and_unmatched(self):
        joined = inner_join(txns_table(), users_table(), "uid")
        assert list(joined.column("tid")) == ["t0", "t1", "t4", "t5", "t6"]
        assert list(joined.column("region")) == ["us", "eu", "us", "eu", "us"]
        assert list(joined.column("score")) == [2.0, 1.0, 2.0, 1.0, 2.0]

    def test_left_join_fills_unmatched(self):
        joined = left_join(txns_table(), users_table(), "uid")
        assert joined.n_rows == 7
        assert joined.column("region")[2] == ""       # u9: no parent row
        assert np.isnan(joined.column("score")[3])    # "": missing key

    def test_missing_keys_never_match(self):
        # users has a row keyed "" — it must not match txns' "" row.
        joined = inner_join(txns_table(), users_table(), "uid")
        assert "t3" not in list(joined.column("tid"))

    def test_fan_out_preserves_right_row_order(self):
        left = Table(Schema([categorical("k"), numeric("w")]),
                     {"k": ["z", "z"], "w": [1.0, 2.0]})
        right = Table(Schema([categorical("k"), numeric("v")]),
                      {"k": ["z", "z", "z"], "v": [7.0, 8.0, 9.0]})
        joined = inner_join(left, right, "k")
        assert list(joined.column("v")) == [7.0, 8.0, 9.0, 7.0, 8.0, 9.0]
        assert list(joined.column("w")) == [1.0, 1.0, 1.0, 2.0, 2.0, 2.0]

    def test_multi_key_join_with_nan_keys(self):
        a = Table(Schema([categorical("k"), numeric("g"), numeric("x")]),
                  {"k": ["a", "b", "a", "c", ""],
                   "g": [1.0, 1.0, np.nan, 2.0, 1.0],
                   "x": [1.0, 2.0, 3.0, 4.0, 5.0]})
        b = Table(Schema([categorical("k"), numeric("g"), numeric("y")]),
                  {"k": ["a", "a", "b", "c"],
                   "g": [1.0, 2.0, 1.0, np.nan],
                   "y": [10.0, 20.0, 30.0, 40.0]})
        joined = inner_join(a, b, ["k", "g"])
        assert list(joined.column("x")) == [1.0, 2.0]
        assert list(joined.column("y")) == [10.0, 30.0]

    def test_right_on_maps_differently_named_keys(self):
        users = users_table().rename({"uid": "user_id"})
        joined = inner_join(txns_table(), users, "uid",
                            right_on="user_id")
        assert joined.n_rows == 5
        assert "user_id" not in joined.schema

    def test_empty_sides(self):
        left = Table(Schema([categorical("k"), numeric("w")]),
                     {"k": ["z"], "w": [1.0]})
        right = Table(Schema([categorical("k"), numeric("v")]),
                      {"k": ["z"], "v": [2.0]})
        assert inner_join(left, Table.empty_like(right), "k").n_rows == 0
        assert inner_join(Table.empty_like(left), right, "k").n_rows == 0
        filled = left_join(left, Table.empty_like(right), "k")
        assert filled.n_rows == 1 and np.isnan(filled.column("v")[0])

    def test_key_type_mismatch_rejected(self):
        with pytest.raises(SchemaError, match="cannot join"):
            inner_join(txns_table(), users_table(), "uid",
                       right_on="score")

    def test_suffix_and_double_collision(self):
        left = Table(Schema([categorical("k"), numeric("v"), numeric("v_r")]),
                     {"k": ["a"], "v": [1.0], "v_r": [2.0]})
        right = Table(Schema([categorical("k"), numeric("v")]),
                      {"k": ["a"], "v": [3.0]})
        with pytest.raises(SchemaError, match="collides"):
            inner_join(left, right, "k")
        renamed = inner_join(left, right, "k", suffix="_right")
        assert renamed.column("v_right")[0] == 3.0

    def test_join_is_deterministic_across_fresh_tables(self):
        first = table_fingerprint(inner_join(txns_table(), users_table(),
                                             "uid"))
        second = table_fingerprint(inner_join(txns_table(), users_table(),
                                              "uid"))
        assert first == second


class TestRolePropagation:
    def test_strictest_role_lattice(self):
        assert strictest_role(ColumnRole.FEATURE,
                              ColumnRole.SENSITIVE) is ColumnRole.SENSITIVE
        assert strictest_role(ColumnRole.METADATA,
                              ColumnRole.FEATURE) is ColumnRole.FEATURE
        with pytest.raises(FairnessError):
            strictest_role()

    def test_fan_out_promotes_benign_key(self):
        spec = categorical("zone")
        promoted = propagate_key_role(spec, ColumnRole.FEATURE,
                                      ColumnRole.FEATURE, fan_out=True)
        assert promoted.role is ColumnRole.QUASI_IDENTIFIER
        kept = propagate_key_role(spec, ColumnRole.FEATURE,
                                  ColumnRole.FEATURE, fan_out=False)
        assert kept.role is ColumnRole.FEATURE

    def test_sensitive_survives_every_join(self):
        users = Table(
            Schema([categorical("uid", role=ColumnRole.IDENTIFIER),
                    categorical("group", role=ColumnRole.SENSITIVE)]),
            {"uid": ["u1", "u2"], "group": ["A", "B"]},
        )
        joined = inner_join(txns_table(), users, "uid")
        assert joined.schema["group"].role is ColumnRole.SENSITIVE
        assert joined.schema["uid"].role is ColumnRole.IDENTIFIER

    def test_second_target_demoted(self):
        left = Table(Schema([categorical("k"),
                             numeric("y", role=ColumnRole.TARGET)]),
                     {"k": ["a"], "y": [1.0]})
        right = Table(Schema([categorical("k"),
                              numeric("z", role=ColumnRole.TARGET)]),
                      {"k": ["a"], "z": [0.0]})
        joined = inner_join(left, right, "k")
        assert joined.schema["y"].role is ColumnRole.TARGET
        assert joined.schema["z"].role is ColumnRole.METADATA


class TestProxyScan:
    def test_scan_flags_planted_proxy(self):
        rng = np.random.default_rng(20170626)
        group = np.array(["A", "B"])[rng.integers(0, 2, 600)]
        proxy = np.where(group == "A", "north", "south")
        flip = rng.random(600) < 0.05
        proxy = np.where(flip, np.where(group == "A", "south", "north"),
                         proxy)
        table = Table(
            Schema([categorical("group", role=ColumnRole.SENSITIVE),
                    categorical("zone"), numeric("noise")]),
            {"group": group, "zone": proxy,
             "noise": rng.normal(size=600)},
        )
        report = proxy_scan(table, subject="planted")
        assert not report.passed
        assert report.flagged[0].column == "zone"
        mitigated = report.apply(table)
        assert (mitigated.schema["zone"].role
                is ColumnRole.QUASI_IDENTIFIER)
        assert "zone" not in mitigated.schema.feature_names

    def test_scan_requires_a_sensitive_column(self):
        with pytest.raises(FairnessError, match="sensitive"):
            proxy_scan(txns_table())


class TestGroupAggregate:
    def test_ops_and_missing_group_first(self):
        table = txns_table()
        agg = group_aggregate(table, "uid", {
            "n": "count", "total": ("amount", "sum"),
            "avg": ("amount", "mean"), "lo": ("amount", "min"),
            "hi": ("amount", "max"),
        })
        assert list(agg.column("uid")) == ["", "u1", "u2", "u9"]
        assert list(agg.column("n")) == [1.0, 2.0, 3.0, 1.0]
        assert list(agg.column("total")) == [40.0, 80.0, 130.0, 30.0]
        assert list(agg.column("avg")) == [40.0, 40.0, 130.0 / 3, 30.0]
        assert list(agg.column("lo")) == [40.0, 20.0, 10.0, 30.0]
        assert list(agg.column("hi")) == [40.0, 60.0, 70.0, 30.0]

    def test_multi_key_groups_sort_by_value(self):
        flat = inner_join(txns_table(), users_table(), "uid")
        agg = group_aggregate(flat, ["region", "uid"], {"n": "count"})
        assert list(agg.column("region")) == ["eu", "us"]
        assert list(agg.column("uid")) == ["u1", "u2"]
        assert list(agg.column("n")) == [2.0, 3.0]

    def test_empty_table(self):
        agg = group_aggregate(Table.empty_like(txns_table()), "uid",
                              {"n": "count"})
        assert agg.n_rows == 0

    def test_target_aggregate_becomes_feature(self):
        table = Table(
            Schema([categorical("g"),
                    numeric("approved", role=ColumnRole.TARGET)]),
            {"g": ["a", "a", "b"], "approved": [1.0, 0.0, 1.0]},
        )
        agg = group_aggregate(table, "g",
                              {"rate": ("approved", "mean")})
        assert agg.schema["rate"].role is ColumnRole.FEATURE

    def test_bad_aggregations_rejected(self):
        table = txns_table()
        with pytest.raises(DataError, match="unknown aggregate"):
            group_aggregate(table, "uid", {"x": ("amount", "median")})
        with pytest.raises(DataError, match="numeric"):
            group_aggregate(table, "uid", {"x": ("tid", "sum")})
        with pytest.raises(DataError, match="duplicate"):
            group_aggregate(table, "uid", ["count", "count"])


class TestEngineNodes:
    def plan(self):
        return Plan([
            join_node("joined", left="txns", right="users", on="uid"),
            aggregate_node("by_region", source="joined", by="region",
                           aggregations={"n": "count",
                                         "total": ("amount", "sum")}),
        ], inputs=("txns", "users"))

    def test_byte_identity_across_executors(self):
        plan = self.plan()
        inputs = {"txns": txns_table(), "users": users_table()}
        fingerprints = set()
        for n_jobs in (1, 2, 4):
            for backend in ("serial", "thread"):
                for with_store in (False, True):
                    store = (ArtifactStore.in_memory()
                             if with_store else None)
                    result = Executor(n_jobs=n_jobs, backend=backend).run(
                        plan, inputs=inputs, store=store)
                    fingerprints.add((
                        table_fingerprint(result["joined"]),
                        table_fingerprint(result["by_region"]),
                    ))
        assert len(fingerprints) == 1

    def test_store_memoizes_joins(self):
        plan = self.plan()
        inputs = {"txns": txns_table(), "users": users_table()}
        store = ArtifactStore.in_memory()
        first = Executor().run(plan, inputs=inputs, store=store)
        assert set(first.statuses.values()) == {"miss"}
        again = Executor().run(plan, inputs=inputs, store=store)
        assert set(again.statuses.values()) == {"hit"}
        assert (table_fingerprint(again["joined"])
                == table_fingerprint(first["joined"]))

    def test_reregistration_invalidates_join_artifacts(self):
        plan = self.plan()
        users, txns = users_table(), txns_table()
        store = ArtifactStore.in_memory()
        registry = SchemaRegistry(store=store)
        registry.register_table("users", users)
        registry.register_table("txns", txns)
        Executor().run(plan, inputs={"txns": txns, "users": users},
                       store=store)
        assert len(store) == 2
        fresh_users = Table(users.schema,
                            {"uid": ["u1", "u2", "u3", ""],
                             "region": ["ap", "us", "eu", "us"],
                             "score": [1.0, 2.0, 3.0, 4.0]})
        registry.register_table("users", fresh_users)
        # The join artifact is tagged with the replaced table's
        # fingerprint and is evicted; the aggregate artifact is keyed by
        # the join *output*, so it survives but becomes unreachable —
        # a fresh run must recompute everything, replaying nothing.
        assert len(store) == 1
        assert registry.version("users") == 2
        rerun = Executor().run(
            plan, inputs={"txns": txns, "users": fresh_users}, store=store)
        assert set(rerun.statuses.values()) == {"miss"}
        assert list(rerun["joined"].column("region")) == [
            "us", "ap", "us", "ap", "us"]

    def test_node_wiring_validation(self):
        with pytest.raises(PlanError, match="how"):
            join_node("j", left="a", right="b", on="k", how="outer")
        with pytest.raises(PlanError, match="differ"):
            join_node("j", left="a", right="a", on="k")


class TestRegistryAndServe:
    def test_register_dataset_publishes_members(self):
        registry = SchemaRegistry()
        names = registry.register_dataset(small_dataset())
        assert names == ["users", "txns"]
        assert registry.dataset_names == ["shop"]
        assert registry.table("users").n_rows == 2
        assert registry.dataset("shop").schema.version == 1
        with pytest.raises(DataError, match="unknown table"):
            registry.table("ghost")
        with pytest.raises(DataError, match="unknown dataset"):
            registry.dataset("ghost")

    def test_registry_input_validation(self):
        registry = SchemaRegistry()
        with pytest.raises(DataError, match="non-empty"):
            registry.register_table("", users_table())
        with pytest.raises(DataError, match="expected a Table"):
            registry.register_table("users", object())
        with pytest.raises(DataError, match="expected a Dataset"):
            registry.register_dataset(users_table())

    def test_fingerprints_tracked_only_with_store(self):
        registry = SchemaRegistry()
        registry.register_table("users", users_table())
        assert registry.fingerprint("users") is None
        stored = SchemaRegistry(store=ArtifactStore.in_memory())
        stored.register_table("users", users_table())
        assert stored.fingerprint("users") == table_fingerprint(
            users_table())

    def test_query_server_register_dataset(self):
        from repro.serve import QueryServer

        server = QueryServer(seed=0).register_dataset(small_dataset())
        assert "users" in server.planner.table_names
        assert "txns" in server.planner.table_names
        assert server.planner.table_version("users") == 1


class TestDatasetStoreRoundTrip:
    def test_codec_revalidates_on_decode(self):
        store = ArtifactStore.in_memory()
        ds = small_dataset()
        store.put("ds", ds)
        decoded = store.get("ds")
        assert isinstance(decoded, Dataset)
        assert decoded.content_fingerprint() == ds.content_fingerprint()
        assert decoded.table("txns") == ds.table("txns")


class TestLendingScenario:
    def test_join_reintroduces_redacted_proxy(self):
        from repro.fairness.metrics import disparate_impact_ratio
        from repro.learn import LogisticRegression
        from repro.learn.preprocessing import FeatureEncoder

        rng = np.random.default_rng(7)
        dataset = LendingRelationalGenerator(
            label_bias=0.4, segregation=0.9
        ).generate_dataset(900, rng)
        flat = inner_join(dataset.join("applications", "applicants"),
                          dataset.table("zones"), "zone_id")
        group = flat.column("group")

        def audit(table):
            features = table.feature_table()
            encoder = FeatureEncoder()
            X = encoder.fit_transform(features)
            model = LogisticRegression(l2=1.0).fit(
                X, table.column("approved"))
            decisions = (model.predict_proba(X) >= 0.5).astype(float)
            return disparate_impact_ratio(decisions, group)

        single = flat.select(["app_id", "applicant_id", "income",
                              "debt_ratio", "credit_history", "qualified",
                              "approved"])
        assert audit(single) >= 0.8            # redaction looks sufficient
        assert audit(flat) < 0.8               # the join broke it
        report = proxy_scan(flat, subject="lending")
        assert {f.column for f in report.flagged} >= {"zone_id",
                                                      "area_score"}
        assert audit(report.apply(flat)) >= 0.8   # quarantine restores it


class TestFactorizationCache:
    def test_cache_is_reused_and_invisible_to_fingerprints(self):
        from repro.store import object_fingerprint

        table = txns_table()
        before = object_fingerprint({"holder": table})
        first = table._factorized("uid")
        assert table._factorized("uid") is first
        # Populating the lazy cache must not change any fingerprint.
        assert object_fingerprint({"holder": table}) == before
        assert table.__content_fingerprint__() == table_fingerprint(table)

    def test_derived_tables_get_fresh_caches(self):
        table = txns_table()
        table._factorized("uid")
        taken = table.take(np.array([0, 1]))
        assert taken._factor_cache == {}
        uniques, codes, _, n_missing = taken._factorized("uid")
        assert list(uniques) == ["u1", "u2"]
        assert list(codes) == [1, 0]
        assert n_missing == 0
