"""Unit tests for hypothesis tests and multiple-testing corrections."""

import numpy as np
import pytest

from repro.accuracy.hypothesis import (
    correlation_test,
    mean_difference,
    permutation_test,
    proportion_z_test,
    two_sample_t_test,
)
from repro.accuracy.multiple_testing import (
    benjamini_hochberg,
    benjamini_yekutieli,
    bonferroni,
    correct,
    holm,
)
from repro.exceptions import DataError


def test_t_test_detects_real_difference(rng):
    a = rng.normal(0.0, 1.0, 200)
    b = rng.normal(1.0, 1.0, 200)
    result = two_sample_t_test(a, b)
    assert result.p_value < 1e-6
    assert result.significant()
    assert "mean difference" in result.detail


def test_t_test_null_is_uniform_ish(rng):
    p_values = [
        two_sample_t_test(rng.normal(0, 1, 50), rng.normal(0, 1, 50)).p_value
        for _ in range(200)
    ]
    # Under the null roughly 5% significant at alpha=0.05.
    rate = np.mean(np.asarray(p_values) < 0.05)
    assert rate < 0.12


def test_correlation_test(rng):
    x = rng.standard_normal(300)
    y = x + 0.2 * rng.standard_normal(300)
    assert correlation_test(x, y).p_value < 1e-10
    assert correlation_test(x, rng.standard_normal(300)).p_value > 0.001


def test_correlation_degenerate():
    result = correlation_test(np.ones(10), np.arange(10.0))
    assert result.p_value == 1.0


def test_proportion_z_test():
    strong = proportion_z_test(80, 100, 40, 100)
    assert strong.p_value < 1e-6
    null = proportion_z_test(50, 100, 50, 100)
    assert null.p_value == 1.0
    with pytest.raises(DataError):
        proportion_z_test(5, 0, 1, 10)
    with pytest.raises(DataError):
        proportion_z_test(11, 10, 1, 10)


def test_proportion_degenerate_pooled():
    result = proportion_z_test(0, 10, 0, 10)
    assert result.p_value == 1.0


def test_permutation_test_matches_t_test(rng):
    a = rng.normal(0.0, 1.0, 60)
    b = rng.normal(0.8, 1.0, 60)
    perm = permutation_test(a, b, mean_difference, rng, n_permutations=500)
    assert perm.p_value < 0.05
    assert perm.statistic == pytest.approx(a.mean() - b.mean())


def test_permutation_p_value_never_zero(rng):
    a = np.zeros(20)
    b = np.ones(20)
    result = permutation_test(a, b, mean_difference, rng, n_permutations=99)
    assert result.p_value >= 1.0 / 100.0


# -- corrections ----------------------------------------------------------------

P_VALUES = np.array([0.001, 0.008, 0.039, 0.041, 0.20, 0.9])


def test_bonferroni():
    result = bonferroni(P_VALUES, alpha=0.05)
    np.testing.assert_allclose(
        result.adjusted, np.minimum(P_VALUES * 6, 1.0)
    )
    assert result.n_rejected == 2


def test_holm_uniformly_no_worse_than_bonferroni():
    holm_result = holm(P_VALUES, alpha=0.05)
    bonf_result = bonferroni(P_VALUES, alpha=0.05)
    assert np.all(holm_result.adjusted <= bonf_result.adjusted + 1e-12)
    assert holm_result.n_rejected >= bonf_result.n_rejected


def test_holm_adjusted_monotone_in_sorted_order():
    result = holm(P_VALUES)
    order = np.argsort(P_VALUES)
    assert np.all(np.diff(result.adjusted[order]) >= -1e-12)


def test_benjamini_hochberg_known_example():
    # Step-up: largest k with p_(k) <= k/m * q is k=2 here
    # (0.039 > 3/6 * 0.05), so exactly the two smallest reject.
    result = benjamini_hochberg(P_VALUES, alpha=0.05)
    assert result.reject.tolist() == [True, True, False, False, False, False]
    np.testing.assert_allclose(result.adjusted[:2], [0.006, 0.024])


def test_by_more_conservative_than_bh():
    bh = benjamini_hochberg(P_VALUES)
    by = benjamini_yekutieli(P_VALUES)
    assert np.all(by.adjusted >= bh.adjusted - 1e-12)
    assert by.n_rejected <= bh.n_rejected


def test_corrections_preserve_order_invariance(rng):
    shuffled_index = rng.permutation(len(P_VALUES))
    original = holm(P_VALUES).adjusted
    shuffled = holm(P_VALUES[shuffled_index]).adjusted
    np.testing.assert_allclose(original[shuffled_index], shuffled)


def test_correct_dispatch():
    assert correct(P_VALUES, "none").n_rejected == 4
    assert correct(P_VALUES, "bonferroni").n_rejected == 2
    with pytest.raises(DataError):
        correct(P_VALUES, "magic")


def test_correction_validation():
    with pytest.raises(DataError):
        bonferroni(np.array([1.5]))
    with pytest.raises(DataError):
        bonferroni(np.array([]))


def test_adjusted_p_values_capped_at_one():
    result = bonferroni(np.array([0.5, 0.9]))
    assert np.all(result.adjusted <= 1.0)
