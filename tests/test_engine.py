"""Tests for ``repro.engine`` — the dataflow-plan runtime.

The contract under test is the one every runner now leans on: a plan's
results are *bit-identical* for every ``n_jobs``/backend/store
combination, malformed wiring fails loudly at construction time, and
caching/observability/provenance all flow through the single executor
code path.
"""

import numpy as np
import pytest

from repro import obs
from repro.core import FACTAuditor
from repro.data.synth import CreditScoringGenerator
from repro.engine import Executor, Node, Plan, seed_identity
from repro.exceptions import DataError, PlanError
from repro.learn.linear import LogisticRegression
from repro.learn.table_model import TableClassifier
from repro.pipeline import ProvenanceGraph
from repro.store import ArtifactStore


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.reset()
    yield
    obs.reset()


def _merge(inputs, rng):
    return np.concatenate([inputs["left"], inputs["right"]])


def _make_plan(scale=1.0):
    """base -> (left, right) -> merge; left/right draw spawned noise."""

    def left(inputs, rng):
        return inputs["base"] * scale + rng.standard_normal(
            inputs["base"].shape
        )

    def right(inputs, rng):
        return inputs["base"] - rng.standard_normal(inputs["base"].shape)

    return Plan(
        [
            Node("left", left, inputs=("base",), rng="spawn",
                 params={"scale": scale}),
            Node("right", right, inputs=("base",), rng="spawn"),
            Node("merge", _merge, inputs=("left", "right")),
        ],
        inputs=("base",),
    )


BASE = np.arange(16, dtype=np.float64)


# -- plan validation ---------------------------------------------------------


def test_plan_rejects_duplicate_node_name():
    with pytest.raises(PlanError, match="duplicate node name 'a'"):
        Plan([Node("a", _merge), Node("a", _merge)])


def test_plan_rejects_unknown_dependency():
    with pytest.raises(PlanError, match="consumes 'ghost'"):
        Plan([Node("a", _merge, inputs=("ghost",))])


def test_plan_rejects_cycle():
    with pytest.raises(PlanError, match="cycle through: a, b"):
        Plan([
            Node("a", _merge, inputs=("b",)),
            Node("b", _merge, inputs=("a",)),
        ])


def test_plan_rejects_empty_and_non_node():
    with pytest.raises(PlanError, match="at least one node"):
        Plan([])
    with pytest.raises(PlanError, match="built from Node objects"):
        Plan(["not a node"])


def test_plan_rejects_input_name_clash():
    with pytest.raises(PlanError, match="collide"):
        Plan([Node("table", _merge)], inputs=("table",))


def test_node_rejects_bad_rng_mode_and_conflicting_identity():
    with pytest.raises(PlanError, match="rng must be one of"):
        Node("a", _merge, rng="fork")
    with pytest.raises(PlanError, match="key_parts or params, not both"):
        Node("a", _merge, params={"x": 1}, key_parts={"x": 1})


def test_plan_levels_follow_dependencies():
    plan = _make_plan()
    levels = plan.levels()
    assert [[n.name for n in level] for level in levels] == [
        ["left", "right"], ["merge"],
    ]
    assert [n.name for n in plan.nodes] == ["left", "right", "merge"]
    assert [n.name for n in plan.sinks] == ["merge"]
    assert "left" in plan and "ghost" not in plan
    assert len(plan) == 3
    assert "merge <- left, right" in plan.describe()


def test_plan_fingerprint_tracks_structure_not_params():
    assert _make_plan(1.0).fingerprint() == _make_plan(2.0).fingerprint()
    other = Plan([Node("solo", _merge)])
    assert other.fingerprint() != _make_plan().fingerprint()


# -- executor input validation ----------------------------------------------


def test_executor_validates_supplied_inputs():
    executor = Executor()
    with pytest.raises(PlanError, match="inputs not supplied"):
        executor.run(_make_plan(), {}, rng=np.random.default_rng(0))
    with pytest.raises(PlanError, match="unknown plan inputs"):
        executor.run(
            _make_plan(), {"base": BASE, "extra": 1},
            rng=np.random.default_rng(0),
        )


def test_spawn_rng_requires_generator():
    with pytest.raises(PlanError, match="rng='spawn'"):
        Executor().run(_make_plan(), {"base": BASE})


def test_plan_result_output_requires_single_sink():
    plan = Plan([Node("a", lambda i, r: 1), Node("b", lambda i, r: 2)])
    result = Executor().run(plan)
    assert result["a"] == 1 and result["b"] == 2
    assert "a" in result and "missing" not in result
    with pytest.raises(PlanError, match="2 sink nodes"):
        result.output
    with pytest.raises(PlanError, match="no result named"):
        result["missing"]


# -- determinism --------------------------------------------------------------


def test_results_byte_identical_across_n_jobs_backends_and_store():
    baseline = Executor(n_jobs=1, backend="serial").run(
        _make_plan(), {"base": BASE}, rng=np.random.default_rng(7)
    )
    reference = baseline.output.tobytes()
    for n_jobs in (1, 2, 4):
        for backend in ("serial", "thread"):
            for store in (None, ArtifactStore()):
                result = Executor(n_jobs=n_jobs, backend=backend).run(
                    _make_plan(), {"base": BASE},
                    rng=np.random.default_rng(7), store=store,
                )
                assert result.output.tobytes() == reference, (
                    f"n_jobs={n_jobs} backend={backend} "
                    f"store={'on' if store else 'off'}"
                )


def test_spawn_streams_are_isolated_between_nodes():
    # Changing one node's parameters must not shift its sibling's
    # stream: seeds are assigned positionally in plan order.
    base_run = Executor().run(
        _make_plan(1.0), {"base": BASE}, rng=np.random.default_rng(3)
    )
    scaled_run = Executor().run(
        _make_plan(5.0), {"base": BASE}, rng=np.random.default_rng(3)
    )
    assert (scaled_run["right"].tobytes() == base_run["right"].tobytes())
    assert (scaled_run["left"].tobytes() != base_run["left"].tobytes())


def test_plan_without_spawn_nodes_leaves_rng_untouched():
    plan = Plan([Node("a", lambda i, r: 42)])
    rng = np.random.default_rng(11)
    Executor().run(plan, rng=rng)
    untouched = np.random.default_rng(11)
    assert rng.standard_normal() == untouched.standard_normal()


def test_seed_identity_pins_the_child_stream():
    rng_a, rng_b = np.random.default_rng(1), np.random.default_rng(1)
    seed_a = rng_a.bit_generator.seed_seq.spawn(1)[0]
    seed_b = rng_b.bit_generator.seed_seq.spawn(1)[0]
    assert seed_identity(seed_a) == seed_identity(seed_b)
    other = np.random.default_rng(2).bit_generator.seed_seq.spawn(1)[0]
    assert seed_identity(other) != seed_identity(seed_a)


# -- memoisation --------------------------------------------------------------


def test_incremental_recompute_through_store():
    store = ArtifactStore()
    rng = lambda: np.random.default_rng(7)  # noqa: E731

    cold = Executor().run(_make_plan(), {"base": BASE}, rng=rng(),
                          store=store)
    assert cold.statuses == {
        "left": "miss", "right": "miss", "merge": "miss",
    }
    warm = Executor().run(_make_plan(), {"base": BASE}, rng=rng(),
                          store=store)
    assert warm.statuses == {
        "left": "hit", "right": "hit", "merge": "hit",
    }
    assert warm.output.tobytes() == cold.output.tobytes()

    # One parameter changed: that node misses, its sibling replays, and
    # the downstream consumer recomputes because its input changed.
    changed = Executor().run(_make_plan(2.0), {"base": BASE}, rng=rng(),
                             store=store)
    assert changed.statuses == {
        "left": "miss", "right": "hit", "merge": "miss",
    }


def test_uncacheable_node_bypasses_the_store():
    store = ArtifactStore()
    plan = Plan([Node("noisy", lambda i, r: 99, cacheable=False)])
    for _ in range(2):
        result = Executor().run(plan, store=store)
        assert result.statuses == {"noisy": "uncacheable"}
    assert len(store) == 0


def test_lazy_key_params_never_evaluated_without_store():
    def poisoned_params():
        raise AssertionError("key params evaluated without a store")

    plan = Plan([Node("a", lambda i, r: 1, params=poisoned_params)])
    assert Executor().run(plan).output == 1
    with pytest.raises(AssertionError, match="evaluated without"):
        Executor().run(plan, store=ArtifactStore())


def test_key_parts_override_is_exact():
    from repro.store import fingerprint

    node = Node("q", key_parts={"table": "t", "epsilon": 1.0})
    assert node.key() == fingerprint(table="t", epsilon=1.0)


def test_representation_only_node_cannot_run():
    with pytest.raises(PlanError, match="representation-only"):
        Executor().run(Plan([Node("q", None)]))


# -- error propagation --------------------------------------------------------


def _boom(inputs, rng):
    raise DataError("section exploded")


def test_node_errors_propagate_unwrapped_inline_and_pooled():
    plan = Plan([
        Node("ok", lambda i, r: 1, cacheable=False),
        Node("bad", _boom, cacheable=False),
    ])
    with pytest.raises(DataError, match="section exploded"):
        Executor(n_jobs=1, backend="serial").run(plan)
    with pytest.raises(DataError, match="section exploded"):
        Executor(n_jobs=2, backend="thread").run(plan)


# -- observability ------------------------------------------------------------


def test_node_spans_carry_cache_attribute():
    telemetry = obs.configure()
    store = ArtifactStore()
    for _ in range(2):
        Executor(name="engine").run(
            _make_plan(), {"base": BASE},
            rng=np.random.default_rng(7), store=store,
        )
    spans = [r for r in telemetry.to_dicts() if r.get("record") == "span"]
    by_name = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(
            span["attributes"].get("cache")
        )
    assert by_name["engine:left"] == ["miss", "hit"]
    assert by_name["engine:right"] == ["miss", "hit"]
    assert by_name["engine:merge"] == ["miss", "hit"]

    summary = obs.render_cache_summary(telemetry.to_dicts())
    assert "cache outcomes:" in summary
    assert "engine:merge" in summary


def test_cache_summary_empty_for_pre_engine_telemetry():
    telemetry = obs.configure()
    with telemetry.tracer.span("plain"):
        pass
    assert obs.render_cache_summary(telemetry.to_dicts()) == ""


def test_observe_false_silences_node_spans():
    telemetry = obs.configure()
    Executor(observe=False).run(Plan([Node("quiet", lambda i, r: 1)]))
    assert telemetry.tracer.spans == []


def test_annotate_adds_result_derived_attributes():
    telemetry = obs.configure()
    plan = Plan([
        Node("sized", lambda i, r: [1, 2, 3],
             annotate=lambda value, inputs: {"n_items": len(value)}),
    ])
    Executor(name="engine").run(plan)
    (span,) = telemetry.tracer.spans
    assert span.attributes["n_items"] == 3
    assert span.attributes["cache"] == "uncacheable"


# -- provenance ---------------------------------------------------------------


def test_executor_records_plan_lineage():
    graph = ProvenanceGraph()
    Executor().run(
        _make_plan(), {"base": BASE},
        rng=np.random.default_rng(5), provenance=graph,
    )
    assert graph.n_steps == 3            # one step per node
    assert graph.n_artifacts == 4        # plan input + three outputs
    nxg = graph.to_networkx()
    names = [data["node"].name for _, data in nxg.nodes(data=True)
             if data["bipartite"] == "step"]
    assert names == ["left", "right", "merge"]


# -- the auditor's pillar plan (RNG stream isolation regression) -------------


@pytest.fixture(scope="module")
def audit_subject():
    rng = np.random.default_rng(404)
    generator = CreditScoringGenerator(label_bias=0.3, proxy_strength=0.8)
    train, test = generator.generate_pair(900, 400, rng)
    model = TableClassifier(LogisticRegression()).fit(train)
    return model, test


def _audit(audit_subject, *, store=None, n_jobs=1, backend="serial", **kw):
    model, test = audit_subject
    auditor = FACTAuditor(n_bootstrap=40, n_jobs=n_jobs, backend=backend,
                          store=store, **kw)
    return auditor.audit(model, test, np.random.default_rng(11))


def test_audit_plan_has_four_concurrent_sections(audit_subject):
    model, test = audit_subject
    plan = FACTAuditor().build_plan(model, test)
    assert len(plan.levels()) == 1
    assert sorted(node.name for node in plan.nodes) == [
        "accuracy", "confidentiality", "fairness", "transparency",
    ]
    assert plan.node("accuracy").rng == "spawn"
    assert plan.node("transparency").rng == "spawn"


def test_audit_identical_with_and_without_store(audit_subject):
    bare = _audit(audit_subject)
    stored = _audit(audit_subject, store=ArtifactStore())
    assert bare.fingerprint() == stored.fingerprint()


def test_audit_byte_identical_across_n_jobs_and_backends(audit_subject):
    reference = _audit(audit_subject).fingerprint()
    for n_jobs, backend in ((2, "thread"), (4, "thread"), (2, "serial")):
        report = _audit(audit_subject, n_jobs=n_jobs, backend=backend)
        assert report.fingerprint() == reference, (
            f"n_jobs={n_jobs} backend={backend}"
        )


def test_audit_sections_isolated_from_each_other(audit_subject):
    # Deepening the surrogate must change only the transparency pillar:
    # the other sections' spawned streams and results stay bit-for-bit.
    base = _audit(audit_subject).to_dict()
    deeper = _audit(audit_subject, surrogate_depth=6).to_dict()
    assert deeper["fairness"] == base["fairness"]
    assert deeper["accuracy"] == base["accuracy"]
    assert deeper["confidentiality"] == base["confidentiality"]
