"""Unit tests for DP mechanisms, the accountant, and budgeted queries."""

import threading

import numpy as np
import pytest

from repro.confidentiality.accountant import (
    AdvancedAccountant,
    PrivacyAccountant,
    advanced_composition_epsilon,
    max_queries_advanced,
    max_queries_basic,
)
from repro.confidentiality.mechanisms import (
    exponential_mechanism,
    gaussian_mechanism,
    gaussian_sigma,
    laplace_mechanism,
    randomized_response,
    randomized_response_estimate,
)
from repro.confidentiality.queries import (
    dp_count,
    dp_histogram,
    dp_mean,
    dp_quantile,
    dp_sum,
)
from repro.exceptions import DataError, PrivacyBudgetError


# -- mechanisms -----------------------------------------------------------------

def test_laplace_noise_scales_with_epsilon(rng):
    tight = [laplace_mechanism(0.0, 1.0, 10.0, rng) for _ in range(2000)]
    loose = [laplace_mechanism(0.0, 1.0, 0.1, rng) for _ in range(2000)]
    assert np.std(tight) < np.std(loose)
    # Laplace(b) has std b*sqrt(2).
    assert np.std(tight) == pytest.approx(np.sqrt(2) / 10.0, rel=0.2)


def test_laplace_validation(rng):
    with pytest.raises(DataError):
        laplace_mechanism(0.0, 0.0, 1.0, rng)
    with pytest.raises(DataError):
        laplace_mechanism(0.0, 1.0, -1.0, rng)


def test_gaussian_sigma_formula():
    sigma = gaussian_sigma(1.0, 1.0, 1e-5)
    assert sigma == pytest.approx(np.sqrt(2 * np.log(1.25e5)), rel=1e-9)
    with pytest.raises(DataError):
        gaussian_sigma(1.0, 1.0, 2.0)


def test_gaussian_mechanism_unbiased(rng):
    draws = [gaussian_mechanism(5.0, 1.0, 1.0, 1e-5, rng) for _ in range(3000)]
    assert np.mean(draws) == pytest.approx(5.0, abs=0.3)


def test_exponential_mechanism_prefers_high_utility(rng):
    candidates = ["bad", "ok", "best"]
    utilities = [0.0, 5.0, 10.0]
    picks = [
        exponential_mechanism(candidates, utilities, 1.0, 2.0, rng)
        for _ in range(300)
    ]
    assert picks.count("best") > picks.count("bad")
    assert picks.count("best") > 150


def test_exponential_mechanism_uniform_at_tiny_epsilon(rng):
    candidates = [0, 1]
    picks = [
        exponential_mechanism(candidates, [0.0, 100.0], 1.0, 1e-6, rng)
        for _ in range(400)
    ]
    assert 100 < picks.count(0) < 300  # close to uniform


def test_randomized_response_debiasing(rng):
    truth = (rng.random(20000) < 0.3).astype(float)
    noisy = randomized_response(truth, 1.0, rng)
    # Raw noisy rate is biased toward 0.5...
    assert abs(noisy.mean() - 0.3) > 0.05
    # ...the debiased estimate is not.
    estimate = randomized_response_estimate(noisy, 1.0)
    assert estimate == pytest.approx(0.3, abs=0.03)


def test_randomized_response_validation(rng):
    with pytest.raises(DataError):
        randomized_response(np.array([0.5]), 1.0, rng)
    with pytest.raises(DataError):
        randomized_response_estimate(np.array([]), 1.0)


# -- accountant ------------------------------------------------------------------

def test_accountant_tracks_and_blocks():
    accountant = PrivacyAccountant(1.0)
    accountant.spend(0.4, label="q1")
    accountant.spend(0.6, label="q2")
    assert accountant.epsilon_spent == pytest.approx(1.0)
    assert accountant.epsilon_remaining == pytest.approx(0.0)
    with pytest.raises(PrivacyBudgetError):
        accountant.spend(0.01)
    assert len(accountant.ledger) == 2
    assert "q1" in accountant.render_ledger()


def test_accountant_delta_budget():
    accountant = PrivacyAccountant(10.0, delta_budget=1e-5)
    accountant.spend(1.0, delta=1e-5)
    with pytest.raises(PrivacyBudgetError):
        accountant.spend(1.0, delta=1e-5)


def test_accountant_validation():
    with pytest.raises(DataError):
        PrivacyAccountant(0.0)
    accountant = PrivacyAccountant(1.0)
    with pytest.raises(DataError):
        accountant.spend(0.0)


def test_advanced_composition_beats_basic_for_small_queries():
    # Many small queries: advanced composition affords strictly more.
    advanced = max_queries_advanced(1.0, 0.01, 1e-6)
    basic = max_queries_basic(1.0, 0.01)
    assert advanced > basic


def test_advanced_composition_epsilon_monotone():
    e1 = advanced_composition_epsilon(0.1, 10, 1e-6)
    e2 = advanced_composition_epsilon(0.1, 20, 1e-6)
    assert e2 > e1
    with pytest.raises(DataError):
        advanced_composition_epsilon(0.1, 0, 1e-6)


def test_advanced_accountant_sqrt_growth():
    accountant = AdvancedAccountant(1.0, per_query_epsilon=0.01,
                                    delta_slack=1e-6)
    count = 0
    while accountant.can_afford(0.01):
        accountant.spend(0.01)
        count += 1
        assert count < 10000
    assert count == max_queries_advanced(1.0, 0.01, 1e-6)
    assert count > max_queries_basic(1.0, 0.01)
    with pytest.raises(DataError):
        accountant.can_afford(0.5)


def test_accountant_thread_safe_spend():
    # 16 threads each hammering 50 spends of 0.01 against a budget of 1.0:
    # exactly 100 may land, no matter the interleaving.
    accountant = PrivacyAccountant(1.0)
    successes = []
    barrier = threading.Barrier(16)

    def hammer():
        barrier.wait()  # maximise contention
        for _ in range(50):
            try:
                accountant.spend(0.01, label="hammer")
                successes.append(1)
            except PrivacyBudgetError:
                pass

    threads = [threading.Thread(target=hammer) for _ in range(16)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(successes) == 100
    assert len(accountant.ledger) == 100
    assert accountant.epsilon_spent == pytest.approx(1.0)
    assert accountant.epsilon_spent <= accountant.epsilon_budget + 1e-9


def test_accountant_remaining_and_can_spend_basic():
    accountant = PrivacyAccountant(1.0)
    assert accountant.remaining() == pytest.approx(1.0)
    assert accountant.can_spend(1.0)
    assert not accountant.can_spend(1.1)
    accountant.spend(0.7)
    assert accountant.remaining() == pytest.approx(0.3)
    assert accountant.can_spend(0.3)
    assert not accountant.can_spend(0.31)
    # δ is checked too.
    assert not accountant.can_spend(0.1, delta=1e-6)


def test_accountant_remaining_and_can_spend_advanced():
    accountant = AdvancedAccountant(1.0, per_query_epsilon=0.01,
                                    delta_slack=1e-6)
    assert accountant.remaining() == pytest.approx(1.0)
    assert accountant.can_spend(0.01)
    # A mismatched per-query ε answers False instead of raising...
    assert not accountant.can_spend(0.5)
    # ...while can_afford keeps its raising contract.
    with pytest.raises(DataError):
        accountant.can_afford(0.5)
    while accountant.can_spend(0.01):
        accountant.spend(0.01)
    # remaining() reflects the advanced-composition effective total.
    assert 0.0 <= accountant.remaining() < 1.0
    assert not accountant.can_spend(0.01)


# -- queries ----------------------------------------------------------------------

def test_dp_count_accuracy_improves_with_epsilon(rng):
    errors = {}
    for epsilon in (0.1, 10.0):
        accountant = PrivacyAccountant(10_000.0)
        draws = [
            abs(dp_count(500, epsilon, accountant, rng) - 500)
            for _ in range(200)
        ]
        errors[epsilon] = np.mean(draws)
    assert errors[10.0] < errors[0.1]


def test_dp_count_non_negative(rng):
    accountant = PrivacyAccountant(1000.0)
    values = [dp_count(0, 0.1, accountant, rng) for _ in range(100)]
    assert min(values) >= 0.0


def test_dp_mean_within_bounds(rng):
    accountant = PrivacyAccountant(1000.0)
    values = rng.normal(50.0, 5.0, 500)
    for _ in range(50):
        estimate = dp_mean(values, 0.0, 100.0, 1.0, accountant, rng)
        assert 0.0 <= estimate <= 100.0


def test_dp_mean_charges_full_epsilon(rng):
    accountant = PrivacyAccountant(1.0)
    dp_mean(np.ones(100), 0.0, 2.0, 1.0, accountant, rng)
    assert accountant.epsilon_spent == pytest.approx(1.0)
    assert len(accountant.ledger) == 2  # sum + count


def test_dp_sum_clips_outliers(rng):
    accountant = PrivacyAccountant(1000.0)
    values = np.array([1.0] * 99 + [10**9])
    draws = [
        dp_sum(values, 0.0, 2.0, 5.0, accountant, rng) for _ in range(50)
    ]
    # The outlier contributes at most the clip bound of 2.
    assert np.mean(draws) == pytest.approx(101.0, abs=2.0)


def test_dp_histogram_parallel_composition(rng):
    accountant = PrivacyAccountant(1.0)
    values = np.array(["a"] * 60 + ["b"] * 40, dtype=object)
    histogram = dp_histogram(values, ["a", "b"], 1.0, accountant, rng)
    # Whole histogram costs one epsilon, not one per bin.
    assert accountant.epsilon_spent == pytest.approx(1.0)
    assert histogram["a"] == pytest.approx(60, abs=10)
    assert histogram["b"] == pytest.approx(40, abs=10)
    with pytest.raises(DataError):
        dp_histogram(values, [], 0.1, PrivacyAccountant(1.0), rng)


def test_dp_quantile_close_to_truth(rng):
    accountant = PrivacyAccountant(1000.0)
    values = rng.normal(50.0, 10.0, 2000)
    estimates = [
        dp_quantile(values, 0.5, 0.0, 100.0, 2.0, accountant, rng)
        for _ in range(20)
    ]
    assert np.median(estimates) == pytest.approx(np.median(values), abs=5.0)
    with pytest.raises(DataError):
        dp_quantile(values, 1.5, 0.0, 100.0, 1.0, accountant, rng)


@pytest.mark.parametrize("epsilon", [0.0, -0.5])
def test_queries_reject_nonpositive_epsilon_uniformly(rng, epsilon):
    # Every dp_* entry point refuses ε <= 0 with the same message, before
    # any budget is charged or any data is touched.
    accountant = PrivacyAccountant(1.0)
    values = np.array([1.0, 2.0, 3.0])
    calls = [
        lambda: dp_count(3, epsilon, accountant, rng),
        lambda: dp_sum(values, 0.0, 5.0, epsilon, accountant, rng),
        lambda: dp_mean(values, 0.0, 5.0, epsilon, accountant, rng),
        lambda: dp_quantile(values, 0.5, 0.0, 5.0, epsilon, accountant, rng),
        lambda: dp_histogram(np.array(["a", "b"], dtype=object), ["a", "b"],
                             epsilon, accountant, rng),
    ]
    for call in calls:
        with pytest.raises(DataError, match="epsilon must be positive"):
            call()
    assert accountant.epsilon_spent == 0.0
    assert len(accountant.ledger) == 0


def test_queries_refuse_over_budget(rng):
    accountant = PrivacyAccountant(0.5)
    with pytest.raises(PrivacyBudgetError):
        dp_count(10, 1.0, accountant, rng)
    # Failed spends leave the ledger untouched.
    assert accountant.epsilon_spent == 0.0
