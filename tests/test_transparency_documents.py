"""Unit tests for model cards and datasheets."""

import pytest

from repro.learn import LogisticRegression, TableClassifier
from repro.transparency.datasheet import build_datasheet
from repro.transparency.model_card import build_model_card


def test_model_card_contents(credit_tables, rng):
    train, test = credit_tables
    model = TableClassifier(LogisticRegression()).fit(train)
    card = build_model_card(
        model, train, test, "credit-lr", "loan pre-screening", rng,
        limitations=["synthetic data only"],
        prohibited_uses=["employment decisions"],
    )
    assert card.model_type == "LogisticRegression"
    assert card.training_rows == train.n_rows
    assert card.fairness is not None
    text = card.render()
    assert "# Model card: credit-lr" in text
    assert "accuracy" in text
    assert "[" in card.metrics["accuracy"]  # interval present
    assert "synthetic data only" in text
    assert "Prohibited uses" in text
    assert "Fairness" in text


def test_model_card_without_sensitive(rng):
    from repro.data.synth import CreditScoringGenerator
    from repro.data.schema import ColumnRole

    generator = CreditScoringGenerator()
    train = generator.generate(400, rng)
    test = generator.generate(200, rng)
    train = train.with_role("group", ColumnRole.METADATA)
    test = test.with_role("group", ColumnRole.METADATA)
    model = TableClassifier(LogisticRegression()).fit(train)
    card = build_model_card(model, train, test, "m", "demo", rng)
    assert card.fairness is None
    assert "Fairness" not in card.render()


def test_datasheet_contents(census_tables):
    train, _ = census_tables
    sheet = build_datasheet(
        train, "census", "synthetic generator v1",
        known_biases=["none injected"],
        collection_notes=["drawn with seed 12345"],
    )
    assert sheet.n_rows == train.n_rows
    assert sheet.risk is not None  # census has quasi-identifiers
    text = sheet.render()
    assert "# Datasheet: census" in text
    assert "role=sensitive" in text
    assert "Disclosure risk" in text
    assert "none injected" in text


def test_datasheet_without_quasi_identifiers():
    from repro.data.table import Table

    table = Table.from_dict({"x": [1.0, 2.0]})
    sheet = build_datasheet(table, "plain", "unit test")
    assert sheet.risk is None
    assert "Disclosure risk" not in sheet.render()
