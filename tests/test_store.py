"""The artifact store: canonical fingerprints, exact replay, incremental audits.

The contracts under test are the ones :mod:`repro.store` advertises:

* ``fingerprint(**parts)`` is the planner's historical ``_fingerprint``
  promoted — digests are pinned so a canonicalisation change cannot slip
  through silently;
* stored values replay **bit-identically** or not at all, with bounded
  LRU backends where corruption is a counted miss, never a crash;
* ``memoize`` keeps the shared rng's stream continuous across hits, so a
  warm FACT re-audit recomputes only invalidated sections and still
  renders byte-identically — for any ``n_jobs`` and backend.
"""

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.accuracy.bootstrap import IntervalEstimate, bootstrap_ci
from repro.core.auditor import FACTAuditor
from repro.core.report import FACTReport
from repro.core.scorecard import GreenScorecard, build_scorecard
from repro.data.synth import CreditScoringGenerator
from repro.exceptions import DataError
from repro.fairness.report import FairnessReport, audit_model
from repro.learn.linear import LogisticRegression
from repro.learn.table_model import TableClassifier
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.stage import (
    CleanStage,
    DecideStage,
    FunctionStage,
    PredictStage,
    RedactStage,
    TrainStage,
)
from repro.serve.planner import QueryPlanner, QueryRequest, _fingerprint
from repro.store import (
    Artifact,
    ArtifactStore,
    JsonDirBackend,
    MemoryBackend,
    STORE_ENV,
    array_fingerprint,
    canonical,
    code_fingerprint,
    fingerprint,
    object_fingerprint,
    resolve_store,
    table_fingerprint,
)
from repro.store import codec
from repro.transparency.datasheet import Datasheet, build_datasheet
from repro.transparency.model_card import ModelCard


@pytest.fixture(autouse=True)
def _no_env_store(monkeypatch):
    """Tests control their stores explicitly; the env must not leak in."""
    monkeypatch.delenv(STORE_ENV, raising=False)


@pytest.fixture(scope="module")
def audit_setup():
    """One small trained model + splits, shared by the audit tests."""
    rng = np.random.default_rng(0)
    generator = CreditScoringGenerator(label_bias=0.3, proxy_strength=0.8)
    train, test = generator.generate_pair(500, 300, rng)
    mask = np.arange(test.n_rows) < 120
    calibration, held_out = test.filter(mask), test.filter(~mask)
    model = TableClassifier(LogisticRegression()).fit(train)
    return model, train, held_out, calibration


# -- fingerprints -----------------------------------------------------------------


def test_fingerprint_digests_are_pinned():
    """The promoted planner hash must never drift (cached answers survive)."""
    assert fingerprint(
        table="t", version=2, kind="mean", column="income", epsilon=0.5,
        delta=0.0, lower=0.0, upper=100000.0, q=None, bins=(),
    ) == "5fae49ca5c9314bdaaa1ee5e"
    assert fingerprint(
        table="t", version=1, kind="histogram", column="city", epsilon=1.0,
        delta=0.0, lower=None, upper=None, q=None, bins=("ams", "nyc"),
    ) == "c0732b139d76eb3a4ae266ef"


def test_canonical_collapses_equivalent_values():
    assert fingerprint(x=0.10) == fingerprint(x=1e-1)
    assert fingerprint(x=(1, 2)) == fingerprint(x=[1, 2])
    assert fingerprint(x=np.float64(0.1)) == fingerprint(x=0.1)
    assert fingerprint(a=1, b=2) == fingerprint(b=2, a=1)
    assert canonical((0.5, np.int64(3))) == [repr(0.5), 3]


def test_planner_delegates_to_shared_fingerprint(small_table):
    assert _fingerprint is fingerprint  # the back-compat alias
    planner = QueryPlanner()
    planner.register_table("t", small_table)
    plan = planner.plan(QueryRequest(
        tenant="a", kind="mean", column="income",
        lower=0.0, upper=100.0, epsilon=0.5,
    ))
    assert plan.fingerprint == fingerprint(
        table="t", version=1, kind="mean", column="income", epsilon=0.5,
        delta=0.0, lower=0.0, upper=100.0, q=None, bins=(),
    )
    # Re-registering bumps the version, which changes every fingerprint.
    planner.register_table("t", small_table)
    assert planner.plan(QueryRequest(
        tenant="a", kind="mean", column="income",
        lower=0.0, upper=100.0, epsilon=0.5,
    )).fingerprint != plan.fingerprint


def test_array_and_table_fingerprints_hash_content(small_table):
    values = np.asarray([1.0, 2.0, 3.0])
    assert array_fingerprint(values) == array_fingerprint(values.copy())
    assert array_fingerprint(values) != array_fingerprint(values + 1.0)
    # Object-dtype (categorical) columns hash their strings, not pointers.
    strings = np.asarray(["a", "b"], dtype=object)
    assert array_fingerprint(strings) == array_fingerprint(
        np.asarray(["a", "b"], dtype=object)
    )
    fp = table_fingerprint(small_table)
    assert fp == table_fingerprint(small_table)
    changed = small_table.with_column(
        small_table.schema["income"], small_table.column("income") + 1.0
    )
    assert table_fingerprint(changed) != fp


def test_code_fingerprint_tracks_the_implementation():
    # The same definition fingerprints identically across compilations;
    # editing the body (or renaming) invalidates.
    v1, v2, edited = {}, {}, {}
    exec("def stage(x):\n    return x + 1", v1)
    exec("def stage(x):\n    return x + 1", v2)
    exec("def stage(x):\n    return x + 2", edited)
    assert code_fingerprint(v1["stage"]) == code_fingerprint(v2["stage"])
    assert code_fingerprint(v1["stage"]) != code_fingerprint(edited["stage"])

    def renamed(x):
        return x + 1

    assert code_fingerprint(renamed) != code_fingerprint(v1["stage"])

    # Editing a *nested* function must invalidate the outer one too.
    def outer_v1(x):
        def inner(y):
            return y * 2
        return inner(x)

    def outer_v2(x):
        def inner(y):
            return y * 3
        return inner(x)

    assert code_fingerprint(outer_v1) != code_fingerprint(outer_v2)


def test_object_fingerprint_hashes_learned_state(audit_setup):
    model, train, _, _ = audit_setup
    twin = TableClassifier(LogisticRegression()).fit(train)
    assert object_fingerprint(model) == object_fingerprint(twin)
    other = TableClassifier(LogisticRegression(l2=10.0)).fit(train)
    assert object_fingerprint(model) != object_fingerprint(other)


# -- codec ------------------------------------------------------------------------


def test_codec_round_trips_exactly(small_table):
    interval = IntervalEstimate(
        estimate=0.5, lower=0.25, upper=0.75, confidence=0.95, n_resamples=100
    )
    values = np.asarray([0.1, np.nan, -0.0, 1e-300])
    original = {
        "interval": interval,
        "values": values,
        "weird_keys": {1.5: "a", None: "b"},
        "tuple": (1, "two", 3.0),
        "table": small_table,
    }
    restored = codec.loads(codec.dumps(original))
    assert restored["interval"] == interval
    assert restored["values"].dtype == values.dtype
    assert np.array_equal(restored["values"], values, equal_nan=True)
    assert restored["weird_keys"] == {1.5: "a", None: "b"}
    assert restored["tuple"] == (1, "two", 3.0)
    table = restored["table"]
    assert table_fingerprint(table) == table_fingerprint(small_table)
    for name in small_table.column_names:
        assert table.column(name).dtype == small_table.column(name).dtype


def test_codec_refuses_what_it_cannot_replay():
    with pytest.raises(DataError):
        codec.dumps({"fn": lambda x: x})


def test_codec_only_reconstructs_repro_classes():
    """A tampered cache entry must not name arbitrary constructors."""
    payload = json.dumps({
        "__dataclass__": {"class": "subprocess:Popen", "fields": {}}
    })
    with pytest.raises(DataError):
        codec.loads(payload)


# -- backends ---------------------------------------------------------------------


def test_memory_backend_evicts_lru_by_entries():
    store = ArtifactStore(MemoryBackend(max_entries=2))
    store.put("a", 1)
    store.put("b", 2)
    assert store.get("a") == 1  # touch: "b" is now least recent
    store.put("c", 3)
    assert store.get("b") is None
    assert store.get("a") == 1 and store.get("c") == 3
    assert store.backend.evictions == 1


def test_memory_backend_evicts_by_bytes():
    backend = MemoryBackend(max_entries=100, max_bytes=600)
    store = ArtifactStore(backend)
    for index in range(8):
        store.put(f"k{index}", list(range(20)))
    assert backend.total_bytes <= 600
    assert backend.evictions > 0
    # A value larger than the whole budget is silently never cached.
    store.put("huge", list(range(2000)))
    assert "huge" not in store


def test_json_backend_persists_and_evicts(tmp_path):
    path = str(tmp_path / "cache")
    first = ArtifactStore.on_disk(path)
    first.put("answer", {"x": (1, 2.5)})
    second = ArtifactStore.on_disk(path)
    assert second.get("answer") == {"x": (1, 2.5)}

    bounded = ArtifactStore(JsonDirBackend(path, max_entries=2))
    bounded.put("b", 2)
    bounded.put("c", 3)
    assert len(bounded.backend) <= 2


def test_corrupt_entry_is_a_counted_miss_never_a_crash(tmp_path):
    store = ArtifactStore.on_disk(str(tmp_path / "cache"))
    calls = {"n": 0}

    def compute():
        calls["n"] += 1
        return np.asarray([1.0, 2.0])

    result = store.memoize({"stage": "t"}, compute)
    assert calls["n"] == 1
    # Truncate the single entry on disk, as a crashed writer out-of-band
    # or a bad disk would.
    (entry,) = list(tmp_path.glob("cache/*.json"))
    entry.write_text(entry.read_text()[: len(entry.read_text()) // 2])
    replay = store.memoize({"stage": "t"}, compute)
    assert calls["n"] == 2
    assert np.array_equal(replay, result)
    assert store.corruptions == 1
    # The third ask replays the freshly recomputed entry.
    store.memoize({"stage": "t"}, compute)
    assert calls["n"] == 2


def test_get_of_tampered_payload_returns_default():
    store = ArtifactStore()
    store.put("k", 1)
    store.backend._entries["k"] = "{not json"
    assert store.get("k", default="fallback") == "fallback"
    assert store.corruptions == 1
    assert "k" not in store


# -- memoization ------------------------------------------------------------------


def test_memoize_replays_and_keeps_the_rng_stream_continuous():
    store = ArtifactStore()
    calls = {"n": 0}

    def run(rng):
        def compute():
            calls["n"] += 1
            return float(rng.normal())
        first = store.memoize({"stage": "draw"}, compute, rng=rng)
        downstream = float(rng.normal())  # drawn *after* the memoized stage
        return first, downstream

    cold = run(np.random.default_rng(42))
    warm = run(np.random.default_rng(42))
    assert calls["n"] == 1
    assert warm == cold  # both the value and the downstream draw


def test_memoize_key_includes_rng_state():
    store = ArtifactStore()
    calls = {"n": 0}

    def compute():
        calls["n"] += 1
        return 1

    store.memoize({"stage": "s"}, compute, rng=np.random.default_rng(1))
    store.memoize({"stage": "s"}, compute, rng=np.random.default_rng(2))
    assert calls["n"] == 2


def test_invalidate_tag_drops_dependents(small_table):
    store = ArtifactStore()
    table_tag = f"table:{table_fingerprint(small_table)}"
    store.memoize({"stage": "a"}, lambda: 1, tags=(table_tag,))
    store.memoize({"stage": "b"}, lambda: 2, tags=(table_tag,))
    store.memoize({"stage": "c"}, lambda: 3)
    assert store.invalidate_tag(table_tag) == 2
    assert len(store) == 1
    calls = {"n": 0}

    def recompute():
        calls["n"] += 1
        return 1

    store.memoize({"stage": "a"}, recompute, tags=(table_tag,))
    assert calls["n"] == 1


def test_store_counters_mirror_into_obs(tmp_path):
    obs.configure(export_path=str(tmp_path / "t.jsonl"))
    try:
        store = ArtifactStore(name="mirrored")
        store.memoize({"stage": "s"}, lambda: 1)
        store.memoize({"stage": "s"}, lambda: 1)
        telemetry = obs.get()
        snapshot = {
            (record["name"], record["labels"].get("store")): record["value"]
            for record in telemetry.metrics.to_dicts()
            if record["record"] == "metric"
            and record["name"].startswith("store.")
        }
        assert snapshot[("store.hits", "mirrored")] == 1
        assert snapshot[("store.misses", "mirrored")] == 1
        assert snapshot[("store.puts", "mirrored")] == 1
        assert snapshot[("store.bytes_written", "mirrored")] > 0
    finally:
        obs.reset()


# -- env fallback -----------------------------------------------------------------


def test_resolve_store_prefers_explicit_then_env(tmp_path, monkeypatch):
    explicit = ArtifactStore()
    assert resolve_store(explicit) is explicit
    assert resolve_store(None) is None

    monkeypatch.setenv(STORE_ENV, "memory")
    env_store = resolve_store(None)
    assert isinstance(env_store.backend, MemoryBackend)
    assert resolve_store(None) is env_store  # one shared store per target
    assert resolve_store(explicit) is explicit  # explicit still wins

    target = str(tmp_path / "env-cache")
    monkeypatch.setenv(STORE_ENV, target)
    disk_store = resolve_store(None)
    assert isinstance(disk_store.backend, JsonDirBackend)
    disk_store.put("k", 1)
    assert os.listdir(target)


def test_env_store_drives_the_bootstrap(monkeypatch, rng):
    monkeypatch.setenv(STORE_ENV, "memory")
    env_store = resolve_store(None)
    env_store.clear()
    values = np.random.default_rng(0).normal(size=80)
    before = env_store.hits
    first = bootstrap_ci(values, np.mean, np.random.default_rng(5),
                         n_resamples=50)
    again = bootstrap_ci(values, np.mean, np.random.default_rng(5),
                         n_resamples=50)
    assert again == first
    assert env_store.hits == before + 1


# -- determinism with repro.parallel ----------------------------------------------


def test_store_is_transparent_across_n_jobs_and_backends():
    """n_jobs/backend stay out of cache keys: one entry serves them all."""
    values = np.random.default_rng(3).normal(size=120)
    reference = bootstrap_ci(values, np.mean, np.random.default_rng(9),
                             n_resamples=60)
    store = ArtifactStore()
    results = [
        bootstrap_ci(values, np.mean, np.random.default_rng(9),
                     n_resamples=60, n_jobs=n_jobs, backend=backend,
                     store=store)
        for n_jobs, backend in [(1, "thread"), (2, "thread"), (2, "process")]
    ]
    for result in results:
        assert result == reference
    assert store.puts == 1  # the first call stored; the rest replayed
    assert store.hits == 2


# -- the incremental FACT re-audit ------------------------------------------------


def test_fact_audit_replays_bit_identically(audit_setup):
    model, _, test, calibration = audit_setup
    store = ArtifactStore()
    auditor = FACTAuditor(n_bootstrap=40, store=store)

    cold = auditor.audit(model, test, np.random.default_rng(7),
                         calibration=calibration)
    puts_after_cold = store.puts
    warm = auditor.audit(model, test, np.random.default_rng(7),
                         calibration=calibration)
    assert warm.render() == cold.render()
    assert warm.fingerprint() == cold.fingerprint()
    assert store.puts == puts_after_cold  # nothing recomputed

    # The store must be invisible in the result: a storeless audit of the
    # same inputs renders the same bytes.
    bare = FACTAuditor(n_bootstrap=40).audit(
        model, test, np.random.default_rng(7), calibration=calibration
    )
    assert bare.render() == cold.render()


def test_fact_audit_recomputes_only_the_invalidated_section(audit_setup):
    model, _, test, calibration = audit_setup
    store = ArtifactStore()
    auditor = FACTAuditor(n_bootstrap=40, store=store)
    auditor.audit(model, test, np.random.default_rng(7),
                  calibration=calibration)

    misses_before = store.misses
    changed = FACTAuditor(n_bootstrap=40, surrogate_depth=3, store=store)
    warm = changed.audit(model, test, np.random.default_rng(7),
                         calibration=calibration)
    # Only the transparency *section* misses; its permutation-importance
    # sub-result replays from inside the recompute.
    assert store.misses - misses_before == 1

    bare = FACTAuditor(n_bootstrap=40, surrogate_depth=3).audit(
        model, test, np.random.default_rng(7), calibration=calibration
    )
    assert warm.render() == bare.render()


def test_table_change_invalidates_the_audit(audit_setup):
    model, _, test, calibration = audit_setup
    store = ArtifactStore()
    auditor = FACTAuditor(n_bootstrap=40, store=store)
    auditor.audit(model, test, np.random.default_rng(7),
                  calibration=calibration)
    dropped = store.invalidate_tag(f"table:{table_fingerprint(test)}")
    assert dropped >= 4  # all four sections depended on the table
    puts_before = store.puts
    auditor.audit(model, test, np.random.default_rng(7),
                  calibration=calibration)
    assert store.puts > puts_before  # really recomputed


# -- pipeline stage caching -------------------------------------------------------


def _make_pipeline(store, fuse=False):
    return Pipeline([
        CleanStage(),
        RedactStage(),
        TrainStage(TableClassifier(LogisticRegression())),
        PredictStage(),
        DecideStage(threshold=0.4),
    ], store=store, fuse=fuse)


def test_pipeline_replays_cacheable_stages(audit_setup):
    _, train, _, _ = audit_setup
    store = ArtifactStore()
    cold = _make_pipeline(store).run(train, np.random.default_rng(3))
    hits_cold = store.hits
    warm = _make_pipeline(store).run(train, np.random.default_rng(3))
    assert store.hits > hits_cold
    bare = _make_pipeline(None).run(train, np.random.default_rng(3))
    for result in (warm, bare):
        for name in cold.table.column_names:
            assert np.array_equal(
                result.table.column(name), cold.table.column(name)
            ), name
    # The FACT trail records hits exactly as it records recomputes.
    assert len(warm.context.audit) == len(cold.context.audit)
    assert warm.context.provenance.n_steps == cold.context.provenance.n_steps


def test_fused_pipeline_is_byte_identical_to_unfused(audit_setup):
    _, train, _, _ = audit_setup
    plain = _make_pipeline(ArtifactStore()).run(
        train, np.random.default_rng(3)
    )
    store = ArtifactStore()
    for expect_hits in (False, True):       # cold, then warm from cache
        fused = _make_pipeline(store, fuse=True).run(
            train, np.random.default_rng(3)
        )
        for name in plain.table.column_names:
            assert np.array_equal(
                fused.table.column(name), plain.table.column(name)
            ), name
        assert len(fused.context.audit) == len(plain.context.audit)
        assert (fused.context.provenance.n_steps
                == plain.context.provenance.n_steps)
        assert (store.hits > 0) is expect_hits


def test_function_stage_opts_into_caching(audit_setup):
    _, train, _, _ = audit_setup
    store = ArtifactStore()
    calls = {"n": 0}

    def double_income(table):
        calls["n"] += 1
        spec = table.schema["income"]
        return table.with_column(spec, table.column("income") * 2.0)

    def build():
        return Pipeline([
            CleanStage(),
            FunctionStage("double", double_income, cacheable=True),
        ], store=store)

    first = build().run(train, np.random.default_rng(1))
    second = build().run(train, np.random.default_rng(1))
    assert calls["n"] == 1
    assert np.array_equal(first.table.column("income"),
                          second.table.column("income"))
    # Uncacheable by default: the escape hatch stays safe for impure fns.
    assert FunctionStage("anon", double_income).cacheable is False


# -- the unified Artifact API -----------------------------------------------------


def test_every_report_class_is_an_artifact(audit_setup, small_table):
    model, train, test, _ = audit_setup
    report = FACTAuditor(n_bootstrap=30).audit(
        model, test, np.random.default_rng(7)
    )
    artifacts = [
        report,
        build_scorecard(report),
        audit_model(model, test),
        build_datasheet(train, "credit-train", "synthetic"),
        ModelCard(
            name="credit", model_type="LogisticRegression",
            intended_use="tests", hyperparameters={"l2": 1.0},
            training_rows=train.n_rows, evaluation_rows=test.n_rows,
            metrics={"accuracy": "0.8"},
        ),
    ]
    assert [type(a) for a in artifacts] == [
        FACTReport, GreenScorecard, FairnessReport, Datasheet, ModelCard
    ]
    for artifact in artifacts:
        assert isinstance(artifact, Artifact)
        payload = artifact.to_json()
        assert json.loads(payload) == artifact.to_dict()
        digest = artifact.fingerprint()
        assert isinstance(digest, str) and len(digest) == 24
        assert artifact.fingerprint() == digest  # stable

    # FACTReport keeps its curated to_dict (scalars, stable keys).
    assert report.to_dict()["subject"] == report.subject

    # Same content => same hash; different content => different hash.
    scorecard = build_scorecard(report)
    clone = GreenScorecard(**scorecard.to_dict())
    assert clone.fingerprint() == scorecard.fingerprint()
    bumped = GreenScorecard(
        fairness=scorecard.fairness + 1.0, accuracy=scorecard.accuracy,
        confidentiality=scorecard.confidentiality,
        transparency=scorecard.transparency,
    )
    assert bumped.fingerprint() != scorecard.fingerprint()
