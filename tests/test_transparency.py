"""Unit tests for the transparency pillar."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.learn import LogisticRegression, MLPClassifier
from repro.transparency.counterfactual import find_counterfactual
from repro.transparency.importance import permutation_importance
from repro.transparency.local import LocalSurrogateExplainer
from repro.transparency.partial_dependence import partial_dependence
from repro.transparency.shapley import ShapleyExplainer
from repro.transparency.surrogate import fidelity_by_depth, fit_surrogate


@pytest.fixture
def linear_model(toy_classification):
    X, y = toy_classification
    return LogisticRegression().fit(X, y), X, y


def test_importance_ranks_informative_features(linear_model, rng):
    model, X, y = linear_model
    result = permutation_importance(model, X, y, rng, n_repeats=5)
    ranked = result.ranked()
    # x0 (weight 2.0) must beat x2 (weight 0.0).
    names = [name for name, _ in ranked]
    assert names.index("x0") < names.index("x2")
    dead = dict(ranked)["x2"]
    assert abs(dead) < 0.03
    assert "baseline" in result.render()


def test_importance_custom_names_and_metric(linear_model, rng):
    model, X, y = linear_model
    result = permutation_importance(
        model, X, y, rng, metric="auc",
        feature_names=["a", "b", "c", "d"],
    )
    assert result.feature_names == ["a", "b", "c", "d"]
    with pytest.raises(DataError):
        permutation_importance(model, X, y, rng, metric="nope")
    with pytest.raises(DataError):
        permutation_importance(model, X, y, rng, feature_names=["too", "few"])


def test_partial_dependence_monotone_for_linear(linear_model):
    model, X, _ = linear_model
    curve = partial_dependence(model, X, 0)
    assert curve.is_monotone()
    assert curve.response[-1] > curve.response[0]  # positive weight
    assert curve.range_effect > 0.1
    # The dead feature's fitted coefficient is only noise, so its leverage
    # is a small fraction of a real feature's.
    flat = partial_dependence(model, X, 2)
    assert flat.range_effect < curve.range_effect / 3.0


def test_partial_dependence_validation(linear_model):
    model, X, _ = linear_model
    with pytest.raises(DataError):
        partial_dependence(model, X, 99)
    with pytest.raises(DataError):
        partial_dependence(model, X, 0, grid_size=1)


def test_surrogate_fidelity_high_for_simple_box(linear_model):
    model, X, _ = linear_model
    result = fit_surrogate(model, X, max_depth=4)
    assert result.fidelity > 0.85
    assert result.n_leaves <= 16
    assert len(result.rules(["a", "b", "c", "d"])) == result.n_leaves
    assert "fidelity" in result.render()


def test_surrogate_fidelity_grows_with_depth(rng):
    X = rng.uniform(-1, 1, (800, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(float)
    box = MLPClassifier(hidden=(16, 8), epochs=80, seed=0).fit(X, y)
    curve = fidelity_by_depth(box, X, [1, 3, 6])
    assert curve[6] >= curve[3] >= curve[1] - 0.02
    assert curve[6] > 0.8


def test_surrogate_rejects_constant_box(rng):
    X = rng.standard_normal((50, 2))

    class Constant:
        def predict_proba(self, X):
            return np.full(len(X), 0.9)

    with pytest.raises(DataError, match="constant"):
        fit_surrogate(Constant(), X)


def test_local_explainer_recovers_linear_signs(linear_model, rng):
    model, X, _ = linear_model
    explainer = LocalSurrogateExplainer(model, X, n_samples=400)
    # Explain a point near the decision boundary, where the model is
    # locally linear (saturated points have a flat local surface).
    boundary = X[np.argmin(np.abs(model.predict_proba(X) - 0.5))]
    explanation = explainer.explain(boundary, rng)
    assert explanation.coefficients[0] > 0      # weight +2.0
    assert explanation.coefficients[1] < 0      # weight -1.5
    assert explanation.local_fit_r2 > 0.5
    assert "pushes toward" in explanation.render()


def test_local_explainer_validation(linear_model, rng):
    model, X, _ = linear_model
    explainer = LocalSurrogateExplainer(model, X)
    with pytest.raises(DataError):
        explainer.explain(X[0][:2], rng)
    with pytest.raises(DataError):
        LocalSurrogateExplainer(model, X[:1])


def test_shapley_exact_additivity(linear_model, rng):
    model, X, _ = linear_model
    explainer = ShapleyExplainer(model, X[:40], exact_limit=4)
    explanation = explainer.explain(X[0])
    assert explanation.method == "exact"
    assert explanation.additivity_gap < 1e-9
    # Dead feature gets ~zero attribution.
    assert abs(explanation.values[2]) < 0.05


def test_shapley_sampled_approximates_exact(linear_model, rng):
    model, X, _ = linear_model
    background = X[:40]
    exact = ShapleyExplainer(model, background, exact_limit=4).explain(X[1])
    sampled_explainer = ShapleyExplainer(model, background, exact_limit=0)
    sampled = sampled_explainer.explain(X[1], rng, n_permutations=200)
    np.testing.assert_allclose(sampled.values, exact.values, atol=0.06)
    assert sampled.method.startswith("sampled")


def test_shapley_validation(linear_model, rng):
    model, X, _ = linear_model
    explainer = ShapleyExplainer(model, X[:10], exact_limit=0)
    with pytest.raises(DataError, match="rng"):
        explainer.explain(X[0])
    with pytest.raises(DataError):
        ShapleyExplainer(model, X[:0])


def test_counterfactual_flips_decision(linear_model):
    model, X, _ = linear_model
    probabilities = model.predict_proba(X)
    rejected = X[np.argmin(probabilities)]
    result = find_counterfactual(model, rejected, max_steps=400)
    assert result is not None
    assert result.counterfactual_probability >= 0.5
    assert result.original_probability < 0.5
    assert result.sparsity >= 1
    assert result.distance > 0
    assert "->" in result.render()


def test_counterfactual_respects_immutable_features(linear_model):
    model, X, _ = linear_model
    probabilities = model.predict_proba(X)
    rejected = X[np.argmin(probabilities)]
    result = find_counterfactual(
        model, rejected, immutable=[0], max_steps=400
    )
    if result is not None:
        assert result.counterfactual[0] == pytest.approx(rejected[0])


def test_counterfactual_returns_none_when_stalled(linear_model):
    model, X, _ = linear_model

    class Stubborn:
        def predict_proba(self, X):
            return np.zeros(len(np.atleast_2d(X)))

    assert find_counterfactual(Stubborn(), X[0], max_steps=5) is None


def test_counterfactual_validation(linear_model):
    model, X, _ = linear_model
    with pytest.raises(DataError):
        find_counterfactual(model, X[0], feature_names=["just-one"])
    with pytest.raises(DataError):
        find_counterfactual(model, X[0], step_scale=np.ones(2))
