"""Property-based tests (hypothesis) for the extension modules."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.confidentiality.mechanisms import (
    randomized_response,
    randomized_response_estimate,
)
from repro.learn.isotonic import IsotonicCalibrator, pool_adjacent_violators
from repro.process.log import EventLog, Trace
from repro.process.model import ProcessModel, START, END

floats_array = arrays(
    np.float64, st.integers(1, 60),
    elements=st.floats(-100, 100, allow_nan=False),
)


# -- PAVA invariants ------------------------------------------------------------

@given(floats_array)
@settings(max_examples=80, deadline=None)
def test_pava_output_monotone(values):
    fitted = pool_adjacent_violators(values)
    assert np.all(np.diff(fitted) >= -1e-9)


@given(floats_array)
@settings(max_examples=80, deadline=None)
def test_pava_preserves_weighted_mean(values):
    fitted = pool_adjacent_violators(values)
    assert np.mean(fitted) == pytest.approx(np.mean(values), abs=1e-6)


@given(floats_array)
@settings(max_examples=80, deadline=None)
def test_pava_idempotent(values):
    once = pool_adjacent_violators(values)
    twice = pool_adjacent_violators(once)
    np.testing.assert_allclose(twice, once, atol=1e-9)


@given(floats_array)
@settings(max_examples=50, deadline=None)
def test_pava_is_projection(values):
    """The fitted sequence is no farther from the data than the data's
    own sorted version (both are monotone candidates)."""
    fitted = pool_adjacent_violators(values)
    sorted_candidate = np.sort(values)
    assert (np.sum((fitted - values) ** 2)
            <= np.sum((sorted_candidate - values) ** 2) + 1e-6)


# -- isotonic calibration -------------------------------------------------------------

@given(st.integers(0, 2**31 - 1), st.integers(10, 200))
@settings(max_examples=40, deadline=None)
def test_isotonic_transform_bounded_and_monotone(seed, n):
    rng = np.random.default_rng(seed)
    scores = rng.random(n)
    outcomes = (rng.random(n) < 0.5).astype(float)
    calibrator = IsotonicCalibrator().fit(scores, outcomes)
    grid = np.linspace(-0.5, 1.5, 30)
    out = calibrator.transform(grid)
    assert np.all((out >= 0.0) & (out <= 1.0))
    assert np.all(np.diff(out) >= -1e-9)


# -- randomised response ---------------------------------------------------------------

@given(st.integers(0, 2**31 - 1), st.floats(0.2, 5.0),
       st.floats(0.05, 0.95))
@settings(max_examples=30, deadline=None)
def test_randomized_response_estimator_unbiased(seed, epsilon, rate):
    rng = np.random.default_rng(seed)
    truth = (rng.random(4000) < rate).astype(float)
    noisy = randomized_response(truth, epsilon, rng)
    estimate = randomized_response_estimate(noisy, epsilon)
    # Debiased estimate tracks the true rate within sampling noise that
    # grows as epsilon shrinks.
    slack = 0.05 + 0.1 / epsilon
    assert abs(estimate - truth.mean()) < slack


# -- process model invariants -----------------------------------------------------------

@st.composite
def random_logs(draw):
    alphabet = ["a", "b", "c", "d"]
    n_traces = draw(st.integers(1, 15))
    traces = []
    for index in range(n_traces):
        length = draw(st.integers(1, 6))
        activities = tuple(
            draw(st.sampled_from(alphabet)) for _ in range(length)
        )
        traces.append(Trace(f"c{index}", activities))
    return EventLog(traces)


@given(random_logs())
@settings(max_examples=60, deadline=None)
def test_discovered_model_accepts_its_own_log(log):
    from repro.process.discovery import discover_dfg_model

    model = discover_dfg_model(log)
    for trace in log:
        assert model.accepts(trace.activities)


@given(random_logs())
@settings(max_examples=60, deadline=None)
def test_dfg_counts_sum_to_events_plus_traces(log):
    from repro.process.discovery import directly_follows_counts

    counts = directly_follows_counts(log)
    non_empty = [trace for trace in log if len(trace) > 0]
    expected = sum(len(trace) + 1 for trace in non_empty)
    assert sum(counts.values()) == expected


@given(random_logs(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_simulation_stays_in_model_language(log, seed):
    from repro.process.discovery import discover_dfg_model

    model = discover_dfg_model(log)
    rng = np.random.default_rng(seed)
    trace = model.simulate(rng, max_length=200)
    assert model.accepts(trace)


@given(random_logs(), st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_k_anonymous_release_guarantee(log, k):
    from repro.process.privacy import k_anonymous_log, variant_uniqueness

    released, info = k_anonymous_log(log, k=k)
    frequencies = released.variants()
    assert all(count >= k for count in frequencies.values())
    if k >= 2:
        assert variant_uniqueness(released) == 0.0
    assert info.n_released_traces + sum(
        count for variant, count in log.variants().items() if count < k
    ) == len(log)


# -- Mondrian guarantee -------------------------------------------------------------------

@given(st.integers(0, 2**31 - 1), st.integers(20, 120),
       st.integers(2, 8))
@settings(max_examples=30, deadline=None)
def test_mondrian_always_achieves_k(seed, n_rows, k):
    from repro.confidentiality.anonymity import (
        MondrianAnonymizer,
        k_anonymity_level,
    )
    from repro.data.schema import ColumnRole, Schema, categorical, numeric
    from repro.data.table import Table

    assume(n_rows >= k)
    rng = np.random.default_rng(seed)
    schema = Schema([
        numeric("age", role=ColumnRole.QUASI_IDENTIFIER),
        categorical("city", role=ColumnRole.QUASI_IDENTIFIER),
    ])
    table = Table(schema, {
        "age": rng.integers(18, 90, n_rows).astype(float),
        "city": [f"city_{value}" for value in rng.integers(0, 6, n_rows)],
    })
    anonymized = MondrianAnonymizer(k=k).anonymize(table)
    assert k_anonymity_level(anonymized) >= k
    assert anonymized.n_rows == table.n_rows
