"""Unit tests for train/test splitting and folds."""

import numpy as np
import pytest

from repro.data.split import (
    bootstrap_indices,
    k_fold,
    k_fold_indices,
    three_way_split,
    train_test_split,
)
from repro.exceptions import DataError


def test_split_sizes(credit_tables, rng):
    train, _ = credit_tables
    a, b = train_test_split(train, 0.25, rng)
    assert a.n_rows + b.n_rows == train.n_rows
    assert b.n_rows == pytest.approx(train.n_rows * 0.25, abs=2)


def test_split_disjoint(rng):
    from repro.data.table import Table

    table = Table.from_dict({"id": np.arange(100.0)})
    train, test = train_test_split(table, 0.3, rng)
    assert set(train["id"]).isdisjoint(set(test["id"]))


def test_invalid_fraction(credit_tables, rng):
    train, _ = credit_tables
    with pytest.raises(DataError):
        train_test_split(train, 0.0, rng)
    with pytest.raises(DataError):
        train_test_split(train, 1.0, rng)


def test_stratified_preserves_group_rates(credit_tables, rng):
    train, _ = credit_tables
    a, b = train_test_split(train, 0.3, rng, stratify_by="group")
    rate = np.mean(train["group"] == "B")
    assert np.mean(a["group"] == "B") == pytest.approx(rate, abs=0.03)
    assert np.mean(b["group"] == "B") == pytest.approx(rate, abs=0.03)


def test_three_way_split(credit_tables, rng):
    train, _ = credit_tables
    a, b, c = three_way_split(train, 0.2, 0.2, rng)
    assert a.n_rows + b.n_rows + c.n_rows == train.n_rows
    with pytest.raises(DataError):
        three_way_split(train, 0.6, 0.5, rng)


def test_k_fold_partitions(rng):
    pairs = k_fold_indices(100, 5, rng)
    assert len(pairs) == 5
    all_test = np.concatenate([test for _, test in pairs])
    assert sorted(all_test.tolist()) == list(range(100))
    for train_idx, test_idx in pairs:
        assert set(train_idx).isdisjoint(set(test_idx))
        assert len(train_idx) + len(test_idx) == 100


def test_k_fold_tables(credit_tables, rng):
    train, _ = credit_tables
    folds = k_fold(train, 3, rng)
    assert len(folds) == 3
    assert sum(test.n_rows for _, test in folds) == train.n_rows


def test_k_fold_validation(rng):
    with pytest.raises(DataError):
        k_fold_indices(10, 1, rng)
    with pytest.raises(DataError):
        k_fold_indices(3, 5, rng)


def test_bootstrap_indices(rng):
    resamples = bootstrap_indices(50, 10, rng)
    assert len(resamples) == 10
    for resample in resamples:
        assert len(resample) == 50
        assert resample.min() >= 0 and resample.max() < 50
    with pytest.raises(DataError):
        bootstrap_indices(0, 3, rng)
