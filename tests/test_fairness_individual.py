"""Unit tests for individual fairness and discrimination discovery."""

import numpy as np
import pytest

from repro.exceptions import FairnessError
from repro.fairness.discovery import detect_proxies, find_worst_subgroups
from repro.fairness.individual import consistency_score, situation_test


def test_consistency_perfect_for_smooth_predictions(rng):
    X = rng.standard_normal((200, 2))
    constant = np.ones(200)
    assert consistency_score(X, constant) == pytest.approx(1.0)


def test_consistency_penalises_arbitrary_decisions(rng):
    X = rng.standard_normal((300, 2))
    smooth = (X[:, 0] > 0).astype(float)
    noisy = (rng.random(300) < 0.5).astype(float)
    assert consistency_score(X, smooth) > consistency_score(X, noisy)


def test_consistency_validation(rng):
    X = rng.standard_normal((10, 2))
    with pytest.raises(FairnessError):
        consistency_score(X, np.ones(5))
    with pytest.raises(FairnessError):
        consistency_score(X, np.ones(10), k=10)


def test_situation_test_flags_pure_group_discrimination(rng):
    n = 400
    X = rng.standard_normal((n, 3))
    group = np.where(rng.random(n) < 0.5, "B", "A").astype(object)
    # Decision depends ONLY on group: maximal individual discrimination.
    y_pred = (group == "A").astype(float)
    result = situation_test(X, y_pred, group, "B", k=5, threshold=0.3)
    assert result.flagged_fraction > 0.9
    assert result.mean_gap > 0.8


def test_situation_test_clean_when_decision_is_feature_based(rng):
    n = 400
    X = rng.standard_normal((n, 3))
    group = np.where(rng.random(n) < 0.5, "B", "A").astype(object)
    y_pred = (X[:, 0] > 0).astype(float)
    result = situation_test(X, y_pred, group, "B", k=5, threshold=0.3)
    assert result.flagged_fraction < 0.2
    assert abs(result.mean_gap) < 0.1


def test_situation_test_validation(rng):
    X = rng.standard_normal((20, 2))
    group = np.array(["A"] * 10 + ["B"] * 10, dtype=object)
    with pytest.raises(FairnessError, match="protected"):
        situation_test(X, np.ones(20), group, "Z")
    with pytest.raises(FairnessError):
        situation_test(X, np.ones(20), group, "B", k=15)


def test_detect_proxies_finds_the_proxy(credit_tables):
    train, _ = credit_tables
    report = detect_proxies(train)
    assert report.joint_auc > 0.85
    strongest_name, strongest_auc = report.strongest(1)[0]
    assert strongest_name == "neighborhood"
    assert strongest_auc > 0.85
    # Honest features are not proxies.
    assert report.per_feature_auc["debt_ratio"] < 0.6


def test_detect_proxies_clean_data(rng):
    from repro.data.synth import CreditScoringGenerator

    clean = CreditScoringGenerator(proxy_strength=0.0).generate(1500, rng)
    report = detect_proxies(clean)
    assert report.joint_auc < 0.65


def test_detect_proxies_validation(small_table):
    from repro.data.table import Table

    table = Table.from_dict({"x": [1.0, 2.0]})
    with pytest.raises(FairnessError):
        detect_proxies(table)


def test_find_worst_subgroups(credit_tables, rng):
    train, _ = credit_tables
    decisions = train["approved"]
    subgroups = find_worst_subgroups(train, decisions, max_conditions=1,
                                     min_size=40, top=3)
    assert len(subgroups) <= 3
    assert all(s.size >= 40 for s in subgroups)
    # The label-biased group B (or its proxy neighbourhoods) must surface.
    top_description = subgroups[0].describe()
    assert ("group=B" in top_description) or ("neighborhood=" in top_description)
    assert subgroups[0].shortfall > 0.05


def test_find_worst_subgroups_conjunctions(credit_tables):
    train, _ = credit_tables
    subgroups = find_worst_subgroups(train, train["approved"],
                                     max_conditions=2, min_size=30, top=5)
    assert any(len(s.conditions) == 2 for s in subgroups)
    rendered = subgroups[0].describe()
    assert "=" in rendered


def test_find_worst_subgroups_validation(credit_tables):
    train, _ = credit_tables
    with pytest.raises(FairnessError):
        find_worst_subgroups(train, np.ones(3))
    with pytest.raises(FairnessError, match="categorical"):
        find_worst_subgroups(train, train["approved"], columns=[])
