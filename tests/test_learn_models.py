"""Unit tests for forest, naive Bayes, k-NN and MLP classifiers."""

import numpy as np
import pytest

from repro.exceptions import DataError, NotFittedError
from repro.learn import (
    GaussianNaiveBayes,
    KNeighborsClassifier,
    MLPClassifier,
    RandomForestClassifier,
)
from repro.learn.metrics import accuracy
from repro.learn.neighbors import nearest_indices, pairwise_distances


def test_forest_beats_stump_on_xor(rng):
    X = rng.uniform(-1, 1, (500, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(float)
    forest = RandomForestClassifier(n_trees=20, max_depth=4, seed=1).fit(X, y)
    assert accuracy(y, forest.predict(X)) > 0.9


def test_forest_deterministic_by_seed(toy_classification):
    X, y = toy_classification
    a = RandomForestClassifier(n_trees=5, seed=3).fit(X, y).predict_proba(X)
    b = RandomForestClassifier(n_trees=5, seed=3).fit(X, y).predict_proba(X)
    np.testing.assert_allclose(a, b)


def test_forest_importances_average(toy_classification):
    X, y = toy_classification
    forest = RandomForestClassifier(n_trees=10, seed=0).fit(X, y)
    importances = forest.feature_importances()
    assert importances.shape == (4,)
    assert importances.sum() == pytest.approx(1.0, abs=1e-6)
    # Informative features dominate the dead one.
    assert importances[0] > importances[2]


def test_forest_validation():
    with pytest.raises(DataError):
        RandomForestClassifier(n_trees=0)


def test_naive_bayes_gaussian_blobs(rng):
    X0 = rng.normal(-2.0, 1.0, (200, 3))
    X1 = rng.normal(2.0, 1.0, (200, 3))
    X = np.vstack([X0, X1])
    y = np.concatenate([np.zeros(200), np.ones(200)])
    model = GaussianNaiveBayes().fit(X, y)
    assert accuracy(y, model.predict(X)) > 0.98
    assert model.class_prior_[0] == pytest.approx(0.5)
    assert model.means_[1].mean() == pytest.approx(2.0, abs=0.2)


def test_naive_bayes_needs_both_classes(rng):
    X = rng.standard_normal((20, 2))
    with pytest.raises(DataError, match="absent"):
        GaussianNaiveBayes().fit(X, np.zeros(20))


def test_naive_bayes_weights(rng):
    X = np.array([[0.0], [0.0], [1.0], [1.0]])
    y = np.array([0.0, 1.0, 0.0, 1.0])
    weights = np.array([1.0, 1.0, 1.0, 100.0])
    model = GaussianNaiveBayes().fit(X, y, sample_weight=weights)
    assert model.class_prior_[1] > 0.9


def test_knn_memorises(toy_classification):
    X, y = toy_classification
    model = KNeighborsClassifier(k=1).fit(X, y)
    np.testing.assert_allclose(model.predict(X), y)


def test_knn_probability_is_vote_fraction(rng):
    X = np.array([[0.0], [0.1], [0.2], [10.0]])
    y = np.array([1.0, 1.0, 0.0, 0.0])
    model = KNeighborsClassifier(k=3).fit(X, y)
    assert model.predict_proba(np.array([[0.05]]))[0] == pytest.approx(2.0 / 3.0)


def test_knn_distance_weighting(rng):
    X = np.array([[0.0], [0.2], [5.0], [5.1], [5.2]])
    y = np.array([1.0, 1.0, 0.0, 0.0, 0.0])
    uniform = KNeighborsClassifier(k=5).fit(X, y)
    weighted = KNeighborsClassifier(k=5, distance_weighted=True).fit(X, y)
    query = np.array([[0.05]])
    assert weighted.predict_proba(query)[0] > uniform.predict_proba(query)[0]


def test_knn_validation(toy_classification):
    X, y = toy_classification
    with pytest.raises(DataError):
        KNeighborsClassifier(k=0)
    with pytest.raises(DataError):
        KNeighborsClassifier(k=999).fit(X, y)


def test_pairwise_distances_matches_numpy(rng):
    A = rng.standard_normal((10, 3))
    B = rng.standard_normal((7, 3))
    distances = pairwise_distances(A, B)
    brute = np.sqrt(((A[:, None, :] - B[None, :, :]) ** 2).sum(axis=2))
    np.testing.assert_allclose(distances, brute, atol=1e-9)


def test_nearest_indices(rng):
    pool = np.array([[0.0], [1.0], [2.0], [3.0]])
    queries = np.array([[0.1], [2.9]])
    neighbours = nearest_indices(queries, pool, 2)
    assert neighbours[0].tolist() == [0, 1]
    assert neighbours[1].tolist() == [3, 2]
    with pytest.raises(DataError):
        nearest_indices(queries, pool, 10)


def test_mlp_learns_nonlinear(rng):
    X = rng.uniform(-1, 1, (600, 2))
    y = ((X[:, 0] ** 2 + X[:, 1] ** 2) < 0.5).astype(float)
    model = MLPClassifier(hidden=(16, 8), epochs=120, seed=0).fit(X, y)
    assert accuracy(y, model.predict(X)) > 0.9


def test_mlp_deterministic_by_seed(toy_classification):
    X, y = toy_classification
    a = MLPClassifier(epochs=5, seed=9).fit(X, y).predict_proba(X)
    b = MLPClassifier(epochs=5, seed=9).fit(X, y).predict_proba(X)
    np.testing.assert_allclose(a, b)


def test_mlp_parameter_count(toy_classification):
    X, y = toy_classification
    model = MLPClassifier(hidden=(8,), epochs=2).fit(X, y)
    # 4*8 + 8 + 8*1 + 1 = 49
    assert model.n_parameters == 49


def test_mlp_feature_width_check(toy_classification):
    X, y = toy_classification
    model = MLPClassifier(epochs=2).fit(X, y)
    with pytest.raises(DataError, match="features"):
        model.predict_proba(X[:, :2])


def test_mlp_validation():
    with pytest.raises(DataError):
        MLPClassifier(hidden=())
    with pytest.raises(DataError):
        MLPClassifier(hidden=(0,))


def test_all_models_require_fit(toy_classification):
    X, _ = toy_classification
    for model in (RandomForestClassifier(n_trees=2), GaussianNaiveBayes(),
                  KNeighborsClassifier(), MLPClassifier()):
        with pytest.raises(NotFittedError):
            model.predict_proba(X)
