"""Unit tests for the fairness audit report."""

import numpy as np
import pytest

from repro.fairness.report import audit_decisions, audit_model
from repro.learn import LogisticRegression, TableClassifier

GROUP = np.array(["A"] * 4 + ["B"] * 4, dtype=object)
Y_TRUE = np.array([1, 1, 0, 0, 1, 1, 0, 0], dtype=float)
Y_PRED = np.array([1, 1, 1, 0, 1, 0, 0, 0], dtype=float)


def test_audit_decisions_fields():
    report = audit_decisions(Y_TRUE, Y_PRED, GROUP)
    assert report.groups == ("A", "B")
    assert report.selection_rates["A"] == pytest.approx(0.75)
    assert report.statistical_parity_difference == pytest.approx(0.5)
    assert report.disparate_impact_ratio == pytest.approx(1 / 3)
    assert not report.passes_four_fifths


def test_audit_decisions_summary_and_worst():
    report = audit_decisions(Y_TRUE, Y_PRED, GROUP)
    summary = report.summary()
    assert set(summary) == {
        "statistical_parity_difference", "disparate_impact_ratio",
        "equal_opportunity_difference", "equalized_odds_difference",
        "predictive_parity_difference", "accuracy_difference",
    }
    name, value = report.worst_metric()
    assert value == max(
        v for k, v in summary.items() if k != "disparate_impact_ratio"
    )


def test_render_contains_verdict():
    report = audit_decisions(Y_TRUE, Y_PRED, GROUP)
    text = report.render()
    assert "FAIL" in text
    assert "four-fifths" in text
    fair = audit_decisions(Y_TRUE, np.array([1, 0, 1, 0, 1, 0, 1, 0], float), GROUP)
    assert "PASS" in fair.render()


def test_audit_model_uses_schema_sensitive(credit_tables):
    train, test = credit_tables
    model = TableClassifier(LogisticRegression()).fit(train)
    report = audit_model(model, test)
    assert report.sensitive == "group"
    assert report.disparate_impact_ratio < 0.95  # bias visible
    assert report.calibration_gaps  # probabilities supplied


def test_audit_model_custom_threshold(credit_tables):
    train, test = credit_tables
    model = TableClassifier(LogisticRegression()).fit(train)
    strict = audit_model(model, test, threshold=0.9)
    lax = audit_model(model, test, threshold=0.1)
    assert (sum(strict.selection_rates.values())
            < sum(lax.selection_rates.values()))
