"""The parallel engine: determinism across n_jobs/backends, error context.

The contract under test is the one :mod:`repro.parallel` advertises:
``n_jobs`` is a wall-clock knob only — every parallelised API must
return bit-identical results for any worker count and backend — and a
worker crash must surface on the coordinator carrying the index and
repr of the task that died.
"""

import numpy as np
import pytest

from repro import obs
from repro.accuracy.bootstrap import bootstrap_ci, bootstrap_paired_ci
from repro.accuracy.forking_paths import hunt_spurious_predictors
from repro.exceptions import DataError
from repro.learn.linear import LogisticRegression
from repro.learn.metrics import roc_auc
from repro.learn.model_selection import cross_val_score, grid_search
from repro.parallel import (
    BACKENDS,
    ParallelExecutor,
    ParallelTaskError,
    pmap,
    resolve_n_jobs,
    spawn_rngs,
    spawn_seeds,
)
from repro.transparency.importance import permutation_importance
from repro.transparency.shapley import ShapleyExplainer


def _square(task):
    return task * task


def _explode_on_13(task):
    if task == 13:
        raise ValueError("unlucky task")
    return task


def _make_logreg(l2):
    return LogisticRegression(l2=l2)


@pytest.fixture
def fitted_model(rng):
    X = rng.standard_normal((150, 12))
    w = rng.standard_normal(12)
    y = (X @ w + 0.5 * rng.standard_normal(150) > 0).astype(np.float64)
    return LogisticRegression().fit(X, y), X, y


# -- executor mechanics -----------------------------------------------------

def test_pmap_preserves_task_order_on_every_backend():
    tasks = list(range(97))
    expected = [t * t for t in tasks]
    for backend in BACKENDS:
        for n_jobs in (1, 2, 4):
            assert pmap(_square, tasks, n_jobs=n_jobs, backend=backend,
                        chunk_size=5) == expected


def test_pmap_empty_and_single_task():
    assert pmap(_square, [], n_jobs=4) == []
    assert pmap(_square, [7], n_jobs=4) == [49]


def test_executor_rejects_bad_configuration():
    with pytest.raises(DataError):
        ParallelExecutor(backend="gpu")
    with pytest.raises(DataError):
        ParallelExecutor(chunk_size=0)
    with pytest.raises(DataError):
        ParallelExecutor(retries=-1)
    with pytest.raises(DataError):
        ParallelExecutor(n_jobs=0)


def test_resolve_n_jobs_env_and_all_cores(monkeypatch):
    monkeypatch.delenv("REPRO_N_JOBS", raising=False)
    assert resolve_n_jobs(None) == 1
    monkeypatch.setenv("REPRO_N_JOBS", "3")
    assert resolve_n_jobs(None) == 3
    assert resolve_n_jobs(2) == 2  # explicit argument wins over the env
    monkeypatch.setenv("REPRO_N_JOBS", "many")
    with pytest.raises(DataError):
        resolve_n_jobs(None)
    assert resolve_n_jobs(-1) >= 1


def test_bounded_inflight_still_covers_all_chunks():
    tasks = list(range(200))
    executor = ParallelExecutor(n_jobs=2, chunk_size=3, max_inflight=2)
    assert executor.map(_square, tasks) == [t * t for t in tasks]


def test_telemetry_records_chunks_tasks_and_spans():
    telemetry = obs.configure()
    try:
        pmap(_square, list(range(40)), n_jobs=2, chunk_size=10,
             name="testmap")
        assert telemetry.metrics.counter("testmap.tasks").value == 40.0
        assert telemetry.metrics.counter("testmap.chunks").value == 4.0
        chunk_spans = [s for s in telemetry.tracer.spans
                       if s.name == "testmap.chunk"]
        assert len(chunk_spans) == 4
        assert all(s.finished for s in chunk_spans)
        assert sorted(s.attributes["chunk"] for s in chunk_spans) == [0, 1, 2, 3]
    finally:
        obs.reset()


# -- worker crashes ---------------------------------------------------------

@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_worker_crash_surfaces_task_context(backend):
    with pytest.raises(ParallelTaskError) as excinfo:
        pmap(_explode_on_13, list(range(30)), n_jobs=2, backend=backend,
             chunk_size=4)
    error = excinfo.value
    assert error.task_index == 13
    assert error.task_repr == "13"
    assert error.backend == backend
    assert "ValueError" in str(error)
    assert "unlucky task" in error.worker_traceback


def test_worker_crash_chains_original_exception():
    with pytest.raises(ParallelTaskError) as excinfo:
        pmap(_explode_on_13, list(range(30)), n_jobs=2, backend="thread")
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_retries_recover_nothing_for_deterministic_failures():
    telemetry = obs.configure()
    try:
        executor = ParallelExecutor(n_jobs=2, retries=2, chunk_size=4,
                                    name="retrying")
        with pytest.raises(ParallelTaskError):
            executor.map(_explode_on_13, list(range(30)))
        assert telemetry.metrics.counter("retrying.retries").value == 2.0
        assert telemetry.metrics.counter("retrying.errors").value == 1.0
    finally:
        obs.reset()


# -- RNG spawning -----------------------------------------------------------

def test_spawn_rngs_deterministic_and_independent():
    first = [r.integers(0, 1 << 30) for r in
             spawn_rngs(np.random.default_rng(5), 4)]
    second = [r.integers(0, 1 << 30) for r in
              spawn_rngs(np.random.default_rng(5), 4)]
    assert first == second
    assert len(set(first)) == 4  # astronomically unlikely to collide


def test_spawn_seeds_validation(rng):
    with pytest.raises(DataError):
        spawn_seeds(rng, -1)
    assert spawn_seeds(rng, 0) == []


# -- determinism suite: identical outputs for n_jobs in {1, 2, 4} -----------

@pytest.mark.parametrize("backend", ["thread", "process"])
def test_bootstrap_ci_identical_across_n_jobs(backend):
    values = np.random.default_rng(1).normal(5.0, 2.0, 250)
    baseline = bootstrap_ci(values, np.mean, np.random.default_rng(7),
                            n_resamples=120, n_jobs=1)
    for n_jobs in (2, 4):
        result = bootstrap_ci(values, np.mean, np.random.default_rng(7),
                              n_resamples=120, n_jobs=n_jobs,
                              backend=backend)
        assert result == baseline  # frozen dataclass: field-exact equality


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_shapley_identical_across_n_jobs(backend, fitted_model):
    model, X, _ = fitted_model
    explainer = ShapleyExplainer(model, X[:25], exact_limit=4)
    baseline = explainer.explain(X[0], np.random.default_rng(11),
                                 n_permutations=20, n_jobs=1)
    for n_jobs in (2, 4):
        result = explainer.explain(X[0], np.random.default_rng(11),
                                   n_permutations=20, n_jobs=n_jobs,
                                   backend=backend)
        assert np.array_equal(result.values, baseline.values)
        assert result.base_value == baseline.base_value
        assert result.prediction == baseline.prediction


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_grid_search_identical_across_n_jobs(backend, fitted_model):
    _, X, y = fitted_model
    grid = {"l2": [0.01, 1.0, 100.0]}
    baseline = grid_search(_make_logreg, grid, X, y, 3,
                           np.random.default_rng(13), n_jobs=1)
    for n_jobs in (2, 4):
        result = grid_search(_make_logreg, grid, X, y, 3,
                             np.random.default_rng(13), n_jobs=n_jobs,
                             backend=backend)
        assert result.best_params == baseline.best_params
        assert result.best_score == baseline.best_score
        for (params_a, cv_a), (params_b, cv_b) in zip(baseline.trials,
                                                      result.trials):
            assert params_a == params_b
            assert np.array_equal(cv_a.scores, cv_b.scores)


def test_permutation_importance_identical_across_n_jobs(fitted_model):
    model, X, y = fitted_model
    baseline = permutation_importance(model, X, y,
                                      np.random.default_rng(17),
                                      n_repeats=3, n_jobs=1)
    result = permutation_importance(model, X, y, np.random.default_rng(17),
                                    n_repeats=3, n_jobs=4)
    assert np.array_equal(result.importances, baseline.importances)
    assert np.array_equal(result.stds, baseline.stds)


def test_spurious_hunt_identical_across_n_jobs():
    g = np.random.default_rng(19)
    response = (g.random(120) < 0.1).astype(np.float64)
    predictors = g.standard_normal((120, 30))
    baseline = hunt_spurious_predictors(response, predictors, n_jobs=1)
    result = hunt_spurious_predictors(response, predictors, n_jobs=4)
    assert np.array_equal(result.p_values, baseline.p_values)
    assert result.discoveries == baseline.discoveries


def test_cross_val_score_identical_with_explicit_folds(fitted_model):
    _, X, y = fitted_model
    baseline = cross_val_score(LogisticRegression(), X, y, 4,
                               np.random.default_rng(23), n_jobs=1)
    result = cross_val_score(LogisticRegression(), X, y, 4,
                             np.random.default_rng(23), n_jobs=4)
    assert np.array_equal(result.scores, baseline.scores)
    with pytest.raises(DataError):
        cross_val_score(LogisticRegression(), X, y, 4)  # no rng, no folds


def test_grid_search_candidates_share_one_fold_split(fitted_model):
    # Duplicate grid values must produce duplicate CV results — only
    # possible when every candidate is scored on the same split.
    _, X, y = fitted_model
    result = grid_search(_make_logreg, {"l2": [1.0, 1.0]}, X, y, 3,
                         np.random.default_rng(29))
    (_, first), (_, second) = result.trials
    assert np.array_equal(first.scores, second.scores)


# -- bootstrap_paired_ci exception policy -----------------------------------

def _auc_metric(y_true, y_pred):
    return roc_auc(y_true, y_pred)


def test_paired_ci_counts_degenerate_skips():
    # A tiny, heavily imbalanced sample yields some single-class
    # resamples; AUC raises on those and they must be counted, not
    # silently vanish.
    g = np.random.default_rng(31)
    y_true = np.array([1.0] + [0.0] * 11)
    y_pred = g.random(12)
    interval = bootstrap_paired_ci(y_true, y_pred, _auc_metric,
                                   np.random.default_rng(37),
                                   n_resamples=200)
    assert interval.n_skipped > 0
    assert interval.n_resamples + interval.n_skipped == 200


def _buggy_metric(y_true, y_pred):
    raise RuntimeError("metric bug, not a degenerate resample")


def test_paired_ci_reraises_unexpected_metric_errors(rng):
    # Serially the metric's own exception propagates raw; in parallel it
    # arrives wrapped with task context, chaining the original.
    with pytest.raises(RuntimeError):
        bootstrap_paired_ci(np.arange(20.0), np.arange(20.0), _buggy_metric,
                            rng, n_resamples=50, n_jobs=1)
    with pytest.raises(ParallelTaskError) as excinfo:
        bootstrap_paired_ci(np.arange(20.0), np.arange(20.0), _buggy_metric,
                            rng, n_resamples=50, n_jobs=2)
    assert isinstance(excinfo.value.__cause__, RuntimeError)


def test_paired_ci_parallel_matches_serial_including_skips():
    g = np.random.default_rng(41)
    y_true = (g.random(40) < 0.3).astype(np.float64)
    y_pred = g.random(40)
    serial = bootstrap_paired_ci(y_true, y_pred, _auc_metric,
                                 np.random.default_rng(43), n_resamples=150)
    parallel = bootstrap_paired_ci(y_true, y_pred, _auc_metric,
                                   np.random.default_rng(43),
                                   n_resamples=150, n_jobs=4)
    assert parallel == serial
