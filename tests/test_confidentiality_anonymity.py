"""Unit tests for anonymisation, pseudonymisation, attacks, and risk."""

import numpy as np
import pytest

from repro.confidentiality.anonymity import (
    MondrianAnonymizer,
    equivalence_classes,
    generalization_information_loss,
    k_anonymity_level,
    l_diversity_level,
    t_closeness_level,
)
from repro.confidentiality.attacks import (
    linkage_attack,
    membership_inference_on_mean,
    theoretical_membership_advantage,
)
from repro.confidentiality.pseudonym import (
    Pseudonymizer,
    drop_identifiers,
    redact_for_release,
)
from repro.confidentiality.risk import assess_risk, risk_reduction
from repro.data.schema import ColumnRole, categorical
from repro.data.synth import CensusIncomeGenerator
from repro.exceptions import AnonymityError, DataError


@pytest.fixture
def census(rng):
    return CensusIncomeGenerator().generate(800, rng)


def test_equivalence_classes(small_table):
    classes = equivalence_classes(small_table, ["city"])
    assert set(classes) == {("north",), ("south",)}
    assert len(classes[("north",)]) == 3


def test_k_anonymity_level(small_table, census):
    assert k_anonymity_level(small_table, ["city"]) == 3
    # Census QIs are near-unique raw.
    assert k_anonymity_level(census) == 1


def test_mondrian_achieves_k(census):
    for k in (5, 20):
        anonymized = MondrianAnonymizer(k=k).anonymize(census)
        assert k_anonymity_level(anonymized) >= k


def test_mondrian_only_touches_quasi_identifiers(census):
    anonymized = MondrianAnonymizer(k=10).anonymize(census)
    np.testing.assert_allclose(
        anonymized["education_years"], census["education_years"]
    )
    np.testing.assert_allclose(anonymized["high_income"], census["high_income"])
    # QI columns became categorical generalisations.
    assert anonymized.schema["age"].ctype.value == "categorical"
    assert anonymized.schema["age"].role is ColumnRole.QUASI_IDENTIFIER


def test_mondrian_numeric_labels_are_ranges(census):
    anonymized = MondrianAnonymizer(k=10).anonymize(census)
    label = str(anonymized["age"][0])
    low, separator, high = label.partition("..")
    assert separator == ".."
    assert float(low) <= float(high)


def test_mondrian_larger_k_loses_more_information(census):
    coarse = MondrianAnonymizer(k=100).anonymize(census)
    fine = MondrianAnonymizer(k=5).anonymize(census)
    assert (generalization_information_loss(census, coarse)
            > generalization_information_loss(census, fine))


def test_mondrian_validation(census, small_table):
    with pytest.raises(AnonymityError):
        MondrianAnonymizer(k=1)
    with pytest.raises(AnonymityError):
        MondrianAnonymizer(k=1000).anonymize(small_table)
    from repro.data.table import Table

    no_qi = Table.from_dict({"x": [1.0, 2.0, 3.0]})
    with pytest.raises(AnonymityError, match="quasi-identifier"):
        MondrianAnonymizer(k=2).anonymize(no_qi)


def test_l_diversity_and_t_closeness(census):
    anonymized = MondrianAnonymizer(k=25).anonymize(census)
    diversity = l_diversity_level(anonymized, "sex")
    assert diversity >= 1
    closeness = t_closeness_level(anonymized, "sex")
    assert 0.0 <= closeness <= 1.0
    # Bigger classes track the global distribution more closely.
    small_k = MondrianAnonymizer(k=5).anonymize(census)
    assert (t_closeness_level(anonymized, "sex")
            <= t_closeness_level(small_k, "sex") + 0.05)


# -- pseudonymisation ------------------------------------------------------------------

def test_pseudonymizer_consistent_and_keyed():
    worker = Pseudonymizer(key=b"secret")
    assert worker.pseudonym("alice") == worker.pseudonym("alice")
    assert worker.pseudonym("alice") != worker.pseudonym("bob")
    other_key = Pseudonymizer(key=b"other")
    assert worker.pseudonym("alice") != other_key.pseudonym("alice")


def test_pseudonymize_table(small_table):
    worker = Pseudonymizer(key=b"k")
    result = worker.pseudonymize(small_table)
    assert result["ssn"][0].startswith("p_")
    assert result.schema["ssn"].role is ColumnRole.IDENTIFIER
    # Same input -> same token (joins survive).
    again = worker.pseudonymize(small_table)
    assert (result["ssn"] == again["ssn"]).all()


def test_rekeyed_breaks_linkability(small_table):
    worker = Pseudonymizer()
    fresh = worker.rekeyed()
    a = worker.pseudonymize(small_table)["ssn"]
    b = fresh.pseudonymize(small_table)["ssn"]
    assert not (a == b).any()


def test_pseudonymizer_validation(small_table):
    with pytest.raises(DataError):
        Pseudonymizer(token_length=4)
    from repro.data.table import Table

    plain = Table.from_dict({"x": [1.0]})
    with pytest.raises(DataError, match="identifier"):
        Pseudonymizer().pseudonymize(plain)


def test_drop_identifiers(small_table):
    assert "ssn" not in drop_identifiers(small_table)
    from repro.data.table import Table

    plain = Table.from_dict({"x": [1.0]})
    assert drop_identifiers(plain) is plain


def test_redact_for_release(credit_tables):
    train, _ = credit_tables
    released = redact_for_release(train)
    # Oracle column gone.
    assert "qualified" not in released
    assert "approved" in released


# -- attacks --------------------------------------------------------------------------

def _released_with_ids(census):
    return census.with_column(
        categorical("uid", role=ColumnRole.IDENTIFIER),
        [f"u{i}" for i in range(census.n_rows)],
    )


def test_linkage_attack_on_raw_data(census):
    released = _released_with_ids(census)
    auxiliary = released.select(
        ["age", "occupation", "zipcode", "uid"]
    ).rename({"uid": "name"})
    result = linkage_attack(
        released, auxiliary, ["age", "occupation", "zipcode"], "uid", "name"
    )
    assert result.reidentification_rate > 0.9
    assert result.n_unique_matches >= result.n_correct


def test_linkage_attack_defeated_by_mondrian(census):
    released = _released_with_ids(census)
    auxiliary = released.select(
        ["age", "occupation", "zipcode", "uid"]
    ).rename({"uid": "name"})
    anonymized = MondrianAnonymizer(k=10).anonymize(released)
    result = linkage_attack(
        anonymized, auxiliary, ["age", "occupation", "zipcode"], "uid", "name"
    )
    assert result.reidentification_rate == 0.0


def test_linkage_attack_validation(census):
    with pytest.raises(DataError):
        linkage_attack(census, census, ["nope"], "age", "age")


def test_membership_inference_advantage_grows_with_epsilon(rng):
    values = rng.normal(50.0, 10.0, 200)
    weak = membership_inference_on_mean(
        values, 99.0, 0.05, rng, 0.0, 100.0, n_trials=800
    )
    strong = membership_inference_on_mean(
        values, 99.0, 20.0, rng, 0.0, 100.0, n_trials=800
    )
    assert strong.advantage > weak.advantage
    assert strong.advantage > 0.3


def test_membership_inference_bounded_at_low_epsilon(rng):
    values = rng.normal(50.0, 10.0, 200)
    result = membership_inference_on_mean(
        values, 99.0, 0.1, rng, 0.0, 100.0, n_trials=3000
    )
    bound = theoretical_membership_advantage(0.1)
    # Empirical advantage within sampling noise of the DP bound.
    assert result.advantage <= bound + 0.05


def test_theoretical_advantage_endpoints():
    assert theoretical_membership_advantage(0.0) == 0.0
    assert theoretical_membership_advantage(10.0) > 0.99


# -- risk ------------------------------------------------------------------------------

def test_risk_profile_raw_vs_anonymized(census):
    raw = assess_risk(census)
    assert raw.k_anonymity == 1
    assert raw.unique_row_fraction > 0.5
    assert raw.prosecutor_risk == 1.0
    anonymized = MondrianAnonymizer(k=10).anonymize(census)
    safe = assess_risk(anonymized)
    assert safe.k_anonymity >= 10
    assert safe.prosecutor_risk <= 0.1
    assert safe.unique_row_fraction == 0.0
    reduction = risk_reduction(raw, safe)
    assert reduction["prosecutor_risk"] > 0.8
    assert "k=" in safe.render()


def test_journalist_risk_definition(small_table):
    profile = assess_risk(small_table, ["city"])
    # Two classes over six rows.
    assert profile.journalist_risk == pytest.approx(2 / 6)
