"""Unit tests for the process-mining substrate."""

import numpy as np
import pytest

from repro.confidentiality import PrivacyAccountant
from repro.exceptions import DataError, PrivacyBudgetError
from repro.process import (
    END,
    START,
    EventLog,
    OrderProcessGenerator,
    ProcessModel,
    Trace,
    directly_follows_counts,
    discover_dfg_model,
    discover_from_counts,
    dp_directly_follows,
    dp_discover_model,
    evaluate,
    k_anonymous_log,
    trace_fitness,
    variant_uniqueness,
)


@pytest.fixture
def tiny_log():
    return EventLog([
        Trace("c1", ("a", "b", "c")),
        Trace("c2", ("a", "b", "c")),
        Trace("c3", ("a", "c")),
    ])


@pytest.fixture
def order_log(rng):
    return OrderProcessGenerator(noise=0.0).generate(400, rng)


# -- log --------------------------------------------------------------------

def test_trace_basics():
    trace = Trace("c1", ("a", "b"), (1.0, 3.5))
    assert len(trace) == 2
    assert trace.duration == 2.5
    assert trace.variant == ("a", "b")
    with pytest.raises(DataError):
        Trace("bad", ("a",), (1.0, 2.0))


def test_log_statistics(tiny_log):
    stats = tiny_log.statistics()
    assert stats["n_cases"] == 3
    assert stats["n_events"] == 8
    assert stats["n_variants"] == 2
    assert tiny_log.activities == ["a", "b", "c"]
    assert tiny_log.variants()[("a", "b", "c")] == 2
    assert tiny_log.variant_of("c3") == ("a", "c")
    with pytest.raises(DataError):
        tiny_log.variant_of("ghost")


def test_log_rejects_duplicate_cases():
    with pytest.raises(DataError):
        EventLog([Trace("c1", ("a",)), Trace("c1", ("b",))])


def test_log_table_roundtrip(tiny_log):
    table = tiny_log.to_table()
    assert table.n_rows == tiny_log.n_events
    rebuilt = EventLog.from_table(table, "case_id", "activity", "timestamp")
    assert rebuilt.variants() == tiny_log.variants()
    assert len(rebuilt) == len(tiny_log)


def test_from_table_orders_by_timestamp():
    from repro.data.table import Table

    table = Table.from_dict({
        "case": ["c", "c", "c"],
        "act": ["third", "first", "second"],
        "t": [3.0, 1.0, 2.0],
    })
    log = EventLog.from_table(table, "case", "act", "t")
    assert log.traces[0].activities == ("first", "second", "third")


# -- model ------------------------------------------------------------------------

def test_model_structure(order_log):
    model = OrderProcessGenerator().true_model()
    assert model.start_activities == {"receive_order"}
    assert model.end_activities == {"receive_payment", "notify_customer"}
    assert "check_order" in model.successors("receive_order")
    assert model.allows("check_order", "approve_order")
    assert not model.allows("approve_order", "check_order")


def test_model_accepts(order_log):
    model = OrderProcessGenerator().true_model()
    for trace in order_log:
        assert model.accepts(trace.activities)
    assert not model.accepts(("ship_goods", "receive_order"))
    assert not model.accepts(())


def test_model_simulation_stays_in_language(rng):
    model = OrderProcessGenerator().true_model()
    for _ in range(50):
        assert model.accepts(model.simulate(rng))


def test_model_render():
    model = OrderProcessGenerator().true_model()
    text = model.render(top=3)
    assert "process model" in text
    assert "->" in text


def test_model_rejects_negative_weights():
    with pytest.raises(DataError):
        ProcessModel({("a", "b"): -1.0})


# -- discovery ------------------------------------------------------------------------

def test_directly_follows_counts(tiny_log):
    counts = directly_follows_counts(tiny_log)
    assert counts[(START, "a")] == 3
    assert counts[("a", "b")] == 2
    assert counts[("a", "c")] == 1
    assert counts[("c", END)] == 3


def test_discovery_recovers_true_model(order_log):
    mined = discover_dfg_model(order_log)
    true_edges = set(OrderProcessGenerator().true_model().edges)
    assert set(mined.edges) == true_edges


def test_noise_filtering_removes_corruption(rng):
    noisy_log = OrderProcessGenerator(noise=0.15).generate(600, rng)
    raw = discover_dfg_model(noisy_log, noise_threshold=0.0)
    filtered = discover_dfg_model(noisy_log, noise_threshold=0.05)
    true_edges = set(OrderProcessGenerator().true_model().edges)
    assert len(set(filtered.edges) - true_edges) < len(set(raw.edges) - true_edges)


def test_discovery_validation(order_log):
    with pytest.raises(DataError):
        discover_dfg_model(EventLog([]))
    with pytest.raises(DataError):
        discover_dfg_model(order_log, noise_threshold=2.0)


def test_discover_from_counts():
    model = discover_from_counts({("a", "b"): 5.0, ("b", "c"): 0.5},
                                 minimum_weight=1.0)
    assert model.allows("a", "b")
    assert not model.allows("b", "c")
    with pytest.raises(DataError):
        discover_from_counts({("a", "b"): 0.1}, minimum_weight=1.0)


# -- conformance ----------------------------------------------------------------------

def test_perfect_conformance(order_log):
    model = OrderProcessGenerator().true_model()
    result = evaluate(order_log, model)
    assert result.fitness == 1.0
    assert result.n_perfect_traces == len(order_log)
    assert 0.0 < result.precision <= 1.0
    assert result.f_score > 0.9


def test_fitness_penalises_unmodelled_behaviour():
    model = ProcessModel({
        (START, "a"): 1.0, ("a", "b"): 1.0, ("b", END): 1.0,
    })
    assert trace_fitness(("a", "b"), model) == 1.0
    # One illegal move out of three: a -> c.
    assert trace_fitness(("a", "c"), model) == pytest.approx(1.0 / 3.0)


def test_flower_model_has_low_precision(order_log):
    activities = OrderProcessGenerator().true_model().activities
    flower_edges = {(a, b): 1.0 for a in activities for b in activities}
    for activity in activities:
        flower_edges[(START, activity)] = 1.0
        flower_edges[(activity, END)] = 1.0
    flower = ProcessModel(flower_edges)
    true_model = OrderProcessGenerator().true_model()
    flower_result = evaluate(order_log, flower)
    true_result = evaluate(order_log, true_model)
    assert flower_result.fitness == 1.0           # explains everything
    assert flower_result.precision < true_result.precision  # says nothing


# -- privacy ----------------------------------------------------------------------------

def test_dp_counts_noisy_but_centered(order_log, rng):
    accountant = PrivacyAccountant(100.0)
    exact = directly_follows_counts(order_log)
    draws = [
        dp_directly_follows(order_log, 5.0, accountant, rng)
        for _ in range(10)
    ]
    key = (START, "receive_order")
    mean_noisy = np.mean([draw[key] for draw in draws])
    assert mean_noisy == pytest.approx(exact[key], rel=0.1)


def test_dp_discovery_recovers_structure_at_high_epsilon(order_log, rng):
    accountant = PrivacyAccountant(100.0)
    model = dp_discover_model(order_log, 20.0, accountant, rng)
    true_edges = set(OrderProcessGenerator().true_model().edges)
    recovered = len(set(model.edges) & true_edges) / len(true_edges)
    assert recovered > 0.9


def test_dp_discovery_charges_budget(order_log, rng):
    accountant = PrivacyAccountant(1.0)
    dp_discover_model(order_log, 1.0, accountant, rng)
    with pytest.raises(PrivacyBudgetError):
        dp_discover_model(order_log, 1.0, accountant, rng)


def test_k_anonymous_log_suppresses_unique_variants(rng):
    log = OrderProcessGenerator(noise=0.2).generate(300, rng)
    assert variant_uniqueness(log) > 0.0
    released, info = k_anonymous_log(log, k=5)
    assert variant_uniqueness(released) == 0.0
    frequencies = released.variants()
    assert all(count >= 5 for count in frequencies.values())
    assert info.suppression_rate > 0.0
    assert info.n_released_traces == len(released)
    # Case ids are pseudonymised.
    assert all(trace.case_id.startswith("p_") for trace in released)


def test_k_anonymous_log_validation(tiny_log):
    with pytest.raises(DataError):
        k_anonymous_log(tiny_log, k=0)


def test_variant_uniqueness_empty():
    assert variant_uniqueness(EventLog([])) == 0.0
