"""Unit tests for the paradox and experiment generators."""

import numpy as np
import pytest

from repro.data.synth import (
    AdCampaignGenerator,
    AdmissionsGenerator,
    TreatmentParadoxGenerator,
)
from repro.exceptions import DataError


def group_rate(table, group, outcome):
    subset = table.filter(table["group"] == group)
    return subset[outcome].mean()


def test_admissions_paradox_materialises(rng):
    table = AdmissionsGenerator(within_department_edge=0.06).generate(30000, rng)
    # Aggregate favours A...
    assert group_rate(table, "A", "admitted") > group_rate(table, "B", "admitted") + 0.05
    # ...but every department favours B.
    for _, dept in table.group_by("department").items():
        rate_a = dept.filter(dept["group"] == "A")["admitted"].mean()
        rate_b = dept.filter(dept["group"] == "B")["admitted"].mean()
        assert rate_b > rate_a - 0.02


def test_admissions_rates_and_mix_are_valid():
    generator = AdmissionsGenerator(n_departments=5)
    rates = generator.department_rates()
    assert len(rates) == 5
    for rate_a, rate_b in rates.values():
        assert 0.0 < rate_a < 1.0
        assert rate_b > rate_a
    mix = generator.application_mix()
    assert sum(a for a, _ in mix.values()) == pytest.approx(1.0)
    assert sum(b for _, b in mix.values()) == pytest.approx(1.0)


def test_admissions_validation():
    with pytest.raises(DataError):
        AdmissionsGenerator(n_departments=1)
    with pytest.raises(DataError):
        AdmissionsGenerator(within_department_edge=0.5)


def test_treatment_paradox_materialises(rng):
    table = TreatmentParadoxGenerator(treatment_benefit=0.05).generate(30000, rng)
    treated = table.filter(table["treated"] == 1.0)
    control = table.filter(table["treated"] == 0.0)
    # Aggregate: treatment looks harmful.
    assert treated["recovered"].mean() < control["recovered"].mean()
    # Within each severity stratum: treatment helps.
    for _, stratum in table.group_by("severity").items():
        t = stratum.filter(stratum["treated"] == 1.0)["recovered"].mean()
        c = stratum.filter(stratum["treated"] == 0.0)["recovered"].mean()
        assert t > c - 0.02


def test_ad_campaign_rct_is_unconfounded(rng):
    generator = AdCampaignGenerator(true_lift=0.4, confounding=2.0)
    rct = generator.generate_rct(20000, rng)
    naive = (rct.filter(rct["exposed"] == 1.0)["purchase"].mean()
             - rct.filter(rct["exposed"] == 0.0)["purchase"].mean())
    assert naive == pytest.approx(generator.true_ate(rct), abs=0.02)


def test_ad_campaign_observational_is_confounded(rng):
    generator = AdCampaignGenerator(true_lift=0.4, confounding=2.0)
    obs = generator.generate_observational(20000, rng)
    naive = (obs.filter(obs["exposed"] == 1.0)["purchase"].mean()
             - obs.filter(obs["exposed"] == 0.0)["purchase"].mean())
    assert naive > generator.true_ate(obs) + 0.05


def test_ad_campaign_zero_confounding_behaves_like_rct(rng):
    generator = AdCampaignGenerator(true_lift=0.4, confounding=0.0)
    obs = generator.generate_observational(20000, rng)
    naive = (obs.filter(obs["exposed"] == 1.0)["purchase"].mean()
             - obs.filter(obs["exposed"] == 0.0)["purchase"].mean())
    assert naive == pytest.approx(generator.true_ate(obs), abs=0.02)


def test_ad_campaign_potential_outcomes_are_consistent(rng):
    table = AdCampaignGenerator().generate_rct(2000, rng)
    exposed = table["exposed"] == 1.0
    np.testing.assert_allclose(
        table["purchase"][exposed], table["purchase_if_exposed"][exposed]
    )
    np.testing.assert_allclose(
        table["purchase"][~exposed], table["purchase_if_not"][~exposed]
    )


def test_ad_campaign_monotone_lift(rng):
    table = AdCampaignGenerator(true_lift=0.8).generate_rct(2000, rng)
    # Positive lift never turns a buyer into a non-buyer (shared uniforms).
    assert np.all(table["purchase_if_exposed"] >= table["purchase_if_not"])


def test_ad_campaign_exposure_rate_validation(rng):
    with pytest.raises(DataError):
        AdCampaignGenerator().generate_rct(100, rng, exposure_rate=0.0)
