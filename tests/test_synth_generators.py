"""Unit tests for the domain dataset generators."""

import numpy as np
import pytest

from repro.data.schema import ColumnRole
from repro.data.synth import (
    CensusIncomeGenerator,
    CreditScoringGenerator,
    HiringFunnelGenerator,
    InternetMinuteGenerator,
    RecidivismGenerator,
)
from repro.data.synth.events import INTERNET_MINUTE_VOLUMES
from repro.exceptions import DataError


@pytest.mark.parametrize("generator", [
    CreditScoringGenerator(),
    CensusIncomeGenerator(),
    RecidivismGenerator(),
    HiringFunnelGenerator(),
    InternetMinuteGenerator(),
])
def test_generators_match_declared_schema(generator, rng):
    table = generator.generate(200, rng)
    assert table.n_rows == 200
    assert table.column_names == generator.schema().names


@pytest.mark.parametrize("generator_cls", [
    CreditScoringGenerator, CensusIncomeGenerator,
    RecidivismGenerator, HiringFunnelGenerator,
])
def test_generators_reject_bad_n(generator_cls, rng):
    with pytest.raises(DataError):
        generator_cls().generate(0, rng)


def test_generators_are_seed_deterministic():
    generator = CreditScoringGenerator(label_bias=0.2, proxy_strength=0.5)
    a = generator.generate(300, np.random.default_rng(7))
    b = generator.generate(300, np.random.default_rng(7))
    assert a == b


def test_credit_unbiased_labels_equal_oracle(rng):
    table = CreditScoringGenerator(label_bias=0.0).generate(500, rng)
    np.testing.assert_allclose(table["approved"], table["qualified"])


def test_credit_label_bias_lowers_group_b_rate(rng):
    biased = CreditScoringGenerator(label_bias=0.5).generate(4000, rng)
    group_b = biased.filter(biased["group"] == "B")
    assert group_b["approved"].mean() < group_b["qualified"].mean() - 0.1
    group_a = biased.filter(biased["group"] == "A")
    np.testing.assert_allclose(group_a["approved"], group_a["qualified"])


def test_credit_latent_is_group_blind(rng):
    table = CreditScoringGenerator(label_bias=0.5).generate(8000, rng)
    rate_a = table.filter(table["group"] == "A")["qualified"].mean()
    rate_b = table.filter(table["group"] == "B")["qualified"].mean()
    assert abs(rate_a - rate_b) < 0.05


def test_credit_group_fraction(rng):
    table = CreditScoringGenerator(group_b_fraction=0.2).generate(5000, rng)
    assert np.mean(table["group"] == "B") == pytest.approx(0.2, abs=0.03)
    with pytest.raises(DataError):
        CreditScoringGenerator(group_b_fraction=1.5)


def test_recidivism_policing_gap_raises_measured_rate(rng):
    fair = RecidivismGenerator(policing_gap=0.0).generate(6000, rng)
    gapped = RecidivismGenerator(policing_gap=1.0).generate(6000, rng)

    def measured_gap(table):
        rate_b = table.filter(table["group"] == "B")["reoffended"].mean()
        rate_a = table.filter(table["group"] == "A")["reoffended"].mean()
        return rate_b - rate_a

    assert abs(measured_gap(fair)) < 0.05
    assert measured_gap(gapped) > 0.05


def test_recidivism_latent_unaffected_by_gap(rng):
    gapped = RecidivismGenerator(policing_gap=1.0).generate(6000, rng)
    latent_a = gapped.filter(gapped["group"] == "A")["reoffended_latent"].mean()
    latent_b = gapped.filter(gapped["group"] == "B")["reoffended_latent"].mean()
    assert abs(latent_a - latent_b) < 0.05


def test_hiring_funnel_is_monotone(rng):
    table = HiringFunnelGenerator().generate(2000, rng)
    assert np.all(table["passed_interview"] <= table["passed_screen"])
    np.testing.assert_allclose(table["hired"], table["passed_interview"])


def test_hiring_screen_bias_hits_group_b(rng):
    biased = HiringFunnelGenerator(screen_bias=1.5).generate(8000, rng)
    rate_a = biased.filter(biased["group"] == "A")["passed_screen"].mean()
    rate_b = biased.filter(biased["group"] == "B")["passed_screen"].mean()
    assert rate_a - rate_b > 0.1


def test_census_roles(rng):
    table = CensusIncomeGenerator().generate(100, rng)
    assert table.schema.sensitive_names == ["sex"]
    assert set(table.schema.quasi_identifier_names) == {
        "age", "occupation", "zipcode"
    }


def test_census_sex_gap_parameter(rng):
    gapped = CensusIncomeGenerator(sex_gap=2.0).generate(8000, rng)
    rate_f = gapped.filter(gapped["sex"] == "female")["high_income"].mean()
    rate_m = gapped.filter(gapped["sex"] == "male")["high_income"].mean()
    assert rate_m - rate_f > 0.1


def test_internet_minute_mix_matches_paper(rng):
    generator = InternetMinuteGenerator()
    table = generator.generate(50000, rng)
    total = sum(INTERNET_MINUTE_VOLUMES.values())
    for service, volume in INTERNET_MINUTE_VOLUMES.items():
        expected = volume / total
        observed = np.mean(table["service"] == service)
        assert observed == pytest.approx(expected, abs=0.02)


def test_internet_minute_stream_scaling(rng):
    generator = InternetMinuteGenerator(scale=1e-4, minutes=2)
    assert generator.expected_events_per_minute() == pytest.approx(1380, abs=5)
    stream = generator.generate_stream(rng)
    assert stream.n_rows == generator.expected_events_per_minute() * 2
    assert stream["timestamp"].max() <= 120.0


def test_internet_minute_timestamps_sorted(rng):
    stream = InternetMinuteGenerator().generate(500, rng)
    assert np.all(np.diff(stream["timestamp"]) >= 0)


def test_generator_repr_and_params():
    generator = CreditScoringGenerator(label_bias=0.3)
    assert "label_bias=0.3" in repr(generator)
    assert generator.params()["label_bias"] == 0.3


def test_choose_respects_per_row_probabilities(rng):
    from repro.data.synth.base import choose

    n = 6000
    probabilities = np.zeros((n, 3))
    probabilities[: n // 2] = [1.0, 0.0, 0.0]
    probabilities[n // 2:] = [0.0, 0.2, 0.8]
    values = choose(["x", "y", "z"], probabilities, rng)
    assert set(values[: n // 2]) == {"x"}
    second_half = values[n // 2:]
    assert np.mean(second_half == "z") == pytest.approx(0.8, abs=0.03)
    assert "x" not in set(second_half)


def test_choose_validation(rng):
    from repro.data.synth.base import choose
    from repro.exceptions import DataError

    with pytest.raises(DataError):
        choose(["a", "b"], np.ones((4, 3)), rng)
