"""Tests for the profiling layer (repro.obs.profile)."""

import pytest

from repro import obs
from repro.exceptions import DataError
from repro.obs.profile import (
    ALLOC_ATTR,
    CPU_ATTR,
    WALL_ATTR,
    PlanProfile,
    ProfileCollector,
    Profiler,
    render_profile,
)


@pytest.fixture(autouse=True)
def _unconfigured_obs():
    obs.reset()
    yield
    obs.reset()


def span_record(name, span_id, parent_id, start, end, **attributes):
    return {
        "record": "span", "t": start, "name": name, "span_id": span_id,
        "parent_id": parent_id, "start": start, "end": end,
        "duration": end - start, "attributes": attributes,
    }


# -- aggregates over a hand-built tree ---------------------------------------


def hand_tree():
    # root [0,10] -> a [0,6] -> a1 [1,3];  root -> b [6,10]
    return [
        span_record("root", "s1", None, 0.0, 10.0),
        span_record("a", "s2", "s1", 0.0, 6.0),
        span_record("a1", "s3", "s2", 1.0, 3.0),
        span_record("b", "s4", "s1", 6.0, 10.0),
    ]


def test_aggregates_exact_self_and_total_times():
    stats = {s.name: s for s in Profiler(hand_tree()).aggregates()}
    assert stats["root"].total_s == 10.0
    assert stats["root"].self_s == 0.0          # 10 - (6 + 4)
    assert stats["a"].total_s == 6.0
    assert stats["a"].self_s == 4.0             # 6 - 2
    assert stats["a1"].self_s == 2.0
    assert stats["b"].self_s == 4.0
    assert all(s.count == 1 for s in stats.values())


def test_aggregates_sorted_by_self_time_and_merged_by_name():
    records = hand_tree() + [span_record("a1", "s5", "s4", 6.0, 9.0)]
    profiler = Profiler(records)
    stats = {s.name: s for s in profiler.aggregates()}
    assert stats["a1"].count == 2
    assert stats["a1"].total_s == 5.0           # 2 + 3
    assert stats["b"].self_s == 1.0             # 4 - 3 nested under b
    order = [s.name for s in profiler.aggregates()]
    assert order[0] == "a1"                     # 5.0 self leads


def test_aggregates_prefer_measured_wall_over_span_duration():
    # Engine node spans are recorded post-drain: duration is clock
    # ticks, the collector's wall_s attribute is the real measurement.
    records = [
        span_record("audit:x", "s1", None, 0.0, 100.0, **{WALL_ATTR: 2.5}),
    ]
    stats = Profiler(records).aggregates()
    assert stats[0].total_s == 2.5
    assert stats[0].self_s == 2.5


def test_aggregates_collect_cache_cpu_alloc_and_errors():
    records = [
        span_record("audit:x", "s1", None, 0.0, 1.0, cache="hit"),
        span_record("audit:x", "s2", None, 1.0, 2.0, cache="miss",
                    **{CPU_ATTR: 0.5, ALLOC_ATTR: 12.0}),
        span_record("audit:x", "s3", None, 2.0, 3.0, cache="uncacheable",
                    error="boom"),
    ]
    stats = Profiler(records).aggregates()[0]
    assert stats.cache == {"hit": 1, "miss": 1, "uncacheable": 1}
    assert stats.cpu_s == 0.5
    assert stats.alloc_peak_kb == 12.0
    assert stats.errors == 1


def test_orphan_spans_are_reparented_to_roots():
    records = [span_record("lost", "s9", "missing-parent", 0.0, 4.0)]
    stats = Profiler(records).aggregates()
    assert stats[0].name == "lost"
    assert stats[0].total_s == 4.0


def test_non_span_records_are_ignored():
    records = hand_tree() + [
        {"record": "metric", "kind": "counter", "name": "x", "value": 1},
        {"record": "audit", "event": "y"},
    ]
    assert len(Profiler(records).aggregates()) == 4


# -- critical path over level-parallel plans ---------------------------------


def engine_spans(n_jobs=2):
    # Level 0: two nodes (3s and 5s); level 1: one node (4s).
    # Levels are barriers: critical path = 5 + 4 = 9, work = 12.
    return [
        span_record("audit:fast", "n1", None, 0.0, 3.0,
                    cache="miss", level=0, n_jobs=n_jobs),
        span_record("audit:slow", "n2", None, 0.0, 5.0,
                    cache="miss", level=0, n_jobs=n_jobs),
        span_record("audit:tail", "n3", None, 5.0, 9.0,
                    cache="hit", level=1, n_jobs=n_jobs),
    ]


def test_plan_profile_critical_path_exact():
    profiles = Profiler(engine_spans()).plan_profiles()
    assert len(profiles) == 1
    plan = profiles[0]
    assert plan.name == "audit"
    assert plan.n_nodes == 3
    assert plan.n_levels == 2
    assert plan.total_work_s == 12.0
    assert plan.critical_path_s == 9.0
    assert plan.path == [("audit:slow", 5.0), ("audit:tail", 4.0)]
    assert plan.cache == {"hit": 1, "miss": 2}


def test_plan_profile_speedup_and_efficiency():
    plan = Profiler(engine_spans(n_jobs=2)).plan_profiles()[0]
    assert plan.theoretical_speedup == pytest.approx(12.0 / 9.0)
    # speedup (1.33) < n_jobs (2): efficiency = 1.33/2
    assert plan.parallel_efficiency == pytest.approx(12.0 / 9.0 / 2.0)
    # A serial run of a parallel-friendly shape is 100% efficient.
    serial = Profiler(engine_spans(n_jobs=1)).plan_profiles()[0]
    assert serial.parallel_efficiency == 1.0


def test_plan_profile_degenerate_zero_time_plan():
    plan = PlanProfile(name="p", n_nodes=1, n_levels=1, total_work_s=0.0,
                       critical_path_s=0.0, path=[], n_jobs=1, cache={})
    assert plan.theoretical_speedup == 1.0
    assert plan.parallel_efficiency == 1.0


def test_plans_grouped_by_run_not_merged_across_runs():
    # The same plan executed twice (two parent ids) → two profiles.
    records = []
    for run in ("r1", "r2"):
        records.append(span_record("audit.run", run, None, 0.0, 9.0))
        for record in engine_spans():
            clone = dict(record, span_id=f"{run}-{record['span_id']}",
                         parent_id=run)
            records.append(clone)
    profiles = Profiler(records).plan_profiles()
    assert len(profiles) == 2
    assert all(plan.critical_path_s == 9.0 for plan in profiles)


# -- live collector ----------------------------------------------------------


def test_collector_samples_merge_and_pop():
    collector = ProfileCollector()
    with collector.sample(("node", "x")):
        pass
    with collector.sample(("node", "x")):
        pass
    sample = collector.pop(("node", "x"))
    assert sample.count == 2
    assert sample.wall_s >= 0.0
    assert collector.pop(("node", "x")) is None


def test_collector_attributes_shape():
    collector = ProfileCollector(trace_malloc=True)
    try:
        with collector.sample("k"):
            data = [0] * 50_000
            del data
        attributes = collector.attributes("k")
        assert set(attributes) == {WALL_ATTR, CPU_ATTR, ALLOC_ATTR}
        assert attributes[ALLOC_ATTR] > 0
        assert collector.attributes("unknown") == {}
    finally:
        collector.close()


def test_collector_wrap_returns_value_and_samples():
    collector = ProfileCollector()
    wrapped = collector.wrap("w", lambda value: value * 2)
    assert wrapped(21) == 42
    assert collector.pop("w").count == 1


def test_configure_profile_attaches_and_reset_detaches_collector():
    telemetry = obs.configure(profile=True)
    assert isinstance(telemetry.collector, ProfileCollector)
    obs.reset()
    assert obs.get() is None
    assert obs.configure().collector is None   # off by default


# -- engine integration ------------------------------------------------------


def _run_plan(**configure_kwargs):
    import numpy as np

    from repro.engine import Executor, Node, Plan

    telemetry = obs.configure(**configure_kwargs)
    plan = Plan([
        Node("left", lambda inputs, rng: float(np.sum(np.arange(200.0)))),
        Node("right", lambda inputs, rng: 2.0),
        Node("join", lambda inputs, rng: inputs["left"] + inputs["right"],
             inputs=("left", "right")),
    ])
    Executor(name="demo").run(plan)
    return telemetry.to_dicts()


def test_engine_spans_profiled_when_collector_on():
    records = _run_plan(profile=True)
    node_spans = [r for r in records if r.get("record") == "span"
                  and r["name"].startswith("demo:")]
    assert len(node_spans) == 3
    for span in node_spans:
        assert WALL_ATTR in span["attributes"]
        assert CPU_ATTR in span["attributes"]
        assert "level" in span["attributes"]
        assert "n_jobs" in span["attributes"]
    profiles = Profiler(records).plan_profiles()
    assert len(profiles) == 1
    assert profiles[0].n_levels == 2
    assert (profiles[0].critical_path_s
            <= profiles[0].total_work_s + 1e-12)


def test_engine_spans_carry_no_profile_attrs_when_collector_off():
    records = _run_plan()
    node_spans = [r for r in records if r.get("record") == "span"
                  and r["name"].startswith("demo:")]
    assert len(node_spans) == 3
    for span in node_spans:
        assert WALL_ATTR not in span["attributes"]
        # The deterministic level/cache attributes are always there.
        assert "level" in span["attributes"]
        assert "cache" in span["attributes"]


# -- rendering ---------------------------------------------------------------


def test_render_profile_sections():
    text = render_profile(engine_spans())
    assert "hot nodes" in text
    assert "critical path" in text
    assert "plan 'audit'" in text
    assert "audit:slow" in text
    assert "cache efficiency" in text


def test_render_profile_rejects_non_list():
    with pytest.raises(DataError):
        render_profile({"record": "span"})


def test_render_profile_empty_records():
    assert render_profile([]) != ""   # still says there is nothing


def test_profile_cli_renders_from_file(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "run.jsonl"
    records = engine_spans()
    obs.write_jsonl(str(path), records)
    assert main(["profile", str(path)]) == 0
    out = capsys.readouterr().out
    assert "critical path" in out
    assert "audit:slow" in out
