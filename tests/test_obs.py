"""Tests for the telemetry layer (repro.obs) and its instrumentation."""

import json

import numpy as np
import pytest

from repro import obs
from repro.confidentiality.accountant import PrivacyAccountant
from repro.data.synth import CreditScoringGenerator
from repro.exceptions import DataError
from repro.learn import LogisticRegression, TableClassifier
from repro.pipeline import (
    AuditLog,
    CleanStage,
    DecideStage,
    FairnessDriftMonitor,
    Pipeline,
    PredictStage,
    ReweighStage,
    TrainStage,
    ValidateSchemaStage,
    population_stability_index,
)


@pytest.fixture(autouse=True)
def _unconfigured_obs():
    """Every test starts and ends with telemetry off."""
    obs.reset()
    yield
    obs.reset()


# -- tracing -----------------------------------------------------------------


def test_span_nesting_and_attributes():
    tracer = obs.Tracer()
    with tracer.span("root", mode="test") as root:
        with tracer.span("child") as child:
            child.set_attribute("n_rows", 10)
        with tracer.span("sibling"):
            pass
    assert root.parent_id is None
    assert child.parent_id == root.span_id
    assert root.attributes == {"mode": "test"}
    assert child.attributes == {"n_rows": 10}
    assert [s.name for s in tracer.children(root)] == ["child", "sibling"]
    assert tracer.root_spans() == [root]
    assert all(span.finished for span in tracer.spans)


def test_tick_clock_spans_are_deterministic():
    def run():
        tracer = obs.Tracer(obs.TickClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        return [(s.name, s.start, s.end) for s in tracer.spans]

    assert run() == run() == [("a", 0.0, 3.0), ("b", 1.0, 2.0)]


def test_span_decorator_and_error_attribute():
    tracer = obs.Tracer()

    @tracer.trace("work")
    def work(x):
        return x + 1

    assert work(1) == 2
    with pytest.raises(DataError):
        with tracer.span("failing"):
            raise DataError("boom")
    by_name = {span.name: span for span in tracer.spans}
    assert by_name["work"].finished
    assert by_name["failing"].attributes["error"] == "DataError"
    assert by_name["failing"].finished


def test_end_span_closes_dangling_children():
    tracer = obs.Tracer()
    root = tracer.start_span("root")
    tracer.start_span("child")
    tracer.end_span(root)
    assert all(span.finished for span in tracer.spans)
    assert tracer.active_span is None


def test_safe_attribute_is_deterministic_for_objects():
    rendered = obs.safe_attribute(TableClassifier(LogisticRegression()))
    assert rendered == "<TableClassifier>"  # no memory address
    assert obs.safe_attribute([1, 2]) == "[1, 2]"
    assert obs.safe_attribute(3.5) == 3.5


# -- metrics -----------------------------------------------------------------


def test_counter_and_labels():
    registry = obs.MetricsRegistry()
    registry.counter("alarms", kind="drift").inc()
    registry.counter("alarms", kind="drift").inc(2)
    registry.counter("alarms", kind="bias").inc()
    assert registry.counter("alarms", kind="drift").value == 3.0
    assert registry.counter("alarms", kind="bias").value == 1.0
    assert len(registry) == 2
    with pytest.raises(DataError):
        registry.counter("alarms", kind="drift").inc(-1)
    with pytest.raises(DataError):
        registry.gauge("alarms", kind="drift")  # kind clash


def test_gauge_samples():
    registry = obs.MetricsRegistry(clock=obs.TickClock())
    gauge = registry.gauge("budget")
    gauge.set(1.0)
    gauge.set(0.5)
    gauge.inc(-0.25)
    assert gauge.value == 0.25
    assert [value for _, value in gauge.samples] == [1.0, 0.5, 0.25]
    assert [t for t, _ in gauge.samples] == [0.0, 1.0, 2.0]


def test_histogram_quantiles():
    histogram = obs.Histogram("latency", buckets=(1.0, 2.0, 5.0, 10.0))
    for value in (0.5, 0.7, 1.5, 1.6, 1.7, 3.0, 3.5, 4.0, 8.0, 40.0):
        histogram.observe(value)
    assert histogram.count == 10
    assert histogram.max == 40.0
    assert histogram.min == 0.5
    assert histogram.quantile(0.5) == 2.0  # 5th obs lands in the (1,2] bucket
    assert histogram.quantile(0.95) == 40.0  # overflow bucket → exact max
    assert histogram.quantile(1.0) == 40.0
    assert histogram.mean == pytest.approx(6.45)
    record = histogram.to_dict()
    assert record["bucket_counts"] == [2, 3, 3, 1, 1]
    assert record["p50"] == 2.0
    with pytest.raises(DataError):
        obs.Histogram("empty").quantile(0.5)


def test_histogram_quantile_capped_at_max():
    histogram = obs.Histogram("one", buckets=(100.0,))
    histogram.observe(3.0)
    assert histogram.quantile(0.5) == 3.0  # bound 100 capped to exact max


def test_histogram_single_occupied_bucket_interpolates():
    # All samples in one bucket: the bucket bound would be wildly wrong,
    # so quantiles interpolate between the exact min and max instead.
    histogram = obs.Histogram("one", buckets=(10.0,))
    histogram.observe(2.0)
    histogram.observe(4.0)
    assert histogram.quantile(0.0) == 2.0
    assert histogram.quantile(0.5) == 3.0
    assert histogram.quantile(1.0) == 4.0


def test_histogram_configurable_quantiles():
    histogram = obs.Histogram("latency", buckets=(1.0, 2.0, 5.0, 10.0),
                              quantiles=(0.5, 0.99))
    for value in (0.5, 0.7, 1.5, 1.6, 1.7, 3.0, 3.5, 4.0, 8.0, 40.0):
        histogram.observe(value)
    record = histogram.to_dict()
    assert record["p99"] == 40.0           # overflow bucket → exact max
    assert record["p50"] == 2.0
    assert record["p95"] == 40.0           # p50/p95 always present
    assert histogram.quantiles == (0.5, 0.99)
    with pytest.raises(DataError):
        obs.Histogram("bad", quantiles=(1.5,))


def test_quantile_key():
    assert obs.quantile_key(0.5) == "p50"
    assert obs.quantile_key(0.99) == "p99"
    assert obs.quantile_key(0.999) == "p99.9"


def test_histogram_summary():
    histogram = obs.Histogram("latency", quantiles=(0.5, 0.9, 0.99))
    summary = histogram.summary()
    assert summary["count"] == 0
    assert summary["mean"] is None and summary["p99"] is None
    for value in (1.0, 2.0, 3.0, 4.0):
        histogram.observe(value)
    summary = histogram.summary()
    assert summary["count"] == 4
    assert summary["sum"] == 10.0
    assert summary["mean"] == 2.5
    assert summary["min"] == 1.0 and summary["max"] == 4.0
    assert set(summary) >= {"p50", "p90", "p99"}


def test_serve_stats_expose_latency_percentiles():
    import numpy as np

    from repro.data.synth import CensusIncomeGenerator
    from repro.serve import QueryServer

    rng = np.random.default_rng(0)
    server = QueryServer(workers=1, seed=0)
    server.register_table("census", CensusIncomeGenerator().generate(200, rng))
    server.register_tenant("t", epsilon_budget=10.0)
    with server:
        server.submit_batch([
            {"tenant": "t", "kind": "count", "epsilon": 0.1},
            {"tenant": "t", "kind": "count", "epsilon": 0.1},
        ])
    latency = server.stats()["latency"]
    assert latency["count"] == 2
    assert latency["p50"] >= 0.0
    assert latency["max"] >= latency["min"]


# -- configure / no-op default ----------------------------------------------


def test_unconfigured_is_none_and_instrument_noops():
    assert obs.get() is None
    assert not obs.enabled()

    calls = []

    @obs.instrument("noop.fn")
    def fn():
        calls.append(1)
        return 7

    assert fn() == 7 and calls == [1]  # runs fine with telemetry off

    telemetry = obs.configure()
    assert obs.get() is telemetry and obs.enabled()
    assert fn() == 7
    assert telemetry.metrics.histogram("noop.fn.duration").count == 1
    obs.reset()
    assert obs.get() is None


def test_unconfigured_pipeline_output_identical(credit_tables):
    train, _ = credit_tables

    def build():
        return Pipeline([
            CleanStage(),
            TrainStage(TableClassifier(LogisticRegression())),
            PredictStage(),
        ])

    plain = build().run(train, np.random.default_rng(7))
    telemetry = obs.configure()
    traced = build().run(train, np.random.default_rng(7))
    obs.reset()
    # telemetry must not leak into the run's own outputs
    assert plain.context.audit.render() == traced.context.audit.render()
    assert np.array_equal(plain.table.column("score"),
                          traced.table.column("score"))
    assert len(telemetry.tracer.spans) > 0


# -- export ------------------------------------------------------------------


def test_jsonl_round_trip(tmp_path):
    telemetry = obs.configure()
    with telemetry.tracer.span("root", kind="test"):
        with telemetry.tracer.span("inner"):
            pass
    telemetry.metrics.counter("events").inc(3)
    telemetry.metrics.gauge("level").set(0.5)
    telemetry.metrics.histogram("size", buckets=(10.0,)).observe(4.0)
    audit = AuditLog()
    audit.record("tester", "did_thing", howmany=2)

    path = tmp_path / "run.jsonl"
    written = obs.write_telemetry(str(path), telemetry, audit=audit)
    records = obs.read_telemetry(str(path))
    assert len(records) == written
    kinds = {record["record"] for record in records}
    assert kinds == {"span", "metric", "gauge_sample", "audit"}

    spans = [r for r in records if r["record"] == "span"]
    assert {s["name"] for s in spans} == {"root", "inner"}
    inner = next(s for s in spans if s["name"] == "inner")
    root = next(s for s in spans if s["name"] == "root")
    assert inner["parent_id"] == root["span_id"]
    assert root["attributes"] == {"kind": "test"}

    audits = [r for r in records if r["record"] == "audit"]
    assert audits[0]["actor"] == "tester"
    assert audits[0]["detail"] == {"howmany": "2"}

    # timed records are sorted by t
    ts = [r["t"] for r in records if "t" in r]
    assert ts == sorted(ts)


def test_read_telemetry_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json\n")
    with pytest.raises(DataError):
        obs.read_telemetry(str(path))
    path.write_text(json.dumps({"no": "record-key"}) + "\n")
    with pytest.raises(DataError):
        obs.read_telemetry(str(path))
    with pytest.raises(DataError):
        obs.read_telemetry(str(tmp_path / "missing.jsonl"))


# -- pipeline integration ----------------------------------------------------


def test_pipeline_run_emits_one_span_per_stage(tmp_path, credit_tables):
    train, _ = credit_tables
    path = tmp_path / "pipeline.jsonl"
    obs.configure(export_path=str(path))
    accountant = PrivacyAccountant(epsilon_budget=1.0)
    accountant.spend(0.25, label="release")
    stages = [
        ValidateSchemaStage(),
        CleanStage(),
        ReweighStage(),
        TrainStage(TableClassifier(LogisticRegression())),
        PredictStage(),
        DecideStage(),
    ]
    Pipeline(stages, accountant=accountant).run(
        train, np.random.default_rng(3)
    )

    records = obs.read_telemetry(str(path))
    spans = [r for r in records if r["record"] == "span"]
    roots = [s for s in spans if s["parent_id"] is None]
    assert len(roots) == 1
    assert roots[0]["name"] == "pipeline.run"
    assert roots[0]["attributes"]["n_stages"] == len(stages)
    stage_spans = [s for s in spans if s["name"].startswith("stage:")]
    assert [s["name"] for s in stage_spans] == [
        f"stage:{stage.name}" for stage in stages
    ]
    for span in stage_spans:
        assert span["parent_id"] == roots[0]["span_id"]
        assert span["attributes"]["n_rows"] > 0
        assert span["attributes"]["n_rows_in"] > 0

    gauge_samples = [r for r in records if r["record"] == "gauge_sample"]
    assert any(r["name"] == "privacy.epsilon_spent" and r["value"] == 0.25
               for r in gauge_samples)
    assert any(r["name"] == "privacy.epsilon_remaining"
               for r in gauge_samples)
    # model fit/predict histograms rode along
    histograms = {r["name"] for r in records
                  if r["record"] == "metric" and r["kind"] == "histogram"}
    assert "table_classifier.fit.duration" in histograms
    assert "table_classifier.predict.duration" in histograms
    # the audit trail is merged into the same file
    assert any(r["record"] == "audit" and r["action"] == "run_finished"
               for r in records)


def test_monitor_alarm_counters_by_kind(rng):
    telemetry = obs.configure()
    monitor = FairnessDriftMonitor(
        rng.uniform(size=500), psi_threshold=0.1, min_accuracy=0.9
    )
    scores = rng.uniform(0.5, 1.0, size=200)
    group = np.array(["A"] * 100 + ["B"] * 100)
    monitor.observe(scores, group=group, y_true=np.zeros(200))
    monitor.observe(rng.uniform(size=200))

    assert telemetry.metrics.counter("monitor.batches").value == 2.0
    assert telemetry.metrics.counter(
        "monitor.alarms", kind="population_drift"
    ).value == 1.0
    assert telemetry.metrics.counter(
        "monitor.alarms", kind="accuracy_drift"
    ).value == 1.0
    assert telemetry.metrics.histogram("monitor.psi").count == 2


# -- satellite regressions ---------------------------------------------------


def test_psi_constant_reference_no_longer_silent():
    reference = np.full(100, 0.5)
    with pytest.warns(RuntimeWarning, match="near-.?constant"):
        psi = population_stability_index(reference, np.full(50, 0.9))
    assert psi > 0.25  # the drift is now visible
    with pytest.warns(RuntimeWarning):
        same = population_stability_index(reference, np.full(50, 0.5))
    assert same == 0.0  # identical point masses genuinely agree


def test_psi_healthy_reference_unchanged(rng):
    import warnings

    reference = rng.uniform(size=1000)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        psi = population_stability_index(reference, rng.uniform(size=400))
    assert psi < 0.1


def test_audit_log_to_dicts_and_jsonl(tmp_path):
    log = AuditLog()
    log.record("alice", "approved", amount=3)
    log.record("bob", "rejected")
    dicts = log.to_dicts()
    assert [d["sequence"] for d in dicts] == [0, 1]
    assert dicts[0]["detail"] == {"amount": "3"}
    assert dicts[0]["timestamp"] is None
    path = tmp_path / "audit.jsonl"
    assert log.to_jsonl(str(path)) == 2
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines == dicts


def test_audit_log_with_clock_stamps_events():
    log = AuditLog(clock=obs.TickClock(start=100))
    event = log.record("deploy", "rollout")
    assert event.timestamp == 100.0
    assert "@100" in event.render()
    assert log.to_dicts()[0]["timestamp"] == 100.0
    # default stays timestamp-free (byte-reproducible)
    assert AuditLog().record("a", "b").timestamp is None


# -- CLI ---------------------------------------------------------------------


def test_cli_telemetry_renders_tree_and_metrics(tmp_path, capsys,
                                                credit_tables):
    from repro.cli import main

    train, _ = credit_tables
    path = tmp_path / "run.jsonl"
    obs.configure(export_path=str(path))
    Pipeline([
        CleanStage(), TrainStage(TableClassifier(LogisticRegression())),
    ]).run(train, np.random.default_rng(0))
    obs.reset()

    assert main(["telemetry", str(path)]) == 0
    out = capsys.readouterr().out
    assert "span tree:" in out
    assert "pipeline.run" in out
    assert "stage:clean" in out
    assert "table_classifier.fit.duration" in out
    assert "audit trail:" in out


def test_cli_telemetry_missing_file_is_an_error(tmp_path, capsys):
    from repro.cli import main

    assert main(["telemetry", str(tmp_path / "nope.jsonl")]) == 2
    assert "error:" in capsys.readouterr().err
