"""Unit tests for the forking-paths hunter and Simpson's-paradox detector."""

import numpy as np
import pytest

from repro.accuracy.forking_paths import (
    expected_false_positives,
    generate_noise_study,
    hunt_spurious_predictors,
)
from repro.accuracy.simpson import detect_simpsons_paradox
from repro.data.synth import AdmissionsGenerator, TreatmentParadoxGenerator
from repro.data.schema import numeric
from repro.exceptions import DataError


def test_noise_study_is_pure_noise(rng):
    response, predictors, names = generate_noise_study(300, 50, rng)
    assert predictors.shape == (300, 50)
    assert len(names) == 50
    # Response independent of predictor 0 by construction.
    assert abs(np.corrcoef(response, predictors[:, 0])[0, 1]) < 0.2


def test_hunt_finds_spurious_raw_discoveries(rng):
    response, predictors, names = generate_noise_study(400, 300, rng)
    scan = hunt_spurious_predictors(response, predictors, names)
    expected = expected_false_positives(300)
    # Raw testing "discovers" roughly alpha * p false predictors.
    assert scan.raw_false_discoveries == pytest.approx(expected, abs=12)
    assert scan.raw_false_discoveries >= 3


def test_corrections_kill_spurious_discoveries(rng):
    response, predictors, names = generate_noise_study(400, 300, rng)
    scan = hunt_spurious_predictors(response, predictors, names)
    assert scan.discoveries["bonferroni"] <= 1
    assert scan.discoveries["holm"] <= 1
    assert scan.discoveries["benjamini_hochberg"] <= 2
    assert scan.discoveries["benjamini_yekutieli"] <= 1


def test_corrections_keep_real_signal(rng):
    response, predictors, names = generate_noise_study(
        500, 100, rng, binary_response=False
    )
    # Plant a genuinely predictive column.
    predictors = predictors.copy()
    predictors[:, 0] = response + 0.3 * rng.standard_normal(500)
    scan = hunt_spurious_predictors(response, predictors, names)
    assert scan.discoveries["holm"] >= 1
    assert scan.top_predictors[0][0] == names[0]


def test_hunt_validation(rng):
    with pytest.raises(DataError):
        hunt_spurious_predictors(np.ones(10), np.ones((5, 3)))
    with pytest.raises(DataError):
        hunt_spurious_predictors(np.ones(5), np.ones((5, 3)), names=["a"])
    with pytest.raises(DataError):
        generate_noise_study(2, 5, rng)


def test_detector_finds_admissions_reversal(rng):
    table = AdmissionsGenerator(within_department_edge=0.06).generate(20000, rng)
    augmented = table.with_column(
        numeric("is_b"), (table["group"] == "B").astype(float)
    )
    findings = detect_simpsons_paradox(
        augmented, "is_b", "admitted", stratifiers=["department"]
    )
    assert findings[0].reverses
    assert findings[0].aggregate_difference < 0  # aggregate hurts B
    assert findings[0].adjusted_difference > 0   # strata favour B
    assert "REVERSAL" in findings[0].render()


def test_detector_finds_treatment_reversal(rng):
    table = TreatmentParadoxGenerator().generate(20000, rng)
    findings = detect_simpsons_paradox(table, "treated", "recovered")
    severity = [f for f in findings if f.stratifier == "severity"][0]
    assert severity.reverses


def test_detector_no_false_reversal(rng):
    # Exposure genuinely helps, confounder-free.
    n = 10000
    exposure = (rng.random(n) < 0.5).astype(float)
    outcome = ((rng.random(n) < 0.3 + 0.2 * exposure)).astype(float)
    stratum = np.where(rng.random(n) < 0.5, "x", "y").astype(object)
    from repro.data.table import Table

    table = Table.from_dict(
        {"treated": exposure, "outcome": outcome, "stratum": stratum}
    )
    findings = detect_simpsons_paradox(table, "treated", "outcome")
    assert not any(finding.reverses for finding in findings)


def test_detector_weighted_adjustment_matches_manual(rng):
    table = TreatmentParadoxGenerator().generate(5000, rng)
    findings = detect_simpsons_paradox(table, "treated", "recovered",
                                       stratifiers=["severity"])
    finding = findings[0]
    manual = sum(s.n * s.difference for s in finding.strata) / sum(
        s.n for s in finding.strata
    )
    assert finding.adjusted_difference == pytest.approx(manual)


def test_detector_skips_small_strata(rng):
    table = TreatmentParadoxGenerator().generate(5000, rng)
    findings = detect_simpsons_paradox(
        table, "treated", "recovered", min_stratum_size=10**6
    )
    assert findings == []


def test_detector_validation(rng):
    table = TreatmentParadoxGenerator().generate(100, rng)
    with pytest.raises(DataError, match="0/1"):
        detect_simpsons_paradox(table, "severity", "recovered")
