"""Unit tests for pre-, in- and post-processing mitigation."""

import numpy as np
import pytest

from repro.exceptions import FairnessError, NotFittedError
from repro.fairness.inprocessing import (
    ExponentiatedGradientReducer,
    FairPenaltyLogisticRegression,
)
from repro.fairness.metrics import (
    disparate_impact_ratio,
    selection_rates,
    statistical_parity_difference,
)
from repro.fairness.postprocessing import (
    GroupThresholdOptimizer,
    RejectOptionClassifier,
)
from repro.fairness.preprocessing import (
    disparate_impact_repair,
    massage,
    reweigh,
    reweighing_weights,
)
from repro.fairness.report import audit_model
from repro.learn import LogisticRegression, TableClassifier


# -- reweighing -----------------------------------------------------------------

def test_reweighing_balances_joint_distribution():
    y = np.array([1, 1, 1, 0, 1, 0, 0, 0], dtype=float)
    group = np.array(["A", "A", "A", "A", "B", "B", "B", "B"], dtype=object)
    weights = reweighing_weights(y, group)
    # Weighted joint P(g, y) must factorise into the marginals.
    for g in ("A", "B"):
        for label in (0.0, 1.0):
            mask = (group == g) & (y == label)
            weighted_joint = weights[mask].sum() / weights.sum()
            marginal = (np.mean(group == g) * np.mean(y == label))
            assert weighted_joint == pytest.approx(marginal, abs=1e-9)


def test_reweighing_uniform_when_already_independent():
    y = np.array([1, 0, 1, 0], dtype=float)
    group = np.array(["A", "A", "B", "B"], dtype=object)
    weights = reweighing_weights(y, group)
    np.testing.assert_allclose(weights, 1.0)


def test_reweigh_improves_disparate_impact(credit_tables):
    train, test = credit_tables
    baseline = TableClassifier(LogisticRegression()).fit(train)
    baseline_di = audit_model(baseline, test).disparate_impact_ratio
    weighted = TableClassifier(LogisticRegression()).fit(
        train, sample_weight=reweigh(train)
    )
    weighted_di = audit_model(weighted, test).disparate_impact_ratio
    assert weighted_di > baseline_di + 0.05


# -- massaging -------------------------------------------------------------------

def test_massage_equalises_label_rates(credit_tables):
    train, _ = credit_tables
    ranker = TableClassifier(LogisticRegression()).fit(train)
    massaged = massage(train, ranker)
    rates = {
        g: massaged.filter(massaged["group"] == g)["approved"].mean()
        for g in ("A", "B")
    }
    assert abs(rates["A"] - rates["B"]) < 0.02


def test_massage_preserves_total_positives(credit_tables):
    train, _ = credit_tables
    ranker = TableClassifier(LogisticRegression()).fit(train)
    massaged = massage(train, ranker)
    assert massaged["approved"].sum() == pytest.approx(
        train["approved"].sum(), abs=1.0
    )


def test_massage_noop_when_fair(rng):
    from repro.data.synth import CreditScoringGenerator

    fair = CreditScoringGenerator(label_bias=0.0).generate(800, rng)
    ranker = TableClassifier(LogisticRegression()).fit(fair)
    massaged = massage(fair, ranker)
    rate_gap_before = abs(
        fair.filter(fair["group"] == "A")["approved"].mean()
        - fair.filter(fair["group"] == "B")["approved"].mean()
    )
    rate_gap_after = abs(
        massaged.filter(massaged["group"] == "A")["approved"].mean()
        - massaged.filter(massaged["group"] == "B")["approved"].mean()
    )
    assert rate_gap_after <= rate_gap_before + 0.02


# -- disparate impact repair ----------------------------------------------------------

def test_repair_aligns_group_distributions(rng):
    from repro.data.synth import CreditScoringGenerator

    table = CreditScoringGenerator(numeric_proxy_strength=0.9).generate(2000, rng)
    repaired = disparate_impact_repair(table, 1.0)
    a = repaired.filter(repaired["group"] == "A")["area_score"]
    b = repaired.filter(repaired["group"] == "B")["area_score"]
    assert abs(a.mean() - b.mean()) < 0.1
    original_a = table.filter(table["group"] == "A")["area_score"]
    original_b = table.filter(table["group"] == "B")["area_score"]
    assert abs(original_a.mean() - original_b.mean()) > 0.5


def test_repair_level_zero_is_identity(credit_tables):
    train, _ = credit_tables
    repaired = disparate_impact_repair(train, 0.0)
    np.testing.assert_allclose(repaired["income"], train["income"])


def test_repair_preserves_within_group_order(rng):
    from repro.data.synth import CreditScoringGenerator

    table = CreditScoringGenerator(numeric_proxy_strength=0.9).generate(500, rng)
    repaired = disparate_impact_repair(table, 1.0, columns=["income"])
    for g in ("A", "B"):
        mask = table["group"] == g
        original_order = np.argsort(table["income"][mask])
        repaired_order = np.argsort(repaired["income"][mask])
        np.testing.assert_array_equal(original_order, repaired_order)


def test_repair_validation(credit_tables):
    train, _ = credit_tables
    with pytest.raises(FairnessError):
        disparate_impact_repair(train, 1.5)


# -- in-processing ---------------------------------------------------------------------

def test_fair_penalty_reduces_disparity(credit_tables):
    train, test = credit_tables
    baseline = TableClassifier(LogisticRegression()).fit(train)
    baseline_spd = audit_model(baseline, test).statistical_parity_difference

    penalised = FairPenaltyLogisticRegression(fairness=10.0)
    penalised.set_group(train["group"])
    model = TableClassifier(penalised).fit(train)
    penalised_spd = audit_model(model, test).statistical_parity_difference
    assert penalised_spd < baseline_spd - 0.05


def test_fair_penalty_zero_matches_plain_lr(credit_tables):
    train, test = credit_tables
    plain = TableClassifier(LogisticRegression(l2=1.0)).fit(train)
    zero = FairPenaltyLogisticRegression(fairness=0.0, l2=1.0)
    zero.set_group(train["group"])
    penalised = TableClassifier(zero).fit(train)
    np.testing.assert_allclose(
        plain.predict_proba(test), penalised.predict_proba(test), atol=1e-3
    )


def test_fair_penalty_requires_group(toy_classification):
    X, y = toy_classification
    with pytest.raises(FairnessError, match="set_group"):
        FairPenaltyLogisticRegression().fit(X, y)


def test_fair_penalty_rejects_nonbinary_group(toy_classification):
    X, y = toy_classification
    model = FairPenaltyLogisticRegression()
    with pytest.raises(FairnessError):
        model.set_group(np.array(["A", "B", "C"] * (len(y) // 3) + ["A"] * (len(y) % 3)))


def test_exponentiated_gradient_reduces_disparity(credit_tables):
    train, test = credit_tables
    baseline = TableClassifier(LogisticRegression()).fit(train)
    baseline_di = audit_model(baseline, test).disparate_impact_ratio

    reducer = ExponentiatedGradientReducer(
        LogisticRegression(), max_rounds=20, eps=0.02
    )
    reducer.set_group(train["group"])
    model = TableClassifier(reducer).fit(train)
    reduced_di = audit_model(model, test).disparate_impact_ratio
    assert reduced_di > baseline_di + 0.03
    assert reducer.n_hypotheses >= 2


def test_exponentiated_gradient_equalized_odds(credit_tables):
    train, test = credit_tables
    reducer = ExponentiatedGradientReducer(
        LogisticRegression(), constraint="equalized_odds", max_rounds=15
    )
    reducer.set_group(train["group"])
    model = TableClassifier(reducer).fit(train)
    report = audit_model(model, test)
    baseline = TableClassifier(LogisticRegression()).fit(train)
    baseline_report = audit_model(baseline, test)
    assert (report.equalized_odds_difference
            < baseline_report.equalized_odds_difference + 0.02)


def test_exponentiated_gradient_validation():
    with pytest.raises(FairnessError):
        ExponentiatedGradientReducer(LogisticRegression(), constraint="nope")
    with pytest.raises(FairnessError):
        ExponentiatedGradientReducer(LogisticRegression(), burn_in_fraction=1.0)


# -- post-processing ------------------------------------------------------------------

def test_threshold_optimizer_demographic_parity(credit_tables, rng):
    train, test = credit_tables
    model = TableClassifier(LogisticRegression()).fit(train)
    optimizer = GroupThresholdOptimizer("demographic_parity")
    optimizer.fit(model.predict_proba(train), model.labels(train), train["group"])
    decisions = optimizer.predict(model.predict_proba(test), test["group"])
    rates = selection_rates(decisions, test["group"])
    assert abs(rates["A"] - rates["B"]) < 0.1
    assert disparate_impact_ratio(decisions, test["group"]) > 0.75


def test_threshold_optimizer_equal_opportunity(credit_tables):
    train, test = credit_tables
    model = TableClassifier(LogisticRegression()).fit(train)
    optimizer = GroupThresholdOptimizer("equal_opportunity")
    optimizer.fit(model.predict_proba(train), model.labels(train), train["group"])
    decisions = optimizer.predict(model.predict_proba(test), test["group"])
    from repro.fairness.metrics import equal_opportunity_difference

    baseline = audit_model(model, test).equal_opportunity_difference
    optimised = equal_opportunity_difference(
        model.labels(test), decisions, test["group"]
    )
    assert optimised < baseline + 0.05


def test_threshold_optimizer_unseen_group(credit_tables):
    train, _ = credit_tables
    model = TableClassifier(LogisticRegression()).fit(train)
    optimizer = GroupThresholdOptimizer().fit(
        model.predict_proba(train), model.labels(train), train["group"]
    )
    with pytest.raises(FairnessError, match="unseen"):
        optimizer.predict(np.array([0.5]), np.array(["Z"]))


def test_threshold_optimizer_requires_fit():
    with pytest.raises(NotFittedError):
        GroupThresholdOptimizer().predict(np.array([0.5]), np.array(["A"]))


def test_reject_option_flips_only_band(rng):
    probabilities = np.array([0.9, 0.55, 0.45, 0.1])
    group = np.array(["B", "B", "A", "A"], dtype=object)
    decisions = RejectOptionClassifier("B", band=0.1).predict(probabilities, group)
    # Outside band unchanged; inside band B -> 1, A -> 0.
    np.testing.assert_allclose(decisions, [1.0, 1.0, 0.0, 0.0])


def test_reject_option_improves_parity(credit_tables):
    train, test = credit_tables
    model = TableClassifier(LogisticRegression()).fit(train)
    probabilities = model.predict_proba(test)
    plain = (probabilities >= 0.5).astype(float)
    adjusted = RejectOptionClassifier("B", band=0.15).predict(
        probabilities, test["group"]
    )
    assert (statistical_parity_difference(adjusted, test["group"])
            < statistical_parity_difference(plain, test["group"]))


def test_reject_option_validation():
    with pytest.raises(FairnessError):
        RejectOptionClassifier("B", band=0.0)
    with pytest.raises(FairnessError):
        RejectOptionClassifier("B").predict(np.array([0.5]), np.array(["A", "B"]))
