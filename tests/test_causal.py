"""Unit tests for causal DAGs and treatment-effect estimators."""

import numpy as np
import pytest

from repro.accuracy.causal import (
    CausalDAG,
    compare_estimators,
    doubly_robust,
    estimate_propensities,
    inverse_probability_weighting,
    naive_difference,
    propensity_score_matching,
    rct_estimate,
)
from repro.data.synth import AdCampaignGenerator
from repro.exceptions import CausalError


# -- DAG -------------------------------------------------------------------------

CONFOUNDED = CausalDAG([
    ("severity", "treated"), ("severity", "recovered"),
    ("treated", "recovered"),
])


def test_dag_rejects_cycles():
    with pytest.raises(CausalError, match="acyclic"):
        CausalDAG([("a", "b"), ("b", "a")])


def test_dag_structure_queries():
    assert CONFOUNDED.parents("recovered") == {"severity", "treated"}
    assert CONFOUNDED.descendants("severity") == {"treated", "recovered"}
    assert set(CONFOUNDED.nodes) == {"severity", "treated", "recovered"}
    with pytest.raises(CausalError):
        CONFOUNDED.parents("nope")


def test_d_separation():
    chain = CausalDAG([("a", "b"), ("b", "c")])
    assert not chain.d_separated("a", "c")
    assert chain.d_separated("a", "c", {"b"})
    collider = CausalDAG([("a", "c"), ("b", "c")])
    assert collider.d_separated("a", "b")
    assert not collider.d_separated("a", "b", {"c"})


def test_backdoor_set_is_confounder():
    assert CONFOUNDED.backdoor_adjustment_set("treated", "recovered") == {"severity"}
    assert CONFOUNDED.satisfies_backdoor("treated", "recovered", {"severity"})
    assert not CONFOUNDED.satisfies_backdoor("treated", "recovered", set())
    assert CONFOUNDED.is_identifiable("treated", "recovered")


def test_backdoor_rejects_descendants():
    dag = CausalDAG([
        ("x", "t"), ("x", "y"), ("t", "m"), ("m", "y"), ("t", "y"),
    ])
    assert not dag.satisfies_backdoor("t", "y", {"m"})
    assert dag.backdoor_adjustment_set("t", "y") == {"x"}


def test_latent_confounder_blocks_identification():
    dag = CausalDAG(
        [("u", "t"), ("u", "y"), ("t", "y")], latent={"u"}
    )
    assert dag.backdoor_adjustment_set("t", "y") is None
    assert not dag.is_identifiable("t", "y")


def test_randomised_treatment_needs_no_adjustment():
    dag = CausalDAG([("t", "y"), ("x", "y")])
    assert dag.backdoor_adjustment_set("t", "y") == set()


def test_latent_must_exist():
    with pytest.raises(CausalError):
        CausalDAG([("a", "b")], latent={"ghost"})


# -- estimators ----------------------------------------------------------------------

def _observational(rng, n=6000, confounding=1.5):
    generator = AdCampaignGenerator(true_lift=0.4, confounding=confounding)
    table = generator.generate_observational(n, rng)
    X = np.column_stack([
        table["activity"], table["past_purchases"], table["ad_affinity"]
    ])
    return generator, table, X


def test_naive_is_biased_adjusted_is_not(rng):
    generator, table, X = _observational(rng)
    truth = generator.true_ate(table)
    naive = naive_difference(table["exposed"], table["purchase"])
    ipw = inverse_probability_weighting(X, table["exposed"], table["purchase"])
    aipw = doubly_robust(X, table["exposed"], table["purchase"])
    assert naive.bias_against(truth) > 0.1
    assert abs(ipw.bias_against(truth)) < 0.06
    assert abs(aipw.bias_against(truth)) < 0.06


def test_psm_reduces_bias(rng):
    generator, table, X = _observational(rng)
    truth = generator.true_ate(table)
    naive = naive_difference(table["exposed"], table["purchase"])
    psm = propensity_score_matching(X, table["exposed"], table["purchase"])
    assert abs(psm.bias_against(truth)) < abs(naive.bias_against(truth))
    assert "matched" in psm.detail


def test_hidden_confounding_defeats_adjustment(rng):
    # The Gordon et al. headline: adjusted observational estimates stay
    # biased when a confounder is unobserved.
    generator = AdCampaignGenerator(
        true_lift=0.4, confounding=0.5, hidden_confounding=2.0
    )
    table = generator.generate_observational(8000, rng)
    X = np.column_stack([
        table["activity"], table["past_purchases"], table["ad_affinity"]
    ])
    truth = generator.true_ate(table)
    ipw = inverse_probability_weighting(X, table["exposed"], table["purchase"])
    assert abs(ipw.bias_against(truth)) > 0.03


def test_rct_estimate_is_unbiased(rng):
    generator = AdCampaignGenerator(true_lift=0.4)
    rct = generator.generate_rct(10000, rng)
    estimate = rct_estimate(rct["exposed"], rct["purchase"])
    truth = generator.true_ate(rct)
    lower, upper = estimate.ci95
    assert lower <= truth <= upper


def test_propensities_are_clipped(rng):
    _, table, X = _observational(rng, n=2000, confounding=4.0)
    propensity = estimate_propensities(X, table["exposed"], clip=0.05)
    assert propensity.min() >= 0.05
    assert propensity.max() <= 0.95


def test_compare_estimators_harness(rng):
    generator, table, X = _observational(rng, n=3000)
    rct = generator.generate_rct(3000, rng)
    results = compare_estimators(
        X, table["exposed"], table["purchase"],
        rct_treatment=rct["exposed"], rct_outcome=rct["purchase"],
        truth=generator.true_ate(table),
    )
    assert set(results) == {"naive", "psm", "ipw", "aipw", "rct"}
    assert all("bias vs truth" in est.detail for est in results.values())


def test_estimator_validation(rng):
    X = rng.standard_normal((20, 2))
    with pytest.raises(CausalError):
        naive_difference(np.ones(20), np.ones(20))
    with pytest.raises(CausalError, match="0/1"):
        inverse_probability_weighting(X, np.full(20, 0.5), np.ones(20))
    with pytest.raises(CausalError):
        propensity_score_matching(
            X, np.array([1.0] * 19 + [0.0]), np.ones(20), n_neighbors=5
        )


def test_effect_estimate_rendering(rng):
    estimate = naive_difference(
        np.array([1.0, 1.0, 0.0, 0.0]), np.array([1.0, 1.0, 0.0, 1.0])
    )
    text = str(estimate)
    assert "ATE=" in text and "naive" in text
