"""Unit tests for preprocessing, model selection, and the table model."""

import numpy as np
import pytest

from repro.data.schema import ColumnRole
from repro.exceptions import DataError, NotFittedError
from repro.learn import LogisticRegression, TableClassifier
from repro.learn.model_selection import cross_val_score, grid_search
from repro.learn.preprocessing import FeatureEncoder, StandardScaler, encode_labels


def test_standard_scaler_roundtrip(rng):
    X = rng.normal(5.0, 3.0, (200, 3))
    scaler = StandardScaler()
    Z = scaler.fit_transform(X)
    assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
    assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)
    np.testing.assert_allclose(scaler.inverse_transform(Z), X, atol=1e-9)


def test_standard_scaler_constant_column(rng):
    X = np.hstack([np.ones((50, 1)), rng.standard_normal((50, 1))])
    Z = StandardScaler().fit_transform(X)
    assert np.all(np.isfinite(Z))
    with pytest.raises(NotFittedError):
        StandardScaler().transform(X)


def test_encoder_excludes_sensitive_by_default(small_table):
    encoder = FeatureEncoder()
    X = encoder.fit_transform(small_table)
    assert not any(name.startswith("group=") for name in encoder.feature_names)
    assert X.shape == (6, 2)  # income, debt


def test_encoder_includes_sensitive_when_asked(small_table):
    encoder = FeatureEncoder(include_sensitive=True)
    encoder.fit(small_table)
    assert any(name.startswith("group=") for name in encoder.feature_names)


def test_encoder_onehot_levels_frozen(small_table):
    encoder = FeatureEncoder(columns=["city"])
    encoder.fit(small_table)
    unseen = small_table.with_column(
        small_table.schema["city"],
        ["north", "east", "east", "south", "east", "east"],
    )
    X = encoder.transform(unseen)
    # Unseen level "east" encodes to all-zeros rather than erroring.
    assert X.shape == (6, 2)
    assert X[1].sum() == 0.0


def test_encoder_explicit_columns(small_table):
    encoder = FeatureEncoder(columns=["income", "city"])
    X = encoder.fit_transform(small_table)
    assert encoder.feature_names == ["income", "city=north", "city=south"]
    assert X.shape == (6, 3)
    assert encoder.n_features == 3


def test_encoder_requires_fit(small_table):
    with pytest.raises(NotFittedError):
        FeatureEncoder().transform(small_table)
    with pytest.raises(NotFittedError):
        FeatureEncoder().feature_names


def test_encode_labels():
    values = np.array(["yes", "no", "yes"], dtype=object)
    np.testing.assert_allclose(encode_labels(values, "yes"), [1.0, 0.0, 1.0])


def test_cross_val_score(toy_classification, rng):
    X, y = toy_classification
    result = cross_val_score(LogisticRegression(), X, y, 4, rng)
    assert result.scores.shape == (4,)
    assert result.mean > 0.8
    assert result.std >= 0.0
    with pytest.raises(DataError):
        cross_val_score(LogisticRegression(), X, y, 4, rng, metric="nope")


def test_grid_search_records_all_trials(toy_classification, rng):
    X, y = toy_classification
    result = grid_search(
        lambda l2: LogisticRegression(l2=l2),
        {"l2": [0.01, 1.0, 100.0]},
        X, y, 3, rng,
    )
    assert result.n_configurations == 3
    assert result.best_params["l2"] in (0.01, 1.0, 100.0)
    assert result.best_score == max(r.mean for _, r in result.trials)
    with pytest.raises(DataError):
        grid_search(lambda: None, {}, X, y, 3, rng)


def test_grid_search_minimises_loss_metrics(toy_classification, rng):
    X, y = toy_classification
    result = grid_search(
        lambda l2: LogisticRegression(l2=l2),
        {"l2": [0.1, 1000.0]},
        X, y, 3, rng, metric="log_loss",
    )
    assert result.best_params["l2"] == 0.1  # heavy shrinkage hurts log loss


def test_table_classifier_end_to_end(credit_tables):
    train, test = credit_tables
    model = TableClassifier(LogisticRegression()).fit(train)
    probabilities = model.predict_proba(test)
    assert probabilities.shape == (test.n_rows,)
    decisions = model.predict(test)
    assert set(np.unique(decisions)) <= {0.0, 1.0}
    assert model.target_name == "approved"
    assert "neighborhood=north" in model.feature_names


def test_table_classifier_never_sees_sensitive(credit_tables):
    train, _ = credit_tables
    model = TableClassifier(LogisticRegression()).fit(train)
    assert not any(name.startswith("group=") for name in model.feature_names)


def test_table_classifier_categorical_target(small_table):
    labelled = small_table.with_column(
        small_table.schema["approved"].with_role(ColumnRole.METADATA),
        small_table["approved"],
    )
    from repro.data.schema import categorical

    labelled = labelled.with_column(
        categorical("outcome", role=ColumnRole.TARGET),
        ["deny", "deny", "grant", "deny", "grant", "grant"],
    )
    model = TableClassifier(LogisticRegression(), positive_label="grant")
    y = model.labels(labelled)
    np.testing.assert_allclose(y, [0, 0, 1, 0, 1, 1])


def test_table_classifier_bad_numeric_target(small_table):
    bad = small_table.with_column(small_table.schema["approved"],
                                  [0.0, 1.0, 2.0, 0.0, 1.0, 2.0])
    model = TableClassifier(LogisticRegression())
    with pytest.raises(DataError, match="0/1"):
        model.fit(bad)


def test_table_classifier_requires_target():
    from repro.data.table import Table

    table = Table.from_dict({"x": [1.0, 2.0]})
    with pytest.raises(DataError, match="target"):
        TableClassifier(LogisticRegression()).fit(table)


def test_table_classifier_clone(credit_tables):
    train, _ = credit_tables
    model = TableClassifier(LogisticRegression(l2=5.0), threshold=0.4).fit(train)
    fresh = model.clone()
    assert fresh.threshold == 0.4
    assert fresh.estimator.l2 == 5.0
    with pytest.raises(NotFittedError):
        fresh.predict_proba(train)


def test_table_classifier_params(credit_tables):
    train, _ = credit_tables
    model = TableClassifier(LogisticRegression(l2=2.0)).fit(train)
    params = model.params()
    assert params["estimator"] == "LogisticRegression"
    assert params["estimator.l2"] == 2.0
