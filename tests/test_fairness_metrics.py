"""Unit tests for group fairness metrics."""

import numpy as np
import pytest

from repro.exceptions import FairnessError
from repro.fairness import metrics as fm

GROUP = np.array(["A", "A", "A", "A", "B", "B", "B", "B"], dtype=object)
Y_TRUE = np.array([1, 1, 0, 0, 1, 1, 0, 0], dtype=float)
# A: selects 3/4 (TP 2, FP 1); B: selects 1/4 (TP 1, FP 0).
Y_PRED = np.array([1, 1, 1, 0, 1, 0, 0, 0], dtype=float)


def test_selection_rates():
    rates = fm.selection_rates(Y_PRED, GROUP)
    assert rates["A"] == pytest.approx(0.75)
    assert rates["B"] == pytest.approx(0.25)


def test_statistical_parity_difference():
    assert fm.statistical_parity_difference(Y_PRED, GROUP) == pytest.approx(0.5)


def test_disparate_impact_ratio():
    assert fm.disparate_impact_ratio(Y_PRED, GROUP) == pytest.approx(1 / 3)
    assert not fm.passes_four_fifths_rule(Y_PRED, GROUP)


def test_disparate_impact_all_zero_selects():
    zero = np.zeros(8)
    assert fm.disparate_impact_ratio(zero, GROUP) == 1.0


def test_equal_opportunity_difference():
    # TPR: A = 2/2 = 1.0, B = 1/2 = 0.5.
    assert fm.equal_opportunity_difference(Y_TRUE, Y_PRED, GROUP) == pytest.approx(0.5)


def test_equalized_odds_difference():
    # FPR: A = 1/2, B = 0/2 -> gap 0.5; TPR gap 0.5 -> max 0.5.
    assert fm.equalized_odds_difference(Y_TRUE, Y_PRED, GROUP) == pytest.approx(0.5)


def test_predictive_parity_difference():
    # Precision: A = 2/3, B = 1/1.
    assert fm.predictive_parity_difference(Y_TRUE, Y_PRED, GROUP) == pytest.approx(1 / 3)


def test_accuracy_difference():
    # Accuracy: A = 3/4, B = 3/4.
    assert fm.accuracy_difference(Y_TRUE, Y_PRED, GROUP) == pytest.approx(0.0)


def test_base_rates():
    rates = fm.base_rates(Y_TRUE, GROUP)
    assert rates["A"] == pytest.approx(0.5)
    assert rates["B"] == pytest.approx(0.5)


def test_perfectly_fair_predictions():
    fair = np.array([1, 0, 1, 0, 1, 0, 1, 0], dtype=float)
    assert fm.statistical_parity_difference(fair, GROUP) == 0.0
    assert fm.disparate_impact_ratio(fair, GROUP) == 1.0


def test_group_rates_object():
    rates = fm.group_rates(Y_TRUE, Y_PRED, GROUP)
    assert rates.per_group("recall")["A"] == 1.0
    assert rates.difference("recall") == pytest.approx(0.5)
    assert rates.ratio("recall") == pytest.approx(0.5)


def test_ratio_with_zero_max():
    rates = fm.group_rates(Y_TRUE, np.zeros(8), GROUP)
    assert rates.ratio("recall") == 1.0


def test_multi_group_support():
    group3 = np.array(["A", "A", "B", "B", "C", "C"], dtype=object)
    pred = np.array([1, 1, 1, 0, 0, 0], dtype=float)
    assert fm.statistical_parity_difference(pred, group3) == pytest.approx(1.0)
    assert fm.disparate_impact_ratio(pred, group3) == 0.0


def test_single_group_rejected():
    with pytest.raises(FairnessError, match="two groups"):
        fm.selection_rates(np.array([1.0, 0.0]), np.array(["A", "A"]))


def test_misaligned_inputs_rejected():
    with pytest.raises(FairnessError):
        fm.selection_rates(np.array([1.0, 0.0]), GROUP)


def test_group_calibration_gaps(rng):
    n = 4000
    group = np.where(rng.random(n) < 0.5, "A", "B").astype(object)
    probabilities = rng.random(n)
    # Group A calibrated; group B outcomes ignore the scores.
    outcomes = np.where(
        group == "A",
        (rng.random(n) < probabilities).astype(float),
        (rng.random(n) < 0.5).astype(float),
    )
    gaps = fm.group_calibration_gaps(outcomes, probabilities, group)
    assert gaps["A"] < 0.05
    assert gaps["B"] > 0.1
