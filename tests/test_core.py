"""Unit tests for the FACT auditor, report, scorecard, and policy."""

import numpy as np
import pytest

from repro.confidentiality.accountant import PrivacyAccountant
from repro.core import (
    FACTAuditor,
    FACTPolicy,
    build_scorecard,
)
from repro.data import three_way_split
from repro.data.synth import CreditScoringGenerator
from repro.exceptions import DataError, PolicyViolation
from repro.learn import LogisticRegression, TableClassifier
from repro.fairness.preprocessing import reweigh
from repro.pipeline import (
    CleanStage,
    Pipeline,
    TrainStage,
    ValidateSchemaStage,
)


@pytest.fixture(scope="module")
def audited():
    """One audit of a biased model, shared across this module's tests."""
    rng = np.random.default_rng(99)
    generator = CreditScoringGenerator(label_bias=0.35, proxy_strength=0.8)
    data = generator.generate(4000, rng)
    train, calibration, test = three_way_split(data, 0.25, 0.15, rng)
    pipeline = Pipeline([
        ValidateSchemaStage(), CleanStage(),
        TrainStage(TableClassifier(LogisticRegression())),
    ])
    result = pipeline.run(train, rng)
    accountant = PrivacyAccountant(2.0)
    accountant.spend(0.5, label="demo-release")
    report = FACTAuditor().audit(
        result.model, test, rng,
        calibration=calibration,
        accountant=accountant,
        pipeline_result=result,
        subject="biased-credit-model",
    )
    return report, result


def test_report_has_all_four_pillars(audited):
    report, _ = audited
    text = report.render()
    for heading in ("FAIRNESS (Q1)", "ACCURACY (Q2)",
                    "CONFIDENTIALITY (Q3)", "TRANSPARENCY (Q4)"):
        assert heading in text
    assert report.subject == "biased-credit-model"


def test_fairness_section_detects_bias(audited):
    report, _ = audited
    assert report.fairness.disparate_impact_ratio < 0.85
    assert not report.fairness.passes_four_fifths


def test_accuracy_section_has_intervals_and_coverage(audited):
    report, _ = audited
    section = report.accuracy
    assert section.accuracy.lower < section.accuracy.estimate < section.accuracy.upper
    assert section.conformal_coverage is not None
    assert section.conformal_coverage >= 0.85
    assert section.conformal_mean_set_size >= 1.0
    assert 0.0 <= section.expected_calibration_error <= 1.0


def test_confidentiality_section_flags_oracle(audited):
    report, _ = audited
    assert "qualified" in report.confidentiality.metadata_present
    assert report.confidentiality.epsilon_spent == pytest.approx(0.5)
    assert report.confidentiality.ledger_entries == 1


def test_transparency_section(audited):
    report, _ = audited
    section = report.transparency
    assert section.model_type == "LogisticRegression"
    assert section.surrogate_fidelity > 0.8
    assert len(section.top_features) == 5
    assert section.provenance_steps == 3
    assert section.audit_events == 5


def test_audit_without_calibration_notes_it(audited, rng):
    _, result = audited
    generator = CreditScoringGenerator(label_bias=0.35, proxy_strength=0.8)
    test = generator.generate(500, rng)
    report = FACTAuditor().audit(result.model, test, rng)
    assert report.accuracy.conformal_coverage is None
    assert any("conformal" in note for note in report.notes)


def test_audit_needs_enough_rows(audited, rng):
    _, result = audited
    tiny = CreditScoringGenerator().generate(5, rng)
    with pytest.raises(DataError):
        FACTAuditor().audit(result.model, tiny, rng)


# -- scorecard ---------------------------------------------------------------------

def test_scorecard_grades_biased_model_poorly(audited):
    report, _ = audited
    scorecard = build_scorecard(report)
    assert scorecard.fairness < 60.0
    assert scorecard.overall == min(
        scorecard.fairness, scorecard.accuracy,
        scorecard.confidentiality, scorecard.transparency,
    )
    assert scorecard.grade in "DF"
    assert "grade" in scorecard.render()


def test_scorecard_improves_after_mitigation(audited, rng):
    report, _ = audited
    generator = CreditScoringGenerator(label_bias=0.35, proxy_strength=0.8)
    data = generator.generate(3000, rng)
    train, calibration, test = three_way_split(data, 0.25, 0.15, rng)
    model = TableClassifier(LogisticRegression()).fit(
        train, sample_weight=reweigh(train)
    )
    fair_report = FACTAuditor().audit(model, test, rng, calibration=calibration)
    assert (build_scorecard(fair_report).fairness
            > build_scorecard(report).fairness + 10.0)


# -- policy -----------------------------------------------------------------------------

def test_policy_flags_biased_model(audited):
    report, _ = audited
    violations = FACTPolicy().check(report)
    pillars = {violation.pillar for violation in violations}
    assert "fairness" in pillars
    assert all("limit" in violation.render() for violation in violations)


def test_policy_enforce_raises(audited):
    report, _ = audited
    with pytest.raises(PolicyViolation, match="violation"):
        FACTPolicy(name="strict").enforce(report)


def test_policy_clauses_can_be_disabled(audited):
    report, _ = audited
    lax = FACTPolicy(
        min_disparate_impact=None,
        max_equalized_odds_difference=None,
        max_calibration_error=None,
        max_conformal_coverage_shortfall=None,
        max_unique_row_fraction=None,
        min_surrogate_fidelity=None,
        forbid_raw_identifiers=False,
    )
    assert lax.check(report) == []
    lax.enforce(report)  # must not raise


def test_policy_epsilon_clause(audited):
    report, _ = audited
    tight = FACTPolicy(
        min_disparate_impact=None,
        max_equalized_odds_difference=None,
        max_calibration_error=None,
        max_conformal_coverage_shortfall=None,
        max_unique_row_fraction=None,
        min_surrogate_fidelity=None,
        max_epsilon=0.1,
    )
    violations = tight.check(report)
    assert len(violations) == 1
    assert violations[0].clause == "privacy spend above maximum"


def test_audit_power_note_on_small_groups(rng):
    """A tiny protected group triggers the underpowered-audit note."""
    generator = CreditScoringGenerator(group_b_fraction=0.03)
    train = generator.generate(2000, rng)
    test = generator.generate(400, rng)  # ~12 group-B rows
    model = TableClassifier(LogisticRegression()).fit(train)
    report = FACTAuditor(n_bootstrap=100).audit(model, test, rng)
    assert any("underpowered" in note for note in report.notes)


def test_audit_power_note_absent_on_large_groups(audited):
    report, _ = audited
    assert not any("underpowered" in note for note in report.notes)


def test_accuracy_section_group_coverage(audited):
    """The auditor reports per-group conformal coverage when the test
    table declares a sensitive attribute."""
    report, _ = audited
    by_group = report.accuracy.conformal_coverage_by_group
    assert set(by_group) == {"A", "B"}
    for coverage in by_group.values():
        assert 0.0 <= coverage <= 1.0
    assert report.accuracy.conformal_group_coverage_gap is not None
    assert "coverage by group" in report.accuracy.render()


def test_policy_renders_as_requirements_doc():
    policy = FACTPolicy(name="lending-v2", max_epsilon=1.0,
                        notes=["reviewed 2026-07-05"])
    text = policy.render()
    assert "# FACT requirements: lending-v2" in text
    assert "[fairness]" in text
    assert "[confidentiality]" in text
    assert "epsilon = 1" in text
    assert "reviewed 2026-07-05" in text
    # Disabled clauses do not appear.
    silent = FACTPolicy(min_disparate_impact=None).render()
    assert "disparate-impact" not in silent


def test_intersectional_note_with_two_sensitive_attributes(rng):
    """Marginally-fair, intersectionally-unfair decisions get flagged."""
    from repro.data.schema import ColumnRole, categorical

    generator = CreditScoringGenerator(label_bias=0.0, proxy_strength=0.0)
    train = generator.generate(2500, rng)
    test = generator.generate(1500, rng)
    age_band = np.where(rng.random(test.n_rows) < 0.5, "old", "young")
    test = test.with_column(
        categorical("age_band", role=ColumnRole.SENSITIVE), age_band
    )
    model = TableClassifier(LogisticRegression()).fit(train)
    report = FACTAuditor(n_bootstrap=100).audit(model, test, rng)
    # Fair data: no intersectional note expected.
    baseline_notes = [n for n in report.notes if "intersectional" in n]

    # Now rig the decisions so only the (B, old) cell suffers, by biasing
    # the threshold through a wrapper on predictions is complex — instead
    # check the note machinery directly on rigged decisions.
    from repro.core.auditor import FACTAuditor as Auditor

    decisions = model.predict(test)
    cell = (test["group"] == "B") & (test["age_band"] == "old")
    rigged = decisions.copy()
    rigged[cell] = 0.0
    note = Auditor._intersectional_note(
        test, rigged, report.fairness
    )
    assert note is not None
    assert "age_band=old & group=B" in note
    assert baseline_notes == [] or "exceeds" in baseline_notes[0]


def test_report_to_dict_is_json_serialisable(audited):
    import json

    report, _ = audited
    payload = report.to_dict()
    text = json.dumps(payload)
    parsed = json.loads(text)
    assert parsed["subject"] == "biased-credit-model"
    assert parsed["fairness"]["passes_four_fifths"] is False
    assert 0.0 <= parsed["accuracy"]["accuracy"] <= 1.0
    assert parsed["transparency"]["model_type"] == "LogisticRegression"
    assert "qualified" in parsed["confidentiality"]["metadata_present"]
