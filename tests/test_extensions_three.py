"""Unit tests for isotonic calibration, imputation, and CATE learners."""

import numpy as np
import pytest

from repro.accuracy.causal import (
    SLearner,
    TLearner,
    effects_by_group,
    policy_value,
)
from repro.data import SimpleImputer
from repro.data.table import Table
from repro.exceptions import CausalError, DataError, NotFittedError
from repro.learn import LogisticRegression
from repro.learn.isotonic import IsotonicCalibrator, pool_adjacent_violators


# -- PAVA / isotonic -----------------------------------------------------------

def test_pava_already_monotone_is_identity():
    values = np.array([0.1, 0.2, 0.5, 0.9])
    np.testing.assert_allclose(pool_adjacent_violators(values), values)


def test_pava_pools_violations():
    fitted = pool_adjacent_violators(np.array([0.5, 0.1, 0.9]))
    np.testing.assert_allclose(fitted, [0.3, 0.3, 0.9])
    assert np.all(np.diff(fitted) >= 0)


def test_pava_weighted_pooling():
    fitted = pool_adjacent_violators(
        np.array([1.0, 0.0]), weights=np.array([3.0, 1.0])
    )
    np.testing.assert_allclose(fitted, [0.75, 0.75])


def test_pava_constant_sequence():
    values = np.full(5, 0.4)
    np.testing.assert_allclose(pool_adjacent_violators(values), values)


def test_pava_validation():
    with pytest.raises(DataError):
        pool_adjacent_violators(np.array([]))
    with pytest.raises(DataError):
        pool_adjacent_violators(np.array([1.0]), weights=np.array([-1.0]))


def test_isotonic_output_is_monotone(rng):
    scores = rng.random(2000)
    outcomes = (rng.random(2000) < scores**2).astype(float)
    calibrator = IsotonicCalibrator().fit(scores, outcomes)
    grid = np.linspace(0, 1, 50)
    calibrated = calibrator.transform(grid)
    assert np.all(np.diff(calibrated) >= -1e-12)
    assert np.all((calibrated >= 0) & (calibrated <= 1))


def test_isotonic_fixes_nonsigmoid_miscalibration(rng):
    from repro.learn.calibration import expected_calibration_error

    n = 8000
    true_probability = rng.random(n)
    outcomes = (rng.random(n) < true_probability).astype(float)
    distorted = true_probability**3  # not sigmoid-shaped
    before = expected_calibration_error(outcomes, distorted)
    calibrator = IsotonicCalibrator().fit(distorted, outcomes)
    after = expected_calibration_error(
        outcomes, calibrator.transform(distorted)
    )
    assert after < before / 2


def test_isotonic_requires_fit():
    with pytest.raises(NotFittedError):
        IsotonicCalibrator().transform(np.array([0.5]))
    with pytest.raises(DataError):
        IsotonicCalibrator().fit(np.array([0.5]), np.array([1.0]))


# -- imputation ---------------------------------------------------------------------

@pytest.fixture
def holey_table():
    return Table.from_dict({
        "x": [1.0, float("nan"), 3.0, float("nan")],
        "c": ["a", "", "a", "b"],
    })


def test_imputer_mean_and_mode(holey_table):
    imputer = SimpleImputer().fit(holey_table)
    filled = imputer.transform(holey_table)
    np.testing.assert_allclose(filled["x"], [1.0, 2.0, 3.0, 2.0])
    assert filled["c"][1] == "a"  # the mode


def test_imputer_median_strategy():
    table = Table.from_dict({"x": [1.0, 2.0, 100.0, float("nan")]})
    filled = SimpleImputer(strategy="median").fit_transform(table)
    assert filled["x"][3] == 2.0


def test_imputer_train_statistics_applied_to_test(holey_table):
    imputer = SimpleImputer().fit(holey_table)
    test = Table.from_dict({
        "x": [float("nan"), 10.0],
        "c": ["", "b"],
    }, schema=holey_table.schema)
    filled = imputer.transform(test)
    # Fill value comes from the TRAINING table (mean 2.0), not the test.
    assert filled["x"][0] == 2.0


def test_imputer_missingness_report(holey_table):
    report = SimpleImputer().fit(holey_table).missingness_report(holey_table)
    assert report["x"] == pytest.approx(0.5)
    assert report["c"] == pytest.approx(0.25)


def test_imputer_validation(holey_table):
    with pytest.raises(DataError):
        SimpleImputer(strategy="mode")
    with pytest.raises(NotFittedError):
        SimpleImputer().transform(holey_table)
    imputer = SimpleImputer().fit(holey_table)
    other = Table.from_dict({"unseen": [1.0]})
    with pytest.raises(DataError, match="unseen"):
        imputer.transform(other)


def test_imputer_all_missing_column():
    table = Table.from_dict({"x": [float("nan"), float("nan")]})
    filled = SimpleImputer().fit_transform(table)
    np.testing.assert_allclose(filled["x"], 0.0)


# -- CATE meta-learners ----------------------------------------------------------------

def _heterogeneous_data(rng, n=4000):
    """Effect is +0.3 for segment 'new', ~0 for 'loyal'."""
    from repro.data.synth.base import bernoulli, sigmoid

    X = rng.standard_normal((n, 3))
    segment = np.where(X[:, 0] > 0, "new", "loyal").astype(object)
    treatment = (rng.random(n) < 0.5).astype(float)
    lift = np.where(segment == "new", 1.5, 0.0)
    logits = 0.5 * X[:, 1] - 0.5 + lift * treatment
    outcome = bernoulli(np.asarray(sigmoid(logits)), rng)
    return X, treatment, outcome, segment


def _base_for(learner_cls):
    # A linear S-learner cannot represent a treatment x covariate
    # interaction (the effect enters additively in the logit), so the
    # S-learner needs a base that can; the T-learner's two separate
    # models give even a linear base that freedom.
    if learner_cls is SLearner:
        from repro.learn import GradientBoostingClassifier

        return GradientBoostingClassifier(n_stages=60, max_depth=3)
    return LogisticRegression()


@pytest.mark.parametrize("learner_cls", [SLearner, TLearner])
def test_meta_learners_find_heterogeneity(rng, learner_cls):
    X, treatment, outcome, segment = _heterogeneous_data(rng)
    learner = learner_cls(_base_for(learner_cls)).fit(X, treatment, outcome)
    effects = learner.effect(X)
    by_group = {item.name: item for item in effects_by_group(effects, segment)}
    assert by_group["new"].mean_effect > by_group["loyal"].mean_effect + 0.1
    assert abs(by_group["loyal"].mean_effect) < 0.12


def test_meta_learners_agree_on_sign(rng):
    X, treatment, outcome, _ = _heterogeneous_data(rng)
    s_effects = SLearner(LogisticRegression()).fit(
        X, treatment, outcome
    ).effect(X)
    t_effects = TLearner(LogisticRegression()).fit(
        X, treatment, outcome
    ).effect(X)
    agreement = np.mean(np.sign(s_effects) == np.sign(t_effects))
    assert agreement > 0.7


def test_policy_value_targets_the_responsive(rng):
    X, treatment, outcome, _ = _heterogeneous_data(rng)
    effects = TLearner(LogisticRegression()).fit(
        X, treatment, outcome
    ).effect(X)
    targeted = policy_value(effects, 0.3)
    blanket = policy_value(effects, 1.0)
    assert targeted > blanket


def test_cate_validation(rng):
    X = rng.standard_normal((20, 2))
    with pytest.raises(CausalError):
        SLearner(LogisticRegression()).fit(X, np.ones(20), np.ones(20))
    learner = TLearner(LogisticRegression())
    with pytest.raises(CausalError):
        learner.effect(X)
    with pytest.raises(CausalError):
        policy_value(np.array([0.1]), 0.0)
