"""Tests for the benchmark layer (repro.bench): harness, trajectory, gate."""

import json
import os

import pytest

from repro.bench import (
    BenchHarness,
    BenchRecord,
    append_record,
    cache_counter_totals,
    compare,
    environment_fingerprint,
    format_table,
    latest_baseline,
    load_trajectory,
    new_trajectory,
    rotate_jsonl_sessions,
    run_suite,
    session_marker,
    trajectory_path,
)
from repro.exceptions import DataError


# -- compare: the regression gate --------------------------------------------


def metrics(wall, cpu=None):
    result = {"wall_s_median": wall}
    if cpu is not None:
        result["cpu_s_median"] = cpu
    return result


def test_compare_flags_regression():
    result = compare(metrics(0.10), metrics(0.50), min_delta_s=0.0)
    assert not result.ok
    assert [d.metric for d in result.regressions] == ["wall_s_median"]
    assert result.regressions[0].ratio == pytest.approx(5.0)
    assert "0.5000s" in result.regressions[0].render()


def test_compare_passes_improvement_and_flags_it():
    result = compare(metrics(0.50), metrics(0.10), min_delta_s=0.0)
    assert result.ok
    assert [d.metric for d in result.improvements] == ["wall_s_median"]


def test_compare_tolerance_boundary_is_exclusive():
    # current == baseline * (1 + tolerance) exactly → passes (strict >).
    result = compare(metrics(1.0), metrics(1.2), tolerance=0.20,
                     min_delta_s=0.0)
    assert result.ok
    result = compare(metrics(1.0), metrics(1.2001), tolerance=0.20,
                     min_delta_s=0.0)
    assert not result.ok


def test_compare_absolute_noise_floor():
    # 100% slower but only 10ms absolute: under the floor, passes.
    result = compare(metrics(0.010), metrics(0.020), min_delta_s=0.02)
    assert result.ok
    assert result.checked == ["wall_s_median"]


def test_compare_gates_cpu_as_well_as_wall():
    result = compare(metrics(1.0, cpu=1.0), metrics(1.0, cpu=2.0),
                     min_delta_s=0.0)
    assert [d.metric for d in result.regressions] == ["cpu_s_median"]


def test_compare_skips_missing_or_nonpositive_metrics():
    result = compare({"wall_s_median": 0.0}, metrics(5.0), min_delta_s=0.0)
    assert result.ok
    assert "wall_s_median" in result.skipped
    result = compare({}, metrics(5.0))
    assert result.ok and result.checked == []


def test_compare_accepts_full_trajectory_records():
    baseline = BenchRecord(name="x", metrics=metrics(0.1)).to_dict()
    current = BenchRecord(name="x", metrics=metrics(0.9)).to_dict()
    assert not compare(baseline, current, min_delta_s=0.0).ok


def test_compare_validates_inputs():
    with pytest.raises(DataError):
        compare("nope", metrics(1.0))
    with pytest.raises(DataError):
        compare(metrics(1.0), metrics(1.0), tolerance=-0.1)


# -- trajectory files --------------------------------------------------------


def test_trajectory_append_load_roundtrip(tmp_path):
    path = trajectory_path("demo", str(tmp_path))
    assert path.endswith("BENCH_demo.json")
    record = BenchRecord(name="demo", metrics=metrics(0.5),
                         mode="smoke").stamp()
    append_record(path, record)
    trajectory = load_trajectory(path)
    assert trajectory["name"] == "demo"
    assert len(trajectory["runs"]) == 1
    run = trajectory["runs"][0]
    assert run["metrics"]["wall_s_median"] == 0.5
    assert run["timestamp"] > 0
    assert run["environment"]["python"]


def test_trajectory_caps_history(tmp_path):
    path = trajectory_path("demo", str(tmp_path))
    for index in range(7):
        append_record(
            path, BenchRecord(name="demo", metrics=metrics(float(index))),
            max_runs=3,
        )
    runs = load_trajectory(path)["runs"]
    assert [r["metrics"]["wall_s_median"] for r in runs] == [4.0, 5.0, 6.0]


def test_latest_baseline_matches_mode():
    trajectory = new_trajectory("demo")
    trajectory["runs"] = [
        BenchRecord(name="demo", metrics=metrics(1.0), mode="full").to_dict(),
        BenchRecord(name="demo", metrics=metrics(2.0), mode="smoke").to_dict(),
        BenchRecord(name="demo", metrics=metrics(3.0), mode="full").to_dict(),
    ]
    assert latest_baseline(trajectory, "smoke")["metrics"][
        "wall_s_median"] == 2.0
    assert latest_baseline(trajectory, "full")["metrics"][
        "wall_s_median"] == 3.0
    assert latest_baseline(trajectory)["metrics"]["wall_s_median"] == 3.0
    assert latest_baseline(trajectory, "experiment") is None


def test_load_trajectory_rejects_garbage(tmp_path):
    path = tmp_path / "BENCH_bad.json"
    path.write_text("not json")
    with pytest.raises(DataError):
        load_trajectory(str(path))
    path.write_text(json.dumps({"record": "other"}))
    with pytest.raises(DataError):
        load_trajectory(str(path))
    with pytest.raises(DataError):
        load_trajectory(str(tmp_path / "BENCH_missing.json"))


def test_environment_fingerprint_shape():
    fingerprint = environment_fingerprint()
    assert {"python", "platform", "machine", "cpu_count"} <= set(fingerprint)


# -- telemetry session rotation ----------------------------------------------


def write_sessions(path, count, rows_per_session=2):
    with open(path, "w") as handle:
        for session in range(count):
            handle.write(json.dumps(session_marker(f"s{session}")) + "\n")
            for row in range(rows_per_session):
                handle.write(json.dumps(
                    {"record": "span", "name": f"s{session}.{row}"}
                ) + "\n")


def test_rotation_keeps_last_sessions(tmp_path):
    path = str(tmp_path / "telemetry.jsonl")
    write_sessions(path, 5)
    assert rotate_jsonl_sessions(path, 2) == 2
    with open(path) as handle:
        records = [json.loads(line) for line in handle]
    labels = [r["label"] for r in records if r["record"] == "session"]
    assert labels == ["s3", "s4"]
    assert len(records) == 6


def test_rotation_counts_legacy_content_as_one_session(tmp_path):
    path = str(tmp_path / "telemetry.jsonl")
    with open(path, "w") as handle:
        handle.write(json.dumps({"record": "span", "name": "old"}) + "\n")
    assert rotate_jsonl_sessions(path, 3) == 1
    write_sessions(path, 0)   # truncate, then markerless + 3 sessions
    with open(path, "a") as handle:
        handle.write(json.dumps({"record": "span", "name": "old"}) + "\n")
    with open(path, "a") as handle:
        for session in range(3):
            handle.write(json.dumps(session_marker(f"s{session}")) + "\n")
    assert rotate_jsonl_sessions(path, 2) == 2
    with open(path) as handle:
        first = json.loads(handle.readline())
    assert first["label"] == "s1"   # legacy block rotated out first


def test_rotation_edge_cases(tmp_path):
    missing = str(tmp_path / "absent.jsonl")
    assert rotate_jsonl_sessions(missing, 2) == 0
    with pytest.raises(DataError):
        rotate_jsonl_sessions(missing, 0)


# -- harness -----------------------------------------------------------------


def test_harness_runs_and_metric_shape():
    calls = []
    harness = BenchHarness("demo", runs=3, warmup=2)
    result = harness.run(lambda: calls.append(1) or len(calls))
    assert len(calls) == 5                      # warmup + runs
    assert result.payload == 5                  # last return value
    assert len(result.wall_s) == 3
    assert {"wall_s_median", "wall_s_p90", "wall_s_min",
            "cpu_s_median"} <= set(result.metrics)
    assert result.metrics["wall_s_min"] <= result.metrics["wall_s_median"]
    assert result.metrics["wall_s_median"] <= result.metrics["wall_s_p90"]


def test_harness_handicap_slows_every_run():
    harness = BenchHarness("demo", runs=2, warmup=0, handicap_s=0.02)
    result = harness.run(lambda: None)
    assert all(wall >= 0.02 for wall in result.wall_s)


def test_harness_alloc_metric():
    harness = BenchHarness("demo", runs=1, warmup=0, measure_alloc=True)
    result = harness.run(lambda: [0] * 100_000)
    assert result.metrics["alloc_peak_kb"] > 100


def test_harness_validates_arguments():
    with pytest.raises(DataError):
        BenchHarness("demo", runs=0)
    with pytest.raises(DataError):
        BenchHarness("demo", warmup=-1)


def test_harness_cache_counters_from_telemetry():
    from repro import obs

    telemetry = obs.configure()
    try:
        telemetry.metrics.counter("store.hits", store="a").inc(3)
        telemetry.metrics.counter("store.hits", store="b").inc(2)
        telemetry.metrics.counter("serve.cache.misses").inc(4)
        totals = cache_counter_totals(telemetry)
    finally:
        obs.reset()
    assert totals["hits"] == 5
    assert totals["misses"] == 4
    assert cache_counter_totals(None) == {"hits": 0, "misses": 0,
                                          "uncacheable": 0}


# -- suite + CLI -------------------------------------------------------------


def test_run_suite_smoke_writes_trajectory_and_gates(tmp_path):
    directory = str(tmp_path)
    lines = []
    code = run_suite(names=["pipeline"], smoke=True, runs=1, warmup=0,
                     directory=directory, out=lines.append)
    assert code == 0
    path = trajectory_path("pipeline", directory)
    assert os.path.exists(path)
    assert any("pipeline" in line for line in lines)

    # Same machine, same workload: the gate passes against the baseline.
    code = run_suite(names=["pipeline"], smoke=True, runs=1, warmup=0,
                     directory=directory, check=True, out=lines.append)
    assert code == 0

    # An injected slowdown far past tolerance must trip it.
    code = run_suite(names=["pipeline"], smoke=True, runs=1, warmup=0,
                     directory=directory, check=True, handicap_s=0.3,
                     append=False, out=lines.append)
    assert code == 1
    assert any("REGRESSION" in line for line in lines)
    assert len(load_trajectory(path)["runs"]) == 2   # append=False held


def test_run_suite_rejects_unknown_benchmark(tmp_path):
    with pytest.raises(DataError):
        run_suite(names=["nope"], directory=str(tmp_path))


def test_bench_cli_list(capsys):
    from repro.cli import main

    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    assert "audit" in out and "pipeline" in out and "serve" in out


def test_format_table_renders_none_as_dash():
    table = format_table("t", ["a", "b"], [[None, 1.5]])
    assert "-" in table and "1.5000" in table
