"""Integration tests: the paper's scenarios end-to-end across modules."""

import numpy as np
import pytest

from repro.core import FACTAuditor, FACTPolicy, build_scorecard
from repro.data import three_way_split, train_test_split
from repro.data.schema import ColumnRole, categorical
from repro.data.synth import (
    AdCampaignGenerator,
    CreditScoringGenerator,
    InternetMinuteGenerator,
)
from repro.fairness import audit_model, detect_proxies, reweigh
from repro.learn import LogisticRegression, TableClassifier
from repro.pipeline import (
    CleanStage,
    DecideStage,
    Pipeline,
    PredictStage,
    RedactStage,
    ReweighStage,
    TrainStage,
    ValidateSchemaStage,
)


def test_bias_propagates_without_sensitive_attribute(rng):
    """The paper's central Q1 claim: dropping the sensitive attribute does
    not stop discrimination when a proxy exists."""
    generator = CreditScoringGenerator(label_bias=0.4, proxy_strength=0.9)
    train, test = generator.generate_pair(2500, 1200, rng)
    model = TableClassifier(LogisticRegression()).fit(train)
    # The model provably never saw `group`...
    assert all(not name.startswith("group=") for name in model.feature_names)
    # ...yet its decisions are group-disparate.
    report = audit_model(model, test)
    assert report.disparate_impact_ratio < 0.85
    # And the proxy detector explains why.
    proxies = detect_proxies(train)
    assert proxies.strongest(1)[0][0] == "neighborhood"


def test_no_proxy_no_label_bias_means_fair(rng):
    generator = CreditScoringGenerator(label_bias=0.0, proxy_strength=0.0)
    train, test = generator.generate_pair(2500, 1200, rng)
    model = TableClassifier(LogisticRegression()).fit(train)
    report = audit_model(model, test)
    assert report.disparate_impact_ratio > 0.9


def test_full_remediation_loop(rng):
    """Audit -> mitigate -> re-audit: the grade must improve."""
    generator = CreditScoringGenerator(label_bias=0.35, proxy_strength=0.85)
    data = generator.generate(4000, rng)
    train, calibration, test = three_way_split(data, 0.25, 0.15, rng)
    auditor = FACTAuditor()
    policy = FACTPolicy(max_calibration_error=None,
                        max_conformal_coverage_shortfall=None,
                        max_unique_row_fraction=None,
                        min_surrogate_fidelity=None)

    biased = Pipeline([
        ValidateSchemaStage(), CleanStage(),
        TrainStage(TableClassifier(LogisticRegression())),
        PredictStage(), DecideStage(),
    ]).run(train, rng)
    biased_report = auditor.audit(
        biased.model, test, rng, calibration=calibration,
        pipeline_result=biased,
    )
    assert policy.check(biased_report)  # violations present

    remediated = Pipeline([
        ValidateSchemaStage(), CleanStage(), ReweighStage(),
        TrainStage(TableClassifier(LogisticRegression())),
        PredictStage(), DecideStage(),
    ]).run(train, rng)
    remediated_report = auditor.audit(
        remediated.model, test, rng, calibration=calibration,
        pipeline_result=remediated,
    )
    assert (build_scorecard(remediated_report).fairness
            > build_scorecard(biased_report).fairness)
    fairness_violations = [
        violation for violation in policy.check(remediated_report)
        if violation.pillar == "fairness"
        and violation.clause.startswith("disparate")
    ]
    assert not fairness_violations


def test_observational_study_pipeline(rng):
    """Q2 end-to-end: naive observational lift overstates; the causal
    battery recovers the RCT answer."""
    from repro.accuracy.causal import compare_estimators

    generator = AdCampaignGenerator(true_lift=0.4, confounding=1.5)
    observational = generator.generate_observational(5000, rng)
    rct = generator.generate_rct(5000, rng)
    X = np.column_stack([
        observational["activity"],
        observational["past_purchases"],
        observational["ad_affinity"],
    ])
    truth = generator.true_ate(observational)
    results = compare_estimators(
        X, observational["exposed"], observational["purchase"],
        rct_treatment=rct["exposed"], rct_outcome=rct["purchase"],
    )
    assert abs(results["naive"].ate - truth) > 2 * abs(results["aipw"].ate - truth)
    lower, upper = results["rct"].ci95
    assert lower <= generator.true_ate(rct) <= upper


def test_event_stream_release_hygiene(rng):
    """Q3 end-to-end: the Internet-Minute stream goes through redaction
    and the released table carries no raw identifiers."""
    stream = InternetMinuteGenerator(scale=2e-5).generate_stream(rng)
    result = Pipeline([RedactStage()]).run(stream, rng)
    released = result.table
    assert released.schema.identifier_names == ["user_id"]
    assert all(str(token).startswith("p_") for token in released["user_id"][:20])
    # Pseudonymisation is consistent within the release...
    raw_first = stream["user_id"][0]
    same_user_rows = np.flatnonzero(stream["user_id"] == raw_first)
    tokens = set(released["user_id"][same_user_rows].tolist())
    assert len(tokens) == 1


def test_csv_roundtrip_preserves_audit(tmp_path, rng):
    """Persistence does not break the audit chain."""
    from repro.data.io import read_csv, write_csv

    generator = CreditScoringGenerator(label_bias=0.3, proxy_strength=0.7)
    data = generator.generate(1500, rng)
    path = tmp_path / "credit.csv"
    write_csv(data, path)
    loaded = read_csv(path)
    train, test = train_test_split(loaded, 0.3, rng)
    model = TableClassifier(LogisticRegression()).fit(train)
    report = audit_model(model, test)
    assert report.sensitive == "group"
    assert 0.0 <= report.disparate_impact_ratio <= 1.0


def test_mixed_model_types_through_auditor(census_tables, rng):
    from repro.learn import DecisionTreeClassifier, GaussianNaiveBayes

    train, test = census_tables
    for estimator in (DecisionTreeClassifier(max_depth=4),
                      GaussianNaiveBayes()):
        model = TableClassifier(estimator).fit(train)
        report = FACTAuditor(n_bootstrap=100).audit(model, test, rng)
        assert report.accuracy.accuracy.estimate > 0.5
        assert report.transparency.model_type == type(estimator).__name__
