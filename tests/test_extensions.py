"""Unit tests for the extension modules: DP synthesis, intersectional
fairness, audit power analysis, and deployment drift monitoring."""

import numpy as np
import pytest

from repro.accuracy.power import (
    achieved_power,
    minimum_detectable_gap,
    required_audit_size,
)
from repro.confidentiality import PrivacyAccountant
from repro.confidentiality.synthesis import (
    MarginalSynthesizer,
    marginal_total_variation,
)
from repro.data.synth import CreditScoringGenerator
from repro.exceptions import DataError, FairnessError
from repro.fairness.intersectional import intersectional_audit
from repro.pipeline.monitor import (
    FairnessDriftMonitor,
    population_stability_index,
)


# -- DP synthesis -------------------------------------------------------------

def test_synthesizer_preserves_marginals_at_high_epsilon(credit_tables, rng):
    train, _ = credit_tables
    synthesizer = MarginalSynthesizer(epsilon=50.0).fit(train, rng)
    synthetic = synthesizer.sample(train.n_rows, rng)
    assert synthetic.column_names == train.column_names
    for column in ("income", "group", "purpose"):
        assert marginal_total_variation(train, synthetic, column) < 0.1


def test_synthesizer_utility_degrades_at_low_epsilon(credit_tables, rng):
    train, _ = credit_tables

    def tv_at(epsilon):
        synthesizer = MarginalSynthesizer(epsilon=epsilon).fit(train, rng)
        synthetic = synthesizer.sample(train.n_rows, rng)
        return np.mean([
            marginal_total_variation(train, synthetic, column)
            for column in train.column_names
        ])

    assert tv_at(0.05) > tv_at(20.0)


def test_synthesizer_chain_preserves_pairwise_structure(rng):
    from repro.data.table import Table

    n = 3000
    x = rng.standard_normal(n)
    category = np.where(x > 0, "high", "low").astype(object)
    table = Table.from_dict({"x": x, "band": category})
    chained = MarginalSynthesizer(epsilon=50.0, mode="chain").fit(table, rng)
    synthetic = chained.sample(n, rng)
    synthetic_x = synthetic["x"]
    synthetic_band = synthetic["band"]
    # x should still separate the bands in the chained synthesis.
    gap = (synthetic_x[synthetic_band == "high"].mean()
           - synthetic_x[synthetic_band == "low"].mean())
    assert gap > 0.5


def test_synthesizer_charges_accountant(credit_tables, rng):
    train, _ = credit_tables
    accountant = PrivacyAccountant(2.0)
    MarginalSynthesizer(epsilon=2.0, accountant=accountant).fit(train, rng)
    assert accountant.epsilon_spent == pytest.approx(2.0)


def test_synthesizer_validation(credit_tables, rng):
    train, _ = credit_tables
    with pytest.raises(DataError):
        MarginalSynthesizer(epsilon=0.0)
    with pytest.raises(DataError):
        MarginalSynthesizer(epsilon=1.0, n_bins=1)
    synthesizer = MarginalSynthesizer(epsilon=1.0)
    with pytest.raises(DataError):
        synthesizer.sample(10, rng)  # not fitted
    synthesizer.fit(train, rng)
    with pytest.raises(DataError):
        synthesizer.sample(0, rng)


def test_synthetic_rows_are_not_copies(credit_tables, rng):
    train, _ = credit_tables
    synthesizer = MarginalSynthesizer(epsilon=5.0).fit(train, rng)
    synthetic = synthesizer.sample(200, rng)
    real_incomes = set(np.round(train["income"], 10).tolist())
    synthetic_incomes = set(np.round(synthetic["income"], 10).tolist())
    # Numeric values are re-drawn inside bins, not copied.
    assert len(synthetic_incomes & real_incomes) == 0


# -- intersectional fairness ---------------------------------------------------------

def test_intersectional_finds_hidden_cell(rng):
    n = 2000
    group = np.where(rng.random(n) < 0.5, "B", "A").astype(object)
    age = np.where(rng.random(n) < 0.5, "old", "young").astype(object)
    # Fair marginally, unfair at the intersection (old B).
    selection_p = np.full(n, 0.6)
    selection_p[(group == "B") & (age == "old")] = 0.2
    selection_p[(group == "B") & (age == "young")] = 1.0
    decisions = (rng.random(n) < selection_p).astype(float)

    from repro.fairness.metrics import statistical_parity_difference

    marginal_gap = statistical_parity_difference(decisions, group)
    report = intersectional_audit(decisions, {"group": group, "age": age})
    worst = report.worst_cell
    assert worst.describe() == "age=old & group=B"
    assert report.max_gap > marginal_gap
    assert report.disparate_impact_ratio < 0.5
    assert "intersectional audit" in report.render()


def test_intersectional_single_attribute_matches_group_audit(rng):
    n = 1000
    group = np.where(rng.random(n) < 0.5, "B", "A").astype(object)
    decisions = (rng.random(n) < np.where(group == "A", 0.8, 0.4)).astype(float)
    report = intersectional_audit(decisions, {"group": group})
    from repro.fairness.metrics import selection_rates

    rates = selection_rates(decisions, group)
    assert report.max_gap == pytest.approx(
        max(rates.values()) - min(rates.values())
    )


def test_intersectional_min_cell_size(rng):
    n = 200
    group = np.asarray(["A"] * 195 + ["B"] * 5, dtype=object)
    decisions = np.zeros(n)
    decisions[:100] = 1.0
    with pytest.raises(FairnessError):
        intersectional_audit(decisions, {"group": group}, min_cell_size=50)


def test_intersectional_validation(rng):
    with pytest.raises(FairnessError):
        intersectional_audit(np.ones(10), {})
    with pytest.raises(FairnessError):
        intersectional_audit(np.ones(10), {"g": np.asarray(["A"] * 5)})


# -- power analysis ---------------------------------------------------------------------

def test_required_audit_size_reasonable():
    design = required_audit_size(0.5, 0.1)
    # Classic two-proportion result: ~390 per group for 50% vs 40%.
    assert 330 <= design.n_per_group <= 450
    assert "per group" in design.render()


def test_required_size_grows_for_smaller_gaps():
    large = required_audit_size(0.5, 0.2).n_per_group
    small = required_audit_size(0.5, 0.05).n_per_group
    assert small > 4 * large  # ~1/gap^2 scaling


def test_minimum_detectable_gap_inverts_required_size():
    design = required_audit_size(0.5, 0.1)
    gap = minimum_detectable_gap(design.n_per_group, 0.5)
    assert gap == pytest.approx(0.1, abs=0.01)


def test_minimum_detectable_gap_nan_when_hopeless():
    assert np.isnan(minimum_detectable_gap(3, 0.5))


def test_achieved_power_matches_design():
    design = required_audit_size(0.5, 0.1, power=0.8)
    power = achieved_power(design.n_per_group, 0.5, 0.1)
    assert power == pytest.approx(0.8, abs=0.03)
    assert achieved_power(design.n_per_group * 4, 0.5, 0.1) > 0.95


def test_achieved_power_empirically(rng):
    # Simulate many audits at the designed size; rejection rate ~ power.
    design = required_audit_size(0.5, 0.1, power=0.8)
    from repro.accuracy.hypothesis import proportion_z_test

    n = design.n_per_group
    rejections = 0
    trials = 300
    for _ in range(trials):
        a = rng.binomial(n, 0.5)
        b = rng.binomial(n, 0.4)
        if proportion_z_test(a, n, b, n).p_value < 0.05:
            rejections += 1
    assert rejections / trials == pytest.approx(0.8, abs=0.08)


def test_power_validation():
    with pytest.raises(DataError):
        required_audit_size(0.0, 0.1)
    with pytest.raises(DataError):
        required_audit_size(0.5, 0.6)
    with pytest.raises(DataError):
        achieved_power(1, 0.5, 0.1)


# -- drift monitoring ---------------------------------------------------------------------

def test_psi_zero_for_same_distribution(rng):
    reference = rng.random(5000)
    observed = rng.random(5000)
    assert population_stability_index(reference, observed) < 0.01


def test_psi_large_for_shifted_distribution(rng):
    reference = rng.normal(0.3, 0.1, 5000)
    shifted = rng.normal(0.7, 0.1, 5000)
    assert population_stability_index(reference, shifted) > 0.25


def test_monitor_raises_population_alarm(rng):
    monitor = FairnessDriftMonitor(
        reference_scores=rng.normal(0.4, 0.1, 2000)
    )
    assert monitor.observe(rng.normal(0.4, 0.1, 500)) == []
    alarms = monitor.observe(rng.normal(0.9, 0.05, 500))
    assert [alarm.kind for alarm in alarms] == ["population_drift"]
    assert monitor.n_batches == 2
    assert len(monitor.alarms) == 1
    assert "alarm" in monitor.render()


def test_monitor_raises_fairness_alarm(rng):
    monitor = FairnessDriftMonitor(
        reference_scores=rng.random(2000), max_selection_gap=0.2
    )
    scores = np.concatenate([np.full(250, 0.9), np.full(250, 0.1)])
    group = np.asarray(["A"] * 250 + ["B"] * 250, dtype=object)
    # Shuffle jointly so PSI stays calm but the gap is real.
    order = rng.permutation(500)
    alarms = monitor.observe(scores[order], group=group[order])
    assert any(alarm.kind == "fairness_drift" for alarm in alarms)


def test_monitor_raises_accuracy_alarm(rng):
    reference = rng.random(2000)
    monitor = FairnessDriftMonitor(
        reference_scores=reference, min_accuracy=0.9
    )
    scores = rng.random(400)
    wrong_labels = (scores < 0.5).astype(float)  # always disagrees
    alarms = monitor.observe(scores, y_true=wrong_labels)
    assert any(alarm.kind == "accuracy_drift" for alarm in alarms)


def test_monitor_audit_trail(rng):
    monitor = FairnessDriftMonitor(reference_scores=rng.random(1000))
    monitor.observe(rng.random(100))
    monitor.observe(rng.random(100))
    assert len(monitor.audit.events(action="batch_observed")) == 2


def test_monitor_validation(rng):
    monitor = FairnessDriftMonitor(reference_scores=rng.random(100))
    with pytest.raises(DataError):
        monitor.observe(np.array([]))
