"""Unit tests for the bias injectors."""

import numpy as np
import pytest

from repro.data.synth import bias
from repro.exceptions import DataError


def test_label_bias_flips_only_group_positives(small_table, rng):
    biased, record = bias.inject_label_bias(
        small_table, "group", "B", 1.0, rng, target="approved"
    )
    group_b = biased.filter(biased["group"] == "B")
    assert group_b["approved"].sum() == 0.0
    group_a = biased.filter(biased["group"] == "A")
    original_a = small_table.filter(small_table["group"] == "A")
    np.testing.assert_allclose(group_a["approved"], original_a["approved"])
    assert record.kind == "label_bias"
    assert record.n_affected == 1  # only one B-positive in the fixture


def test_label_bias_zero_rate_is_identity(small_table, rng):
    biased, record = bias.inject_label_bias(
        small_table, "group", "B", 0.0, rng, target="approved"
    )
    assert biased == small_table
    assert record.n_affected == 0


def test_label_bias_validation(small_table, rng):
    with pytest.raises(DataError):
        bias.inject_label_bias(small_table, "group", "B", 1.5, rng)
    with pytest.raises(DataError, match="no rows"):
        bias.inject_label_bias(small_table, "group", "Z", 0.5, rng,
                               target="approved")


def test_selection_bias_drops_group_positives(small_table, rng):
    thinned, record = bias.inject_selection_bias(
        small_table, "group", "B", 1.0, rng, target="approved"
    )
    remaining_b = thinned.filter(thinned["group"] == "B")
    assert remaining_b["approved"].sum() == 0.0
    assert thinned.n_rows == small_table.n_rows - record.n_affected


def test_selection_bias_all_labels(small_table, rng):
    thinned, record = bias.inject_selection_bias(
        small_table, "group", "B", 1.0, rng, positives_only=False
    )
    assert (thinned["group"] == "B").sum() == 0
    assert record.kind == "selection_bias"


def test_underrepresentation(small_table, rng):
    thinned, record = bias.inject_underrepresentation(
        small_table, "group", "B", 0.34, rng
    )
    assert (thinned["group"] == "B").sum() == 1
    assert (thinned["group"] == "A").sum() == 3
    assert record.kind == "underrepresentation"
    with pytest.raises(DataError):
        bias.inject_underrepresentation(small_table, "group", "B", 0.0, rng)


def test_numeric_proxy_correlates(rng):
    from repro.data.table import Table

    n = 4000
    group = np.where(rng.random(n) < 0.5, "B", "A")
    table = Table.from_dict({"group": group, "x": rng.standard_normal(n)})
    strong, _ = bias.add_numeric_proxy(table, "group", "B", "proxy", 0.9, rng)
    weak, _ = bias.add_numeric_proxy(table, "group", "B", "weak", 0.0, rng)
    membership = (group == "B").astype(float)
    strong_corr = abs(np.corrcoef(strong["proxy"], membership)[0, 1])
    weak_corr = abs(np.corrcoef(weak["weak"], membership)[0, 1])
    assert strong_corr > 0.8
    assert weak_corr < 0.1


def test_categorical_proxy_purity(rng):
    from repro.data.table import Table

    n = 4000
    group = np.where(rng.random(n) < 0.5, "B", "A")
    table = Table.from_dict({"group": group})
    pure, _ = bias.add_categorical_proxy(
        table, "group", "B", "hood", ["n1", "n2", "s1", "s2"], 1.0, rng
    )
    b_side = pure.filter(pure["group"] == "B")["hood"]
    assert set(np.unique(b_side)) <= {"n1", "n2"}
    noisy, _ = bias.add_categorical_proxy(
        table, "group", "B", "hood", ["n1", "n2", "s1", "s2"], 0.0, rng
    )
    b_noisy = noisy.filter(noisy["group"] == "B")["hood"]
    # At zero purity both halves appear for group B.
    assert len(set(np.unique(b_noisy))) == 4


def test_categorical_proxy_validation(small_table, rng):
    with pytest.raises(DataError):
        bias.add_categorical_proxy(small_table, "group", "B", "p", ["only"], 0.5, rng)
    with pytest.raises(DataError):
        bias.add_categorical_proxy(small_table, "group", "B", "p",
                                   ["a", "b"], 1.5, rng)
