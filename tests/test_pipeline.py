"""Unit tests for the pipeline substrate: stages, runner, provenance, audit."""

import numpy as np
import pytest

from repro.data.schema import numeric
from repro.exceptions import DataError, ProvenanceError
from repro.learn import LogisticRegression, TableClassifier
from repro.pipeline import (
    AuditLog,
    CleanStage,
    DecideStage,
    FunctionStage,
    Pipeline,
    PredictStage,
    ProvenanceGraph,
    RedactStage,
    RepairStage,
    ReweighStage,
    TrainStage,
    ValidateSchemaStage,
    fingerprint_table,
)


def standard_pipeline(provenance="fingerprint"):
    return Pipeline([
        ValidateSchemaStage(),
        CleanStage(),
        TrainStage(TableClassifier(LogisticRegression())),
        PredictStage(),
        DecideStage(),
    ], provenance=provenance)


# -- provenance graph ----------------------------------------------------------

def test_fingerprint_is_content_sensitive(credit_tables):
    train, test = credit_tables
    assert fingerprint_table(train) == fingerprint_table(train)
    assert fingerprint_table(train) != fingerprint_table(test)


def test_fingerprint_detects_single_value_change(small_table):
    modified = small_table.with_column(
        small_table.schema["income"],
        [10.0, 20.0, 30.0, 40.0, 50.0, 61.0],
    )
    assert fingerprint_table(small_table) != fingerprint_table(modified)


def test_provenance_lineage(small_table):
    graph = ProvenanceGraph()
    raw = graph.add_table(small_table, "raw")
    cleaned = graph.add_table(small_table, "cleaned")
    model = graph.add_artifact("model", "fp1", "trained model")
    graph.record_step("clean", [raw], [cleaned], {"drop_nan": True})
    graph.record_step("train", [cleaned], [model], {"l2": 1.0})
    lineage = graph.lineage(model)
    assert [step.name for step in lineage] == ["clean", "train"]
    assert lineage[1].params_dict()["l2"] == "1.0"
    assert graph.n_artifacts == 3
    assert graph.n_steps == 2


def test_provenance_downstream(small_table):
    graph = ProvenanceGraph()
    raw = graph.add_table(small_table, "raw")
    derived = graph.add_table(small_table, "derived")
    report = graph.add_artifact("report", "fp", "fact report")
    graph.record_step("transform", [raw], [derived])
    graph.record_step("audit", [derived], [report])
    downstream = graph.downstream(raw)
    assert {artifact.kind for artifact in downstream} == {"table", "report"}


def test_provenance_unknown_artifact(small_table):
    graph = ProvenanceGraph()
    from repro.pipeline.provenance import Artifact

    ghost = Artifact("ghost_1", "table", "fp")
    with pytest.raises(ProvenanceError):
        graph.record_step("step", [ghost], [])
    with pytest.raises(ProvenanceError):
        graph.lineage(ghost)


def test_render_lineage(small_table):
    graph = ProvenanceGraph()
    raw = graph.add_table(small_table)
    out = graph.add_table(small_table)
    graph.record_step("clean", [raw], [out], {"clips": {}})
    text = graph.render_lineage(out)
    assert "clean" in text and "<-" in text


# -- audit log ------------------------------------------------------------------

def test_audit_log_sequencing():
    log = AuditLog()
    log.record("alice", "ingest", rows=100)
    log.record("bob", "train", model="lr")
    assert len(log) == 2
    events = list(log)
    assert events[0].sequence == 0
    assert events[1].actor == "bob"
    assert "rows=100" in events[0].render()


def test_audit_log_filtering():
    log = AuditLog()
    log.record("alice", "ingest")
    log.record("alice", "train")
    log.record("bob", "train")
    assert len(log.events(actor="alice")) == 2
    assert len(log.events(action="train")) == 2
    assert len(log.events(actor="bob", action="train")) == 1
    assert "train" in log.render(last=1)


# -- stages --------------------------------------------------------------------

def test_validate_schema_stage(credit_tables):
    train, _ = credit_tables
    pipeline = Pipeline([ValidateSchemaStage(required_columns=["income"])])
    result = pipeline.run(train, np.random.default_rng(0))
    assert result.table is train

    from repro.data.table import Table

    bare = Table.from_dict({"x": [1.0, 2.0]})
    with pytest.raises(DataError, match="TARGET"):
        pipeline.run(bare, np.random.default_rng(0))


def test_clean_stage_drops_nan_and_clips(rng):
    from repro.data.table import Table

    table = Table.from_dict({
        "x": [1.0, float("nan"), 100.0],
        "y": [0.0, 1.0, 1.0],
    })
    pipeline = Pipeline([CleanStage(clips={"x": (0.0, 10.0)})])
    result = pipeline.run(table, rng)
    assert result.table.n_rows == 2
    assert result.table["x"].max() == 10.0


def test_redact_stage_strips_oracles(credit_tables, rng):
    train, _ = credit_tables
    result = Pipeline([RedactStage()]).run(train, rng)
    assert "qualified" not in result.table


def test_repair_stage(credit_tables, rng):
    train, _ = credit_tables
    result = Pipeline([RepairStage(repair_level=1.0)]).run(train, rng)
    assert result.table.n_rows == train.n_rows


def test_train_predict_decide_flow(credit_tables, rng):
    train, _ = credit_tables
    result = standard_pipeline().run(train, rng)
    assert result.model is not None
    assert "score" in result.table
    assert "decision" in result.table
    decisions = result.table["decision"]
    assert set(np.unique(decisions)) <= {0.0, 1.0}


def test_reweigh_stage_feeds_training(credit_tables, rng):
    train, test = credit_tables
    plain = standard_pipeline().run(train, rng)
    fair = Pipeline([
        ValidateSchemaStage(), ReweighStage(),
        TrainStage(TableClassifier(LogisticRegression())),
    ]).run(train, rng)
    from repro.fairness import audit_model

    plain_di = audit_model(plain.model, test).disparate_impact_ratio
    fair_di = audit_model(fair.model, test).disparate_impact_ratio
    assert fair_di > plain_di


def test_predict_without_model_fails(credit_tables, rng):
    train, _ = credit_tables
    with pytest.raises(DataError, match="model"):
        Pipeline([PredictStage()]).run(train, rng)


def test_function_stage(credit_tables, rng):
    train, _ = credit_tables
    stage = FunctionStage(
        "halve", lambda table: table.take(range(table.n_rows // 2)), note="demo"
    )
    result = Pipeline([stage]).run(train, rng)
    assert result.table.n_rows == train.n_rows // 2
    assert stage.params() == {"note": "demo"}


# -- runner -----------------------------------------------------------------------

def test_pipeline_records_provenance(credit_tables, rng):
    train, _ = credit_tables
    result = standard_pipeline().run(train, rng)
    graph = result.context.provenance
    assert graph.n_steps == 5
    assert graph.n_artifacts == 6  # input + one per stage
    lineage = result.lineage()
    for stage_name in ("validate_schema", "clean", "train", "predict", "decide"):
        assert stage_name in lineage
    assert len(result.context.audit) == 7  # start + 5 stages + finish


def test_pipeline_provenance_off(credit_tables, rng):
    train, _ = credit_tables
    result = standard_pipeline(provenance="off").run(train, rng)
    assert result.context.provenance is None
    assert result.lineage() == "provenance disabled"


def test_pipeline_provenance_stage_mode(credit_tables, rng):
    train, _ = credit_tables
    result = standard_pipeline(provenance="stage").run(train, rng)
    assert result.final_artifact.fingerprint.startswith("shape:")


def test_pipeline_validation():
    with pytest.raises(DataError):
        Pipeline([])
    with pytest.raises(DataError):
        Pipeline([CleanStage()], provenance="maybe")


def test_pipeline_describe(credit_tables):
    pipeline = standard_pipeline()
    text = pipeline.describe()
    assert "1. validate_schema" in text
    assert "5. decide" in text


def test_impute_stage_fills_and_freezes_statistics(rng):
    from repro.data.table import Table
    from repro.pipeline import ImputeStage

    train_like = Table.from_dict({
        "x": [1.0, 3.0, float("nan")],
        "y": [0.0, 1.0, 1.0],
    })
    stage = ImputeStage()
    pipeline = Pipeline([stage])
    filled = pipeline.run(train_like, rng).table
    assert filled["x"][2] == 2.0
    # Second run through the SAME stage reuses the first run's statistics.
    fresh = Table.from_dict({
        "x": [float("nan"), 100.0],
        "y": [0.0, 1.0],
    }, schema=train_like.schema)
    refilled = stage.apply(fresh, None)
    assert refilled["x"][0] == 2.0
