"""Tests for engine stage fusion (``Plan.fusion_chains`` / ``fuse=True``).

Fusion runs maximal linear chains of cacheable nodes as one unit — one
cache key, one store round-trip, one span — and its whole contract is
that *nothing else changes*: per-node results, statuses, observer
calls, provenance, and shared-rng continuity are byte-identical to the
unfused schedule for every ``n_jobs``/backend/store combination.
"""

import numpy as np
import pytest

from repro import obs
from repro.engine import Executor, FusedChain, Node, Plan
from repro.store import ArtifactStore

BASE = np.arange(32, dtype=np.float64)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.reset()
    yield
    obs.reset()


def _chain_plan(offset=1.0):
    """base -> a -> b -> c (fusable chain) -> d (unfusable: two inputs)."""

    def a(inputs, rng):
        return inputs["base"] * 2.0

    def b(inputs, rng):
        return inputs["a"] + offset

    def c(inputs, rng):
        return np.cumsum(inputs["b"])

    def d(inputs, rng):
        return inputs["c"] - inputs["base"]

    return Plan(
        [
            Node("a", a, inputs=("base",)),
            Node("b", b, inputs=("a",), params={"offset": offset}),
            Node("c", c, inputs=("b",)),
            Node("d", d, inputs=("c", "base")),
        ],
        inputs=("base",),
    )


def _shared_plan():
    """A fusable chain with a shared-rng member, then a shared-rng
    consumer outside the chain — exercises generator continuity."""

    def a(inputs, rng):
        return inputs["base"] + 1.0

    def noisy(inputs, rng):
        return inputs["a"] + rng.standard_normal(inputs["a"].shape)

    def late(inputs, rng):
        return inputs["noisy"] * rng.uniform(0.5, 1.5) + inputs["base"]

    return Plan(
        [
            Node("a", a, inputs=("base",)),
            Node("noisy", noisy, inputs=("a",), rng="shared"),
            Node("late", late, inputs=("noisy", "base"), rng="shared"),
        ],
        inputs=("base",),
    )


# -- chain detection ---------------------------------------------------------


def test_linear_cacheable_run_fuses_into_one_chain():
    (chain,) = _chain_plan().fusion_chains()
    assert isinstance(chain, FusedChain)
    assert chain.name == "a+b+c"
    assert [n.name for n in chain.members] == ["a", "b", "c"]
    assert chain.head.name == "a" and chain.tail.name == "c"
    assert chain.inputs == ("base",)


def test_fused_levels_schedule_chain_then_remainder():
    levels = _chain_plan().fused_levels()
    names = [[getattr(u, "name") for u in level] for level in levels]
    assert names == [["a+b+c"], ["d"]]


def test_fan_out_and_multi_input_nodes_stay_unfused():
    double = lambda i, r: i["base"] * 2  # noqa: E731
    plan = Plan(
        [
            Node("top", double, inputs=("base",)),
            Node("left", lambda i, r: i["top"] + 1, inputs=("top",)),
            Node("right", lambda i, r: i["top"] - 1, inputs=("top",)),
            Node("join", lambda i, r: i["left"] + i["right"],
                 inputs=("left", "right")),
        ],
        inputs=("base",),
    )
    assert plan.fusion_chains() == ()
    assert plan.fused_levels() == plan.levels()


def test_uncacheable_and_spawn_nodes_break_chains():
    step = lambda name: (lambda i, r: i[name] + 1)  # noqa: E731
    plan = Plan(
        [
            Node("a", lambda i, r: i["base"], inputs=("base",)),
            Node("skip", step("a"), inputs=("a",), cacheable=False),
            Node("b", step("skip"), inputs=("skip",)),
            Node("spawned", lambda i, r: i["b"] + r.standard_normal(),
                 inputs=("b",), rng="spawn"),
            Node("c", step("spawned"), inputs=("spawned",)),
        ],
        inputs=("base",),
    )
    # No two adjacent fusable nodes -> nothing fuses.
    assert plan.fusion_chains() == ()


# -- byte-identity matrix ----------------------------------------------------


@pytest.mark.parametrize("n_jobs,backend", [
    (1, "serial"), (2, "thread"), (4, "thread"),
])
@pytest.mark.parametrize("with_store", [False, True])
def test_fused_matches_unfused_everywhere(n_jobs, backend, with_store):
    for make_plan in (_chain_plan, _shared_plan):
        plain = Executor(n_jobs=1, backend="serial", observe=False).run(
            make_plan(), {"base": BASE}, rng=np.random.default_rng(11),
        )
        store = ArtifactStore() if with_store else None
        for _ in range(2):      # cold then warm
            fused = Executor(n_jobs=n_jobs, backend=backend,
                             observe=False, fuse=True).run(
                make_plan(), {"base": BASE},
                rng=np.random.default_rng(11), store=store,
            )
            for node in make_plan().nodes:
                np.testing.assert_array_equal(
                    fused[node.name], plain[node.name]
                )
            np.testing.assert_array_equal(fused.output, plain.output)


def test_warm_fused_run_hits_for_every_member():
    store = ArtifactStore()
    executor = Executor(observe=False, fuse=True)
    cold = executor.run(_chain_plan(), {"base": BASE}, store=store)
    warm = executor.run(_chain_plan(), {"base": BASE}, store=store)
    assert all(s == "miss" for n, s in cold.statuses.items() if n != "d")
    assert all(s == "hit" for n, s in warm.statuses.items() if n != "d")
    for name in ("a", "b", "c", "d"):
        np.testing.assert_array_equal(warm[name], cold[name])


def test_shared_rng_continuity_across_warm_fused_chain():
    # The chain's artifact replays the shared generator's advancement on
    # a hit, so the shared-rng node AFTER the chain sees the same state.
    store = ArtifactStore()
    executor = Executor(observe=False, fuse=True)
    cold = executor.run(_shared_plan(), {"base": BASE}, store=store,
                        rng=np.random.default_rng(5))
    warm = executor.run(_shared_plan(), {"base": BASE}, store=store,
                        rng=np.random.default_rng(5))
    assert warm.statuses["noisy"] == "hit"
    np.testing.assert_array_equal(warm["late"], cold["late"])


def test_editing_one_member_invalidates_the_chain():
    store = ArtifactStore()
    executor = Executor(observe=False, fuse=True)
    executor.run(_chain_plan(offset=1.0), {"base": BASE}, store=store)
    edited = executor.run(_chain_plan(offset=2.0), {"base": BASE},
                          store=store)
    assert edited.statuses["a"] == "miss"       # chain re-keyed as a unit
    plain = Executor(observe=False).run(
        _chain_plan(offset=2.0), {"base": BASE}
    )
    np.testing.assert_array_equal(edited.output, plain.output)


# -- observability and provenance -------------------------------------------


def test_fused_chain_emits_one_span_with_cache_attribute():
    telemetry = obs.configure()
    store = ArtifactStore()
    for _ in range(2):
        Executor(name="engine", fuse=True).run(
            _chain_plan(), {"base": BASE}, store=store,
        )
    spans = [r for r in telemetry.to_dicts() if r.get("record") == "span"]
    chain_spans = [s for s in spans if s["name"] == "engine:a+b+c"]
    assert [s["attributes"]["cache"] for s in chain_spans] == ["miss", "hit"]
    assert all(s["attributes"]["fused"] == 3 for s in chain_spans)
    # Members do NOT get their own spans; the unfused tail node does.
    assert not any(s["name"] in ("engine:a", "engine:b", "engine:c")
                   for s in spans)
    assert sum(s["name"] == "engine:d" for s in spans) == 2


def test_observer_still_fires_once_per_member_in_plan_order():
    seen = []
    Executor(observe=False, fuse=True).run(
        _chain_plan(), {"base": BASE},
        observer=lambda run: seen.append((run.name, run.status)),
    )
    assert seen == [("a", "uncacheable"), ("b", "uncacheable"),
                    ("c", "uncacheable"), ("d", "uncacheable")]
