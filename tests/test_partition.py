"""Tests for partitioned tables, shard-aware plans, and sharded audits.

The contract under test is ISSUE 10's tentpole: ``partition``/``concat``
round-trip byte-identically, per-shard fingerprints compose into one
dataset identity, the shard-map engine template fans out as process
tasks with per-shard cache keys and spilled partials, and the sharded
FACT audit is **byte-identical** to the serial unsharded path at every
shard count, worker count, backend, and store setting.
"""

import numpy as np
import pytest

from repro.core import FACTAuditor
from repro.data import (
    MergeableMoments,
    MergeableQuantiles,
    PartitionedTable,
    merge_counts,
    partition,
    three_way_split,
)
from repro.data.schema import Schema, categorical, numeric
from repro.data.synth import CensusIncomeGenerator
from repro.data.table import Table
from repro.engine import Executor, Node, Plan, shard_map
from repro.exceptions import DataError, PlanError, SchemaError
from repro.learn.linear import LogisticRegression
from repro.learn.table_model import TableClassifier
from repro.store import ArtifactStore, MemoryBackend, table_fingerprint
from repro.store.store import Spilled


@pytest.fixture(scope="module")
def census():
    return CensusIncomeGenerator().generate(240, np.random.default_rng(7))


@pytest.fixture(scope="module")
def fitted(census):
    train, calibration, test = three_way_split(
        census, 0.3, 0.2, np.random.default_rng(17)
    )
    model = TableClassifier(LogisticRegression()).fit(train)
    return model, calibration, test


def _auditor(**overrides):
    settings = dict(n_bootstrap=16, n_jobs=1, backend="thread", store=None)
    settings.update(overrides)
    return FACTAuditor(**settings)


# -- PartitionedTable ---------------------------------------------------------


class TestPartitionedTable:
    def test_round_trip_is_byte_identical(self, census):
        for shards in (1, 3, 7):
            restored = partition(census, n_shards=shards).concat()
            assert table_fingerprint(restored) == table_fingerprint(census)

    def test_max_rows_partitioning(self, census):
        parts = partition(census, max_rows=100)
        assert [parts.shard_n_rows(i) for i in range(parts.n_shards)] == \
            [100, 100, 40]
        assert table_fingerprint(parts.concat()) == \
            table_fingerprint(census)

    def test_exactly_one_sizing_argument(self, census):
        with pytest.raises(DataError):
            partition(census)
        with pytest.raises(DataError):
            partition(census, n_shards=2, max_rows=10)

    def test_dataset_fingerprint_composes_shard_fingerprints(self, census):
        parts = partition(census, n_shards=4)
        # Same content, different layout -> different dataset identity.
        other = partition(census, n_shards=2)
        assert parts.__content_fingerprint__() != \
            other.__content_fingerprint__()
        # Editing one shard changes exactly that shard's fingerprint.
        before = parts.shard_fingerprints()
        edited_shard = parts.shard(1)
        ages = edited_shard.column("age").copy()
        ages[0] += 1.0
        edited = parts.replaced(
            1, edited_shard.with_column(edited_shard.schema["age"], ages)
        )
        after = edited.shard_fingerprints()
        assert after[1] != before[1]
        assert [fp for i, fp in enumerate(after) if i != 1] == \
            [fp for i, fp in enumerate(before) if i != 1]
        assert edited.__content_fingerprint__() != \
            parts.__content_fingerprint__()

    def test_shards_must_share_the_schema_signature(self, census):
        stranger = Table(Schema([numeric("x")]), {"x": np.arange(4.0)})
        with pytest.raises(SchemaError):
            PartitionedTable([census.slice(0, 10), stranger])

    def test_lazy_sources_validate_on_load(self, census):
        parts = PartitionedTable.from_sources(
            [lambda: census.slice(0, 100), lambda: census.slice(100, 240)],
            schema=census.schema,
            shard_rows=(100, 140),
        )
        assert parts.n_rows == 240
        assert table_fingerprint(parts.concat()) == \
            table_fingerprint(census)
        lying = PartitionedTable.from_sources(
            [lambda: census.slice(0, 100)], schema=census.schema,
            shard_rows=(99,),
        )
        with pytest.raises(DataError):
            lying.shard(0)

    def test_slice_bounds_checked(self, census):
        with pytest.raises(DataError):
            census.slice(-1, 5)
        with pytest.raises(DataError):
            census.slice(0, census.n_rows + 1)


# -- streaming concat / chunked joins ----------------------------------------


class TestStreamingConcat:
    def test_concat_accepts_a_pure_iterator(self, census):
        chunks = (census.slice(i, i + 60) for i in range(0, 240, 60))
        assert table_fingerprint(Table.concat(chunks)) == \
            table_fingerprint(census)

    def test_concat_rejects_empty_iterators(self):
        with pytest.raises(DataError):
            Table.concat(iter(()))

    def test_chunked_join_matches_whole_table_join(self, census):
        from repro.relational import inner_join, left_join

        zips = np.unique(census.column("zipcode"))
        fan_out_dim = Table(
            Schema([categorical("zipcode"), numeric("median_rent")]),
            {"zipcode": np.repeat(zips, 2),
             "median_rent": np.arange(2.0 * len(zips))},
        )
        whole = inner_join(census, fan_out_dim, "zipcode")
        chunked = inner_join(
            partition(census, n_shards=5).shards(), fan_out_dim, "zipcode"
        )
        assert table_fingerprint(chunked) == table_fingerprint(whole)
        # Chunk-local fan-out may differ per chunk; role promotion must
        # still be global, exactly as the single join derives it.
        assert [(s.name, s.role) for s in chunked.schema] == \
            [(s.name, s.role) for s in whole.schema]
        assert table_fingerprint(
            left_join(partition(census, n_shards=3).shards(),
                      fan_out_dim, "zipcode")
        ) == table_fingerprint(left_join(census, fan_out_dim, "zipcode"))


# -- mergeable summaries ------------------------------------------------------


class TestMergeableSummaries:
    def test_merge_counts_is_exact(self):
        merged = merge_counts([{"a": 2, "b": 1}, {"b": 3, "c": 1}, {"a": 1}])
        assert merged == {"a": 3, "b": 4, "c": 1}

    def test_moments_merge_exactly_for_indicators(self):
        values = (np.arange(257) % 2).astype(np.float64)
        whole = MergeableMoments.of(values)
        folded = MergeableMoments.of(values[:100])
        folded = folded.merge(MergeableMoments.of(values[100:180]))
        folded = folded.merge(MergeableMoments.of(values[180:]))
        assert folded == whole
        assert folded.mean == float(values.mean())

    def test_quantiles_byte_identical_at_every_shard_count(self):
        values = np.random.default_rng(123).standard_normal(101)
        probes = (0.1, 0.25, 0.5, 0.9)
        expected = np.quantile(values, probes)
        for n_shards in (1, 2, 5, 13):
            bounds = np.linspace(0, len(values), n_shards + 1).astype(int)
            summary = MergeableQuantiles.of(values[bounds[0]:bounds[1]])
            for i in range(1, n_shards):
                summary = summary.merge(
                    MergeableQuantiles.of(values[bounds[i]:bounds[i + 1]])
                )
            assert summary.n == len(values)
            assert summary.quantile(probes).tolist() == expected.tolist()
        # Golden pins: the merged-summary quantiles of this exact stream.
        assert float(np.quantile(values, 0.1)) == -0.9891213503478509
        assert float(np.quantile(values, 0.5)) == 0.005114312828982818
        assert float(np.quantile(values, 0.9)) == 1.2879252612892487

    def test_empty_quantile_summary_raises(self):
        with pytest.raises(DataError):
            MergeableQuantiles.of([]).quantile(0.5)


# -- shard-aware engine nodes -------------------------------------------------


def _count_rows(shard, rng):
    return {"n": shard.n_rows}


def _sum_rows(partials, extras, rng):
    return sum(p["n"] for p in partials)


class TestShardMap:
    def test_task_nodes_reject_inputs_and_rng(self):
        with pytest.raises(PlanError):
            Node("bad", lambda i, r: 0, inputs=("x",), task=lambda: 0)
        with pytest.raises(PlanError):
            Node("bad", lambda i, r: 0, rng="spawn", task=lambda: 0)
        with pytest.raises(PlanError):
            Node("bad", lambda i, r: 0, cacheable=False, spill=True)

    def test_spill_and_warm_replay(self, census):
        parts = partition(census, n_shards=3)
        store = ArtifactStore(MemoryBackend(), name="spill")
        plan = Plan(shard_map("rows", parts, _count_rows, _sum_rows,
                              store=store))
        cold = Executor(n_jobs=1, name="t").run(plan, store=store)
        assert cold["rows.combine"] == census.n_rows
        assert isinstance(cold["rows.shard0"], Spilled)
        assert set(cold.statuses.values()) == {"miss"}
        warm = Executor(n_jobs=1, name="t").run(plan, store=store)
        assert warm["rows.combine"] == census.n_rows
        assert set(warm.statuses.values()) == {"hit"}
        # Partials are tagged by shard content fingerprint.
        assert store.invalidate_tag(
            f"shard:{parts.shard_fingerprint(0)}"
        ) == 1

    def test_storeless_runs_pass_raw_partials(self, census):
        parts = partition(census, n_shards=3)
        result = Executor(n_jobs=1, name="t").run(
            Plan(shard_map("rows", parts, _count_rows, _sum_rows))
        )
        assert result["rows.combine"] == census.n_rows
        assert isinstance(result["rows.shard1"], dict)

    def test_process_backend_dispatches_map_tasks(self, census):
        parts = partition(census, n_shards=4)
        store = ArtifactStore(MemoryBackend(), name="proc")
        plan = Plan(shard_map("rows", parts, _count_rows, _sum_rows,
                              store=store))
        result = Executor(n_jobs=2, backend="process", name="t").run(
            plan, store=store
        )
        assert result["rows.combine"] == census.n_rows
        assert set(result.statuses.values()) == {"miss"}


# -- byte-identity of the sharded FACT audit ---------------------------------


class TestShardedAuditByteIdentity:
    @pytest.fixture(scope="class")
    def serial_fingerprint(self, fitted):
        model, calibration, test = fitted
        report = _auditor().audit(
            model, test, np.random.default_rng(99), calibration=calibration
        )
        return report.fingerprint()

    @pytest.mark.parametrize("n_shards", (1, 4, 7))
    @pytest.mark.parametrize("n_jobs", (1, 2, 4))
    @pytest.mark.parametrize("backend", ("thread", "process"))
    @pytest.mark.parametrize("with_store", (False, True))
    def test_matrix(self, fitted, serial_fingerprint, n_shards, n_jobs,
                    backend, with_store):
        model, calibration, test = fitted
        store = (ArtifactStore(MemoryBackend(), name="m")
                 if with_store else None)
        report = _auditor(n_jobs=n_jobs, backend=backend, store=store).audit(
            model, partition(test, n_shards=n_shards),
            np.random.default_rng(99), calibration=calibration,
        )
        assert report.fingerprint() == serial_fingerprint

    def test_shards_constructor_convenience(self, fitted, serial_fingerprint):
        model, calibration, test = fitted
        report = _auditor(shards=3).audit(
            model, test, np.random.default_rng(99), calibration=calibration
        )
        assert report.fingerprint() == serial_fingerprint

    def test_notes_match_the_serial_path(self, fitted):
        model, calibration, test = fitted
        serial = _auditor().audit(model, test, np.random.default_rng(99))
        sharded = _auditor().audit(
            model, partition(test, n_shards=4), np.random.default_rng(99)
        )
        assert sharded.notes == serial.notes
        assert sharded.fingerprint() == serial.fingerprint()


class TestIncrementalShardedReaudit:
    def test_one_shard_edit_recomputes_only_that_shard(self, fitted):
        model, calibration, test = fitted
        parts = partition(test, n_shards=4)
        store = ArtifactStore(MemoryBackend(), name="inc")
        auditor = _auditor(store=store)
        executor = Executor(n_jobs=1, name="audit")
        plan = auditor.build_sharded_plan(
            model, parts, calibration, store=store
        )
        cold = executor.run(plan, store=store, rng=np.random.default_rng(1))
        assert set(cold.statuses.values()) == {"miss"}

        # Edit shard 2 only.
        shard = parts.shard(2)
        hours = shard.column("hours_per_week").copy()
        hours[0] += 1.0
        edited = parts.replaced(
            2, shard.with_column(shard.schema["hours_per_week"], hours)
        )
        replan = auditor.build_sharded_plan(
            model, edited, calibration, store=store
        )
        rerun = executor.run(replan, store=store,
                             rng=np.random.default_rng(1))
        statuses = rerun.statuses
        # Only the edited shard's map key misses; siblings replay.
        assert statuses["partial.shard2"] == "miss"
        assert statuses["partial.shard0"] == "hit"
        assert statuses["partial.shard1"] == "hit"
        assert statuses["partial.shard3"] == "hit"
        # The combines consume the changed partial, so they recompute.
        assert statuses["fairness"] == "miss"
        assert statuses["accuracy"] == "miss"

        # An identical rebuild replays everything.
        warm = executor.run(
            auditor.build_sharded_plan(model, parts, calibration,
                                       store=store),
            store=store, rng=np.random.default_rng(1),
        )
        assert set(warm.statuses.values()) == {"hit"}
