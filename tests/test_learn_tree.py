"""Unit tests for the CART decision tree."""

import numpy as np
import pytest

from repro.exceptions import DataError, NotFittedError
from repro.learn.metrics import accuracy
from repro.learn.tree import DecisionTreeClassifier


def xor_data(rng, n=400):
    X = rng.uniform(-1, 1, (n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(float)
    return X, y


def test_tree_solves_xor(rng):
    X, y = xor_data(rng)
    tree = DecisionTreeClassifier(max_depth=3, min_samples_leaf=5).fit(X, y)
    assert accuracy(y, tree.predict(X)) > 0.95


def test_tree_depth_limit(rng):
    X, y = xor_data(rng)
    stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
    assert stump.depth() <= 1
    assert stump.n_leaves <= 2


def test_tree_min_samples_leaf(rng):
    X, y = xor_data(rng, n=100)
    tree = DecisionTreeClassifier(max_depth=10, min_samples_leaf=30).fit(X, y)
    for node in tree._nodes:
        if node.feature == -1:
            assert node.weight >= 30 - 1e-9


def test_tree_pure_node_stops(rng):
    X = np.array([[0.0], [1.0], [2.0], [3.0]])
    y = np.array([0.0, 0.0, 1.0, 1.0])
    tree = DecisionTreeClassifier(max_depth=5, min_samples_leaf=1).fit(X, y)
    probabilities = tree.predict_proba(X)
    np.testing.assert_allclose(probabilities, y)


def test_tree_probabilities_are_leaf_fractions(rng):
    X = np.array([[0.0], [0.1], [0.2], [5.0], [5.1], [5.2]])
    y = np.array([0.0, 0.0, 1.0, 1.0, 1.0, 1.0])
    tree = DecisionTreeClassifier(max_depth=1, min_samples_leaf=3).fit(X, y)
    probabilities = tree.predict_proba(X)
    assert probabilities[0] == pytest.approx(1.0 / 3.0)
    assert probabilities[-1] == pytest.approx(1.0)


def test_tree_sample_weights_move_split(rng):
    X = np.array([[0.0], [1.0], [2.0], [3.0]] * 20)
    y = np.array([0.0, 0.0, 1.0, 1.0] * 20)
    # Weight the x=1 rows as positives heavily mislabeled -> prediction flips.
    weights = np.ones(len(y))
    flipped = y.copy()
    flipped[X[:, 0] == 1.0] = 1.0
    weights[X[:, 0] == 1.0] = 50.0
    tree = DecisionTreeClassifier(max_depth=3, min_samples_leaf=5)
    tree.fit(X, flipped, sample_weight=weights)
    assert tree.predict(np.array([[1.0]]))[0] == 1.0


def test_tree_feature_importances_sum_to_one(rng):
    X, y = xor_data(rng)
    tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
    importances = tree.feature_importances()
    assert importances.sum() == pytest.approx(1.0)
    assert np.all(importances >= 0)


def test_tree_ignores_noise_feature(rng):
    X, y = xor_data(rng)
    X_noise = np.hstack([X, rng.standard_normal((len(X), 1)) * 0.001])
    tree = DecisionTreeClassifier(max_depth=3).fit(X_noise, y)
    importances = tree.feature_importances()
    assert importances[2] < 0.05


def test_tree_to_rules(rng):
    X, y = xor_data(rng)
    tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
    rules = tree.to_rules(["a", "b"])
    assert len(rules) == tree.n_leaves
    assert any("a" in rule for rule in rules)
    assert all("P(positive)" in rule for rule in rules)


def test_tree_validation(rng):
    X, y = xor_data(rng)
    with pytest.raises(DataError):
        DecisionTreeClassifier(max_depth=0)
    with pytest.raises(DataError):
        DecisionTreeClassifier(min_samples_leaf=0)
    with pytest.raises(NotFittedError):
        DecisionTreeClassifier().predict_proba(X)
    tree = DecisionTreeClassifier().fit(X, y)
    with pytest.raises(DataError, match="features"):
        tree.predict_proba(X[:, :1])


def test_tree_constant_labels(rng):
    X = rng.standard_normal((50, 2))
    y = np.ones(50)
    tree = DecisionTreeClassifier().fit(X, y)
    np.testing.assert_allclose(tree.predict_proba(X), 1.0)
    assert tree.n_leaves == 1


def test_tree_max_features_subsampling(rng):
    X, y = xor_data(rng)
    tree = DecisionTreeClassifier(max_depth=3, max_features=1, rng=rng)
    tree.fit(X, y)  # should not raise; splits restricted to one feature each
    assert tree.n_nodes >= 1


def test_default_feature_rng_varies_across_nodes_within_a_fit():
    # Regression: with rng=None the fallback generator used to be
    # rebuilt as default_rng(0) on every _candidate_features call, so
    # every node considered the SAME feature subset. One generator per
    # fit must draw different subsets node to node, yet stay
    # deterministic fit to fit.
    tree = DecisionTreeClassifier(max_features=2)
    tree._feature_rng = None
    first = tree._candidate_features(8).tolist()
    rng = np.random.default_rng(0)
    assert first == rng.choice(8, size=2, replace=False).tolist()

    fitted = DecisionTreeClassifier(max_depth=4, max_features=1)
    data_rng = np.random.default_rng(42)
    X = data_rng.standard_normal((400, 6))
    y = (X[:, 0] + X[:, 1] - X[:, 2] > 0).astype(float)
    fitted.fit(X, y)
    split_features = {
        node.feature for node in fitted._nodes if node.feature >= 0
    }
    # With a per-call default_rng(0) every node would draw one fixed
    # feature; a per-fit stream lets splits land on several features.
    assert len(split_features) > 1

    again = DecisionTreeClassifier(max_depth=4, max_features=1).fit(X, y)
    assert [n.feature for n in again._nodes] == \
        [n.feature for n in fitted._nodes]
    assert [n.threshold for n in again._nodes] == \
        [n.threshold for n in fitted._nodes]
