"""Tests for the async batched serving front end.

The high-order bits, in order of importance:

* **Batching is invisible in the answers** — the same workload served
  with every combination of batch window {off, 1 ms, 10 ms} and worker
  count {1, 4} yields byte-identical values and identical per-tenant
  ε-ledgers under a fixed seed.
* **The vectorized release kernels are the ``dp_*`` functions** — same
  generator in, same noisy answer out, for all five query kinds.
* **Backpressure is structured** — bounded-queue shedding and deadline
  shedding reject with ``STATUS_REJECTED_OVERLOAD``, charge zero ε, and
  the admission controller's in-flight count returns to zero on *every*
  exit path (the PR's regression fix).
* **The protocol is versioned** — unknown versions are structured
  rejections; the JSONL wire format is backward-compatible.
* **ServeConfig is the one surface** — validated, fingerprintable, with
  the legacy kwargs as deprecated aliases (single warning).
"""

import asyncio
import json
import warnings

import numpy as np
import pytest

from repro.confidentiality.accountant import PrivacyAccountant
from repro.confidentiality.queries import (
    dp_count,
    dp_histogram,
    dp_mean,
    dp_quantile,
    dp_sum,
)
from repro.data.schema import Schema, categorical, numeric
from repro.data.table import Table
from repro.exceptions import DataError
from repro.serve import (
    PROTOCOL_VERSION,
    STATUS_OK,
    STATUS_REJECTED_OVERLOAD,
    STATUS_REJECTED_VERSION,
    AdmissionController,
    PendingResult,
    QueryRequest,
    QueryResult,
    QueryServer,
    ServeConfig,
)
from repro.serve.batching import group_stats, member_release
from repro.serve.loadgen import bursts, zipf_workload


@pytest.fixture
def table():
    rng = np.random.default_rng(7)
    n = 400
    schema = Schema([
        numeric("income"),
        numeric("age"),
        categorical("city"),
    ])
    return Table(schema, {
        "income": rng.uniform(0.0, 100.0, n),
        "age": rng.uniform(18.0, 80.0, n),
        "city": rng.choice(["north", "south", "east"], size=n),
    })


def make_server(table, config=None, **config_kwargs):
    if config is None:
        config_kwargs.setdefault("workers", 1)
        config_kwargs.setdefault("seed", 7)
        config = ServeConfig(**config_kwargs)
    server = QueryServer(config)
    server.register_table("t", table)
    return server


def workload(n=120, seed=3):
    """A deduplication-friendly mixed-kind workload over fixture columns."""
    rng = np.random.default_rng(seed)
    shapes = [
        dict(kind="count", epsilon=0.01),
        dict(kind="count", epsilon=0.02),
        dict(kind="mean", column="income", lower=0.0, upper=100.0,
             epsilon=0.05),
        dict(kind="mean", column="age", lower=18.0, upper=80.0,
             epsilon=0.03),
        dict(kind="sum", column="income", lower=0.0, upper=100.0,
             epsilon=0.04),
        dict(kind="quantile", column="age", q=0.5, lower=18.0, upper=80.0,
             epsilon=0.06),
        dict(kind="histogram", column="city",
             bins=("north", "south", "east"), epsilon=0.02),
    ]
    tenants = ["a", "b", "c"]
    return [
        QueryRequest(tenant=tenants[int(rng.integers(len(tenants)))],
                     **shapes[int(rng.integers(len(shapes)))])
        for _ in range(n)
    ]


def ledgers(server):
    """Per-tenant (spent, sorted entries): order-insensitive across workers."""
    return {
        tenant: (
            round(server.budget.accountant(tenant).epsilon_spent, 12),
            sorted((e.epsilon, e.delta, e.label)
                   for e in server.budget.accountant(tenant).ledger),
        )
        for tenant in sorted(server.budget.tenants)
    }


# -- batched vs serial equivalence -----------------------------------------


def run_workload(table, *, batch_window_ms, workers):
    config = ServeConfig(workers=workers, seed=7,
                         batch_window_ms=batch_window_ms,
                         default_epsilon_budget=100.0)
    with make_server(table, config) as server:
        results = server.submit_batch(workload())
    return [r.value for r in results], ledgers(server), results


@pytest.mark.parametrize("batch_window_ms", [0.0, 1.0, 10.0])
@pytest.mark.parametrize("workers", [1, 4])
def test_batched_equals_serial(table, batch_window_ms, workers):
    base_values, base_ledgers, base_results = run_workload(
        table, batch_window_ms=0.0, workers=1
    )
    values, tenant_ledgers, results = run_workload(
        table, batch_window_ms=batch_window_ms, workers=workers
    )
    assert values == base_values                 # byte-identical answers
    assert tenant_ledgers == base_ledgers        # identical ε-accounting
    assert all(r.ok for r in results)
    # The same release is charged exactly once regardless of batching.
    charged = [r for r in results if r.epsilon_charged > 0]
    base_charged = [r for r in base_results if r.epsilon_charged > 0]
    assert len(charged) == len(base_charged)


def test_zipf_workload_deterministic(table):
    first = zipf_workload(50, n_tenants=4, n_shapes=8, seed=5, table="t")
    second = zipf_workload(50, n_tenants=4, n_shapes=8, seed=5, table="t")
    assert first == second
    chunks = bursts(first, mean_burst=8, seed=5)
    assert [len(c) for c in chunks] == [len(c) for c in
                                        bursts(second, mean_burst=8, seed=5)]
    assert sum(len(c) for c in chunks) == len(first)


# -- the vectorized kernels replicate dp_* draw for draw -------------------


def _plan(server, **fields):
    return server.planner.plan(QueryRequest(tenant="a", **fields))


def test_group_kernels_match_dp_functions(table):
    server = make_server(table, default_epsilon_budget=10.0)
    scratch = lambda eps: PrivacyAccountant(eps + 1.0)  # noqa: E731
    cases = [
        (dict(kind="count", epsilon=0.1),
         lambda rng: dp_count(table.n_rows, 0.1, scratch(0.1), rng)),
        (dict(kind="sum", column="income", lower=0.0, upper=100.0,
              epsilon=0.2),
         lambda rng: dp_sum(table.column("income"), 0.0, 100.0, 0.2,
                            scratch(0.2), rng)),
        (dict(kind="mean", column="income", lower=0.0, upper=100.0,
              epsilon=0.2),
         lambda rng: dp_mean(table.column("income"), 0.0, 100.0, 0.2,
                             scratch(0.2), rng)),
        (dict(kind="quantile", column="age", q=0.5, lower=18.0, upper=80.0,
              epsilon=0.3),
         lambda rng: dp_quantile(table.column("age"), 0.5, 18.0, 80.0, 0.3,
                                 scratch(0.3), rng)),
        (dict(kind="histogram", column="city",
              bins=("east", "north", "south"), epsilon=0.1),
         lambda rng: dp_histogram(table.column("city"),
                                  ["east", "north", "south"], 0.1,
                                  scratch(0.1), rng)),
    ]
    for fields, reference in cases:
        plan = _plan(server, **fields)
        stats = group_stats(plan, table)
        mine = member_release(stats, plan, np.random.default_rng(99))
        expected = reference(np.random.default_rng(99))
        assert mine == expected, fields["kind"]
    server.close()


def test_release_rng_is_order_independent(table):
    """Noise depends on (seed, fingerprint, ordinal) — not arrival order."""
    r1 = QueryRequest(tenant="a", kind="count", epsilon=0.1)
    r2 = QueryRequest(tenant="a", kind="mean", column="income",
                      lower=0.0, upper=100.0, epsilon=0.1)
    with make_server(table, default_epsilon_budget=10.0) as forward:
        a1 = forward.query(r1).value
        a2 = forward.query(r2).value
    with make_server(table, default_epsilon_budget=10.0) as backward:
        b2 = backward.query(r2).value
        b1 = backward.query(r1).value
    assert a1 == b1
    assert a2 == b2


# -- backpressure -----------------------------------------------------------


def test_bounded_queue_sheds_at_submission(table):
    config = ServeConfig(workers=1, seed=7, max_queue_depth=2,
                         backend_latency_s=0.05,
                         default_epsilon_budget=100.0, cache=False)
    with make_server(table, config) as server:
        requests = [QueryRequest(tenant="a", kind="count",
                                 epsilon=0.01 + i * 0.001)
                    for i in range(10)]
        results = [p.result() for p in server.submit_many(requests)]
    shed = [r for r in results if r.status == STATUS_REJECTED_OVERLOAD]
    assert shed, "expected bounded-queue shedding"
    assert all("queue depth" in r.detail for r in shed)
    assert all(r.epsilon_charged == 0.0 for r in shed)
    assert server.stats()["batching"]["shed_queue"] == len(shed)
    # Shed requests never reached the ledger.
    spent = server.budget.accountant("a").epsilon_spent
    ok = [r for r in results if r.ok]
    assert spent == pytest.approx(sum(r.epsilon_charged for r in ok))


def test_deadline_shedding(table):
    config = ServeConfig(workers=1, seed=7, backend_latency_s=0.05,
                         default_epsilon_budget=100.0, cache=False)
    with make_server(table, config) as server:
        # The first query occupies the only worker for 50 ms; the
        # expired one is shed when its group reaches execution.
        slow = server.submit(QueryRequest(tenant="a", kind="count",
                                          epsilon=0.01))
        doomed = server.submit(QueryRequest(tenant="a", kind="count",
                                            epsilon=0.02,
                                            deadline_ms=1.0))
        assert slow.result().ok
        late = doomed.result()
    assert late.status == STATUS_REJECTED_OVERLOAD
    assert "deadline" in late.detail
    assert late.epsilon_charged == 0.0
    assert server.stats()["batching"]["shed_deadline"] == 1
    assert server.budget.accountant("a").epsilon_spent == pytest.approx(0.01)


def test_default_deadline_from_config(table):
    config = ServeConfig(workers=1, seed=7, backend_latency_s=0.05,
                         default_deadline_ms=1.0,
                         default_epsilon_budget=100.0, cache=False)
    with make_server(table, config) as server:
        first = server.submit(QueryRequest(tenant="a", kind="count",
                                           epsilon=0.01,
                                           deadline_ms=10_000.0))
        second = server.submit(QueryRequest(tenant="a", kind="count",
                                            epsilon=0.02))
        assert first.result().ok           # explicit deadline overrides
        assert second.result().status == STATUS_REJECTED_OVERLOAD


# -- the inflight regression: every exit path releases admission ------------


def test_inflight_returns_to_zero_on_every_exit_path(table):
    admission = AdmissionController(max_inflight=8)
    config = ServeConfig(workers=2, seed=7, default_epsilon_budget=0.05)
    server = QueryServer(config, admission=admission)
    server.register_table("t", table)
    with server:
        count = QueryRequest(tenant="a", kind="count", epsilon=0.01)
        paths = [
            count,                                            # ok (miss)
            count,                                            # cache replay
            QueryRequest(tenant="a", kind="teleport",
                         epsilon=0.1),                        # invalid
            QueryRequest(tenant="a", kind="count",
                         epsilon=1.0),                        # budget reject
            QueryRequest(tenant="a", kind="count", epsilon=0.02,
                         version=99),                         # bad version
            QueryRequest(tenant="a", kind="count", epsilon=0.03,
                         deadline_ms=1e-6),                   # deadline shed
        ]
        results = server.submit_batch(paths)
        server.drain()
        assert admission.inflight == 0, (
            f"admission leaked; statuses: {[r.status for r in results]}"
        )
    assert results[0].ok and not results[0].cached
    assert results[1].ok and results[1].cached
    assert server.stats()["outstanding"] == 0


def test_coalesced_duplicates_release_admission(table):
    """Concurrent identical misses coalesce — every member releases."""
    admission = AdmissionController(max_inflight=64)
    config = ServeConfig(workers=4, seed=7, batch_window_ms=5.0,
                         backend_latency_s=0.01,
                         default_epsilon_budget=100.0)
    server = QueryServer(config, admission=admission)
    server.register_table("t", table)
    with server:
        request = QueryRequest(tenant="a", kind="count", epsilon=0.01)
        results = server.submit_batch([request] * 16)
    assert all(r.ok for r in results)
    assert sum(not r.cached for r in results) == 1   # one payer
    assert admission.inflight == 0
    assert server.stats()["batching"]["coalesced"] >= 1


# -- protocol versioning ----------------------------------------------------


def test_unknown_version_is_structured_rejection(table):
    with make_server(table, default_epsilon_budget=1.0) as server:
        result = server.query(QueryRequest(tenant="a", kind="count",
                                           epsilon=0.1, version=2))
    assert result.status == STATUS_REJECTED_VERSION
    assert "2" in result.detail
    assert result.epsilon_charged == 0.0


def test_wire_format_is_backward_compatible():
    # A pre-versioning record (no `version` key) parses as v1.
    old_wire = {"tenant": "a", "kind": "count", "epsilon": 0.1}
    request = QueryRequest.from_dict(old_wire)
    assert request.version == PROTOCOL_VERSION
    # v1 requests serialize without a version key — old readers see the
    # exact shape they always did.
    assert "version" not in request.to_dict()
    assert "deadline_ms" not in request.to_dict()
    # Non-default fields round-trip.
    timed = QueryRequest(tenant="a", kind="count", epsilon=0.1,
                         deadline_ms=25.0)
    assert QueryRequest.from_dict(timed.to_dict()) == timed
    # Results omit version at v1 too.
    assert "version" not in QueryResult(tenant="a",
                                        status=STATUS_OK).to_dict()


def test_versioned_request_over_jsonl(table):
    with make_server(table, default_epsilon_budget=1.0) as server:
        line = json.dumps({"tenant": "a", "kind": "count", "epsilon": 0.1,
                           "version": 1})
        ok = server.query(json.loads(line))
        bad = server.query({"tenant": "a", "kind": "count", "epsilon": 0.1,
                            "version": 3})
    assert ok.ok
    assert bad.status == STATUS_REJECTED_VERSION


# -- ServeConfig ------------------------------------------------------------


def test_config_validates():
    with pytest.raises(DataError):
        ServeConfig(workers=0)
    with pytest.raises(DataError):
        ServeConfig(batch_window_ms=-1.0)
    with pytest.raises(DataError):
        ServeConfig(max_queue_depth=0)
    with pytest.raises(DataError):
        ServeConfig(cache_scope="galactic")
    with pytest.raises(DataError):
        ServeConfig(default_deadline_ms=0.0)
    with pytest.raises(DataError):
        ServeConfig(rate_limit=0)


def test_config_is_fingerprintable_artifact():
    one = ServeConfig(workers=2, batch_window_ms=2.0)
    two = ServeConfig(workers=2, batch_window_ms=2.0)
    assert one.fingerprint() == two.fingerprint()
    assert one.fingerprint() != ServeConfig(workers=3).fingerprint()
    assert json.loads(one.to_json())["batch_window_ms"] == 2.0


def test_legacy_kwargs_warn_once_and_map(table):
    with pytest.warns(DeprecationWarning) as caught:
        server = QueryServer(workers=2, seed=11, cache=False,
                             default_epsilon_budget=5.0,
                             backend_latency_s=0.0)
    assert len(caught) == 1
    assert server.config.workers == 2
    assert server.config.seed == 11
    assert server.config.cache is False
    assert server.cache is None
    assert server.config.default_epsilon_budget == 5.0
    assert server.workers == 2                    # legacy attribute alias
    assert server.default_epsilon_budget == 5.0
    server.close()


def test_legacy_positional_workers(table):
    with pytest.warns(DeprecationWarning):
        server = QueryServer(2, seed=3)
    assert server.config.workers == 2
    server.close()


def test_config_builds_admission(table):
    config = ServeConfig(workers=1, seed=7, rate_limit=2, rate_window_s=60.0,
                         default_epsilon_budget=10.0)
    with make_server(table, config) as server:
        assert server.admission is not None
        assert server.admission.rate_limit == 2
        statuses = [server.query(QueryRequest(tenant="a", kind="count",
                                              epsilon=0.01 + 0.001 * i)).status
                    for i in range(4)]
    assert statuses[:2] == [STATUS_OK, STATUS_OK]
    assert statuses[2] != STATUS_OK and statuses[3] != STATUS_OK


def test_unknown_legacy_kwarg_raises():
    with pytest.raises(DataError):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            QueryServer(wrokers=2)


# -- the async/sync submission surface --------------------------------------


def test_submit_many_preserves_order(table):
    with make_server(table, default_epsilon_budget=100.0, workers=4,
                     batch_window_ms=2.0) as server:
        requests = [QueryRequest(tenant="a", kind="count",
                                 epsilon=0.01 + i * 0.001,
                                 request_id=f"r{i}")
                    for i in range(20)]
        pending = server.submit_many(requests)
        results = [p.result() for p in pending]
    assert [r.request_id for r in results] == [f"r{i}" for i in range(20)]
    assert all(r.ok for r in results)


def test_pending_result_is_awaitable(table):
    with make_server(table, default_epsilon_budget=10.0) as server:

        async def drive():
            pending = server.submit(QueryRequest(tenant="a", kind="count",
                                                 epsilon=0.1))
            assert isinstance(pending, PendingResult)
            return await pending

        result = asyncio.run(drive())
    assert result.ok


def test_pending_result_done_callback(table):
    with make_server(table, default_epsilon_budget=10.0) as server:
        seen = []
        pending = server.submit(QueryRequest(tenant="a", kind="count",
                                             epsilon=0.1))
        pending.add_done_callback(lambda p: seen.append(p.result().status))
        assert pending.result().ok
        server.drain()
    assert pending.done()
    assert seen == [STATUS_OK]


def test_drain_settles_open_batch_windows(table):
    with make_server(table, default_epsilon_budget=10.0, workers=2,
                     batch_window_ms=500.0) as server:
        pending = server.submit_many([
            QueryRequest(tenant="a", kind="count", epsilon=0.01),
            QueryRequest(tenant="a", kind="count", epsilon=0.02),
        ])
        server.drain(timeout=5.0)   # well before the 500 ms window
        assert all(p.done() for p in pending)
        assert all(p.result().ok for p in pending)
    assert server.stats()["outstanding"] == 0


def test_submit_after_close_raises(table):
    server = make_server(table, default_epsilon_budget=10.0)
    server.close()
    with pytest.raises(DataError):
        server.submit(QueryRequest(tenant="a", kind="count", epsilon=0.1))
    server.close()   # idempotent


def test_batching_coalesces_within_window(table):
    """Same group key + open window ⇒ one vectorized batch."""
    config = ServeConfig(workers=1, seed=7, batch_window_ms=50.0,
                         cache=False, default_epsilon_budget=100.0)
    with make_server(table, config) as server:
        # Distinct ε ⇒ distinct fingerprints (no coalescing via cache),
        # same group key ⇒ one batch.
        pending = server.submit_many([
            QueryRequest(tenant="a", kind="count", epsilon=0.01 + 0.001 * i)
            for i in range(8)
        ])
        results = [p.result() for p in pending]
    assert all(r.ok for r in results)
    batching = server.stats()["batching"]
    assert batching["largest_batch"] == 8
    assert batching["batches"] == 1
