"""Unit tests for bootstrap intervals and conformal prediction."""

import numpy as np
import pytest

from repro.accuracy.bootstrap import bootstrap_ci, bootstrap_paired_ci
from repro.accuracy.conformal import (
    SplitConformalClassifier,
    SplitConformalRegressor,
)
from repro.exceptions import DataError, NotFittedError
from repro.learn import LogisticRegression, RidgeRegression
from repro.learn.metrics import accuracy


def test_bootstrap_ci_covers_true_mean(rng):
    interval = bootstrap_ci(rng.normal(10.0, 2.0, 500), np.mean, rng)
    assert interval.contains(10.0)
    assert interval.lower < interval.estimate < interval.upper
    assert interval.width < 1.0
    assert "@ 95%" in str(interval)


def test_bootstrap_ci_narrows_with_n(rng):
    wide = bootstrap_ci(rng.normal(0, 1, 50), np.mean, rng)
    narrow = bootstrap_ci(rng.normal(0, 1, 5000), np.mean, rng)
    assert narrow.width < wide.width


def test_bootstrap_ci_validation(rng):
    with pytest.raises(DataError):
        bootstrap_ci(np.array([1.0]), np.mean, rng)
    with pytest.raises(DataError):
        bootstrap_ci(np.arange(10.0), np.mean, rng, confidence=1.5)
    with pytest.raises(DataError):
        bootstrap_ci(np.arange(10.0), np.mean, rng, n_resamples=2)


def test_bootstrap_paired_ci(toy_classification, rng):
    X, y = toy_classification
    model = LogisticRegression().fit(X, y)
    predictions = model.predict(X)
    interval = bootstrap_paired_ci(y, predictions, accuracy, rng)
    assert interval.contains(accuracy(y, predictions))
    assert 0.0 <= interval.lower <= interval.upper <= 1.0


def _conformal_setup(rng, n=3000):
    X = rng.standard_normal((n, 4))
    weights = np.array([1.5, -1.0, 0.5, 0.0])
    y = (X @ weights + rng.standard_normal(n) > 0).astype(float)
    train, cal, test = X[:1000], X[1000:2000], X[2000:]
    y_train, y_cal, y_test = y[:1000], y[1000:2000], y[2000:]
    model = LogisticRegression().fit(train, y_train)
    return model, cal, y_cal, test, y_test


@pytest.mark.parametrize("alpha", [0.05, 0.1, 0.2])
def test_conformal_classifier_coverage(rng, alpha):
    model, cal, y_cal, test, y_test = _conformal_setup(rng)
    conformal = SplitConformalClassifier(model, alpha=alpha)
    conformal.calibrate(cal, y_cal)
    coverage = conformal.coverage(test, y_test)
    # Marginal guarantee: coverage >= 1 - alpha, up to finite-sample noise.
    assert coverage >= 1.0 - alpha - 0.035


def test_conformal_sets_shrink_with_alpha(rng):
    model, cal, y_cal, test, _ = _conformal_setup(rng)
    strict = SplitConformalClassifier(model, alpha=0.02).calibrate(cal, y_cal)
    loose = SplitConformalClassifier(model, alpha=0.3).calibrate(cal, y_cal)
    assert loose.mean_set_size(test) <= strict.mean_set_size(test)


def test_conformal_set_contents(rng):
    model, cal, y_cal, test, _ = _conformal_setup(rng)
    conformal = SplitConformalClassifier(model, alpha=0.1).calibrate(cal, y_cal)
    sets = conformal.predict_sets(test[:20])
    for prediction_set in sets:
        assert 1 <= prediction_set.size <= 2
        assert set(prediction_set.labels) <= {0.0, 1.0}


def test_conformal_requires_calibration(rng):
    model, _, _, test, _ = _conformal_setup(rng)
    with pytest.raises(NotFittedError):
        SplitConformalClassifier(model).predict_sets(test)
    with pytest.raises(DataError):
        SplitConformalClassifier(model, alpha=0.0)


def test_conformal_regressor_coverage(rng):
    n = 3000
    X = rng.standard_normal((n, 3))
    y = X @ np.array([2.0, -1.0, 0.5]) + rng.standard_normal(n)
    model = RidgeRegression().fit(X[:1000], y[:1000])
    conformal = SplitConformalRegressor(model, alpha=0.1)
    conformal.calibrate(X[1000:2000], y[1000:2000])
    # Marginal guarantee is 0.9 in expectation over calibration draws;
    # a single draw can dip a couple of points.
    assert conformal.coverage(X[2000:], y[2000:]) >= 0.85
    intervals = conformal.predict_intervals(X[2000:2005])
    assert intervals.shape == (5, 2)
    assert np.all(intervals[:, 1] > intervals[:, 0])
    assert conformal.mean_width(X[2000:]) > 0


def test_conformal_regressor_width_tracks_noise(rng):
    n = 2000
    X = rng.standard_normal((n, 2))

    def fit_width(noise):
        y = X @ np.array([1.0, 1.0]) + noise * rng.standard_normal(n)
        model = RidgeRegression().fit(X[:800], y[:800])
        conformal = SplitConformalRegressor(model, alpha=0.1)
        conformal.calibrate(X[800:1400], y[800:1400])
        return conformal.mean_width(X[1400:])

    assert fit_width(2.0) > fit_width(0.5)


def _grouped_conformal_setup(rng, n=6000):
    """Scores are much noisier for group B: marginal CP undercovers B."""
    group = np.where(rng.random(n) < 0.3, "B", "A").astype(object)
    X = rng.standard_normal((n, 3))
    noise = np.where(group == "B", 2.5, 0.5)
    y = (X @ np.array([1.5, -1.0, 0.5])
         + noise * rng.standard_normal(n) > 0).astype(float)
    split_train, split_cal = slice(0, 2000), slice(2000, 4000)
    split_test = slice(4000, n)
    model = LogisticRegression().fit(X[split_train], y[split_train])
    return (model, X[split_cal], y[split_cal], group[split_cal],
            X[split_test], y[split_test], group[split_test])


def test_group_conditional_coverage_holds_per_group(rng):
    from repro.accuracy.conformal import GroupConditionalConformalClassifier

    (model, X_cal, y_cal, g_cal,
     X_test, y_test, g_test) = _grouped_conformal_setup(rng)
    conformal = GroupConditionalConformalClassifier(model, alpha=0.1)
    conformal.calibrate(X_cal, y_cal, g_cal)
    by_group = conformal.coverage_by_group(X_test, y_test, g_test)
    for value, coverage in by_group.items():
        assert coverage >= 0.9 - 0.04, value


def test_marginal_conformal_can_undercover_a_group(rng):
    """The failure Mondrian CP fixes: one global quantile, unequal groups."""
    from repro.accuracy.conformal import (
        GroupConditionalConformalClassifier,
        SplitConformalClassifier,
    )

    (model, X_cal, y_cal, g_cal,
     X_test, y_test, g_test) = _grouped_conformal_setup(rng)
    marginal = SplitConformalClassifier(model, alpha=0.1)
    marginal.calibrate(X_cal, y_cal)
    sets = marginal.predict_sets(X_test)
    covered = np.asarray([
        s.covers(label) for s, label in zip(sets, y_test)
    ])
    marginal_by_group = {
        value: float(covered[g_test == value].mean())
        for value in np.unique(g_test)
    }
    grouped = GroupConditionalConformalClassifier(model, alpha=0.1)
    grouped.calibrate(X_cal, y_cal, g_cal)
    grouped_by_group = grouped.coverage_by_group(X_test, y_test, g_test)
    # Group-conditional calibration never does worse on the worst group.
    assert (min(grouped_by_group.values())
            >= min(marginal_by_group.values()) - 0.02)


def test_group_conditional_validation(rng):
    from repro.accuracy.conformal import GroupConditionalConformalClassifier
    from repro.exceptions import DataError, NotFittedError

    (model, X_cal, y_cal, g_cal,
     X_test, _, g_test) = _grouped_conformal_setup(rng)
    conformal = GroupConditionalConformalClassifier(model, alpha=0.1)
    with pytest.raises(NotFittedError):
        conformal.predict_sets(X_test, g_test)
    conformal.calibrate(X_cal, y_cal, g_cal)
    with pytest.raises(DataError, match="unseen"):
        conformal.predict_sets(X_test[:2], np.asarray(["Z", "Z"]))
