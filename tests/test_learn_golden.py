"""Golden-value pins for the optimised learn kernels.

The hot-kernel rewrites (presorted tree splits, blocked k-NN selection,
fused MLP Adam — see docs/api.md, "Hot kernels & fusion") all promise
*byte-identical* results to the straightforward implementations they
replaced.  These tests freeze that promise: each digest below was
captured from the pre-optimisation code on a fixed-seed dataset, and
every fitted state and prediction must still hash to exactly the same
bytes.  Any change — a reordered float accumulation, a different
tie-break, a dtype drift — flips a digest and fails loudly.
"""

import hashlib

import numpy as np
import pytest

from repro.learn.boosting import GradientBoostingClassifier
from repro.learn.forest import RandomForestClassifier
from repro.learn.mlp import MLPClassifier
from repro.learn.neighbors import KNeighborsClassifier, nearest_indices
from repro.learn.tree import DecisionTreeClassifier

GOLDEN = {
    "tree_state": "6c7d61018ce3f859",
    "tree_proba": "49dc74d274805a47",
    "subsampled_tree_state": "06c562c20f568c9f",
    "forest_state": "c17b33df22dba9d9",
    "forest_proba": "c6981011f45dafa3",
    "forest_importances": "966018a68b48b1cc",
    "boost_state": "3e4bac8a342b2cf5",
    "boost_proba": "98f7be84e91eec09",
    "knn_proba": "3f3dc804f5b1c7b5",
    "knn_indices": "b0ebfc15deef8650",
    "mlp_state": "c52557dfd7dca72c",
    "mlp_proba": "2088ab6ee9ae5ef6",
}


def digest(*arrays) -> str:
    h = hashlib.sha256()
    for a in arrays:
        a = np.ascontiguousarray(a)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()[:16]


def tree_state(tree):
    nodes = tree._nodes
    return (
        np.array([n.feature for n in nodes], dtype=np.int64),
        np.array([n.threshold for n in nodes], dtype=np.float64),
        np.array([n.left for n in nodes], dtype=np.int64),
        np.array([n.right for n in nodes], dtype=np.int64),
        np.array([n.probability for n in nodes], dtype=np.float64),
        np.array([n.weight for n in nodes], dtype=np.float64),
    )


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(20170626)
    X = rng.standard_normal((300, 6))
    logits = X[:, 0] - 0.8 * X[:, 1] + 0.5 * X[:, 2] * X[:, 3]
    y = (logits + 0.3 * rng.standard_normal(300) > 0).astype(float)
    w = rng.uniform(0.5, 2.0, 300)
    X_test = rng.standard_normal((80, 6))
    return X, y, w, X_test


def test_decision_tree_state_and_predictions(data):
    X, y, w, X_test = data
    tree = DecisionTreeClassifier(max_depth=6, min_samples_leaf=4).fit(
        X, y, sample_weight=w
    )
    assert digest(*tree_state(tree)) == GOLDEN["tree_state"]
    assert digest(tree.predict_proba(X_test)) == GOLDEN["tree_proba"]


def test_feature_subsampled_tree_state(data):
    X, y, _, _ = data
    tree = DecisionTreeClassifier(
        max_depth=5, max_features=2, rng=np.random.default_rng(7)
    ).fit(X, y)
    assert digest(*tree_state(tree)) == GOLDEN["subsampled_tree_state"]


def test_random_forest_state_and_predictions(data):
    X, y, _, X_test = data
    forest = RandomForestClassifier(n_trees=10, max_depth=5, seed=3).fit(X, y)
    state = [a for t in forest._trees for a in tree_state(t)]
    assert digest(*state) == GOLDEN["forest_state"]
    assert digest(forest.predict_proba(X_test)) == GOLDEN["forest_proba"]
    assert digest(forest.feature_importances()) == GOLDEN["forest_importances"]


def test_gradient_boosting_state_and_predictions(data):
    X, y, w, X_test = data
    boost = GradientBoostingClassifier(
        n_stages=15, max_depth=3, subsample=0.8, seed=5
    ).fit(X, y, sample_weight=w)
    state = [a for t in boost._trees for a in tree_state(t)]
    assert digest(np.array([boost._base_score]), *state) == GOLDEN["boost_state"]
    assert digest(boost.predict_proba(X_test)) == GOLDEN["boost_proba"]


def test_knn_predictions_and_neighbour_indices(data):
    X, y, w, X_test = data
    knn = KNeighborsClassifier(k=7, distance_weighted=True).fit(
        X, y, sample_weight=w
    )
    assert digest(knn.predict_proba(X_test)) == GOLDEN["knn_proba"]
    assert digest(nearest_indices(X_test, X, 7)) == GOLDEN["knn_indices"]


def test_mlp_fitted_state_and_predictions(data):
    X, y, w, X_test = data
    mlp = MLPClassifier(hidden=(16, 8), epochs=8, batch_size=32, seed=11).fit(
        X, y, sample_weight=w
    )
    assert digest(*mlp._weights, *mlp._biases) == GOLDEN["mlp_state"]
    assert digest(mlp.predict_proba(X_test)) == GOLDEN["mlp_proba"]
