"""Tests for the ``repro.serve`` query-serving layer.

The high-order bits: the cache's privacy property (identical queries →
identical released answer, charged exactly once), the budget manager's
speculative semantics (rejections never touch the ledger), admission
control, concurrency safety, and the never-raise serving loop.
"""

import json
import threading

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.confidentiality.accountant import PrivacyAccountant
from repro.data.io import write_csv
from repro.exceptions import DataError, PrivacyBudgetError
from repro.serve import (
    STATUS_OK,
    STATUS_REJECTED_BUDGET,
    STATUS_REJECTED_INVALID,
    STATUS_REJECTED_RATE,
    AdmissionController,
    AnswerCache,
    BudgetManager,
    QueryPlanner,
    QueryRequest,
    QueryServer,
)


@pytest.fixture
def served_table(small_table):
    return small_table


def make_server(table, workers=1, **kwargs):
    server = QueryServer(workers=workers, seed=7, **kwargs)
    server.register_table("t", table)
    return server


def mean_request(tenant="a", epsilon=0.1, **overrides):
    fields = dict(tenant=tenant, kind="mean", column="income",
                  lower=0.0, upper=100.0, epsilon=epsilon)
    fields.update(overrides)
    return QueryRequest(**fields)


# -- planner ---------------------------------------------------------------------

def test_planner_validates(served_table):
    planner = QueryPlanner()
    planner.register_table("t", served_table)
    bad_requests = [
        QueryRequest(tenant="a", kind="teleport", epsilon=0.1),
        QueryRequest(tenant="a", kind="mean", epsilon=0.1),  # no column
        QueryRequest(tenant="a", kind="mean", column="nope",
                     lower=0, upper=1, epsilon=0.1),
        QueryRequest(tenant="a", kind="mean", column="income", epsilon=0.1),
        QueryRequest(tenant="a", kind="mean", column="income",
                     lower=5, upper=5, epsilon=0.1),
        QueryRequest(tenant="a", kind="mean", column="city",
                     lower=0, upper=1, epsilon=0.1),  # categorical
        QueryRequest(tenant="a", kind="quantile", column="income",
                     lower=0, upper=1, epsilon=0.1),  # no q
        QueryRequest(tenant="a", kind="quantile", column="income",
                     lower=0, upper=1, q=1.5, epsilon=0.1),
        QueryRequest(tenant="a", kind="histogram", column="city", epsilon=0.1),
        QueryRequest(tenant="a", kind="count", epsilon=0.0),
        QueryRequest(tenant="a", kind="count", epsilon=-1.0),
        QueryRequest(tenant="a", kind="count", epsilon=0.1, table="other"),
    ]
    for request in bad_requests:
        with pytest.raises(DataError):
            planner.plan(request)


def test_planner_fingerprint_canonical(served_table):
    planner = QueryPlanner()
    planner.register_table("t", served_table)
    base = planner.plan(mean_request())
    # Same release, differently spelled: explicit table name, int bounds.
    same = planner.plan(mean_request(table="t", lower=0, upper=100))
    assert same.fingerprint == base.fingerprint
    # Different ε is a different release.
    other_eps = planner.plan(mean_request(epsilon=0.2))
    assert other_eps.fingerprint != base.fingerprint
    # Bins are order- and duplicate-insensitive.
    h1 = planner.plan(QueryRequest(tenant="a", kind="histogram", column="city",
                                   bins=("north", "south"), epsilon=0.1))
    h2 = planner.plan(QueryRequest(tenant="b", kind="histogram", column="city",
                                   bins=("south", "north", "south"),
                                   epsilon=0.1))
    assert h1.fingerprint == h2.fingerprint
    # Re-registering the table bumps the version and the fingerprint.
    planner.register_table("t", served_table)
    assert planner.plan(mean_request()).fingerprint != base.fingerprint
    assert planner.table_version("t") == 2


def test_planner_resolves_single_table(served_table):
    planner = QueryPlanner()
    with pytest.raises(DataError):
        planner.plan(mean_request())  # nothing registered
    planner.register_table("only", served_table)
    assert planner.plan(mean_request()).table == "only"
    planner.register_table("second", served_table)
    with pytest.raises(DataError):
        planner.plan(mean_request())  # ambiguous without a name


# -- budget manager --------------------------------------------------------------

def test_budget_manager_two_phase():
    manager = BudgetManager()
    manager.register("a", PrivacyAccountant(1.0))
    reservation = manager.reserve("a", 0.6)
    # Pending reservations block oversubscription...
    assert not manager.can_reserve("a", 0.6)
    with pytest.raises(PrivacyBudgetError):
        manager.reserve("a", 0.6)
    # ...but the ledger has not been charged yet.
    assert manager.accountant("a").epsilon_spent == 0.0
    assert manager.remaining("a") == pytest.approx(0.4)

    entry = manager.commit(reservation, label="q")
    assert entry.epsilon == pytest.approx(0.6)
    assert manager.accountant("a").epsilon_spent == pytest.approx(0.6)
    assert manager.pending_epsilon("a") == 0.0

    second = manager.reserve("a", 0.4)
    manager.rollback(second)
    assert manager.accountant("a").epsilon_spent == pytest.approx(0.6)
    assert manager.remaining("a") == pytest.approx(0.4)
    # Settled reservations cannot be settled again.
    with pytest.raises(DataError):
        manager.commit(reservation)
    with pytest.raises(DataError):
        manager.rollback(second)


def test_budget_manager_unknown_tenant():
    manager = BudgetManager()
    with pytest.raises(DataError):
        manager.reserve("ghost", 0.1)
    manager.register("a", PrivacyAccountant(1.0))
    with pytest.raises(DataError):
        manager.register("a", PrivacyAccountant(1.0))


# -- answer cache ----------------------------------------------------------------

def test_cache_lru_and_stats():
    cache = AnswerCache(max_entries=2)
    cache.put("f1", 1.0, 0.1)
    cache.put("f2", 2.0, 0.1)
    assert cache.get("f1").value == 1.0  # refreshes f1
    cache.put("f3", 3.0, 0.1)            # evicts f2 (least recent)
    assert cache.get("f2") is None
    assert cache.get("f3").value == 3.0
    assert len(cache) == 2
    stats = cache.stats()
    assert stats["evictions"] == 1
    assert stats["hits"] == 2 and stats["misses"] == 1


def test_cache_tenant_scope():
    cache = AnswerCache(scope="tenant")
    cache.put("f", 1.0, 0.1, tenant="a")
    assert cache.get("f", tenant="a").value == 1.0
    assert cache.get("f", tenant="b") is None


def test_cache_histogram_values_are_copied():
    cache = AnswerCache()
    cache.put("f", {"x": 1.0}, 0.1)
    replay = cache.get("f").replay()
    replay["x"] = 999.0
    assert cache.get("f").replay() == {"x": 1.0}


# -- admission -------------------------------------------------------------------

def test_admission_rate_limit_sliding_window():
    clock = [0.0]
    controller = AdmissionController(rate_limit=2, window_s=1.0,
                                     now_fn=lambda: clock[0])
    assert controller.try_admit("a") is None
    assert controller.try_admit("a") is None
    assert controller.try_admit("a") == "rate_limit"
    assert controller.try_admit("b") is None  # per-tenant windows
    clock[0] = 1.5  # window slides past the first admissions
    assert controller.try_admit("a") is None
    assert controller.rejections["rate_limit"] == 1


def test_admission_inflight_cap():
    controller = AdmissionController(max_inflight=1)
    assert controller.try_admit("a") is None
    assert controller.try_admit("b") == "overload"
    controller.release("a")
    assert controller.try_admit("b") is None
    controller.release("b")
    with pytest.raises(DataError):
        controller.release("b")


# -- server: the cache privacy property ------------------------------------------

def test_repeated_query_same_answer_charged_once(served_table):
    server = make_server(served_table)
    server.register_tenant("a", epsilon_budget=1.0)
    first = server.query(mean_request())
    repeats = [server.query(mean_request()) for _ in range(5)]
    assert first.ok and not first.cached
    assert first.epsilon_charged == pytest.approx(0.1)
    for repeat in repeats:
        assert repeat.ok and repeat.cached
        assert repeat.value == first.value  # byte-identical replay
        assert repeat.epsilon_charged == 0.0
    accountant = server.budget.accountant("a")
    # 6 submissions, exactly one ledger charge.
    assert accountant.epsilon_spent == pytest.approx(0.1)
    assert len(accountant.ledger) == 1
    server.close()


def test_cache_shared_across_tenants_by_default(served_table):
    server = make_server(served_table)
    server.register_tenant("a", epsilon_budget=1.0)
    server.register_tenant("b", epsilon_budget=1.0)
    first = server.query(mean_request(tenant="a"))
    second = server.query(mean_request(tenant="b"))
    assert second.cached and second.value == first.value
    assert server.budget.accountant("b").epsilon_spent == 0.0
    server.close()


def test_cache_off_pays_every_time(served_table):
    server = make_server(served_table, cache=None)
    server.register_tenant("a", epsilon_budget=1.0)
    first = server.query(mean_request())
    second = server.query(mean_request())
    assert not first.cached and not second.cached
    assert server.budget.accountant("a").epsilon_spent == pytest.approx(0.2)
    server.close()


def test_reregistering_table_invalidates_cache(served_table):
    server = make_server(served_table)
    server.register_tenant("a", epsilon_budget=1.0)
    server.query(mean_request())
    server.register_table("t", served_table)  # new version, new fingerprints
    refreshed = server.query(mean_request())
    assert not refreshed.cached
    assert server.budget.accountant("a").epsilon_spent == pytest.approx(0.2)
    server.close()


# -- server: structured rejections ----------------------------------------------

def test_budget_exhaustion_is_structured_and_free(served_table):
    server = make_server(served_table)
    server.register_tenant("poor", epsilon_budget=0.05)
    result = server.query(mean_request(tenant="poor", epsilon=0.1))
    assert result.status == STATUS_REJECTED_BUDGET
    assert result.value is None and result.epsilon_charged == 0.0
    assert "cannot afford" in result.detail
    accountant = server.budget.accountant("poor")
    assert accountant.epsilon_spent == 0.0
    assert len(accountant.ledger) == 0
    # The tenant can still afford a smaller query afterwards.
    ok = server.query(mean_request(tenant="poor", epsilon=0.05))
    assert ok.ok
    server.close()


def test_invalid_and_unknown_are_structured(served_table):
    server = make_server(served_table)
    server.register_tenant("a", epsilon_budget=1.0)
    bad_column = server.query(mean_request(column="nope"))
    assert bad_column.status == STATUS_REJECTED_INVALID
    unknown_tenant = server.query(mean_request(tenant="ghost"))
    assert unknown_tenant.status == STATUS_REJECTED_INVALID
    assert "ghost" in unknown_tenant.detail
    malformed = server.query({"kind": "count"})  # missing tenant/epsilon
    assert malformed.status == STATUS_REJECTED_INVALID
    server.close()


def test_rate_limited_requests_are_structured_and_free(served_table):
    clock = [0.0]
    admission = AdmissionController(rate_limit=2, window_s=1.0,
                                    now_fn=lambda: clock[0])
    server = make_server(served_table, admission=admission)
    server.register_tenant("a", epsilon_budget=10.0)
    results = [server.query(mean_request(epsilon=0.1 + 0.01 * i))
               for i in range(4)]
    statuses = [result.status for result in results]
    assert statuses == [STATUS_OK, STATUS_OK,
                        STATUS_REJECTED_RATE, STATUS_REJECTED_RATE]
    # Refused queries charged nothing.
    assert server.budget.accountant("a").epsilon_spent == pytest.approx(0.21)
    server.close()


def test_auto_registration_with_default_budget(served_table):
    server = make_server(served_table, default_epsilon_budget=0.5)
    result = server.query(mean_request(tenant="walk-in"))
    assert result.ok
    assert server.budget.remaining("walk-in") == pytest.approx(0.4)
    server.close()


# -- server: concurrency ---------------------------------------------------------

def test_concurrent_batch_respects_budget(served_table):
    # 40 *distinct* queries at ε=0.1 against a budget of 1.0: exactly 10
    # may commit, regardless of interleaving.
    server = make_server(served_table, workers=8, cache=None)
    server.register_tenant("a", epsilon_budget=1.0)
    requests = [mean_request(epsilon=0.1, lower=-float(i + 1))
                for i in range(40)]
    results = server.submit_batch(requests)
    ok = [r for r in results if r.ok]
    rejected = [r for r in results if r.status == STATUS_REJECTED_BUDGET]
    assert len(ok) == 10
    assert len(rejected) == 30
    accountant = server.budget.accountant("a")
    assert accountant.epsilon_spent == pytest.approx(1.0)
    assert len(accountant.ledger) == 10
    server.close()


def test_concurrent_duplicates_coalesce_to_one_charge(served_table):
    server = make_server(served_table, workers=8,
                         backend_latency_s=0.002)
    server.register_tenant("a", epsilon_budget=1.0)
    results = server.submit_batch([mean_request() for _ in range(16)])
    values = {result.value for result in results}
    assert all(result.ok for result in results)
    assert len(values) == 1  # everyone saw the same release
    accountant = server.budget.accountant("a")
    assert accountant.epsilon_spent == pytest.approx(0.1)
    assert len(accountant.ledger) == 1
    server.close()


def test_batch_preserves_request_order(served_table):
    server = make_server(served_table, workers=4)
    server.register_tenant("a", epsilon_budget=10.0)
    requests = [QueryRequest(tenant="a", kind="count", epsilon=0.01,
                             request_id=f"r{i}") for i in range(20)]
    results = server.submit_batch(requests)
    assert [result.request_id for result in results] == \
        [request.request_id for request in requests]
    server.close()


# -- server: telemetry -----------------------------------------------------------

def test_server_emits_telemetry(served_table):
    from repro import obs
    telemetry = obs.configure()
    try:
        server = make_server(served_table)
        server.register_tenant("a", epsilon_budget=1.0)
        server.query(mean_request())
        server.query(mean_request())
        server.query(mean_request(tenant="ghost"))
        spans = [span for span in telemetry.tracer.spans
                 if span.name == "serve.query"]
        assert len(spans) == 3
        assert all(span.finished for span in spans)
        assert spans[1].attributes["cached"] is True
        hits = telemetry.metrics.counter("serve.cache.hits")
        misses = telemetry.metrics.counter("serve.cache.misses")
        assert hits.value == 1 and misses.value == 1
        ok = telemetry.metrics.counter("serve.requests", status=STATUS_OK)
        invalid = telemetry.metrics.counter("serve.requests",
                                            status=STATUS_REJECTED_INVALID)
        assert ok.value == 2 and invalid.value == 1
        gauge = telemetry.metrics.gauge("serve.budget.epsilon_remaining",
                                        tenant="a")
        assert gauge.value == pytest.approx(0.9)
        server.close()
    finally:
        obs.reset()


# -- CLI -------------------------------------------------------------------------

def test_cli_serve_end_to_end(tmp_path, small_table, capsys):
    data_path = tmp_path / "data.csv"
    write_csv(small_table, data_path)
    queries = [
        {"tenant": "a", "kind": "count", "epsilon": 0.05},
        {"tenant": "a", "kind": "mean", "column": "income",
         "lower": 0, "upper": 100, "epsilon": 0.1},
        {"tenant": "a", "kind": "mean", "column": "income",
         "lower": 0, "upper": 100, "epsilon": 0.1},
        {"tenant": "b", "kind": "histogram", "column": "city",
         "bins": ["north", "south"], "epsilon": 0.1},
        {"tenant": "a", "kind": "mean", "column": "nope",
         "lower": 0, "upper": 1, "epsilon": 0.1},
    ]
    queries_path = tmp_path / "queries.jsonl"
    queries_path.write_text(
        "\n".join(json.dumps(query) for query in queries) + "\n"
    )
    output_path = tmp_path / "responses.jsonl"
    code = cli_main([
        "serve", str(queries_path), "--data", str(data_path),
        "--workers", "1", "-o", str(output_path),
    ])
    assert code == 0
    responses = [json.loads(line)
                 for line in output_path.read_text().splitlines()]
    assert len(responses) == 5
    assert [r["status"] for r in responses] == \
        ["ok", "ok", "ok", "ok", "rejected_invalid"]
    assert responses[2]["cached"] is True
    assert responses[2]["value"] == responses[1]["value"]
    assert set(responses[3]["value"]) == {"north", "south"}
    summary = capsys.readouterr().err
    assert "served 5 queries" in summary
    assert "tenant a" in summary and "tenant b" in summary


def test_cli_serve_no_cache_flag(tmp_path, small_table):
    data_path = tmp_path / "data.csv"
    write_csv(small_table, data_path)
    queries_path = tmp_path / "queries.jsonl"
    queries_path.write_text(
        json.dumps({"tenant": "a", "kind": "count", "epsilon": 0.1}) + "\n"
    )
    output_path = tmp_path / "out.jsonl"
    code = cli_main([
        "serve", str(queries_path), "--data", str(data_path),
        "--no-cache", "--workers", "1", "-o", str(output_path),
    ])
    assert code == 0
    assert json.loads(output_path.read_text())["status"] == "ok"
