"""Unit tests for repro.data.table."""

import numpy as np
import pytest

from repro.data.schema import ColumnRole, Schema, categorical, numeric
from repro.data.table import Table
from repro.exceptions import DataError, SchemaError


def test_from_dict_infers_types(small_table):
    table = Table.from_dict({"x": [1, 2, 3], "c": ["a", "b", "c"]})
    assert table.schema["x"].ctype.value == "numeric"
    assert table.schema["c"].ctype.value == "categorical"


def test_mismatched_schema_rejected():
    with pytest.raises(SchemaError, match="disagree"):
        Table(Schema([numeric("a")]), {"b": [1.0]})


def test_ragged_columns_rejected():
    with pytest.raises(DataError, match="rows"):
        Table.from_dict({"a": [1, 2], "b": [1, 2, 3]})


def test_basic_properties(small_table):
    assert small_table.n_rows == 6
    assert small_table.n_columns == 6
    assert len(small_table) == 6
    assert "income" in small_table
    assert "Table(" in repr(small_table)


def test_column_access(small_table):
    np.testing.assert_allclose(
        small_table["income"], [10, 20, 30, 40, 50, 60]
    )
    with pytest.raises(SchemaError):
        small_table.column("missing")


def test_row_and_iter(small_table):
    row = small_table.row(2)
    assert row["city"] == "south"
    assert row["income"] == 30.0
    assert len(list(small_table.iter_rows())) == 6
    with pytest.raises(DataError):
        small_table.row(99)


def test_select_drop(small_table):
    selected = small_table.select(["debt", "income"])
    assert selected.column_names == ["debt", "income"]
    dropped = small_table.drop(["ssn"])
    assert "ssn" not in dropped


def test_with_column_replace_and_add(small_table):
    doubled = small_table.with_column(
        small_table.schema["income"], small_table["income"] * 2
    )
    assert doubled["income"][0] == 20.0
    extended = small_table.with_column(numeric("zeros"), np.zeros(6))
    assert extended.n_columns == 7
    with pytest.raises(DataError, match="rows"):
        small_table.with_column(numeric("bad"), [1.0])


def test_rename(small_table):
    renamed = small_table.rename({"income": "salary"})
    assert "salary" in renamed
    assert "income" not in renamed
    assert renamed.schema["salary"].role is ColumnRole.FEATURE


def test_take_filter_head(small_table):
    taken = small_table.take([5, 0])
    assert taken["income"][0] == 60.0
    filtered = small_table.filter(small_table["group"] == "A")
    assert filtered.n_rows == 3
    assert small_table.head(2).n_rows == 2
    with pytest.raises(DataError, match="mask"):
        small_table.filter([True])


def test_shuffle_sample(small_table, rng):
    shuffled = small_table.shuffle(rng)
    assert shuffled.n_rows == 6
    assert sorted(shuffled["income"].tolist()) == sorted(
        small_table["income"].tolist()
    )
    sample = small_table.sample(3, rng)
    assert sample.n_rows == 3
    with pytest.raises(DataError):
        small_table.sample(100, rng)
    assert small_table.sample(100, rng, replace=True).n_rows == 100


def test_sort_by(small_table):
    ascending = small_table.sort_by("income")
    assert ascending["income"][0] == 10.0
    descending = small_table.sort_by("income", descending=True)
    assert descending["income"][0] == 60.0


def test_concat(small_table):
    combined = Table.concat([small_table, small_table])
    assert combined.n_rows == 12
    with pytest.raises(SchemaError):
        Table.concat([small_table, small_table.drop(["ssn"])])


def test_group_by_and_counts(small_table):
    groups = small_table.group_by("group")
    assert set(groups) == {"A", "B"}
    assert groups["A"].n_rows == 3
    counts = small_table.value_counts("city")
    assert counts == {"north": 3, "south": 3}


def test_describe(small_table):
    summary = small_table.describe()
    assert summary["income"]["mean"] == pytest.approx(35.0)
    assert summary["group"]["n_unique"] == 2
    assert summary["approved"]["role"] == "target"


def test_equality(small_table):
    assert small_table == small_table.take(range(6))
    assert small_table != small_table.filter([True] * 5 + [False])
    assert (small_table == 42) is False or True  # NotImplemented path


def test_fact_conveniences(small_table):
    np.testing.assert_allclose(
        small_table.target(), [0, 0, 1, 0, 1, 1]
    )
    features = small_table.feature_table()
    assert features.column_names == ["income", "debt"]
    with_sensitive = small_table.feature_table(include_sensitive=True)
    assert "group" in with_sensitive
    assert (small_table.sensitive() == np.array(
        ["A", "B", "A", "B", "A", "B"], dtype=object)).all()
    with pytest.raises(SchemaError):
        small_table.sensitive("income")


def test_empty_like(small_table):
    empty = Table.empty_like(small_table)
    assert empty.n_rows == 0
    assert empty.column_names == small_table.column_names


def test_no_target_raises():
    table = Table.from_dict({"x": [1.0, 2.0]})
    with pytest.raises(SchemaError, match="no target"):
        table.target()


def test_unique(small_table):
    assert small_table.unique("city").tolist() == ["north", "south"]


# -- zero-copy column views --------------------------------------------------


def test_column_returns_read_only_view(small_table):
    income = small_table.column("income")
    assert not income.flags.writeable
    with pytest.raises(ValueError, match="read-only"):
        income[0] = 99.0
    # The view shares the internal buffer; a copy is one np.array away.
    assert income.base is not None
    mutable = np.array(income)
    mutable[0] = 99.0
    np.testing.assert_allclose(small_table.column("income")[0], 10.0)


def test_column_views_are_cached_and_consistent(small_table):
    assert small_table.column("income") is small_table.column("income")
    np.testing.assert_allclose(small_table["income"],
                               small_table.column("income"))


def test_projections_share_column_buffers(small_table):
    selected = small_table.select(["income", "debt", "approved"])
    dropped = small_table.drop(["city"])
    renamed = small_table.rename({"income": "salary"})
    assert np.shares_memory(selected.column("income"),
                            small_table.column("income"))
    assert np.shares_memory(dropped.column("income"),
                            small_table.column("income"))
    assert np.shares_memory(renamed.column("salary"),
                            small_table.column("income"))


def test_row_subsets_still_copy(small_table):
    taken = small_table.take([0, 1, 2])
    filtered = small_table.filter([True, False, True, False, True, False])
    for subset in (taken, filtered):
        assert not np.shares_memory(subset.column("income"),
                                    small_table.column("income"))
