"""Unit tests for logistic and ridge regression."""

import numpy as np
import pytest

from repro.exceptions import DataError, NotFittedError
from repro.learn.linear import LogisticRegression, RidgeRegression
from repro.learn.metrics import accuracy, roc_auc


def test_logistic_learns_separable(toy_classification):
    X, y = toy_classification
    model = LogisticRegression(l2=0.1).fit(X, y)
    predictions = model.predict(X)
    assert accuracy(y, predictions) > 0.85
    assert roc_auc(y, model.predict_proba(X)) > 0.9


def test_logistic_recovers_signs(toy_classification):
    X, y = toy_classification
    model = LogisticRegression(l2=0.1).fit(X, y)
    assert model.coef_[0] > 0
    assert model.coef_[1] < 0
    assert abs(model.coef_[2]) < abs(model.coef_[0])


def test_logistic_probabilities_bounded(toy_classification):
    X, y = toy_classification
    probabilities = LogisticRegression().fit(X, y).predict_proba(X)
    assert np.all(probabilities >= 0.0)
    assert np.all(probabilities <= 1.0)


def test_logistic_requires_fit(toy_classification):
    X, _ = toy_classification
    with pytest.raises(NotFittedError):
        LogisticRegression().predict_proba(X)


def test_logistic_input_validation(toy_classification, rng):
    X, y = toy_classification
    with pytest.raises(DataError):
        LogisticRegression().fit(X, y[:10])
    with pytest.raises(DataError):
        LogisticRegression().fit(X, y + 2.0)  # labels not 0/1
    with pytest.raises(DataError):
        LogisticRegression().fit(X[:, 0], y)  # 1-D X
    bad = X.copy()
    bad[0, 0] = np.nan
    with pytest.raises(DataError):
        LogisticRegression().fit(bad, y)
    with pytest.raises(DataError):
        LogisticRegression(l2=-1.0)


def test_logistic_sample_weights_shift_boundary(rng):
    X = np.linspace(-1, 1, 200).reshape(-1, 1)
    y = (X[:, 0] > 0).astype(float)
    # Upweight the negative class heavily: predictions shift negative.
    weights = np.where(y == 0.0, 10.0, 1.0)
    weighted = LogisticRegression(l2=0.01).fit(X, y, sample_weight=weights)
    plain = LogisticRegression(l2=0.01).fit(X, y)
    assert weighted.predict(X).sum() < plain.predict(X).sum()


def test_logistic_weight_validation(toy_classification):
    X, y = toy_classification
    with pytest.raises(DataError):
        LogisticRegression().fit(X, y, sample_weight=np.ones(3))
    with pytest.raises(DataError):
        LogisticRegression().fit(X, y, sample_weight=-np.ones(len(y)))
    with pytest.raises(DataError):
        LogisticRegression().fit(X, y, sample_weight=np.zeros(len(y)))


def test_logistic_l2_shrinks_weights(toy_classification):
    X, y = toy_classification
    loose = LogisticRegression(l2=0.01).fit(X, y)
    tight = LogisticRegression(l2=100.0).fit(X, y)
    assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)


def test_logistic_decision_scores_monotone(toy_classification):
    X, y = toy_classification
    model = LogisticRegression().fit(X, y)
    scores = model.decision_scores(X)
    probabilities = model.predict_proba(X)
    order = np.argsort(scores)
    assert np.all(np.diff(probabilities[order]) >= -1e-12)


def test_ridge_recovers_linear_function(rng):
    X = rng.standard_normal((300, 3))
    y = 2.0 * X[:, 0] - 1.0 * X[:, 1] + 0.5 + 0.01 * rng.standard_normal(300)
    model = RidgeRegression(l2=1e-6).fit(X, y)
    assert model.coef_[0] == pytest.approx(2.0, abs=0.05)
    assert model.coef_[1] == pytest.approx(-1.0, abs=0.05)
    assert model.intercept_ == pytest.approx(0.5, abs=0.05)


def test_ridge_weighted_fit(rng):
    X = np.vstack([np.zeros((50, 1)), np.ones((50, 1))])
    y = np.concatenate([np.zeros(50), np.ones(50) * 2.0])
    weights = np.concatenate([np.full(50, 100.0), np.full(50, 1.0)])
    model = RidgeRegression(l2=1e-9).fit(X, y, sample_weight=weights)
    # Prediction at 0 should be pinned near 0 by the heavy weights.
    assert model.predict(np.zeros((1, 1)))[0] == pytest.approx(0.0, abs=0.01)


def test_ridge_intercept_not_penalised(rng):
    X = rng.standard_normal((200, 2))
    y = np.full(200, 7.0)
    model = RidgeRegression(l2=1000.0).fit(X, y)
    assert model.intercept_ == pytest.approx(7.0, abs=0.1)


def test_ridge_validation(rng):
    X = rng.standard_normal((10, 2))
    with pytest.raises(DataError):
        RidgeRegression(l2=-0.1)
    with pytest.raises(DataError):
        RidgeRegression().fit(X, np.ones(5))


def test_clone_resets_fit(toy_classification):
    X, y = toy_classification
    model = LogisticRegression(l2=3.0).fit(X, y)
    fresh = model.clone()
    assert fresh.l2 == 3.0
    with pytest.raises(NotFittedError):
        fresh.predict_proba(X)
