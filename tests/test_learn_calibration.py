"""Unit tests for calibration tooling."""

import numpy as np
import pytest

from repro.data.synth.base import sigmoid
from repro.exceptions import DataError, NotFittedError
from repro.learn.calibration import (
    PlattScaler,
    expected_calibration_error,
    reliability_curve,
)


def test_perfectly_calibrated_scores(rng):
    probabilities = rng.random(20000)
    outcomes = (rng.random(20000) < probabilities).astype(float)
    curve = reliability_curve(outcomes, probabilities, n_bins=10)
    assert curve.expected_calibration_error < 0.02
    assert curve.maximum_calibration_error < 0.05


def test_overconfident_scores_flagged(rng):
    # True rate 0.5 everywhere; model claims 0.9.
    outcomes = (rng.random(5000) < 0.5).astype(float)
    probabilities = np.full(5000, 0.9)
    ece = expected_calibration_error(outcomes, probabilities)
    assert ece == pytest.approx(0.4, abs=0.05)


def test_reliability_bin_counts(rng):
    probabilities = np.array([0.05, 0.05, 0.95, 0.95])
    outcomes = np.array([0.0, 0.0, 1.0, 1.0])
    curve = reliability_curve(outcomes, probabilities, n_bins=10)
    assert curve.bin_counts.sum() == 4
    assert curve.bin_counts[0] == 2
    assert curve.bin_counts[-1] == 2


def test_reliability_validation():
    with pytest.raises(DataError):
        reliability_curve(np.array([1.0, 0.0]), np.array([0.5, 0.5]), n_bins=1)


def test_platt_fixes_miscalibrated_scores(rng):
    # Latent probability p; model reports logit/3 (too flat).
    logits = rng.normal(0.0, 2.0, 8000)
    outcomes = (rng.random(8000) < sigmoid(logits)).astype(float)
    distorted = np.asarray(sigmoid(logits / 3.0))
    before = expected_calibration_error(outcomes, distorted)
    scaler = PlattScaler().fit(distorted, outcomes)
    after = expected_calibration_error(outcomes, scaler.transform(distorted))
    assert after < before
    assert after < 0.03


def test_platt_identity_on_calibrated(rng):
    probabilities = rng.random(5000)
    outcomes = (rng.random(5000) < probabilities).astype(float)
    scaler = PlattScaler().fit(probabilities, outcomes)
    transformed = scaler.transform(np.array([0.2, 0.5, 0.8]))
    # Should stay close to the identity.
    np.testing.assert_allclose(transformed, [0.2, 0.5, 0.8], atol=0.08)


def test_platt_requires_fit():
    with pytest.raises(NotFittedError):
        PlattScaler().transform(np.array([0.5]))


def test_calibrated_classifier_both_methods(rng):
    """Both recalibration methods reduce a boosted model's ECE."""
    from repro.data.synth.base import bernoulli
    from repro.learn import GradientBoostingClassifier
    from repro.learn.calibration import CalibratedClassifier

    n = 6000
    X = rng.standard_normal((n, 3))
    p = np.asarray(sigmoid(1.5 * X[:, 0] - X[:, 1]))
    y = bernoulli(p, rng)
    train, cal, test = slice(0, 2000), slice(2000, 4000), slice(4000, n)
    model = GradientBoostingClassifier(
        n_stages=150, max_depth=3, learning_rate=0.3
    ).fit(X[train], y[train])
    raw_ece = expected_calibration_error(
        y[test], model.predict_proba(X[test])
    )
    for method in ("platt", "isotonic"):
        calibrated = CalibratedClassifier(model, method=method)
        calibrated.calibrate(X[cal], y[cal])
        ece = expected_calibration_error(
            y[test], calibrated.predict_proba(X[test])
        )
        assert ece <= raw_ece + 0.01, method
        decisions = calibrated.predict(X[test])
        assert set(np.unique(decisions)) <= {0.0, 1.0}


def test_calibrated_classifier_validation(rng):
    from repro.learn import LogisticRegression
    from repro.learn.calibration import CalibratedClassifier

    with pytest.raises(DataError):
        CalibratedClassifier(LogisticRegression(), method="magic")
    X = rng.standard_normal((20, 2))
    wrapper = CalibratedClassifier(
        LogisticRegression().fit(X, (X[:, 0] > 0).astype(float))
    )
    with pytest.raises(NotFittedError):
        wrapper.predict_proba(X)
