"""Unit tests for differentially private learning."""

import numpy as np
import pytest

from repro.confidentiality.accountant import PrivacyAccountant
from repro.confidentiality.dp_learn import (
    NoisyGradientLogisticRegression,
    OutputPerturbationLogisticRegression,
    clip_rows,
)
from repro.exceptions import DataError, PrivacyBudgetError
from repro.learn import LogisticRegression
from repro.learn.metrics import accuracy


def test_clip_rows_bounds_norms(rng):
    X = rng.standard_normal((100, 5)) * 10.0
    clipped = clip_rows(X, max_norm=1.0)
    norms = np.linalg.norm(clipped, axis=1)
    assert norms.max() <= 1.0 + 1e-9
    # Rows already inside the ball are untouched.
    small = np.array([[0.1, 0.1]])
    np.testing.assert_allclose(clip_rows(small), small)


def test_output_perturbation_learns_at_large_epsilon(toy_classification):
    X, y = toy_classification
    model = OutputPerturbationLogisticRegression(
        epsilon=50.0, l2=1e-3, seed=0
    ).fit(X, y)
    assert accuracy(y, model.predict(X)) > 0.75


def test_output_perturbation_noise_grows_as_epsilon_shrinks(toy_classification):
    X, y = toy_classification
    reference = LogisticRegression(l2=1e-3 * len(y)).fit(clip_rows(X), y)

    def coefficient_distance(epsilon):
        distances = []
        for seed in range(10):
            model = OutputPerturbationLogisticRegression(
                epsilon=epsilon, l2=1e-3, seed=seed
            ).fit(X, y)
            distances.append(np.linalg.norm(model.coef_ - reference.coef_))
        return np.mean(distances)

    assert coefficient_distance(0.1) > coefficient_distance(10.0)


def test_output_perturbation_charges_accountant(toy_classification):
    X, y = toy_classification
    accountant = PrivacyAccountant(1.0)
    OutputPerturbationLogisticRegression(
        epsilon=1.0, accountant=accountant
    ).fit(X, y)
    assert accountant.epsilon_spent == pytest.approx(1.0)
    with pytest.raises(PrivacyBudgetError):
        OutputPerturbationLogisticRegression(
            epsilon=1.0, accountant=accountant
        ).fit(X, y)


def test_output_perturbation_validation(toy_classification):
    X, y = toy_classification
    with pytest.raises(DataError):
        OutputPerturbationLogisticRegression(epsilon=0.0)
    with pytest.raises(DataError):
        OutputPerturbationLogisticRegression(epsilon=1.0, l2=0.0)
    with pytest.raises(DataError, match="weights"):
        OutputPerturbationLogisticRegression(epsilon=1.0).fit(
            X, y, sample_weight=np.ones(len(y))
        )


def test_noisy_gradient_learns_at_large_epsilon(toy_classification):
    X, y = toy_classification
    model = NoisyGradientLogisticRegression(
        epsilon=20.0, n_steps=40, seed=0
    ).fit(X, y)
    assert accuracy(y, model.predict(X)) > 0.75


def test_noisy_gradient_epsilon_utility_tradeoff(toy_classification):
    X, y = toy_classification

    def mean_accuracy(epsilon):
        scores = []
        for seed in range(5):
            model = NoisyGradientLogisticRegression(
                epsilon=epsilon, n_steps=30, seed=seed
            ).fit(X, y)
            scores.append(accuracy(y, model.predict(X)))
        return np.mean(scores)

    assert mean_accuracy(10.0) > mean_accuracy(0.05)


def test_noisy_gradient_charges_accountant(toy_classification):
    X, y = toy_classification
    accountant = PrivacyAccountant(5.0, delta_budget=1e-4)
    NoisyGradientLogisticRegression(
        epsilon=2.0, delta=1e-5, accountant=accountant, n_steps=5
    ).fit(X, y)
    assert accountant.epsilon_spent == pytest.approx(2.0)
    assert accountant.delta_spent == pytest.approx(1e-5)


def test_noisy_gradient_validation():
    with pytest.raises(DataError):
        NoisyGradientLogisticRegression(epsilon=-1.0)
    with pytest.raises(DataError):
        NoisyGradientLogisticRegression(epsilon=1.0, delta=2.0)
    with pytest.raises(DataError):
        NoisyGradientLogisticRegression(epsilon=1.0, n_steps=0)


def test_dp_models_deterministic_by_seed(toy_classification):
    X, y = toy_classification
    a = OutputPerturbationLogisticRegression(epsilon=1.0, seed=3).fit(X, y)
    b = OutputPerturbationLogisticRegression(epsilon=1.0, seed=3).fit(X, y)
    np.testing.assert_allclose(a.coef_, b.coef_)
