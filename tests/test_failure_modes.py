"""Failure-injection tests: the stack must fail loudly and precisely.

"Errors should never pass silently" — each test feeds a realistic
corruption (NaNs, empty groups, schema drift, degenerate labels,
poisoned inputs) into a component and asserts it raises the *right*
library exception rather than limping on or exploding uninformatively.
"""

import numpy as np
import pytest

from repro.data.schema import Schema, categorical, numeric
from repro.data.table import Table
from repro.exceptions import (
    AnonymityError,
    CausalError,
    DataError,
    FairnessError,
    NotFittedError,
    PrivacyBudgetError,
    ProvenanceError,
    ReproError,
    SchemaError,
)


def test_exception_hierarchy_is_catchable():
    """Every library error derives from ReproError."""
    for exc in (SchemaError, DataError, NotFittedError, FairnessError,
                PrivacyBudgetError, AnonymityError, CausalError,
                ProvenanceError):
        assert issubclass(exc, ReproError)


def test_nan_features_rejected_at_fit(toy_classification):
    from repro.learn import LogisticRegression

    X, y = toy_classification
    poisoned = X.copy()
    poisoned[3, 1] = np.nan
    with pytest.raises(DataError, match="NaN"):
        LogisticRegression().fit(poisoned, y)


def test_infinite_features_rejected(toy_classification):
    from repro.learn import DecisionTreeClassifier

    X, y = toy_classification
    poisoned = X.copy()
    poisoned[0, 0] = np.inf
    with pytest.raises(DataError):
        DecisionTreeClassifier().fit(poisoned, y)


def test_clean_stage_removes_nan_before_training(rng):
    """The pipeline's defence: CleanStage drops NaN rows so TrainStage
    never sees them."""
    from repro.data.synth import CreditScoringGenerator
    from repro.learn import LogisticRegression, TableClassifier
    from repro.pipeline import CleanStage, Pipeline, TrainStage

    table = CreditScoringGenerator().generate(400, rng)
    income = table["income"].copy()
    income[:10] = np.nan
    poisoned = table.with_column(table.schema["income"], income)
    result = Pipeline([
        CleanStage(), TrainStage(TableClassifier(LogisticRegression())),
    ]).run(poisoned, rng)
    assert result.table.n_rows == 390
    assert result.model is not None


def test_single_class_training_fails_informatively(rng):
    from repro.learn import GaussianNaiveBayes

    X = rng.standard_normal((30, 2))
    with pytest.raises(DataError):
        GaussianNaiveBayes().fit(X, np.zeros(30))


def test_schema_drift_between_fit_and_predict(credit_tables):
    from repro.exceptions import SchemaError
    from repro.learn import LogisticRegression, TableClassifier

    train, test = credit_tables
    model = TableClassifier(LogisticRegression()).fit(train)
    drifted = test.drop(["income"])
    with pytest.raises(SchemaError):
        model.predict_proba(drifted)


def test_fairness_audit_with_vanished_group(credit_tables):
    from repro.fairness import audit_decisions

    train, _ = credit_tables
    only_a = train.filter(train["group"] == "A")
    with pytest.raises(FairnessError, match="two groups"):
        audit_decisions(only_a["approved"], only_a["approved"],
                        only_a["group"])


def test_budget_exhaustion_mid_analysis(rng):
    """An analysis script that overruns its budget stops exactly at the
    boundary with the ledger intact."""
    from repro.confidentiality import PrivacyAccountant, dp_count

    accountant = PrivacyAccountant(1.0)
    completed = 0
    with pytest.raises(PrivacyBudgetError):
        for _ in range(10):
            dp_count(100, 0.3, accountant, rng)
            completed += 1
    assert completed == 3
    assert accountant.epsilon_spent == pytest.approx(0.9)


def test_anonymizer_impossible_k(small_table):
    from repro.confidentiality import MondrianAnonymizer

    with pytest.raises(AnonymityError):
        MondrianAnonymizer(k=10).anonymize(small_table)


def test_causal_estimation_without_controls(rng):
    from repro.accuracy.causal import inverse_probability_weighting

    X = rng.standard_normal((40, 2))
    with pytest.raises(CausalError):
        inverse_probability_weighting(X, np.ones(40), np.ones(40))


def test_provenance_foreign_artifact(small_table):
    from repro.pipeline import ProvenanceGraph
    from repro.pipeline.provenance import Artifact

    graph_a = ProvenanceGraph()
    graph_b = ProvenanceGraph()
    artifact = graph_a.add_table(small_table)
    with pytest.raises(ProvenanceError):
        graph_b.lineage(artifact)
    assert isinstance(artifact, Artifact)


def test_conformal_without_calibration(toy_classification):
    from repro.accuracy.conformal import SplitConformalClassifier
    from repro.learn import LogisticRegression

    X, y = toy_classification
    model = LogisticRegression().fit(X, y)
    with pytest.raises(NotFittedError):
        SplitConformalClassifier(model).coverage(X, y)


def test_empty_table_operations():
    table = Table(Schema([numeric("x"), categorical("c")]),
                  {"x": [], "c": []})
    assert table.n_rows == 0
    assert table.describe()["x"]["n"] == 0
    with pytest.raises(DataError):
        table.row(0)


def test_corrupted_csv_roles_rejected(tmp_path):
    from repro.data.io import read_csv

    path = tmp_path / "bad.csv"
    path.write_text("#repro-types:numeric\n#repro-roles:feature,target\na\n1\n")
    with pytest.raises(DataError, match="metadata"):
        read_csv(path)


def test_monitor_survives_constant_scores(rng):
    """A deployed model gone constant should alarm, not crash."""
    from repro.pipeline.monitor import FairnessDriftMonitor

    monitor = FairnessDriftMonitor(reference_scores=rng.random(1000))
    alarms = monitor.observe(np.full(200, 0.99))
    assert any(alarm.kind == "population_drift" for alarm in alarms)


def test_synthesizer_on_constant_column(rng):
    from repro.confidentiality.synthesis import MarginalSynthesizer

    table = Table.from_dict({
        "constant": np.ones(100),
        "varying": rng.standard_normal(100),
    })
    synthesizer = MarginalSynthesizer(epsilon=5.0, mode="independent")
    synthetic = synthesizer.fit(table, rng).sample(50, rng)
    np.testing.assert_allclose(synthetic["constant"], 1.0)


def test_process_log_with_empty_trace_is_skipped_in_counts():
    from repro.process import EventLog, Trace, directly_follows_counts

    log = EventLog([Trace("c1", ()), Trace("c2", ("a",))])
    counts = directly_follows_counts(log)
    assert sum(counts.values()) == 2  # START->a, a->END only


def test_group_threshold_optimizer_degenerate_scores(rng):
    """All-equal scores: thresholds exist, decisions are all-or-nothing."""
    from repro.fairness import GroupThresholdOptimizer

    scores = np.full(100, 0.5)
    y = (rng.random(100) < 0.5).astype(float)
    group = np.asarray(["A"] * 50 + ["B"] * 50, dtype=object)
    optimizer = GroupThresholdOptimizer().fit(scores, y, group)
    decisions = optimizer.predict(scores, group)
    assert set(np.unique(decisions)) <= {0.0, 1.0}
