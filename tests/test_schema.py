"""Unit tests for repro.data.schema."""

import pytest

from repro.data.schema import (
    ColumnRole,
    ColumnSpec,
    ColumnType,
    Schema,
    categorical,
    numeric,
)
from repro.exceptions import SchemaError


def make_schema():
    return Schema([
        numeric("a"),
        categorical("b"),
        categorical("s", role=ColumnRole.SENSITIVE),
        numeric("y", role=ColumnRole.TARGET),
        categorical("q", role=ColumnRole.QUASI_IDENTIFIER),
        categorical("pid", role=ColumnRole.IDENTIFIER),
        numeric("meta", role=ColumnRole.METADATA),
    ])


def test_duplicate_names_rejected():
    with pytest.raises(SchemaError, match="duplicate"):
        Schema([numeric("a"), categorical("a")])


def test_lookup_and_contains():
    schema = make_schema()
    assert "a" in schema
    assert "missing" not in schema
    assert schema["b"].ctype is ColumnType.CATEGORICAL
    with pytest.raises(SchemaError, match="no column"):
        schema["missing"]


def test_role_views():
    schema = make_schema()
    assert schema.feature_names == ["a", "b"]
    assert schema.sensitive_names == ["s"]
    assert schema.target_name == "y"
    assert schema.quasi_identifier_names == ["q"]
    assert schema.identifier_names == ["pid"]


def test_no_target_returns_none():
    schema = Schema([numeric("a")])
    assert schema.target_name is None


def test_multiple_targets_rejected():
    schema = Schema([
        numeric("y1", role=ColumnRole.TARGET),
        numeric("y2", role=ColumnRole.TARGET),
    ])
    with pytest.raises(SchemaError, match="multiple target"):
        schema.target_name


def test_select_preserves_order():
    schema = make_schema().select(["y", "a"])
    assert schema.names == ["y", "a"]


def test_drop():
    schema = make_schema().drop(["meta", "pid"])
    assert "meta" not in schema
    assert "pid" not in schema
    with pytest.raises(SchemaError, match="unknown"):
        make_schema().drop(["nope"])


def test_with_column_appends_and_replaces():
    schema = make_schema()
    extended = schema.with_column(numeric("new"))
    assert extended.names[-1] == "new"
    replaced = schema.with_column(categorical("a"))
    assert replaced["a"].ctype is ColumnType.CATEGORICAL
    assert len(replaced) == len(schema)


def test_with_role():
    schema = make_schema().with_role("a", ColumnRole.METADATA)
    assert "a" not in schema.feature_names
    assert schema["a"].role is ColumnRole.METADATA


def test_spec_with_role_is_copy():
    spec = numeric("x")
    other = spec.with_role(ColumnRole.TARGET)
    assert spec.role is ColumnRole.FEATURE
    assert other.role is ColumnRole.TARGET
    assert other.name == "x"


def test_shorthands():
    assert numeric("n").ctype is ColumnType.NUMERIC
    assert categorical("c").ctype is ColumnType.CATEGORICAL
