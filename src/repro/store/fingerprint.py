"""Canonical fingerprints: one hash for the planner, the store, and memos.

Every cached thing in this toolkit — a served DP answer, a memoised
bootstrap interval, a whole FACT report section — is keyed by a
**canonical fingerprint** of what produced it: the data content, the
parameters, and the code version.  Before this module existed the query
planner owned a private ``_fingerprint``; promoting it here is the API
redesign that lets the answer cache, the artifact store, and every
memoised stage agree on what "the same computation" means.

The canonicalisation rules (and why):

* floats go through ``repr`` — ``0.10`` and ``1e-1`` collide, as they
  should, and the shortest-round-trip repr is platform-stable;
* tuples and lists are interchangeable (JSON has only arrays);
* dict keys are sorted, so the digest is order-independent;
* NumPy scalars are canonicalised through their Python values and NumPy
  arrays through a dtype+shape+bytes digest — *content*, not identity;
* digests are truncated to 24 hex chars (96 bits): comfortably
  collision-free for cache keys while staying readable in logs.

:func:`fingerprint` is byte-for-byte compatible with the planner's
historical ``_fingerprint`` for every input the planner produces, so
cached serve answers survive the refactor — regression-tested in
``tests/test_store.py``.
"""

from __future__ import annotations

import functools
import hashlib
import json
import types

import numpy as np

#: Truncated digest length, in hex characters (96 bits).
DIGEST_CHARS = 24


def canonical(value: object) -> object:
    """The canonical (JSON-ready) form of ``value`` for fingerprinting.

    Not a serialisation format — information is deliberately collapsed
    (tuples become lists, NumPy scalars become Python scalars) because a
    fingerprint should identify *content*, not container types.
    """
    if isinstance(value, np.ndarray):
        dtype, data = _array_content(value)
        return {
            "__ndarray__": dtype,
            "shape": list(value.shape),
            "digest": hash_bytes(data),
        }
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (tuple, list)):
        return [canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): canonical(item) for key, item in value.items()}
    if isinstance(value, np.random.Generator):
        return canonical(value.bit_generator.state)
    return value


def fingerprint(**parts: object) -> str:
    """Stable content hash of the canonical ``parts``.

    The successor of ``repro.serve.planner._fingerprint`` — identical
    digests for every input the planner has ever hashed, now shared by
    the answer cache, the artifact store, and every memoised result.
    """
    digest = hashlib.sha256(
        json.dumps(canonical(dict(parts)), sort_keys=True).encode("utf-8")
    )
    return digest.hexdigest()[:DIGEST_CHARS]


def hash_bytes(data: bytes) -> str:
    """Truncated sha256 of raw bytes."""
    return hashlib.sha256(data).hexdigest()[:DIGEST_CHARS]


def _array_content(values: np.ndarray) -> tuple[str, bytes]:
    """Deterministic (dtype, bytes) for an array's *content*.

    ``tobytes()`` on an object array would hash pointers; tables store
    categoricals that way, so object arrays are rendered through a
    fixed-width unicode view first.
    """
    values = np.ascontiguousarray(values)
    if values.dtype == object:
        values = np.asarray(
            [str(item) for item in values.ravel()], dtype="U"
        )
    return str(values.dtype), values.tobytes()


def array_fingerprint(values: np.ndarray) -> str:
    """Content hash of one array (dtype + shape + bytes)."""
    values = np.asarray(values)
    return fingerprint(array=values)


def table_fingerprint(table) -> str:
    """Full-content hash of a :class:`~repro.data.table.Table`.

    Unlike :func:`repro.pipeline.provenance.fingerprint_table` (which
    samples rows so provenance stays cheap), this hashes **every byte**
    of every column — a cache replaying results for "the same table"
    must not collide on tables that differ outside a sample.
    """
    hasher = hashlib.sha256()
    hasher.update(repr([
        (spec.name, spec.ctype.value, spec.role.value)
        for spec in table.schema
    ]).encode())
    hasher.update(str(table.n_rows).encode())
    for name in table.column_names:
        dtype, data = _array_content(table.column(name))
        hasher.update(dtype.encode())
        hasher.update(data)
    return hasher.hexdigest()[:DIGEST_CHARS]


def dataset_fingerprint(dataset) -> str:
    """Content hash of a multi-table relational dataset.

    Composes the schema identity (table declarations, version, and the
    migration log — structural *history* is part of identity) with the
    full-content hash of every member table.  Duck-typed so the store
    stays import-free of :mod:`repro.relational`.
    """
    return fingerprint(
        schema=dataset.schema.identity(),
        tables={
            name: table_fingerprint(dataset.table(name))
            for name in dataset.schema.table_names
        },
    )


def code_fingerprint(fn) -> str:
    """Content hash of a callable's *code* (the "code version" key part).

    Hashing the compiled bytecode plus constants means editing a stage's
    implementation invalidates its cached results, while re-running the
    same code replays them — the heart of incremental re-audits.
    Builtins and callables without ``__code__`` fall back to their
    qualified name.
    """
    target = getattr(fn, "__func__", fn)
    code = getattr(target, "__code__", None)
    name = (
        f"{getattr(target, '__module__', '?')}."
        f"{getattr(target, '__qualname__', repr(target))}"
    )
    if code is None:
        return fingerprint(callable=name)
    return fingerprint(callable=name, code=_code_parts(code))


def _code_parts(code) -> dict:
    """Bytecode + primitive constants, recursing into nested functions."""
    consts = []
    nested = []
    for const in code.co_consts:
        if isinstance(const, (int, float, str, bytes, bool, type(None))):
            consts.append(const)
        elif isinstance(const, types.CodeType):
            nested.append(_code_parts(const))
    return {
        "bytecode": hash_bytes(code.co_code),
        "consts": canonical(consts),
        "nested": nested,
    }


def object_fingerprint(obj, _seen: set[int] | None = None) -> str:
    """Best-effort content hash of an arbitrary object.

    Used to key caches on models and encoders: two estimators with the
    same class and the same learned state (weights, thresholds, fitted
    statistics) fingerprint identically, regardless of object identity.
    Cycles are broken by id; unknown leaves fall back to ``repr``.
    """
    return fingerprint(object=_object_parts(obj, _seen or set()))


def _object_parts(obj, seen: set[int]) -> object:
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    if isinstance(obj, (float, np.generic, np.ndarray)):
        return canonical(obj)
    if isinstance(obj, np.random.Generator):
        return canonical(obj.bit_generator.state)
    if id(obj) in seen:
        return f"<cycle:{type(obj).__name__}>"
    seen = seen | {id(obj)}
    if isinstance(obj, (tuple, list)):
        return [_object_parts(item, seen) for item in obj]
    if isinstance(obj, dict):
        return {
            str(key): _object_parts(value, seen)
            for key, value in obj.items()
        }
    if isinstance(obj, (types.FunctionType, types.BuiltinFunctionType,
                        types.MethodType)):
        return code_fingerprint(obj)
    if isinstance(obj, functools.partial):
        return {
            "__partial__": code_fingerprint(obj.func),
            "args": [_object_parts(item, seen) for item in obj.args],
            "kwargs": {
                str(key): _object_parts(value, seen)
                for key, value in obj.keywords.items()
            },
        }
    content = getattr(obj, "__content_fingerprint__", None)
    if callable(content):
        # Objects that know their own content hash (Table, a relational
        # Dataset) speak for themselves — incidental instance state such
        # as lazy caches never reaches the fingerprint.
        return {"__content__": content()}
    state = getattr(obj, "__dict__", None)
    if state is not None:
        return {
            "__class__": f"{type(obj).__module__}.{type(obj).__qualname__}",
            **{
                str(key): _object_parts(value, seen)
                for key, value in state.items()
            },
        }
    slots = getattr(type(obj), "__slots__", None)
    if slots:
        return {
            "__class__": f"{type(obj).__module__}.{type(obj).__qualname__}",
            **{
                name: _object_parts(getattr(obj, name), seen)
                for name in slots if hasattr(obj, name)
            },
        }
    return repr(obj)
