"""``repro.store`` — content-addressed artifacts + incremental re-audits.

The paper's Accuracy and Transparency questions both demand results that
are *reproducible and attributable*: an auditor re-running a FACT audit
after a small change must get byte-identical answers for everything the
change did not touch, and a short proof (a fingerprint) that they did.
This package is that machinery:

* :mod:`repro.store.fingerprint` — **one** canonicalisation for the
  whole system.  The query planner, the answer cache, the provenance
  graph's consumers, and every memoised stage key on the same
  ``fingerprint(**parts)`` of (data content, parameters, code version).
* :class:`ArtifactStore` — a size-bounded LRU cache (in-memory or
  on-disk JSON) whose entries replay bit-identically or not at all;
  corruption is a counted miss, never a crash.
* :class:`Artifact` — the ``to_dict()/to_json()/fingerprint()`` mixin
  adopted by every report-like document (model card, datasheet,
  fairness report, FACT report, green scorecard).

Wired into the expensive pure stages (``FACTAuditor``, ``Pipeline.run``,
``bootstrap_ci``, ``ShapleyExplainer``, ``permutation_importance``,
conformal calibration) via a ``store=`` keyword.  ``store=None`` defers
to the ``REPRO_STORE`` environment variable — mirroring the
``REPRO_N_JOBS`` convention — which names a cache directory (on-disk),
``memory``/``:memory:`` (process-local), or is unset (no caching)::

    REPRO_STORE=/tmp/fact-cache python audit.py     # warm across runs
    REPRO_STORE=memory python audit.py              # warm within a run

or explicitly::

    store = ArtifactStore.on_disk("/tmp/fact-cache")
    report = FACTAuditor(store=store).audit(model, test, rng)
    report.fingerprint()        # attributable: one hash, same bytes
"""

from __future__ import annotations

import os

from repro.store.artifact import Artifact
from repro.store.backend import (
    DEFAULT_MAX_BYTES,
    JsonDirBackend,
    MemoryBackend,
)
from repro.store.fingerprint import (
    array_fingerprint,
    canonical,
    code_fingerprint,
    dataset_fingerprint,
    fingerprint,
    object_fingerprint,
    table_fingerprint,
)
from repro.store.store import (
    NULL_STORE,
    ArtifactStore,
    NullStore,
    Spilled,
    resolve_spilled,
    rng_state,
    set_rng_state,
)

#: Environment variable consulted when ``store=None`` (the sibling of
#: ``REPRO_N_JOBS``): a directory path, ``memory``/``:memory:``, or unset.
STORE_ENV = "REPRO_STORE"

#: Process-global stores per ``$REPRO_STORE`` target, so every call site
#: resolving the same target shares one cache (and its statistics).
_ENV_STORES: dict[str, ArtifactStore] = {}


def resolve_store(store: ArtifactStore | None) -> ArtifactStore | None:
    """An explicit store wins; ``None`` defers to ``$REPRO_STORE``.

    Returns ``None`` (caching off) when neither is given — the exact
    resolution ladder :func:`repro.parallel.resolve_n_jobs` uses for
    worker counts, applied to caching.
    """
    if store is not None:
        return store
    target = os.environ.get(STORE_ENV, "").strip()
    if not target:
        return None
    if target not in _ENV_STORES:
        if target in ("memory", ":memory:"):
            _ENV_STORES[target] = ArtifactStore(MemoryBackend(), name="env")
        else:
            _ENV_STORES[target] = ArtifactStore(
                JsonDirBackend(target), name="env"
            )
    return _ENV_STORES[target]


__all__ = [
    "Artifact",
    "ArtifactStore",
    "DEFAULT_MAX_BYTES",
    "JsonDirBackend",
    "MemoryBackend",
    "NULL_STORE",
    "NullStore",
    "STORE_ENV",
    "Spilled",
    "array_fingerprint",
    "canonical",
    "code_fingerprint",
    "dataset_fingerprint",
    "fingerprint",
    "object_fingerprint",
    "resolve_spilled",
    "resolve_store",
    "rng_state",
    "set_rng_state",
    "table_fingerprint",
]
