"""Storage backends for the artifact store: in-memory and on-disk JSON.

Backends speak one tiny protocol — ``get``/``put``/``delete``/``keys``/
``clear``/``__len__``/``total_bytes`` over *text* payloads — so the
:class:`~repro.store.store.ArtifactStore` owns all semantics (encoding,
corruption recovery, tag invalidation, telemetry) and backends own only
placement and eviction.

Both backends are size-bounded LRU: ``max_entries`` caps the key count
and ``max_bytes`` caps the summed payload size, and eviction only ever
costs a future recompute, never correctness — exactly the bargain the
serve layer's :class:`~repro.serve.cache.AnswerCache` already makes.
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import OrderedDict

from repro.exceptions import DataError

#: Default byte budget (64 MiB) — generous for report-sized artifacts,
#: small enough that a store never dominates a host's memory.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


class MemoryBackend:
    """Bounded in-process LRU of JSON payloads."""

    def __init__(self, max_entries: int = 4096,
                 max_bytes: int = DEFAULT_MAX_BYTES):
        if max_entries < 1:
            raise DataError("max_entries must be at least 1")
        if max_bytes < 1:
            raise DataError("max_bytes must be at least 1")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self.evictions = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, str] = OrderedDict()
        self._bytes = 0

    def get(self, key: str) -> str | None:
        with self._lock:
            text = self._entries.get(key)
            if text is not None:
                self._entries.move_to_end(key)
            return text

    def put(self, key: str, text: str) -> None:
        size = len(text.encode("utf-8"))
        if size > self.max_bytes:
            return  # larger than the whole budget: never cacheable
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old.encode("utf-8"))
            self._entries[key] = text
            self._bytes += size
            while (len(self._entries) > self.max_entries
                   or self._bytes > self.max_bytes):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted.encode("utf-8"))
                self.evictions += 1

    def delete(self, key: str) -> None:
        with self._lock:
            text = self._entries.pop(key, None)
            if text is not None:
                self._bytes -= len(text.encode("utf-8"))

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes


class JsonDirBackend:
    """One JSON file per artifact under ``path``; survives processes.

    Writes are atomic (temp file + ``os.replace``), so a crashed writer
    leaves either the old entry or the new one, never a torn file.  A
    *truncated or tampered* file can still appear out-of-band; the store
    treats any unreadable entry as a miss and deletes it — a cache must
    recompute on corruption, never crash (regression-tested).

    LRU order is tracked by file modification time: reads re-touch their
    entry, eviction removes the stalest files first.
    """

    def __init__(self, path: str, max_entries: int = 4096,
                 max_bytes: int = DEFAULT_MAX_BYTES):
        if max_entries < 1:
            raise DataError("max_entries must be at least 1")
        if max_bytes < 1:
            raise DataError("max_bytes must be at least 1")
        self.path = str(path)
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self.evictions = 0
        self._lock = threading.Lock()
        os.makedirs(self.path, exist_ok=True)

    def _file(self, key: str) -> str:
        safe = "".join(
            char if char.isalnum() or char in "-_" else "-" for char in key
        )
        return os.path.join(self.path, f"{safe}.json")

    def get(self, key: str) -> str | None:
        target = self._file(key)
        with self._lock:
            try:
                with open(target, "r", encoding="utf-8") as handle:
                    text = handle.read()
            except OSError:
                return None
            try:
                os.utime(target)  # refresh LRU recency
            except OSError:
                pass
            return text

    def put(self, key: str, text: str) -> None:
        if len(text.encode("utf-8")) > self.max_bytes:
            return
        with self._lock:
            descriptor, temp_path = tempfile.mkstemp(
                dir=self.path, suffix=".tmp"
            )
            try:
                with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                    handle.write(text)
                os.replace(temp_path, self._file(key))
            except OSError:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
            self._evict_locked()

    def _entries_by_age(self) -> list[tuple[float, str, int]]:
        entries = []
        for name in os.listdir(self.path):
            if not name.endswith(".json"):
                continue
            target = os.path.join(self.path, name)
            try:
                stat = os.stat(target)
            except OSError:
                continue
            entries.append((stat.st_mtime, target, stat.st_size))
        entries.sort()
        return entries

    def _evict_locked(self) -> None:
        entries = self._entries_by_age()
        total = sum(size for _, _, size in entries)
        index = 0
        while entries[index:] and (
            len(entries) - index > self.max_entries
            or total > self.max_bytes
        ):
            _, target, size = entries[index]
            try:
                os.unlink(target)
                self.evictions += 1
            except OSError:
                pass
            total -= size
            index += 1

    def delete(self, key: str) -> None:
        with self._lock:
            try:
                os.unlink(self._file(key))
            except OSError:
                pass

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(
                name[:-len(".json")] for name in os.listdir(self.path)
                if name.endswith(".json")
            )

    def clear(self) -> None:
        with self._lock:
            for name in os.listdir(self.path):
                if name.endswith(".json"):
                    try:
                        os.unlink(os.path.join(self.path, name))
                    except OSError:
                        pass

    def __len__(self) -> int:
        return len(self.keys())

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(size for _, _, size in self._entries_by_age())
