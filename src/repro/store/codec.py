"""Exact JSON round-tripping for the artifact store.

The store's contract is *bit-identical replay*: a cached value read back
from disk must equal what recomputing would have produced, down to the
last float.  Plain JSON cannot carry NumPy arrays, tuples, dataclasses,
or non-string dict keys, so :func:`encode` wraps those in tagged
envelopes and :func:`decode` restores them precisely:

* floats ride as native JSON numbers — Python's shortest-round-trip
  repr guarantees ``json.loads(json.dumps(x)) == x`` bit-for-bit;
* NumPy arrays and scalars carry dtype + shape + raw bytes (hex), so
  ``float64`` comes back ``float64``, not "a number";
* dataclasses carry their import path and field values, and are
  reconstructed through the class itself — restricted to classes
  defined inside :mod:`repro`, so a tampered cache file cannot name
  arbitrary constructors;
* tables carry their full schema (types, FACT roles, descriptions) and
  every column.

Anything the codec cannot represent raises
:class:`~repro.exceptions.DataError` at *encode* time — a cache that
silently stored an approximation would poison every replay.
"""

from __future__ import annotations

import dataclasses
import enum
import importlib
import json

import numpy as np

from repro.exceptions import DataError

#: Envelope tags understood by :func:`decode`.
_TAGS = (
    "__tuple__", "__ndarray__", "__strarray__", "__npscalar__",
    "__mapping__", "__dataclass__", "__enum__", "__table__", "__escaped__",
)


def encode(value: object) -> object:
    """``value`` as a JSON-serialisable structure (tagged where needed)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            # Tables store categoricals as object arrays of str; anything
            # else in an object array has no exact byte representation.
            items = value.tolist()
            if not all(isinstance(item, str) for item in items):
                raise DataError(
                    "cannot store non-string object-dtype arrays exactly"
                )
            return {"__strarray__": items}
        return {
            "__ndarray__": {
                "dtype": str(value.dtype),
                "shape": list(value.shape),
                "data": np.ascontiguousarray(value).tobytes().hex(),
            }
        }
    if isinstance(value, np.generic):
        return {
            "__npscalar__": {
                "dtype": str(value.dtype),
                "data": value.tobytes().hex(),
            }
        }
    if isinstance(value, tuple):
        return {"__tuple__": [encode(item) for item in value]}
    if isinstance(value, list):
        return [encode(item) for item in value]
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value):
            if any(key in _TAGS for key in value):
                return {"__escaped__": {
                    key: encode(item) for key, item in value.items()
                }}
            return {key: encode(item) for key, item in value.items()}
        return {"__mapping__": [
            [encode(key), encode(item)] for key, item in value.items()
        ]}
    if isinstance(value, enum.Enum):
        return {"__enum__": {
            "class": _class_path(type(value)),
            "value": encode(value.value),
        }}
    if _is_table(value):
        return {"__table__": {
            "schema": [
                [spec.name, spec.ctype.value, spec.role.value,
                 spec.description]
                for spec in value.schema
            ],
            "columns": {
                name: encode(value.column(name))
                for name in value.column_names
            },
        }}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {"__dataclass__": {
            "class": _class_path(type(value)),
            "fields": {
                field.name: encode(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }}
    raise DataError(
        f"cannot store a {type(value).__name__} exactly; "
        "store arrays, tables, primitives, or repro dataclasses"
    )


def decode(payload: object) -> object:
    """Invert :func:`encode` exactly."""
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return payload
    if isinstance(payload, list):
        return [decode(item) for item in payload]
    if isinstance(payload, dict):
        if "__tuple__" in payload:
            return tuple(decode(item) for item in payload["__tuple__"])
        if "__strarray__" in payload:
            return np.asarray(payload["__strarray__"], dtype=object)
        if "__ndarray__" in payload:
            spec = payload["__ndarray__"]
            flat = np.frombuffer(
                bytes.fromhex(spec["data"]), dtype=np.dtype(spec["dtype"])
            )
            return flat.reshape(spec["shape"]).copy()
        if "__npscalar__" in payload:
            spec = payload["__npscalar__"]
            return np.frombuffer(
                bytes.fromhex(spec["data"]), dtype=np.dtype(spec["dtype"])
            )[0]
        if "__mapping__" in payload:
            return {
                decode(key): decode(item)
                for key, item in payload["__mapping__"]
            }
        if "__enum__" in payload:
            spec = payload["__enum__"]
            return _resolve_class(spec["class"])(decode(spec["value"]))
        if "__table__" in payload:
            return _decode_table(payload["__table__"])
        if "__dataclass__" in payload:
            return _decode_dataclass(payload["__dataclass__"])
        if "__escaped__" in payload:
            return {
                key: decode(item)
                for key, item in payload["__escaped__"].items()
            }
        return {key: decode(item) for key, item in payload.items()}
    raise DataError(f"cannot decode a {type(payload).__name__}")


def dumps(value: object) -> str:
    """Encode ``value`` to its canonical JSON text."""
    return json.dumps(encode(value), sort_keys=True, separators=(",", ":"))


def loads(text: str) -> object:
    """Decode canonical JSON text back to the original value."""
    return decode(json.loads(text))


def _class_path(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def _resolve_class(path: str) -> type:
    module_name, _, qualname = path.partition(":")
    if module_name != "repro" and not module_name.startswith("repro."):
        raise DataError(
            f"refusing to reconstruct non-repro class {path!r} from a cache"
        )
    target = importlib.import_module(module_name)
    for part in qualname.split("."):
        target = getattr(target, part)
    if not isinstance(target, type):
        raise DataError(f"{path!r} is not a class")
    return target


def _decode_dataclass(spec: dict) -> object:
    cls = _resolve_class(spec["class"])
    if not dataclasses.is_dataclass(cls):
        raise DataError(f"{spec['class']!r} is not a dataclass")
    values = {name: decode(item) for name, item in spec["fields"].items()}
    init_names = {
        field.name for field in dataclasses.fields(cls) if field.init
    }
    instance = cls(**{
        name: value for name, value in values.items() if name in init_names
    })
    for name, value in values.items():
        if name not in init_names:
            object.__setattr__(instance, name, value)
    return instance


def _is_table(value: object) -> bool:
    from repro.data.table import Table

    return isinstance(value, Table)


def _decode_table(spec: dict):
    from repro.data.schema import (
        ColumnRole,
        ColumnSpec,
        ColumnType,
        Schema,
    )
    from repro.data.table import Table

    schema = Schema([
        ColumnSpec(name, ColumnType(ctype), ColumnRole(role), description)
        for name, ctype, role, description in spec["schema"]
    ])
    return Table(schema, {
        name: decode(column) for name, column in spec["columns"].items()
    })
