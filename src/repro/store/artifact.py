"""The unified Artifact API: to_dict / to_json / fingerprint.

Every document the toolkit hands an auditor — model cards, datasheets,
fairness reports, the FACT report, the green scorecard — is an
*artifact*: it must serialise losslessly enough to diff, and it must be
**attributable**, meaning two auditors holding "the same report" can
prove it by comparing one short hash.  This mixin gives all of them the
same three verbs:

* :meth:`to_dict` — JSON-ready scalars (classes with a curated
  ``to_dict`` of their own, like ``FACTReport``, keep it; the default
  walks the dataclass fields);
* :meth:`to_json` — canonical text: sorted keys, stable float reprs;
* :meth:`fingerprint` — the canonical hash of that text, minted by
  :mod:`repro.store.fingerprint` like every other fingerprint in the
  system.

Purely additive: adopting the mixin changes no constructor signatures
and no existing behaviour.
"""

from __future__ import annotations

import dataclasses
import enum
import json

import numpy as np

from repro.store.fingerprint import fingerprint


class Artifact:
    """Mixin for report-like dataclasses: serialise + fingerprint."""

    def to_dict(self) -> dict:
        """The artifact as JSON-ready plain data (default: field walk)."""
        if not dataclasses.is_dataclass(self):
            raise TypeError(
                f"{type(self).__name__} must be a dataclass (or override "
                "to_dict) to be an Artifact"
            )
        return {
            field.name: _plain(getattr(self, field.name))
            for field in dataclasses.fields(self)
        }

    def to_json(self, indent: int | None = None) -> str:
        """Canonical JSON text of :meth:`to_dict` (sorted keys)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def fingerprint(self) -> str:
        """Canonical content hash of this artifact.

        Two artifacts fingerprint identically iff their canonical JSON
        matches — the "same bytes" test the paper's reproducibility
        questions ask for, in one short string.
        """
        return fingerprint(
            artifact=f"{type(self).__module__}.{type(self).__qualname__}",
            payload=self.to_json(),
        )


def _plain(value: object) -> object:
    """Recursively reduce ``value`` to JSON-native data (readably)."""
    if isinstance(value, np.ndarray):
        return [_plain(item) for item in value.tolist()]
    if isinstance(value, np.generic):
        value = value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _plain(item) for key, item in value.items()}
    if isinstance(value, Artifact):
        return value.to_dict()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _plain(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    return repr(value)
