"""The content-addressed artifact store (tentpole of the caching layer).

An :class:`ArtifactStore` maps canonical fingerprints — of (data
content, parameters, code version), see
:mod:`repro.store.fingerprint` — to exactly-serialised artifacts.  Its
promise is the paper's reproducibility demand made mechanical: an
unchanged computation replays **the same bytes** it produced last time,
and a changed one recomputes, because its fingerprint changed.

Three behaviours make it safe to put in front of real results:

* **Exact replay** — values travel through :mod:`repro.store.codec`,
  which refuses to store anything it cannot restore bit-identically.
* **Corruption = miss** — an unreadable or undecodable entry (truncated
  file, tampered payload) is deleted, counted, and recomputed.  The
  store never crashes a pipeline and never replays garbage.
* **RNG continuity** — :meth:`memoize` keys on the generator state
  *before* the computation and, on a hit, restores the state recorded
  *after* it.  Downstream code that shares the generator then draws the
  same stream whether the stage was replayed or recomputed — this is
  what makes *incremental* re-audits bit-identical end to end.

Hit/miss/byte traffic is mirrored into :mod:`repro.obs` counters
(``store.hits``, ``store.misses``, ``store.puts``, ``store.corruptions``,
``store.bytes_written``, ``store.bytes_read``) whenever telemetry is
configured.
"""

from __future__ import annotations

import threading
from typing import Callable

import numpy as np

from repro import obs
from repro.exceptions import DataError
from repro.store import codec
from repro.store.backend import JsonDirBackend, MemoryBackend
from repro.store.fingerprint import fingerprint

_MISS = object()


class Spilled:
    """A by-reference handle to an artifact left in the store.

    Spill-enabled engine nodes (:mod:`repro.engine.sharding`) commit
    their value to the store and hand *this* downstream instead of the
    value itself — partial shard results persist as artifacts between
    plan levels, so the coordinator's peak memory is bounded by one
    shard plus the combined partials, and a warm re-run replays the
    handle without ever decoding the payload.  Consumers resolve it
    with :func:`resolve_spilled` (one partial at a time, in shard
    order).

    The content fingerprint hashes the key: the key *is* the value's
    content-derived identity (a cache digest over code, params, and
    input fingerprints), so downstream cache keys stay stable across
    cold and warm runs.
    """

    __slots__ = ("key",)

    def __init__(self, key: str):
        self.key = str(key)

    def __content_fingerprint__(self) -> str:
        return fingerprint(spilled=self.key)

    def __repr__(self) -> str:
        return f"Spilled({self.key!r})"


def resolve_spilled(value, store):
    """``value`` itself, or the artifact behind a :class:`Spilled` ref.

    A missing or corrupted spill entry raises :class:`DataError` — a
    spilled partial has no recompute path of its own (its producing
    node already reported a hit), so silently recomputing downstream
    would replay garbage.
    """
    if not isinstance(value, Spilled):
        return value
    resolved = store.get(value.key, _MISS)
    if resolved is _MISS:
        raise DataError(
            f"spilled artifact {value.key} has vanished from the store; "
            "clear the cache and re-run"
        )
    return resolved


def rng_state(rng: np.random.Generator) -> dict:
    """A copyable snapshot of ``rng``'s bit-generator state."""
    return rng.bit_generator.state


def set_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Restore a snapshot taken by :func:`rng_state`."""
    rng.bit_generator.state = state


class ArtifactStore:
    """Fingerprint-keyed cache of exactly-replayable artifacts.

    Parameters
    ----------
    backend:
        A :class:`~repro.store.backend.MemoryBackend` (default) or
        :class:`~repro.store.backend.JsonDirBackend`; anything speaking
        the same text get/put protocol works.
    name:
        Label attached to this store's telemetry counters, so several
        stores in one process stay distinguishable.
    """

    def __init__(self, backend=None, name: str = "store"):
        self.backend = backend if backend is not None else MemoryBackend()
        self.name = str(name)
        self._lock = threading.Lock()
        self._tags: dict[str, set[str]] = {}
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corruptions = 0
        self.bytes_written = 0
        self.bytes_read = 0

    @classmethod
    def in_memory(cls, max_entries: int = 4096, **kwargs) -> "ArtifactStore":
        """A process-local store (the fastest warm path)."""
        return cls(MemoryBackend(max_entries=max_entries), **kwargs)

    @classmethod
    def on_disk(cls, path: str, **kwargs) -> "ArtifactStore":
        """A store that survives the process (one JSON file per entry)."""
        return cls(JsonDirBackend(path), **kwargs)

    # -- raw get/put ---------------------------------------------------------

    def get(self, key: str, default=None):
        """The artifact stored under ``key``, or ``default``.

        Undecodable entries are deleted and reported as misses — a cache
        recomputes on corruption, it never crashes or replays garbage.
        """
        text = self.backend.get(key)
        if text is None:
            self._count("misses")
            return default
        try:
            envelope = codec.loads(text)
            value = envelope["value"]
        except (DataError, KeyError, TypeError, ValueError):
            self.backend.delete(key)
            self._count("corruptions")
            self._count("misses")
            return default
        self._count("hits")
        self._count_bytes("bytes_read", len(text))
        return value

    def put(self, key: str, value, tags: tuple[str, ...] = (),
            extra: dict | None = None) -> str:
        """Store ``value`` under ``key`` (encoded exactly); returns ``key``.

        ``tags`` name the inputs the artifact depends on (e.g. a table);
        :meth:`invalidate_tag` later drops every dependent entry at once.
        """
        envelope = {"key": key, "tags": list(tags), "value": value}
        if extra:
            envelope.update(extra)
        text = codec.dumps(envelope)
        self.backend.put(key, text)
        with self._lock:
            for tag in tags:
                self._tags.setdefault(str(tag), set()).add(key)
        self._count("puts")
        self._count_bytes("bytes_written", len(text))
        return key

    def __contains__(self, key: str) -> bool:
        return self.backend.get(key) is not None

    def probe(self, key: str) -> bool:
        """Counted presence check that never decodes the payload.

        The spill path's hit test: a present entry counts one hit, an
        absent one counts one miss — the same accounting a
        :meth:`memoize_with_status` lookup would produce — but the
        (possibly large) artifact stays on disk untouched.
        """
        if self.backend.get(key) is not None:
            self._count("hits")
            return True
        self._count("misses")
        return False

    def __len__(self) -> int:
        return len(self.backend)

    # -- memoization ---------------------------------------------------------

    def _replay(self, key: str):
        """``(value, rng_after)`` stored under ``key``, or ``_MISS``.

        Unlike :meth:`get`, a plain absence is *not* counted as a miss
        here — the memoize paths count exactly one hit or one miss per
        lookup themselves.  Corruption still deletes and counts.
        """
        text = self.backend.get(key)
        if text is None:
            return _MISS, None
        try:
            envelope = codec.loads(text)
            value = envelope["value"]
            state_after = envelope.get("rng_after")
        except (DataError, KeyError, TypeError, ValueError):
            self.backend.delete(key)
            self._count("corruptions")
            return _MISS, None
        self._count("hits")
        self._count_bytes("bytes_read", len(text))
        return value, state_after

    def memoize(self, parts: dict, compute: Callable[[], object],
                rng: np.random.Generator | None = None,
                tags: tuple[str, ...] = ()):
        """Replay ``compute()``'s result for ``parts``, or run and store it.

        ``parts`` is the canonical identity of the computation — data
        fingerprints, parameters, a code fingerprint.  When ``rng`` is
        given its *pre-call* state joins the key, and its *post-call*
        state is stored and restored on hits, so code after a replayed
        stage draws exactly the stream it would have after a recompute.
        """
        key_parts = dict(parts)
        if rng is not None:
            key_parts["rng"] = rng_state(rng)
        value, _ = self._memoize(fingerprint(**key_parts), compute,
                                 rng=rng, tags=tags)
        return value

    def memoize_with_status(self, compute: Callable[[], object], *,
                            key: str | Callable[[], str],
                            rng: np.random.Generator | None = None,
                            tags=()):
        """:meth:`memoize` on a precomputed digest; reports hit or miss.

        This is the engine's entry point: ``key`` is a full cache digest
        (e.g. :meth:`repro.engine.Node.key`) or a zero-argument callable
        producing one — lazy, so a caller holding a :class:`NullStore`
        never pays for fingerprinting.  ``tags`` may likewise be a
        zero-argument callable.  When ``rng`` is given, its pre-call
        state is folded into the digest and its post-call state restored
        on hits, exactly as in :meth:`memoize`.

        Returns ``(value, "hit" | "miss")``.
        """
        digest = key() if callable(key) else key
        if rng is not None:
            digest = fingerprint(key=digest, rng=rng_state(rng))
        return self._memoize(digest, compute, rng=rng, tags=tags)

    def _memoize(self, key: str, compute: Callable[[], object],
                 rng: np.random.Generator | None = None, tags=()):
        value, state_after = self._replay(key)
        if value is not _MISS:
            if rng is not None and state_after is not None:
                set_rng_state(rng, state_after)
            return value, "hit"
        self._count("misses")
        value = compute()
        extra = {}
        if rng is not None:
            extra["rng_after"] = rng_state(rng)
        resolved_tags = tuple(tags() if callable(tags) else tags)
        self.put(key, value, tags=resolved_tags, extra=extra)
        return value, "miss"

    # -- invalidation --------------------------------------------------------

    def invalidate(self, key: str) -> None:
        """Drop one entry (a later ask recomputes)."""
        self.backend.delete(key)

    def invalidate_tag(self, tag: str) -> int:
        """Drop every artifact put with ``tag``; returns how many.

        This is how re-registering a table kills its dependent results:
        artifacts stored with ``tags=(f"table:{name}",)`` all vanish in
        one call, the store-side analogue of the planner folding the
        table version into every query fingerprint.
        """
        with self._lock:
            keys = self._tags.pop(str(tag), set())
        for key in keys:
            self.backend.delete(key)
        return len(keys)

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self.backend.clear()
        with self._lock:
            self._tags.clear()

    # -- accounting ----------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses), 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        """Counters for telemetry and bench tables."""
        return {
            "entries": len(self.backend),
            "bytes": self.backend.total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": getattr(self.backend, "evictions", 0),
            "corruptions": self.corruptions,
            "hit_rate": self.hit_rate,
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
        }

    def _count(self, counter: str) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)
        telemetry = obs.get()
        if telemetry is not None:
            telemetry.metrics.counter(
                f"store.{counter}", store=self.name
            ).inc()

    def _count_bytes(self, counter: str, amount: int) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + int(amount))
        telemetry = obs.get()
        if telemetry is not None:
            telemetry.metrics.counter(
                f"store.{counter}", store=self.name
            ).inc(int(amount))


class NullStore:
    """A store-shaped no-op: never caches, never counts, never hashes.

    Passing ``NULL_STORE`` where an :class:`ArtifactStore` is expected
    collapses the caller's ``if store is None: ... else: ...`` branch
    pair into one code path: :meth:`memoize_with_status` just runs the
    computation and reports ``"uncacheable"``, and because the engine
    passes its key/tags as *callables*, a storeless run never evaluates
    a single fingerprint.
    """

    name = "null"

    def memoize_with_status(self, compute: Callable[[], object], *,
                            key=None, rng=None, tags=()):
        """Run ``compute()``; nothing is looked up or kept."""
        return compute(), "uncacheable"

    def memoize(self, parts, compute: Callable[[], object],
                rng=None, tags=()):
        """Run ``compute()``; nothing is looked up or kept."""
        return compute()

    def get(self, key: str, default=None):
        """Always ``default`` — the null store holds nothing."""
        return default

    def put(self, key: str, value, tags=(), extra=None) -> str:
        """Accept and discard ``value``; returns ``key`` unchanged."""
        return key

    def probe(self, key: str) -> bool:
        """Always ``False`` (nothing is ever stored, nothing counted)."""
        return False

    def invalidate(self, key: str) -> None:
        """No-op (nothing is ever stored)."""

    def invalidate_tag(self, tag: str) -> int:
        """No-op; always 0 entries dropped."""
        return 0

    def clear(self) -> None:
        """No-op (nothing is ever stored)."""

    def stats(self) -> dict[str, float]:
        """All-zero counters, for uniform reporting."""
        return {"entries": 0, "bytes": 0, "hits": 0, "misses": 0,
                "puts": 0, "evictions": 0, "corruptions": 0,
                "hit_rate": 0.0, "bytes_written": 0, "bytes_read": 0}

    def __contains__(self, key: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0


#: Shared no-op store; ``store if store is not None else NULL_STORE``
#: turns an optional-store API into a single unconditional code path.
NULL_STORE = NullStore()
