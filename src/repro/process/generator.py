"""Synthetic business-process generator with a known ground-truth model.

An order-to-cash process with an XOR choice (approve/reject), an
optional rework loop, and parallel-ish variation — enough structure to
make discovery non-trivial while the true model stays known, so
discovery and conformance can be scored against truth (the same design
principle as every other generator in this toolkit).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError
from repro.process.log import EventLog, Trace
from repro.process.model import END, START, ProcessModel


class OrderProcessGenerator:
    """Order-to-cash traces from a known directly-follows model.

    Parameters
    ----------
    rework_probability:
        Chance that a checked order loops back for correction.
    reject_probability:
        Chance of the XOR branch ending in rejection.
    noise:
        Fraction of traces corrupted by one random skip or swap —
        the "inaccuracies created by each step in the pipeline".
    """

    def __init__(self, rework_probability: float = 0.2,
                 reject_probability: float = 0.15,
                 noise: float = 0.0):
        for name, value in (("rework_probability", rework_probability),
                            ("reject_probability", reject_probability),
                            ("noise", noise)):
            if not 0.0 <= value <= 1.0:
                raise DataError(f"{name} must be in [0, 1]")
        self.rework_probability = rework_probability
        self.reject_probability = reject_probability
        self.noise = noise

    def true_model(self) -> ProcessModel:
        """The ground-truth directly-follows model (unit weights)."""
        edges = [
            (START, "receive_order"),
            ("receive_order", "check_order"),
            ("check_order", "correct_order"),     # rework loop
            ("correct_order", "check_order"),
            ("check_order", "approve_order"),
            ("check_order", "reject_order"),      # XOR
            ("reject_order", "notify_customer"),
            ("approve_order", "ship_goods"),
            ("ship_goods", "send_invoice"),
            ("send_invoice", "receive_payment"),
            ("receive_payment", END),
            ("notify_customer", END),
        ]
        return ProcessModel({edge: 1.0 for edge in edges})

    def _clean_trace(self, rng: np.random.Generator) -> tuple[str, ...]:
        activities = ["receive_order", "check_order"]
        while rng.random() < self.rework_probability:
            activities += ["correct_order", "check_order"]
        if rng.random() < self.reject_probability:
            activities += ["reject_order", "notify_customer"]
        else:
            activities += ["approve_order", "ship_goods",
                           "send_invoice", "receive_payment"]
        return tuple(activities)

    def _corrupt(self, activities: tuple[str, ...],
                 rng: np.random.Generator) -> tuple[str, ...]:
        mutated = list(activities)
        if len(mutated) >= 2 and rng.random() < 0.5:
            index = int(rng.integers(0, len(mutated) - 1))
            mutated[index], mutated[index + 1] = mutated[index + 1], mutated[index]
        else:
            index = int(rng.integers(0, len(mutated)))
            del mutated[index]
        return tuple(mutated) if mutated else activities

    def generate(self, n_cases: int, rng: np.random.Generator) -> EventLog:
        """Draw ``n_cases`` traces (a ``noise`` fraction corrupted)."""
        if n_cases <= 0:
            raise DataError("n_cases must be positive")
        traces = []
        for index in range(n_cases):
            activities = self._clean_trace(rng)
            if rng.random() < self.noise:
                activities = self._corrupt(activities, rng)
            start = float(rng.uniform(0.0, 10_000.0))
            timestamps = tuple(
                start + float(step) + float(rng.random())
                for step in range(len(activities))
            )
            traces.append(Trace(
                case_id=f"case_{index:06d}",
                activities=activities,
                timestamps=timestamps,
            ))
        return EventLog(traces)
