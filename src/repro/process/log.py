"""Event logs: the data substrate of process mining.

The paper's first author founded process mining (the editorial cites his
*Process Mining: Data Science in Action*), and the Responsible Data
Science initiative's flagship application was exactly this: event logs
are among the most privacy-sensitive datasets there are — a trace *is*
a person's history — while process models demand transparency.  This
subpackage makes the FACT machinery work on logs.

An :class:`EventLog` is a collection of traces; a trace is the ordered
activity sequence of one case, optionally time-stamped.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.data.table import Table
from repro.exceptions import DataError


@dataclass(frozen=True)
class Trace:
    """One case: its id and ordered activities (timestamps optional)."""

    case_id: str
    activities: tuple[str, ...]
    timestamps: tuple[float, ...] = ()

    def __post_init__(self):
        if self.timestamps and len(self.timestamps) != len(self.activities):
            raise DataError(
                f"trace {self.case_id!r}: {len(self.timestamps)} timestamps "
                f"for {len(self.activities)} activities"
            )

    def __len__(self) -> int:
        return len(self.activities)

    @property
    def variant(self) -> tuple[str, ...]:
        """The activity sequence — the trace's behavioural fingerprint."""
        return self.activities

    @property
    def duration(self) -> float:
        """End-to-end duration (0 when untimed)."""
        if len(self.timestamps) < 2:
            return 0.0
        return self.timestamps[-1] - self.timestamps[0]


@dataclass
class EventLog:
    """An ordered collection of traces."""

    traces: list[Trace] = field(default_factory=list)

    def __post_init__(self):
        ids = [trace.case_id for trace in self.traces]
        if len(set(ids)) != len(ids):
            raise DataError("duplicate case ids in event log")

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self):
        return iter(self.traces)

    @property
    def n_events(self) -> int:
        """Total number of events across all traces."""
        return sum(len(trace) for trace in self.traces)

    @property
    def activities(self) -> list[str]:
        """Sorted alphabet of activities."""
        alphabet: set[str] = set()
        for trace in self.traces:
            alphabet.update(trace.activities)
        return sorted(alphabet)

    def variants(self) -> Counter:
        """Distinct activity sequences with their frequencies."""
        return Counter(trace.variant for trace in self.traces)

    def variant_of(self, case_id: str) -> tuple[str, ...]:
        """The variant of one case."""
        for trace in self.traces:
            if trace.case_id == case_id:
                return trace.variant
        raise DataError(f"unknown case {case_id!r}")

    def filter_traces(self, predicate) -> "EventLog":
        """Sub-log of traces satisfying ``predicate``."""
        return EventLog([trace for trace in self.traces if predicate(trace)])

    def statistics(self) -> dict[str, float]:
        """Headline log statistics (for datasheets)."""
        if not self.traces:
            return {"n_cases": 0, "n_events": 0, "n_variants": 0,
                    "n_activities": 0, "mean_length": 0.0}
        lengths = [len(trace) for trace in self.traces]
        return {
            "n_cases": len(self.traces),
            "n_events": self.n_events,
            "n_variants": len(self.variants()),
            "n_activities": len(self.activities),
            "mean_length": float(np.mean(lengths)),
        }

    # -- interop ------------------------------------------------------------

    @classmethod
    def from_table(cls, table: Table, case_column: str,
                   activity_column: str,
                   timestamp_column: str | None = None) -> "EventLog":
        """Build a log from a flat event table (one row per event).

        Events are ordered by timestamp within a case when a timestamp
        column is given, else by row order.
        """
        cases: dict[str, list[tuple[float, str]]] = {}
        case_values = table.column(case_column)
        activity_values = table.column(activity_column)
        if timestamp_column is not None:
            time_values = table.column(timestamp_column)
        else:
            time_values = np.arange(table.n_rows, dtype=np.float64)
        for row in range(table.n_rows):
            cases.setdefault(str(case_values[row]), []).append(
                (float(time_values[row]), str(activity_values[row]))
            )
        traces = []
        for case_id in sorted(cases):
            events = sorted(cases[case_id], key=lambda pair: pair[0])
            traces.append(Trace(
                case_id=case_id,
                activities=tuple(activity for _, activity in events),
                timestamps=tuple(timestamp for timestamp, _ in events),
            ))
        return cls(traces)

    def to_table(self) -> Table:
        """Flatten back to one row per event."""
        case_ids: list[str] = []
        activities: list[str] = []
        timestamps: list[float] = []
        for trace in self.traces:
            times = trace.timestamps or tuple(range(len(trace)))
            for activity, timestamp in zip(trace.activities, times):
                case_ids.append(trace.case_id)
                activities.append(activity)
                timestamps.append(float(timestamp))
        from repro.data.schema import ColumnRole, Schema, categorical, numeric

        schema = Schema([
            categorical("case_id", role=ColumnRole.IDENTIFIER),
            categorical("activity"),
            numeric("timestamp"),
        ])
        return Table(schema, {
            "case_id": case_ids, "activity": activities,
            "timestamp": timestamps,
        })
