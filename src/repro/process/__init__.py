"""Process mining substrate: logs, discovery, conformance, privacy.

The Responsible Data Science initiative's home discipline (the editorial
cites van der Aalst's *Process Mining: Data Science in Action*); this
subpackage applies the FACT machinery to event logs — the datasets where
a single trace can identify a person.
"""

from repro.process.conformance import (
    ConformanceResult,
    evaluate,
    trace_fitness,
)
from repro.process.discovery import (
    directly_follows_counts,
    discover_dfg_model,
    discover_from_counts,
)
from repro.process.generator import OrderProcessGenerator
from repro.process.log import EventLog, Trace
from repro.process.model import END, START, ProcessModel
from repro.process.privacy import (
    VariantAnonymityResult,
    dp_directly_follows,
    dp_discover_model,
    k_anonymous_log,
    variant_uniqueness,
)

__all__ = [
    "END",
    "START",
    "ConformanceResult",
    "EventLog",
    "OrderProcessGenerator",
    "ProcessModel",
    "Trace",
    "VariantAnonymityResult",
    "directly_follows_counts",
    "discover_dfg_model",
    "discover_from_counts",
    "dp_directly_follows",
    "dp_discover_model",
    "evaluate",
    "k_anonymous_log",
    "trace_fitness",
    "variant_uniqueness",
]
