"""Conformance checking: how well does a model explain a log?

Two complementary numbers, as in mainstream process mining:

* **fitness** — fraction of directly-follows moves in the log that the
  model allows (replay-based); 1.0 means every observed behaviour is
  explained.
* **precision** — fraction of the model's allowed continuations that the
  log actually uses; low precision means the model overgeneralises
  ("flower models" explain everything and say nothing — a transparency
  failure, not a modelling success).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import DataError
from repro.process.discovery import directly_follows_counts
from repro.process.log import EventLog
from repro.process.model import END, START, ProcessModel


@dataclass(frozen=True)
class ConformanceResult:
    """Fitness/precision of one (log, model) pair."""

    fitness: float
    precision: float
    n_traces: int
    n_perfect_traces: int

    @property
    def f_score(self) -> float:
        """Harmonic mean of fitness and precision."""
        if self.fitness + self.precision == 0:
            return 0.0
        return (2 * self.fitness * self.precision
                / (self.fitness + self.precision))


def trace_fitness(trace_activities: tuple[str, ...],
                  model: ProcessModel) -> float:
    """Fraction of the trace's moves (incl. start/end) the model allows."""
    if not trace_activities:
        raise DataError("cannot replay an empty trace")
    path = (START, *trace_activities, END)
    moves = list(zip(path[:-1], path[1:]))
    allowed = sum(1 for source, target in moves if model.allows(source, target))
    return allowed / len(moves)


def evaluate(log: EventLog, model: ProcessModel) -> ConformanceResult:
    """Replay the whole log against the model."""
    if len(log) == 0:
        raise DataError("cannot evaluate on an empty log")
    fitnesses = []
    perfect = 0
    for trace in log:
        value = trace_fitness(trace.activities, model)
        fitnesses.append(value)
        if value == 1.0:
            perfect += 1
    fitness = sum(fitnesses) / len(fitnesses)

    # Precision: of the model's outgoing edges per activity, how many are
    # exercised by the log (frequency-weighted by the log's visits).
    log_edges = directly_follows_counts(log)
    used_sources = {source for (source, _) in log_edges}
    total_allowed = 0
    total_used = 0
    for source in used_sources:
        allowed = model.successors(source)
        if not allowed:
            continue
        used = {
            target for (edge_source, target) in log_edges
            if edge_source == source and model.allows(source, target)
        }
        total_allowed += len(allowed)
        total_used += len(used)
    precision = total_used / total_allowed if total_allowed else 0.0
    return ConformanceResult(
        fitness=float(fitness),
        precision=float(precision),
        n_traces=len(log),
        n_perfect_traces=perfect,
    )
