"""Process discovery: learning models from logs.

The directly-follows miner with frequency filtering — the workhorse
discovery algorithm underlying modern commercial process mining.  The
``noise_threshold`` drops infrequent edges, trading fitness against
precision exactly the way the responsible-mining experiments need to
measure.
"""

from __future__ import annotations

from collections import Counter

from repro.exceptions import DataError
from repro.process.log import EventLog
from repro.process.model import END, START, ProcessModel


def directly_follows_counts(log: EventLog) -> Counter:
    """Edge frequencies of the directly-follows relation (with START/END)."""
    counts: Counter = Counter()
    for trace in log:
        if len(trace) == 0:
            continue
        counts[(START, trace.activities[0])] += 1
        for source, target in zip(trace.activities[:-1], trace.activities[1:]):
            counts[(source, target)] += 1
        counts[(trace.activities[-1], END)] += 1
    return counts


def discover_dfg_model(log: EventLog,
                       noise_threshold: float = 0.0) -> ProcessModel:
    """Mine a directly-follows model, dropping rare edges.

    ``noise_threshold`` is relative: an edge survives when its frequency
    is at least ``noise_threshold`` times the strongest outgoing edge of
    the same source activity.  Start/end edges are filtered the same way
    so noise traces cannot invent entry/exit points.
    """
    if len(log) == 0:
        raise DataError("cannot discover a model from an empty log")
    if not 0.0 <= noise_threshold <= 1.0:
        raise DataError("noise_threshold must be in [0, 1]")
    counts = directly_follows_counts(log)
    strongest: dict[str, float] = {}
    for (source, _), weight in counts.items():
        strongest[source] = max(strongest.get(source, 0.0), float(weight))
    edges = {
        edge: float(weight) for edge, weight in counts.items()
        if weight >= noise_threshold * strongest[edge[0]]
    }
    model = ProcessModel(edges)
    if not model.start_activities or not model.end_activities:
        raise DataError(
            "filtering removed all start or end edges; lower the threshold"
        )
    return model


def discover_from_counts(counts: dict[tuple[str, str], float],
                         minimum_weight: float = 0.0) -> ProcessModel:
    """Build a model from (possibly noisy) edge counts.

    Used by the confidentiality pillar: differentially private edge
    counts go in, a releasable model comes out.  Edges at or below
    ``minimum_weight`` are dropped (DP noise makes tiny counts
    meaningless, and negative ones impossible to interpret).
    """
    edges = {
        edge: float(weight) for edge, weight in counts.items()
        if weight > minimum_weight
    }
    if not edges:
        raise DataError("no edges above the minimum weight")
    return ProcessModel(edges)
