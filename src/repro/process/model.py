"""Directly-follows process models.

The model class used throughout the process subpackage: a weighted
directly-follows graph (DFG) with explicit start/end activities.  Simple
enough to read as a picture, expressive enough to replay traces against
— which is what the transparency pillar needs from a process model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.exceptions import DataError

START = "__start__"
END = "__end__"


@dataclass
class ProcessModel:
    """A directly-follows model: edges with frequencies, start/end sets."""

    edges: dict[tuple[str, str], float] = field(default_factory=dict)

    def __post_init__(self):
        for (source, target), weight in self.edges.items():
            if weight < 0:
                raise DataError(f"negative edge weight on {source}->{target}")

    # -- structure ------------------------------------------------------------

    @property
    def activities(self) -> list[str]:
        """Sorted real activities (start/end markers excluded)."""
        names: set[str] = set()
        for source, target in self.edges:
            names.update((source, target))
        return sorted(names - {START, END})

    @property
    def start_activities(self) -> set[str]:
        """Activities that can begin a case."""
        return {
            target for (source, target) in self.edges if source == START
        }

    @property
    def end_activities(self) -> set[str]:
        """Activities that can end a case."""
        return {
            source for (source, target) in self.edges if target == END
        }

    def successors(self, activity: str) -> set[str]:
        """Activities allowed directly after ``activity``."""
        return {
            target for (source, target) in self.edges if source == activity
        }

    def allows(self, source: str, target: str) -> bool:
        """Is the direct succession source→target in the model?"""
        return (source, target) in self.edges

    def frequency(self, source: str, target: str) -> float:
        """Observed/assigned weight of one edge (0 if absent)."""
        return self.edges.get((source, target), 0.0)

    @property
    def n_edges(self) -> int:
        """Edge count, including start/end edges."""
        return len(self.edges)

    # -- behaviour -------------------------------------------------------------

    def accepts(self, activities: tuple[str, ...]) -> bool:
        """Can the trace be replayed start-to-end without violations?"""
        if not activities:
            return False
        path = (START, *activities, END)
        return all(
            self.allows(source, target)
            for source, target in zip(path[:-1], path[1:])
        )

    def simulate(self, rng: np.random.Generator,
                 max_length: int = 100) -> tuple[str, ...]:
        """Random walk from START to END, weighted by edge frequency."""
        current = START
        produced: list[str] = []
        for _ in range(max_length):
            options = [
                (target, weight) for (source, target), weight in self.edges.items()
                if source == current and weight > 0
            ]
            if not options:
                break
            targets, weights = zip(*options)
            probabilities = np.asarray(weights, dtype=np.float64)
            probabilities /= probabilities.sum()
            current = targets[rng.choice(len(targets), p=probabilities)]
            if current == END:
                return tuple(produced)
            produced.append(current)
        raise DataError("simulation did not reach END; model may be malformed")

    # -- rendering ---------------------------------------------------------------

    def to_networkx(self) -> nx.DiGraph:
        """The DFG as a networkx digraph (weights on edges)."""
        graph = nx.DiGraph()
        for (source, target), weight in self.edges.items():
            graph.add_edge(source, target, weight=weight)
        return graph

    def render(self, top: int | None = None) -> str:
        """The model as readable ``source -> target (weight)`` lines."""
        ordered = sorted(
            self.edges.items(), key=lambda item: -item[1]
        )
        if top is not None:
            ordered = ordered[:top]
        lines = [f"process model: {len(self.activities)} activities, "
                 f"{self.n_edges} edges"]
        for (source, target), weight in ordered:
            pretty_source = "START" if source == START else source
            pretty_target = "END" if target == END else target
            lines.append(f"  {pretty_source} -> {pretty_target}  ({weight:g})")
        return "\n".join(lines)
