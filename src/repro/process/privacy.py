"""Responsible process mining: confidentiality for event logs (Q3).

A trace is a person's history, so releasing logs or models mined from
them is exactly the "data science pipeline" risk the paper describes.
Two defences, matching the two release shapes:

* **DP model release** — add Laplace noise to the directly-follows edge
  counts (sensitivity: one case contributes at most ``max_trace_length + 1``
  edges, so counts are released at ε scaled accordingly), then mine the
  model from the noisy counts.  The *model* is safe to publish; the log
  never leaves.
* **k-anonymous log release** — publish only traces whose *variant*
  occurs at least k times (variant suppression) with pseudonymised case
  ids; a unique variant is as identifying as a fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.confidentiality.accountant import PrivacyAccountant
from repro.confidentiality.pseudonym import Pseudonymizer
from repro.exceptions import DataError
from repro.process.discovery import directly_follows_counts
from repro.process.log import EventLog, Trace
from repro.process.model import END, START, ProcessModel


def dp_directly_follows(log: EventLog, epsilon: float,
                        accountant: PrivacyAccountant,
                        rng: np.random.Generator,
                        max_trace_length: int | None = None,
                        ) -> dict[tuple[str, str], float]:
    """ε-DP release of the log's directly-follows edge counts.

    One case of length L contributes L+1 directed edges, so the L1
    sensitivity of the count vector is ``max_trace_length + 1``.  Traces
    longer than ``max_trace_length`` are truncated before counting (the
    standard bounded-contribution trick); the default bound is the log's
    own 95th-percentile length.
    """
    if len(log) == 0:
        raise DataError("cannot release counts of an empty log")
    lengths = [len(trace) for trace in log]
    if max_trace_length is None:
        max_trace_length = int(np.percentile(lengths, 95))
    max_trace_length = max(1, max_trace_length)
    bounded = EventLog([
        Trace(trace.case_id, trace.activities[:max_trace_length])
        for trace in log
    ])
    counts = directly_follows_counts(bounded)
    sensitivity = float(max_trace_length + 1)
    accountant.spend(epsilon, label="dp_directly_follows")
    scale = sensitivity / epsilon
    # Release the FULL candidate edge set (alphabet assumed public), not
    # just the observed edges — otherwise the support of the release
    # itself leaks which successions occurred.
    alphabet = log.activities
    candidates = [(START, activity) for activity in alphabet]
    candidates += [(activity, END) for activity in alphabet]
    candidates += [
        (source, target) for source in alphabet for target in alphabet
    ]
    return {
        edge: float(counts.get(edge, 0)) + float(rng.laplace(0.0, scale))
        for edge in candidates
    }


def dp_discover_model(log: EventLog, epsilon: float,
                      accountant: PrivacyAccountant,
                      rng: np.random.Generator,
                      minimum_weight: float | None = None,
                      max_trace_length: int | None = None) -> ProcessModel:
    """Mine a releasable process model under an ε budget.

    Noisy counts at or below ``minimum_weight`` are dropped; the default
    threshold is two noise standard deviations, which keeps each
    never-observed candidate edge out of the published model with ~97%
    probability while letting genuinely frequent edges through once the
    budget shrinks the noise below their counts.
    """
    noisy = dp_directly_follows(
        log, epsilon, accountant, rng, max_trace_length
    )
    lengths = [len(trace) for trace in log]
    bound = max_trace_length or max(1, int(np.percentile(lengths, 95)))
    if minimum_weight is None:
        noise_std = np.sqrt(2.0) * (bound + 1) / epsilon
        minimum_weight = 2.0 * noise_std
    edges = {
        edge: weight for edge, weight in noisy.items()
        if weight > minimum_weight
    }
    if not edges:
        raise DataError(
            "all edges fell below the noise floor; raise epsilon"
        )
    return ProcessModel(edges)


@dataclass(frozen=True)
class VariantAnonymityResult:
    """Outcome of k-anonymous variant suppression."""

    k: int
    n_original_traces: int
    n_released_traces: int
    n_suppressed_variants: int

    @property
    def suppression_rate(self) -> float:
        """Fraction of traces that could not be released."""
        if self.n_original_traces == 0:
            return 0.0
        return 1.0 - self.n_released_traces / self.n_original_traces


def k_anonymous_log(log: EventLog, k: int,
                    pseudonymizer: Pseudonymizer | None = None,
                    ) -> tuple[EventLog, VariantAnonymityResult]:
    """Release only traces whose variant occurs at least ``k`` times.

    Case ids are pseudonymised in the release; a trace with a unique
    variant is withheld entirely, because no renaming makes a unique
    history non-identifying.
    """
    if k < 1:
        raise DataError("k must be >= 1")
    worker = pseudonymizer or Pseudonymizer()
    frequencies = log.variants()
    released = []
    for trace in log:
        if frequencies[trace.variant] >= k:
            released.append(Trace(
                case_id=worker.pseudonym(trace.case_id),
                activities=trace.activities,
                timestamps=trace.timestamps,
            ))
    suppressed = sum(
        1 for variant, count in frequencies.items() if count < k
    )
    result = VariantAnonymityResult(
        k=k,
        n_original_traces=len(log),
        n_released_traces=len(released),
        n_suppressed_variants=suppressed,
    )
    return EventLog(released), result


def variant_uniqueness(log: EventLog) -> float:
    """Fraction of cases whose variant is unique — each one
    re-identifiable from its history alone."""
    if len(log) == 0:
        return 0.0
    frequencies = log.variants()
    unique_cases = sum(
        1 for trace in log if frequencies[trace.variant] == 1
    )
    return unique_cases / len(log)
