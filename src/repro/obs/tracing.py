"""Tracing: nested spans over a run of the FACT pipeline.

A :class:`Span` is one named, timed unit of work with attributes and a
parent; a :class:`Tracer` hands them out, keeps the open-span stack, and
remembers every finished span for export.  Usable three ways::

    with tracer.span("stage:train", n_rows=100) as span:
        span.set_attribute("converged", True)

    span = tracer.start_span("manual"); ...; tracer.end_span(span)

    @tracer.trace("hot_path")
    def hot_path(...): ...
"""

from __future__ import annotations

import functools
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.exceptions import DataError
from repro.obs.clock import Clock, TickClock

#: Attribute values stored verbatim; everything else is ``repr``-ed.
_PLAIN_TYPES = (bool, int, float, str, type(None))


def safe_attribute(value: object) -> object:
    """A JSON-serialisable, *deterministic* rendering of an attribute.

    Plain scalars pass through; containers are ``repr``-ed; anything
    else becomes its type name — the default ``repr`` of arbitrary
    objects embeds a memory address, which would make otherwise
    byte-reproducible telemetry differ between runs.
    """
    if isinstance(value, _PLAIN_TYPES):
        return value
    if isinstance(value, (list, tuple, dict, set, frozenset, bytes)):
        return repr(value)
    return f"<{type(value).__qualname__}>"


@dataclass
class Span:
    """One named, timed, attributed unit of work."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attributes: dict[str, object] = field(default_factory=dict)

    def set_attribute(self, key: str, value: object) -> "Span":
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = safe_attribute(value)
        return self

    @property
    def finished(self) -> bool:
        """Has :meth:`Tracer.end_span` run for this span?"""
        return self.end is not None

    @property
    def duration(self) -> float:
        """``end - start`` (raises if the span is still open)."""
        if self.end is None:
            raise DataError(f"span {self.name!r} is still open")
        return self.end - self.start

    def to_dict(self) -> dict[str, object]:
        """JSON-ready record (``record="span"``, sortable on ``t``)."""
        return {
            "record": "span",
            "t": self.start,
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": None if self.end is None else self.duration,
            "attributes": dict(self.attributes),
        }


class Tracer:
    """Produces nested spans, timed by an injectable clock."""

    def __init__(self, clock: Clock | None = None):
        self.clock = clock if clock is not None else TickClock()
        self._spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1
        self._id_lock = threading.Lock()

    def _allocate_id(self) -> int:
        # record_span is documented safe for concurrent callers; span
        # ids must stay unique under that contract.
        with self._id_lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    # -- span lifecycle -----------------------------------------------------

    def start_span(self, name: str, **attributes: object) -> Span:
        """Open a span as a child of the innermost open span."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            name=name,
            span_id=self._allocate_id(),
            parent_id=parent,
            start=self.clock.now(),
            attributes={
                key: safe_attribute(value)
                for key, value in attributes.items()
            },
        )
        self._spans.append(span)
        self._stack.append(span)
        return span

    def end_span(self, span: Span | None = None) -> Span:
        """Close ``span`` (default: the innermost), and any open children."""
        if not self._stack:
            raise DataError("no open span to end")
        target = span if span is not None else self._stack[-1]
        if target not in self._stack:
            raise DataError(f"span {target.name!r} is not open")
        while self._stack:
            closing = self._stack.pop()
            closing.end = self.clock.now()
            if closing is target:
                break
        return target

    @contextmanager
    def span(self, name: str, **attributes: object):
        """Context manager: open on entry, close on exit (even on error)."""
        span = self.start_span(name, **attributes)
        try:
            yield span
        except BaseException as error:
            span.set_attribute("error", type(error).__name__)
            raise
        finally:
            if not span.finished:
                self.end_span(span)

    def record_span(self, name: str, start: float, end: float,
                    parent_id: int | None = None,
                    **attributes: object) -> Span:
        """Append an already-finished span without touching the stack.

        The open-span stack assumes single-threaded nesting; concurrent
        callers (e.g. the :mod:`repro.serve` worker pool) instead time
        the work themselves and record the finished span afterwards, so
        interleaved queries can never close each other's spans.
        """
        if end < start:
            raise DataError(
                f"span {name!r} ends before it starts ({end} < {start})"
            )
        span = Span(
            name=name,
            span_id=self._allocate_id(),
            parent_id=parent_id,
            start=float(start),
            end=float(end),
            attributes={
                key: safe_attribute(value)
                for key, value in attributes.items()
            },
        )
        self._spans.append(span)
        return span

    def trace(self, name: str | None = None, **attributes: object):
        """Decorator: run the function inside a span."""
        def decorator(fn):
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name, **attributes):
                    return fn(*args, **kwargs)

            return wrapper

        return decorator

    # -- introspection ------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Every span started so far, in start order."""
        return list(self._spans)

    @property
    def active_span(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def root_spans(self) -> list[Span]:
        """Spans with no parent."""
        return [span for span in self._spans if span.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        """Direct children of ``span``, in start order."""
        return [s for s in self._spans if s.parent_id == span.span_id]

    def to_dicts(self) -> list[dict[str, object]]:
        """All spans as JSON-ready records."""
        return [span.to_dict() for span in self._spans]
