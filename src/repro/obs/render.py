"""Console rendering for exported telemetry.

Turns the flat JSONL records back into the two views a human wants:
the span tree (where did the time go?) and the metrics table (how often,
how much?).  Powers ``python -m repro telemetry run.jsonl``.
"""

from __future__ import annotations


def _format_number(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    if isinstance(value, (int, float)):
        return f"{value:g}"
    return str(value)


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{key}={value}" for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def _format_attributes(attributes: dict) -> str:
    return " ".join(
        f"{key}={_format_number(value)}"
        for key, value in attributes.items()
    )


def render_span_tree(records: list[dict]) -> str:
    """The run's spans as an indented tree with durations."""
    spans = [r for r in records if r.get("record") == "span"]
    if not spans:
        return "span tree: (no spans)"
    spans = sorted(spans, key=lambda s: s.get("start") or 0.0)
    by_parent: dict[object, list[dict]] = {}
    ids = {span["span_id"] for span in spans}
    for span in spans:
        parent = span.get("parent_id")
        if parent not in ids:
            parent = None  # orphaned span renders as a root
        by_parent.setdefault(parent, []).append(span)

    lines = ["span tree:"]

    def walk(parent, depth):
        for span in by_parent.get(parent, ()):
            duration = span.get("duration")
            timing = (f"[{_format_number(duration)}]"
                      if duration is not None else "[open]")
            attrs = _format_attributes(span.get("attributes") or {})
            lines.append(
                "  " * (depth + 1) + f"{span['name']} {timing}"
                + (f"  {attrs}" if attrs else "")
            )
            walk(span["span_id"], depth + 1)

    walk(None, 0)
    return "\n".join(lines)


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths))
              for row in rows]
    return lines


def render_metrics_table(records: list[dict]) -> str:
    """Counters, gauges, and histograms as fixed-width tables."""
    metrics = [r for r in records if r.get("record") == "metric"]
    if not metrics:
        return "metrics: (none)"
    lines = ["metrics:"]
    counters = [m for m in metrics if m.get("kind") == "counter"]
    gauges = [m for m in metrics if m.get("kind") == "gauge"]
    histograms = [m for m in metrics if m.get("kind") == "histogram"]

    if counters:
        lines.append("")
        lines += _table(
            ["counter", "value"],
            [[m["name"] + _format_labels(m.get("labels") or {}),
              _format_number(m.get("value"))] for m in counters],
        )
    if gauges:
        lines.append("")
        lines += _table(
            ["gauge", "value", "samples"],
            [[m["name"] + _format_labels(m.get("labels") or {}),
              _format_number(m.get("value")),
              _format_number(m.get("n_samples"))] for m in gauges],
        )
    if histograms:
        lines.append("")
        lines += _table(
            ["histogram", "count", "mean", "p50", "p95", "max"],
            [[m["name"] + _format_labels(m.get("labels") or {}),
              _format_number(m.get("count")),
              _format_number(
                  m["sum"] / m["count"] if m.get("count") else None
              ),
              _format_number(m.get("p50")),
              _format_number(m.get("p95")),
              _format_number(m.get("max"))] for m in histograms],
        )
    return "\n".join(lines)


def render_cache_summary(records: list[dict]) -> str:
    """Cache outcomes of engine-executed spans, per span name.

    Engine node spans (pipeline stages, audit pillar sections) carry a
    ``cache="hit"|"miss"|"uncacheable"`` attribute; this table answers
    "what replayed and what recomputed?" at a glance.  Returns an empty
    string when no span carries the attribute, so callers can skip the
    section entirely on pre-engine telemetry files.
    """
    outcomes: dict[str, dict[str, int]] = {}
    order: list[str] = []
    for record in records:
        if record.get("record") != "span":
            continue
        status = (record.get("attributes") or {}).get("cache")
        if status is None:
            continue
        name = record["name"]
        if name not in outcomes:
            outcomes[name] = {"hit": 0, "miss": 0, "uncacheable": 0}
            order.append(name)
        outcomes[name][str(status)] = outcomes[name].get(str(status), 0) + 1
    if not outcomes:
        return ""
    lines = ["cache outcomes:"]
    lines += _table(
        ["span", "hit", "miss", "uncacheable"],
        [[name,
          _format_number(outcomes[name].get("hit", 0)),
          _format_number(outcomes[name].get("miss", 0)),
          _format_number(outcomes[name].get("uncacheable", 0))]
         for name in order],
    )
    return "\n".join(lines)


def render_audit_tail(records: list[dict], last: int = 10) -> str:
    """The final ``last`` audit events from a telemetry file."""
    events = [r for r in records if r.get("record") == "audit"]
    if not events:
        return "audit trail: (none)"
    events = sorted(events, key=lambda e: e.get("sequence", 0))
    lines = [f"audit trail: {len(events)} events"
             + (f" (last {last})" if len(events) > last else "")]
    for event in events[-last:]:
        detail = " ".join(
            f"{key}={value}"
            for key, value in (event.get("detail") or {}).items()
        )
        lines.append(
            f"  [{event.get('sequence', 0):04d}] {event.get('actor')}: "
            f"{event.get('action')}" + (f" ({detail})" if detail else "")
        )
    return "\n".join(lines)
