"""Metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is the single place a run's numbers live.
Metrics are identified by name plus a (possibly empty) label set, so
``registry.counter("monitor.alarms", kind="population_drift")`` and
``...(kind="fairness_drift")`` are distinct time series, the way every
production metrics system (Prometheus, statsd, OpenTelemetry) models it.

Histograms are fixed-bucket: observations land in predeclared buckets,
and quantiles (p50/p95/…) are read off the bucket upper bounds — O(1)
memory no matter how many observations arrive.  ``min``/``max``/``sum``
are tracked exactly.
"""

from __future__ import annotations

import bisect
from typing import Iterable

from repro.exceptions import DataError
from repro.obs.clock import Clock

#: Default histogram buckets (upper bounds): log-ish spacing that covers
#: sub-millisecond wall-clock durations and small tick counts alike.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)


def _labels_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, str] | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise DataError("counters only go up; use a gauge")
        self.value += float(amount)

    def to_dict(self) -> dict[str, object]:
        return {
            "record": "metric", "kind": self.kind, "name": self.name,
            "labels": dict(self.labels), "value": self.value,
        }


class Gauge:
    """A value that can go anywhere, with a sample history.

    Every :meth:`set` appends a ``(t, value)`` sample (``t`` from the
    registry's clock), so exports show the *trajectory* — e.g. privacy
    budget draining over a run — not just the final reading.
    """

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, str] | None = None,
                 clock: Clock | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self._clock = clock
        self.samples: list[tuple[float, float]] = []

    @property
    def value(self) -> float:
        """The most recent sample (raises if never set)."""
        if not self.samples:
            raise DataError(f"gauge {self.name!r} was never set")
        return self.samples[-1][1]

    def set(self, value: float) -> None:
        """Record a new sample."""
        t = self._clock.now() if self._clock is not None \
            else float(len(self.samples))
        self.samples.append((t, float(value)))

    def inc(self, amount: float = 1.0) -> None:
        """Shift the gauge by ``amount`` (0 baseline when never set)."""
        current = self.samples[-1][1] if self.samples else 0.0
        self.set(current + amount)

    def to_dict(self) -> dict[str, object]:
        return {
            "record": "metric", "kind": self.kind, "name": self.name,
            "labels": dict(self.labels),
            "value": self.samples[-1][1] if self.samples else None,
            "n_samples": len(self.samples),
        }

    def sample_dicts(self) -> list[dict[str, object]]:
        """One ``gauge_sample`` record per :meth:`set` call."""
        return [
            {
                "record": "gauge_sample", "t": t, "name": self.name,
                "labels": dict(self.labels), "value": value,
            }
            for t, value in self.samples
        ]


#: Quantiles a histogram summarises by default (p50/p90/p95/p99).
DEFAULT_QUANTILES = (0.50, 0.90, 0.95, 0.99)


def quantile_key(q: float) -> str:
    """``0.95 -> "p95"``, ``0.999 -> "p99.9"`` — the export key for ``q``."""
    percent = q * 100.0
    if float(percent).is_integer():
        return f"p{int(percent)}"
    return f"p{percent:g}"


class Histogram:
    """Fixed-bucket distribution with exact min/max/sum.

    ``buckets`` are inclusive upper bounds; values above the last bound
    land in an implicit +inf overflow bucket.  Quantiles are bucket
    upper bounds (the overflow bucket reports the exact max), the same
    estimate Prometheus's ``histogram_quantile`` makes — except when
    every observation landed in a *single* bucket, where the bound
    carries no information and the exact min/max do: there quantiles
    interpolate linearly between min and max instead of collapsing to
    one degenerate bound.

    ``quantiles`` configures which estimates :meth:`summary` and
    :meth:`to_dict` export (default p50/p90/p95/p99).
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: Iterable[float] | None = None,
                 labels: dict[str, str] | None = None,
                 quantiles: Iterable[float] | None = None):
        self.name = name
        self.labels = dict(labels or {})
        bounds = tuple(sorted(buckets if buckets is not None
                              else DEFAULT_BUCKETS))
        if not bounds:
            raise DataError("histogram needs at least one bucket bound")
        self.quantiles = tuple(quantiles if quantiles is not None
                               else DEFAULT_QUANTILES)
        for q in self.quantiles:
            if not 0.0 <= q <= 1.0:
                raise DataError(f"quantile {q!r} must be in [0, 1]")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = overflow
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (bucket upper bound)."""
        if not 0.0 <= q <= 1.0:
            raise DataError("quantile must be in [0, 1]")
        if self.count == 0:
            raise DataError(f"histogram {self.name!r} is empty")
        if sum(1 for c in self.counts if c) == 1:
            # Single occupied bucket: its bound says nothing about the
            # spread, but the exact min/max do — interpolate between
            # them instead of reporting one degenerate bound for every
            # quantile.
            return float(self.min) + q * (float(self.max) - float(self.min))
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index == len(self.bounds):  # overflow bucket
                    return float(self.max)
                return min(float(self.bounds[index]), float(self.max))
        return float(self.max)

    def summary(self) -> dict[str, object]:
        """Count/sum/mean/min/max plus every configured quantile.

        The dict is export-shaped (``p50``/``p90``/… keys), safe on an
        empty histogram (quantiles and mean are ``None``), and is the
        "profile shape" the serving layer and ``repro.bench`` report
        latency percentiles in.
        """
        record: dict[str, object] = {
            "count": self.count, "sum": self.sum,
            "mean": self.mean if self.count else None,
            "min": self.min, "max": self.max,
        }
        for q in self.quantiles:
            record[quantile_key(q)] = (self.quantile(q) if self.count
                                       else None)
        return record

    @property
    def mean(self) -> float:
        """Exact arithmetic mean of the observations."""
        if self.count == 0:
            raise DataError(f"histogram {self.name!r} is empty")
        return self.sum / self.count

    def to_dict(self) -> dict[str, object]:
        record: dict[str, object] = {
            "record": "metric", "kind": self.kind, "name": self.name,
            "labels": dict(self.labels), "count": self.count,
            "sum": self.sum, "min": self.min, "max": self.max,
            "buckets": list(self.bounds), "bucket_counts": list(self.counts),
        }
        if self.count:
            for q in sorted(set(self.quantiles) | {0.50, 0.95}):
                record[quantile_key(q)] = self.quantile(q)
        return record


class MetricsRegistry:
    """Name+labels-keyed home for every metric of a run."""

    def __init__(self, clock: Clock | None = None):
        self._clock = clock
        self._metrics: dict[tuple, object] = {}

    def _get(self, kind: str, name: str, labels: dict[str, str],
             factory) -> object:
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        elif metric.kind != kind:
            raise DataError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        """Get-or-create the counter ``name{labels}``."""
        labels = {key: str(value) for key, value in labels.items()}
        return self._get(
            "counter", name, labels, lambda: Counter(name, labels)
        )

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get-or-create the gauge ``name{labels}``."""
        labels = {key: str(value) for key, value in labels.items()}
        return self._get(
            "gauge", name, labels,
            lambda: Gauge(name, labels, clock=self._clock),
        )

    def histogram(self, name: str, buckets: Iterable[float] | None = None,
                  quantiles: Iterable[float] | None = None,
                  **labels: str) -> Histogram:
        """Get-or-create the histogram ``name{labels}``.

        ``buckets`` and ``quantiles`` only apply on first creation;
        later calls reuse the existing layout.
        """
        labels = {key: str(value) for key, value in labels.items()}
        return self._get(
            "histogram", name, labels,
            lambda: Histogram(name, buckets, labels, quantiles=quantiles),
        )

    def __iter__(self):
        """Metrics in (name, labels) order."""
        return iter(
            metric for _, metric in sorted(
                self._metrics.items(), key=lambda item: item[0]
            )
        )

    def __len__(self) -> int:
        return len(self._metrics)

    def to_dicts(self) -> list[dict[str, object]]:
        """Summary record per metric plus per-sample gauge records."""
        records: list[dict[str, object]] = []
        for metric in self:
            records.append(metric.to_dict())
            if isinstance(metric, Gauge):
                records.extend(metric.sample_dicts())
        return records
