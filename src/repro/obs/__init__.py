"""``repro.obs`` — the unified telemetry layer (tracing + metrics + export).

The paper's Q4 asks for answers that are *inspectable after the fact*;
``AuditLog`` and ``ProvenanceGraph`` record what happened, this module
records how long it took, how often, and where the time and privacy
budget went.  Dependency-free, deterministic by default, off by default.

Off by default: until :func:`configure` runs, :func:`get` returns
``None`` and every instrumented call site (``Pipeline.run``,
``TableClassifier.fit``, ``FairnessDriftMonitor.observe``,
``PrivacyAccountant.spend``) pays exactly one ``is None`` check.

Typical use::

    from repro import obs

    telemetry = obs.configure(export_path="run.jsonl")
    result = pipeline.run(table, rng)        # spans + metrics recorded
    # run.jsonl now holds the merged telemetry; inspect it with
    #   python -m repro telemetry run.jsonl

Deployments wanting real timestamps configure a wall clock::

    obs.configure(clock=obs.WallClock())

Everything else (tests, CI, byte-reproducible experiment runs) keeps the
default deterministic :class:`TickClock`.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager

from repro.obs.clock import Clock, TickClock, WallClock
from repro.obs.export import (
    audit_to_dicts,
    read_telemetry,
    telemetry_to_dicts,
    write_jsonl,
    write_telemetry,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_key,
)
from repro.obs.profile import (
    PlanProfile,
    ProfileCollector,
    Profiler,
    ResourceSample,
    SpanStats,
    render_profile,
)
from repro.obs.render import (
    render_audit_tail,
    render_cache_summary,
    render_metrics_table,
    render_span_tree,
)
from repro.obs.tracing import Span, Tracer, safe_attribute


class Telemetry:
    """One run's tracer + metrics registry sharing one clock.

    ``collector`` is the opt-in :class:`ProfileCollector` — ``None``
    (the default) means profiling hooks in the engine and the parallel
    pools are dormant, at the cost of one ``is None`` check each.
    """

    def __init__(self, clock: Clock | None = None,
                 export_path: str | None = None,
                 collector: ProfileCollector | None = None):
        self.clock = clock if clock is not None else TickClock()
        self.tracer = Tracer(self.clock)
        self.metrics = MetricsRegistry(self.clock)
        self.export_path = export_path
        self.collector = collector

    @contextmanager
    def timed(self, name: str, **attributes: object):
        """Span *and* duration histogram (``<name>.duration``) in one."""
        with self.tracer.span(name, **attributes) as span:
            yield span
        self.metrics.histogram(f"{name}.duration").observe(span.duration)

    def to_dicts(self, audit=None) -> list[dict[str, object]]:
        """Merged, sorted telemetry records (see :mod:`repro.obs.export`)."""
        return telemetry_to_dicts(self, audit=audit)

    def flush(self, audit=None, path: str | None = None) -> int:
        """Write merged telemetry to ``path`` (default: ``export_path``).

        Rewrites the whole file each call, so flushing is idempotent and
        the file always holds the complete run so far.  Returns the
        record count written, or 0 when no path is configured.
        """
        target = path or self.export_path
        if target is None:
            return 0
        return write_telemetry(target, self, audit=audit)


#: The module-level active telemetry — ``None`` means "not configured",
#: and instrumented call sites skip all work on that single check.
_ACTIVE: Telemetry | None = None


def configure(clock: Clock | None = None,
              export_path: str | None = None,
              profile: bool = False,
              trace_malloc: bool = False) -> Telemetry:
    """Install (and return) a fresh active :class:`Telemetry`.

    ``clock`` defaults to a deterministic :class:`TickClock`; pass
    :class:`WallClock` for real timestamps.  When ``export_path`` is
    set, instrumented runners flush merged JSONL telemetry there.
    ``profile=True`` attaches a :class:`ProfileCollector`, so engine
    nodes and parallel pools sample per-node wall/CPU time (and, with
    ``trace_malloc=True``, peak allocations) into their spans — pair it
    with :class:`WallClock` so span durations are seconds too.
    """
    global _ACTIVE
    if _ACTIVE is not None and _ACTIVE.collector is not None:
        _ACTIVE.collector.close()
    collector = (ProfileCollector(trace_malloc=trace_malloc)
                 if profile or trace_malloc else None)
    _ACTIVE = Telemetry(clock=clock, export_path=export_path,
                        collector=collector)
    return _ACTIVE


def get() -> Telemetry | None:
    """The active telemetry, or ``None`` when unconfigured."""
    return _ACTIVE


def enabled() -> bool:
    """Is telemetry currently configured?"""
    return _ACTIVE is not None


def reset() -> None:
    """Return to the unconfigured (no-op) state."""
    global _ACTIVE
    if _ACTIVE is not None and _ACTIVE.collector is not None:
        _ACTIVE.collector.close()
    _ACTIVE = None


def instrument(name: str, **attributes: object):
    """Decorator: time the function when telemetry is on, no-op when off.

    Unlike :meth:`Tracer.trace`, the active telemetry is looked up *per
    call*, so library code can decorate unconditionally::

        @obs.instrument("table_classifier.fit")
        def fit(self, ...): ...
    """
    def decorator(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            telemetry = _ACTIVE
            if telemetry is None:
                return fn(*args, **kwargs)
            with telemetry.timed(name, **attributes):
                return fn(*args, **kwargs)

        return wrapper

    return decorator


__all__ = [
    "Clock",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PlanProfile",
    "ProfileCollector",
    "Profiler",
    "ResourceSample",
    "Span",
    "SpanStats",
    "Telemetry",
    "TickClock",
    "Tracer",
    "WallClock",
    "audit_to_dicts",
    "configure",
    "enabled",
    "get",
    "instrument",
    "quantile_key",
    "read_telemetry",
    "render_audit_tail",
    "render_cache_summary",
    "render_metrics_table",
    "render_profile",
    "render_span_tree",
    "reset",
    "safe_attribute",
    "telemetry_to_dicts",
    "write_jsonl",
    "write_telemetry",
]
