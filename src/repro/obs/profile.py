"""Profiling: where the time goes, and what the plan shape allows.

Two halves, both feeding ``python -m repro profile run.jsonl``:

* :class:`Profiler` — post-hoc analysis of exported span records (the
  :func:`repro.obs.read_telemetry` shape).  Per-name aggregates (calls,
  wall, self vs. child time, CPU, peak allocations, and the
  hit/miss/uncacheable cache split engine node spans carry) plus
  **critical-path analysis** over the engine's level-parallel node
  spans: the longest dependency chain vs. the total work is Brent's
  bound — the theoretical speedup any worker count can reach — and
  dividing by the run's ``n_jobs`` gives the parallel efficiency the
  plan *shape* permits.
* :class:`ProfileCollector` — the opt-in live sampler installed by
  ``obs.configure(profile=True)`` and consumed by
  :class:`repro.engine.Executor` and :class:`repro.parallel.ParallelExecutor`:
  per-node wall seconds (``perf_counter``), CPU seconds
  (``thread_time``, so concurrent nodes don't pollute each other), and
  optional peak allocations (``tracemalloc``).  Samples are attached to
  node spans after each level drains, on the coordinator, so the span
  *structure* stays deterministic; the measured values are wall facts.
  When the collector is off — the default — every hook site pays one
  ``is None`` check and nothing else.
"""

from __future__ import annotations

import threading
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import DataError
from repro.obs.render import _table

#: Span attributes the collector writes and the profiler reads back.
WALL_ATTR = "wall_s"
CPU_ATTR = "cpu_s"
ALLOC_ATTR = "alloc_peak_kb"


# -- live collection ----------------------------------------------------------


@dataclass
class ResourceSample:
    """Merged resource usage for one sampled key."""

    wall_s: float = 0.0
    cpu_s: float = 0.0
    alloc_peak_kb: float | None = None
    count: int = 0

    def merge(self, wall_s: float, cpu_s: float,
              alloc_peak_kb: float | None) -> None:
        self.wall_s += wall_s
        self.cpu_s += cpu_s
        self.count += 1
        if alloc_peak_kb is not None:
            self.alloc_peak_kb = max(self.alloc_peak_kb or 0.0,
                                     alloc_peak_kb)


class ProfileCollector:
    """Thread-safe per-key resource sampling, merged until popped.

    ``trace_malloc=True`` starts ``tracemalloc`` (if nobody else has)
    and reports the process-wide peak observed during each sample —
    exact for serial nodes, an upper bound when nodes run concurrently.
    CPU time uses ``time.thread_time``: the sampling thread's own CPU,
    so thread-pool fan-out attributes compute to the right node.
    """

    def __init__(self, trace_malloc: bool = False):
        self._lock = threading.Lock()
        self._samples: dict[object, ResourceSample] = {}
        self.trace_malloc = bool(trace_malloc)
        self._started_tracemalloc = False
        if self.trace_malloc and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    def close(self) -> None:
        """Stop ``tracemalloc`` if this collector started it."""
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False

    @contextmanager
    def sample(self, key: object):
        """Measure the block and merge the usage under ``key``."""
        if self.trace_malloc:
            tracemalloc.reset_peak()
        wall0 = time.perf_counter()
        cpu0 = time.thread_time()
        try:
            yield
        finally:
            wall = time.perf_counter() - wall0
            cpu = time.thread_time() - cpu0
            alloc = None
            if self.trace_malloc:
                _, peak = tracemalloc.get_traced_memory()
                alloc = peak / 1024.0
            with self._lock:
                entry = self._samples.get(key)
                if entry is None:
                    entry = self._samples[key] = ResourceSample()
                entry.merge(wall, cpu, alloc)

    def wrap(self, key: object, fn: Callable) -> Callable:
        """``fn`` with every call sampled under ``key``."""
        def sampled(*args, **kwargs):
            with self.sample(key):
                return fn(*args, **kwargs)
        return sampled

    def pop(self, key: object) -> ResourceSample | None:
        """Remove and return the merged sample for ``key`` (or ``None``)."""
        with self._lock:
            return self._samples.pop(key, None)

    def attributes(self, key: object) -> dict[str, float]:
        """Pop ``key`` rendered as span attributes (empty if unsampled)."""
        sample = self.pop(key)
        if sample is None:
            return {}
        attrs = {WALL_ATTR: round(sample.wall_s, 9),
                 CPU_ATTR: round(sample.cpu_s, 9)}
        if sample.alloc_peak_kb is not None:
            attrs[ALLOC_ATTR] = round(sample.alloc_peak_kb, 3)
        return attrs


# -- post-hoc analysis --------------------------------------------------------


@dataclass
class SpanStats:
    """Aggregate over every finished span sharing one name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    cpu_s: float = 0.0
    alloc_peak_kb: float | None = None
    cache: dict[str, int] = field(default_factory=dict)
    errors: int = 0


@dataclass
class PlanProfile:
    """Critical-path analysis of one engine-executed plan."""

    name: str                 # the executor's span prefix ("audit", "stage", …)
    n_nodes: int
    n_levels: int
    total_work_s: float       # sum of per-node times
    critical_path_s: float    # longest dependency chain (level maxima)
    path: list[tuple[str, float]]   # (node span name, time) along the chain
    n_jobs: int | None = None
    cache: dict[str, int] = field(default_factory=dict)

    @property
    def theoretical_speedup(self) -> float:
        """Brent's bound: total work over the critical path."""
        if self.critical_path_s <= 0.0:
            return 1.0
        return self.total_work_s / self.critical_path_s

    @property
    def parallel_efficiency(self) -> float | None:
        """Fraction of ``n_jobs`` the plan shape can keep busy."""
        if not self.n_jobs:
            return None
        return min(self.theoretical_speedup, self.n_jobs) / self.n_jobs


def _finished_spans(records: list[dict]) -> list[dict]:
    return [r for r in records
            if r.get("record") == "span" and r.get("end") is not None]


def _effective_time(span: dict) -> float:
    """Measured wall seconds when the collector ran, logical duration else."""
    attributes = span.get("attributes") or {}
    wall = attributes.get(WALL_ATTR)
    if isinstance(wall, (int, float)) and not isinstance(wall, bool):
        return float(wall)
    duration = span.get("duration")
    if isinstance(duration, (int, float)) and not isinstance(duration, bool):
        return float(duration)
    return 0.0


class Profiler:
    """Answers "where did the time go?" for one exported telemetry run.

    Construct from records (:func:`repro.obs.read_telemetry`) or a path
    (:meth:`from_file`).  All analyses are deterministic functions of
    the records: profiling the same file twice renders byte-identical
    output.
    """

    def __init__(self, records: list[dict]):
        self.records = list(records)
        self.spans = _finished_spans(self.records)
        self._children: dict[object, list[dict]] = {}
        ids = {span.get("span_id") for span in self.spans}
        for span in self.spans:
            parent = span.get("parent_id")
            if parent not in ids:
                parent = None
            self._children.setdefault(parent, []).append(span)

    @classmethod
    def from_file(cls, path: str) -> "Profiler":
        from repro.obs.export import read_telemetry
        return cls(read_telemetry(path))

    # -- aggregates ---------------------------------------------------------

    def aggregates(self) -> list[SpanStats]:
        """Per-name stats, hottest (largest self time) first.

        Self time is the span's own time minus its direct children's —
        the classic profiler split, so a parent that only coordinates
        drops down the table and the actual hot nodes rise.
        """
        stats: dict[str, SpanStats] = {}
        for span in self.spans:
            name = str(span.get("name"))
            entry = stats.get(name)
            if entry is None:
                entry = stats[name] = SpanStats(name=name)
            attributes = span.get("attributes") or {}
            total = _effective_time(span)
            children = self._children.get(span.get("span_id"), ())
            child_time = sum(_effective_time(child) for child in children)
            entry.count += 1
            entry.total_s += total
            entry.self_s += max(0.0, total - child_time)
            cpu = attributes.get(CPU_ATTR)
            if isinstance(cpu, (int, float)) and not isinstance(cpu, bool):
                entry.cpu_s += float(cpu)
            alloc = attributes.get(ALLOC_ATTR)
            if isinstance(alloc, (int, float)) and not isinstance(alloc, bool):
                entry.alloc_peak_kb = max(entry.alloc_peak_kb or 0.0,
                                          float(alloc))
            status = attributes.get("cache")
            if status is not None:
                entry.cache[str(status)] = entry.cache.get(str(status), 0) + 1
            if "error" in attributes:
                entry.errors += 1
        return sorted(stats.values(),
                      key=lambda s: (-s.self_s, -s.total_s, s.name))

    # -- critical path ------------------------------------------------------

    def plan_profiles(self) -> list[PlanProfile]:
        """One critical-path analysis per engine-executed plan.

        Engine node spans carry ``level`` (dependency depth) and
        ``n_jobs`` attributes; nodes sharing an executor prefix and a
        parent span form one plan run.  Within a level every node could
        run concurrently, so the level's critical contribution is its
        slowest node; levels are barriers, so contributions add.
        """
        groups: dict[tuple, list[dict]] = {}
        for span in self.spans:
            attributes = span.get("attributes") or {}
            if not isinstance(attributes.get("level"), int):
                continue
            prefix = str(span.get("name")).split(":", 1)[0]
            groups.setdefault((prefix, span.get("parent_id")), []).append(span)

        profiles = []
        for (prefix, _parent), nodes in sorted(
            groups.items(),
            key=lambda item: (item[0][0], str(item[0][1])),
        ):
            levels: dict[int, list[tuple[str, float]]] = {}
            cache: dict[str, int] = {}
            n_jobs = None
            for span in nodes:
                attributes = span.get("attributes") or {}
                level = int(attributes["level"])
                levels.setdefault(level, []).append(
                    (str(span.get("name")), _effective_time(span))
                )
                status = attributes.get("cache")
                if status is not None:
                    cache[str(status)] = cache.get(str(status), 0) + 1
                jobs = attributes.get("n_jobs")
                if isinstance(jobs, int) and not isinstance(jobs, bool):
                    n_jobs = max(n_jobs or 1, jobs)
            path = []
            critical = 0.0
            work = 0.0
            for level in sorted(levels):
                entries = levels[level]
                work += sum(t for _, t in entries)
                slowest = max(entries, key=lambda entry: (entry[1], entry[0]))
                path.append(slowest)
                critical += slowest[1]
            profiles.append(PlanProfile(
                name=prefix, n_nodes=len(nodes), n_levels=len(levels),
                total_work_s=work, critical_path_s=critical, path=path,
                n_jobs=n_jobs, cache=cache,
            ))
        return profiles

    # -- cache / parallel / latency -----------------------------------------

    def cache_totals(self) -> dict[str, int]:
        """Hit/miss/uncacheable counts over every engine node span."""
        totals: dict[str, int] = {}
        for span in self.spans:
            status = (span.get("attributes") or {}).get("cache")
            if status is not None:
                totals[str(status)] = totals.get(str(status), 0) + 1
        return totals

    def duration_histograms(self) -> list[dict]:
        """Histogram metric records — the latency-percentile sources."""
        return [r for r in self.records
                if r.get("record") == "metric"
                and r.get("kind") == "histogram"]

    def pool_stats(self) -> list[dict]:
        """Per-pool fan-out counters (tasks, chunks, profiled wall/CPU)."""
        counters: dict[str, dict[str, float]] = {}
        for record in self.records:
            if (record.get("record") != "metric"
                    or record.get("kind") != "counter"):
                continue
            name = str(record.get("name"))
            for suffix in ("tasks", "chunks", "retries", "errors",
                           "profile.wall_s", "profile.cpu_s"):
                marker = f".{suffix}"
                if name.endswith(marker):
                    pool = name[:-len(marker)]
                    counters.setdefault(pool, {})[suffix] = float(
                        record.get("value") or 0.0
                    )
        return [{"pool": pool, **values}
                for pool, values in sorted(counters.items())
                if "tasks" in values]


# -- rendering ---------------------------------------------------------------


def _fmt(value: object, digits: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def _cache_cell(cache: dict[str, int]) -> str:
    if not cache:
        return "-"
    return "/".join(str(cache.get(key, 0))
                    for key in ("hit", "miss", "uncacheable"))


def render_hot_nodes(profiler: Profiler, top: int = 20) -> str:
    """The hot-node table: self-time-ordered per-name aggregates."""
    stats = profiler.aggregates()[:top]
    if not stats:
        return "hot nodes: (no spans)"
    rows = [
        [s.name, _fmt(s.count), _fmt(s.total_s), _fmt(s.self_s),
         _fmt(s.cpu_s) if s.cpu_s else "-",
         _fmt(s.alloc_peak_kb), _cache_cell(s.cache),
         _fmt(s.errors) if s.errors else "-"]
        for s in stats
    ]
    lines = ["hot nodes (by self time):"]
    lines += _table(
        ["span", "calls", "total", "self", "cpu_s", "alloc_kb",
         "hit/miss/unc", "errors"],
        rows,
    )
    return "\n".join(lines)


def render_critical_path(profiler: Profiler) -> str:
    """Per-plan critical path, theoretical speedup, parallel efficiency."""
    profiles = profiler.plan_profiles()
    if not profiles:
        return ("critical path: (no engine node spans — run under "
                "repro.engine with telemetry configured)")
    lines = ["critical path (per plan):"]
    for profile in profiles:
        efficiency = profile.parallel_efficiency
        lines.append(
            f"  plan {profile.name!r}: {profile.n_nodes} nodes / "
            f"{profile.n_levels} levels, work {_fmt(profile.total_work_s)}, "
            f"critical path {_fmt(profile.critical_path_s)}, "
            f"theoretical speedup {_fmt(profile.theoretical_speedup, 3)}x"
            + (f", n_jobs {profile.n_jobs} -> efficiency "
               f"{efficiency:.0%}" if efficiency is not None else "")
        )
        for name, seconds in profile.path:
            lines.append(f"    -> {name} [{_fmt(seconds)}]")
    return "\n".join(lines)


def render_cache_efficiency(profiler: Profiler) -> str:
    """Overall cache outcome split across engine node spans."""
    totals = profiler.cache_totals()
    if not totals:
        return ""
    total = sum(totals.values())
    hits = totals.get("hit", 0)
    cacheable = hits + totals.get("miss", 0)
    rate = hits / cacheable if cacheable else 0.0
    return (
        f"cache efficiency: {hits}/{cacheable} cacheable nodes replayed "
        f"({rate:.0%}), {totals.get('uncacheable', 0)}/{total} uncacheable"
    )


def render_latency(profiler: Profiler) -> str:
    """Duration-histogram percentiles (the serve latency view)."""
    histograms = profiler.duration_histograms()
    if not histograms:
        return ""
    rows = []
    for record in histograms:
        labels = record.get("labels") or {}
        suffix = ("{" + ",".join(f"{k}={v}"
                                 for k, v in sorted(labels.items())) + "}"
                  if labels else "")
        count = record.get("count") or 0
        mean = (record["sum"] / count) if count else None
        rows.append([
            str(record.get("name")) + suffix, _fmt(count), _fmt(mean),
            _fmt(record.get("p50")), _fmt(record.get("p90")),
            _fmt(record.get("p95")), _fmt(record.get("p99")),
            _fmt(record.get("max")),
        ])
    lines = ["latency percentiles:"]
    lines += _table(
        ["histogram", "count", "mean", "p50", "p90", "p95", "p99", "max"],
        rows,
    )
    return "\n".join(lines)


def render_pools(profiler: Profiler) -> str:
    """Parallel-pool fan-out summary (tasks, chunks, profiled time)."""
    pools = profiler.pool_stats()
    if not pools:
        return ""
    rows = [
        [p["pool"], _fmt(p.get("tasks")), _fmt(p.get("chunks")),
         _fmt(p.get("retries", 0.0)), _fmt(p.get("errors", 0.0)),
         _fmt(p.get("profile.wall_s")), _fmt(p.get("profile.cpu_s"))]
        for p in pools
    ]
    lines = ["parallel pools:"]
    lines += _table(
        ["pool", "tasks", "chunks", "retries", "errors",
         "wall_s", "cpu_s"],
        rows,
    )
    return "\n".join(lines)


def render_profile(records: list[dict], top: int = 20) -> str:
    """The full profile report ``python -m repro profile`` prints."""
    if not isinstance(records, list):
        raise DataError("render_profile expects a list of telemetry records")
    profiler = Profiler(records)
    sections = [
        render_hot_nodes(profiler, top=top),
        render_critical_path(profiler),
        render_cache_efficiency(profiler),
        render_latency(profiler),
        render_pools(profiler),
    ]
    return "\n\n".join(section for section in sections if section)
