"""Clocks for the telemetry layer.

Telemetry wants timestamps; reproducibility wants determinism.  The
resolution is an injectable clock: the default :class:`TickClock` hands
out consecutive integer ticks, so a traced run produces byte-identical
telemetry every time, while deployments swap in :class:`WallClock` to
get real timestamps without touching any instrumentation.
"""

from __future__ import annotations

import threading
import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Anything with a ``now() -> float`` method."""

    def now(self) -> float:  # pragma: no cover - protocol stub
        ...


class TickClock:
    """Deterministic clock: every call to :meth:`now` is the next tick.

    Spans timed with a tick clock have *logical* durations (how many
    clock reads happened inside them), which is exactly what tests need
    to stay byte-reproducible.
    """

    def __init__(self, start: int = 0, step: int = 1):
        self._tick = int(start)
        self._step = int(step)
        self._lock = threading.Lock()

    def now(self) -> float:
        # Locked: concurrent readers (store counters, engine workers)
        # must never observe the same tick or skip one.
        with self._lock:
            tick = self._tick
            self._tick += self._step
        return float(tick)


class WallClock:
    """Real wall-clock time (seconds since the Unix epoch)."""

    def now(self) -> float:
        return time.time()
