"""Exporters: one run → one merged, sortable telemetry file.

Spans, metric summaries, gauge samples, and audit-log events all become
flat JSON records with a ``record`` discriminator and (where meaningful)
a ``t`` sort key, written as JSON Lines so a run's whole story is one
greppable, streamable file::

    {"record": "span", "t": 0, "name": "pipeline.run", ...}
    {"record": "gauge_sample", "t": 7, "name": "privacy.epsilon_spent", ...}
    {"record": "metric", "kind": "histogram", "name": "...", "p50": ...}
    {"record": "audit", "sequence": 3, "actor": "pipeline", ...}
"""

from __future__ import annotations

import json
import os
from typing import Iterable

from repro.exceptions import DataError

RECORD_KINDS = ("span", "metric", "gauge_sample", "audit")


def _sort_key(record: dict) -> tuple:
    t = record.get("t")
    return (0 if isinstance(t, (int, float)) else 1,
            t if isinstance(t, (int, float)) else 0.0)


def audit_to_dicts(audit) -> list[dict[str, object]]:
    """Audit-log events as telemetry records.

    ``t`` is the wall timestamp when the log carries one, else the
    sequence number — either way the trail sorts correctly.
    """
    records = []
    for event in audit.to_dicts():
        record = {"record": "audit", **event}
        record["t"] = (event["timestamp"]
                       if event.get("timestamp") is not None
                       else float(event["sequence"]))
        records.append(record)
    return records


def telemetry_to_dicts(telemetry, audit=None) -> list[dict[str, object]]:
    """Merge one run's spans, metrics, and (optionally) audit trail.

    Records are sorted by ``t`` (stable, so summary metric records —
    which carry no ``t`` — sink to the end in registry order).
    """
    records: list[dict[str, object]] = []
    records.extend(telemetry.tracer.to_dicts())
    records.extend(telemetry.metrics.to_dicts())
    if audit is not None:
        records.extend(audit_to_dicts(audit))
    return sorted(records, key=_sort_key)


def write_jsonl(path: str, records: Iterable[dict],
                append: bool = False) -> int:
    """Write records as JSON Lines; returns how many were written."""
    count = 0
    with open(path, "a" if append else "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True,
                                    default=repr) + "\n")
            count += 1
    return count


def write_telemetry(path: str, telemetry, audit=None,
                    append: bool = False) -> int:
    """Export one run's merged telemetry to ``path`` (JSON Lines)."""
    return write_jsonl(path, telemetry_to_dicts(telemetry, audit=audit),
                       append=append)


def read_telemetry(path: str) -> list[dict[str, object]]:
    """Parse a telemetry JSONL file back into records."""
    if not os.path.exists(path):
        raise DataError(f"no telemetry file at {path!r}")
    records = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise DataError(
                    f"{path}:{line_number} is not valid JSON: {error}"
                ) from None
            if not isinstance(record, dict) or "record" not in record:
                raise DataError(
                    f"{path}:{line_number} is not a telemetry record"
                )
            records.append(record)
    return records
