"""Command-line interface: FACT audits without writing code.

::

    python -m repro audit data.csv --target approved --sensitive group
    python -m repro datasheet data.csv --name my-dataset
    python -m repro anonymize data.csv -k 10 --quasi age --quasi zipcode -o safe.csv
    python -m repro synthesize data.csv --epsilon 2.0 -o synthetic.csv
    python -m repro telemetry run.jsonl

CSV files written by :func:`repro.data.write_csv` carry their FACT roles
in metadata comments; for plain CSVs, declare roles with the flags.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.confidentiality.anonymity import MondrianAnonymizer
from repro.confidentiality.pseudonym import Pseudonymizer
from repro.confidentiality.risk import assess_risk
from repro.confidentiality.synthesis import MarginalSynthesizer
from repro.core import FACTAuditor, FACTPolicy, build_scorecard
from repro.data.io import read_csv, write_csv
from repro.data.schema import ColumnRole
from repro.data.split import three_way_split
from repro.exceptions import ReproError
from repro.learn.linear import LogisticRegression
from repro.obs import (
    read_telemetry,
    render_audit_tail,
    render_metrics_table,
    render_span_tree,
)
from repro.learn.table_model import TableClassifier
from repro.transparency.datasheet import build_datasheet


def _load(path: str, args) -> "Table":  # noqa: F821 - doc only
    table = read_csv(path)
    for name in getattr(args, "sensitive", None) or []:
        table = table.with_role(name, ColumnRole.SENSITIVE)
    for name in getattr(args, "quasi", None) or []:
        table = table.with_role(name, ColumnRole.QUASI_IDENTIFIER)
    for name in getattr(args, "identifier", None) or []:
        table = table.with_role(name, ColumnRole.IDENTIFIER)
    target = getattr(args, "target", None)
    if target:
        table = table.with_role(target, ColumnRole.TARGET)
    return table


def _cmd_audit(args) -> int:
    table = _load(args.data, args)
    rng = np.random.default_rng(args.seed)
    train, calibration, test = three_way_split(
        table, args.test_fraction, args.calibration_fraction, rng
    )
    model = TableClassifier(LogisticRegression()).fit(train)
    report = FACTAuditor().audit(
        model, test, rng, calibration=calibration, subject=args.data
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        violations = FACTPolicy().check(report)
        return 1 if violations and args.strict else 0
    print(report.render())
    print()
    print(build_scorecard(report).render())
    violations = FACTPolicy().check(report)
    print(f"\npolicy violations: {len(violations)}")
    for violation in violations:
        print(f"  - {violation.render()}")
    return 1 if violations and args.strict else 0


def _cmd_datasheet(args) -> int:
    table = _load(args.data, args)
    sheet = build_datasheet(
        table, name=args.name or args.data,
        provenance=f"loaded from {args.data}",
    )
    print(sheet.render())
    return 0


def _cmd_anonymize(args) -> int:
    table = _load(args.data, args)
    if not table.schema.quasi_identifier_names:
        print("error: declare quasi-identifiers with --quasi", file=sys.stderr)
        return 2
    print("before:", assess_risk(table).render())
    released = table
    if table.schema.identifier_names:
        released = Pseudonymizer().pseudonymize(released)
    released = MondrianAnonymizer(k=args.k).anonymize(released)
    print("after: ", assess_risk(released).render())
    if args.output:
        write_csv(released, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_synthesize(args) -> int:
    table = _load(args.data, args)
    rng = np.random.default_rng(args.seed)
    synthesizer = MarginalSynthesizer(epsilon=args.epsilon).fit(table, rng)
    synthetic = synthesizer.sample(args.rows or table.n_rows, rng)
    print(f"synthesised {synthetic.n_rows} rows at epsilon={args.epsilon:g}")
    if args.output:
        write_csv(synthetic, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_telemetry(args) -> int:
    records = read_telemetry(args.run)
    print(render_span_tree(records))
    print()
    print(render_metrics_table(records))
    if any(record.get("record") == "audit" for record in records):
        print()
        print(render_audit_tail(records, last=args.audit_tail))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Responsible Data Science (FACT) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("data", help="CSV file to operate on")
        p.add_argument("--target", help="TARGET column name")
        p.add_argument("--sensitive", action="append",
                       help="SENSITIVE column (repeatable)")
        p.add_argument("--quasi", action="append",
                       help="QUASI_IDENTIFIER column (repeatable)")
        p.add_argument("--identifier", action="append",
                       help="IDENTIFIER column (repeatable)")
        p.add_argument("--seed", type=int, default=0)

    audit = sub.add_parser("audit", help="run the four-pillar FACT audit")
    add_common(audit)
    audit.add_argument("--test-fraction", type=float, default=0.25)
    audit.add_argument("--calibration-fraction", type=float, default=0.15)
    audit.add_argument("--strict", action="store_true",
                       help="exit non-zero on policy violations")
    audit.add_argument("--json", action="store_true",
                       help="emit the report as JSON instead of text")
    audit.set_defaults(handler=_cmd_audit)

    datasheet = sub.add_parser("datasheet", help="render a dataset datasheet")
    add_common(datasheet)
    datasheet.add_argument("--name", help="dataset display name")
    datasheet.set_defaults(handler=_cmd_datasheet)

    anonymize = sub.add_parser(
        "anonymize", help="k-anonymise quasi-identifiers (Mondrian)"
    )
    add_common(anonymize)
    anonymize.add_argument("-k", type=int, default=5)
    anonymize.add_argument("-o", "--output", help="write the release here")
    anonymize.set_defaults(handler=_cmd_anonymize)

    synthesize = sub.add_parser(
        "synthesize", help="release an epsilon-DP synthetic table"
    )
    add_common(synthesize)
    synthesize.add_argument("--epsilon", type=float, default=1.0)
    synthesize.add_argument("--rows", type=int,
                            help="rows to sample (default: input size)")
    synthesize.add_argument("-o", "--output", help="write the release here")
    synthesize.set_defaults(handler=_cmd_synthesize)

    telemetry = sub.add_parser(
        "telemetry",
        help="render an exported telemetry file (span tree + metrics)",
    )
    telemetry.add_argument("run", help="telemetry JSONL file (repro.obs export)")
    telemetry.add_argument("--audit-tail", type=int, default=10,
                           help="audit events to show (default 10)")
    telemetry.set_defaults(handler=_cmd_telemetry)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
