"""Command-line interface: FACT audits without writing code.

::

    python -m repro audit data.csv --target approved --sensitive group
    python -m repro datasheet data.csv --name my-dataset
    python -m repro anonymize data.csv -k 10 --quasi age --quasi zipcode -o safe.csv
    python -m repro synthesize data.csv --epsilon 2.0 -o synthetic.csv
    python -m repro join apps.csv zones.csv --on zone_id --scan -o flat.csv
    python -m repro telemetry run.jsonl
    python -m repro profile run.jsonl
    python -m repro bench --smoke --check
    python -m repro serve queries.jsonl --data data.csv -o responses.jsonl

CSV files written by :func:`repro.data.write_csv` carry their FACT roles
in metadata comments; for plain CSVs, declare roles with the flags.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

from repro.confidentiality.anonymity import MondrianAnonymizer
from repro.confidentiality.pseudonym import Pseudonymizer
from repro.confidentiality.risk import assess_risk
from repro.confidentiality.synthesis import MarginalSynthesizer
from repro.core import FACTAuditor, FACTPolicy, build_scorecard
from repro.data.io import read_csv, write_csv
from repro.data.schema import ColumnRole
from repro.data.split import three_way_split
from repro.exceptions import ReproError
from repro.learn.linear import LogisticRegression
from repro.obs import (
    read_telemetry,
    render_audit_tail,
    render_cache_summary,
    render_metrics_table,
    render_profile,
    render_span_tree,
)
from repro.learn.table_model import TableClassifier
from repro.serve import QueryServer, ServeConfig
from repro.transparency.datasheet import build_datasheet


def _load(path: str, args) -> "Table":  # noqa: F821 - doc only
    table = read_csv(path)
    for name in getattr(args, "sensitive", None) or []:
        table = table.with_role(name, ColumnRole.SENSITIVE)
    for name in getattr(args, "quasi", None) or []:
        table = table.with_role(name, ColumnRole.QUASI_IDENTIFIER)
    for name in getattr(args, "identifier", None) or []:
        table = table.with_role(name, ColumnRole.IDENTIFIER)
    target = getattr(args, "target", None)
    if target:
        table = table.with_role(target, ColumnRole.TARGET)
    return table


def _cmd_audit(args) -> int:
    table = _load(args.data, args)
    rng = np.random.default_rng(args.seed)
    train, calibration, test = three_way_split(
        table, args.test_fraction, args.calibration_fraction, rng
    )
    model = TableClassifier(LogisticRegression()).fit(train)
    auditor = FACTAuditor(
        shards=args.shards, n_jobs=args.jobs, backend=args.backend
    )
    report = auditor.audit(
        model, test, rng, calibration=calibration, subject=args.data
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        violations = FACTPolicy().check(report)
        return 1 if violations and args.strict else 0
    print(report.render())
    print()
    print(build_scorecard(report).render())
    violations = FACTPolicy().check(report)
    print(f"\npolicy violations: {len(violations)}")
    for violation in violations:
        print(f"  - {violation.render()}")
    return 1 if violations and args.strict else 0


def _cmd_datasheet(args) -> int:
    table = _load(args.data, args)
    sheet = build_datasheet(
        table, name=args.name or args.data,
        provenance=f"loaded from {args.data}",
    )
    print(sheet.render())
    return 0


def _cmd_anonymize(args) -> int:
    table = _load(args.data, args)
    if not table.schema.quasi_identifier_names:
        print("error: declare quasi-identifiers with --quasi", file=sys.stderr)
        return 2
    print("before:", assess_risk(table).render())
    released = table
    if table.schema.identifier_names:
        released = Pseudonymizer().pseudonymize(released)
    released = MondrianAnonymizer(k=args.k).anonymize(released)
    print("after: ", assess_risk(released).render())
    if args.output:
        write_csv(released, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_synthesize(args) -> int:
    table = _load(args.data, args)
    rng = np.random.default_rng(args.seed)
    synthesizer = MarginalSynthesizer(epsilon=args.epsilon).fit(table, rng)
    synthetic = synthesizer.sample(args.rows or table.n_rows, rng)
    print(f"synthesised {synthetic.n_rows} rows at epsilon={args.epsilon:g}")
    if args.output:
        write_csv(synthetic, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_join(args) -> int:
    from repro.relational import inner_join, left_join, proxy_scan

    left = _load(args.data, args)
    right = read_csv(args.right)
    for name in args.right_sensitive or []:
        right = right.with_role(name, ColumnRole.SENSITIVE)
    kernel = inner_join if args.how == "inner" else left_join
    joined = kernel(
        left, right, args.on,
        right_on=args.right_on or None, suffix=args.suffix,
    )
    print(f"joined {left.n_rows} x {right.n_rows} -> {joined.n_rows} rows")
    for spec in joined.schema:
        print(f"  {spec.name}: {spec.ctype.value} [{spec.role.value}]")
    if args.scan:
        scan = proxy_scan(
            joined, subject=f"{args.data} {args.how}-join {args.right}"
        )
        print()
        print(scan.render())
        joined = scan.apply(joined)
    if args.output:
        write_csv(joined, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_telemetry(args) -> int:
    records = read_telemetry(args.run)
    print(render_span_tree(records))
    cache_summary = render_cache_summary(records)
    if cache_summary:
        print()
        print(cache_summary)
    print()
    print(render_metrics_table(records))
    if any(record.get("record") == "audit" for record in records):
        print()
        print(render_audit_tail(records, last=args.audit_tail))
    return 0


def _cmd_profile(args) -> int:
    records = read_telemetry(args.run)
    print(render_profile(records, top=args.top))
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import SUITE, run_suite

    if args.list:
        for name, spec in sorted(SUITE.items()):
            print(f"{name}: {spec.description}")
        return 0
    return run_suite(
        names=args.benchmarks or None, smoke=args.smoke, runs=args.runs,
        warmup=args.warmup, directory=args.dir, check=args.check,
        tolerance=args.tolerance, handicap_s=args.handicap,
        append=not args.no_append,
    )


def _cmd_serve(args) -> int:
    table = _load(args.data, args)
    table_name = args.table_name or os.path.splitext(
        os.path.basename(args.data)
    )[0]

    config = ServeConfig(
        workers=args.workers, seed=args.seed,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        max_queue_depth=args.max_queue_depth,
        default_deadline_ms=args.deadline_ms,
        rate_limit=args.rate_limit, rate_window_s=args.window,
        max_inflight=args.max_inflight,
        cache=not args.no_cache,
        default_epsilon_budget=args.epsilon_budget,
        default_delta_budget=args.delta_budget,
    )
    server = QueryServer(config)
    server.register_table(table_name, table)

    requests: list[dict] = []
    with open(args.queries) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                requests.append(json.loads(line))
            except json.JSONDecodeError as error:
                print(f"error: {args.queries}:{line_number}: {error}",
                      file=sys.stderr)
                return 2

    with server:
        results = server.submit_batch(requests)

    out = open(args.output, "w") if args.output else sys.stdout
    try:
        for result in results:
            out.write(json.dumps(result.to_dict()) + "\n")
    finally:
        if args.output:
            out.close()

    stats = server.stats()
    summary = ", ".join(
        f"{status}={count}" for status, count in sorted(stats["statuses"].items())
    )
    print(f"served {len(results)} queries: {summary}", file=sys.stderr)
    if stats["cache"] is not None:
        cache = stats["cache"]
        print(
            f"cache: {cache['hits']:.0f} hits / {cache['misses']:.0f} misses "
            f"(hit rate {cache['hit_rate']:.0%}), "
            f"epsilon saved by replay: "
            f"{sum(r.epsilon_charged == 0.0 and r.ok for r in results)} queries free",
            file=sys.stderr,
        )
    for tenant, budget in sorted(stats["tenants"].items()):
        print(
            f"tenant {tenant}: ε spent {budget['epsilon_spent']:.4g}, "
            f"remaining {budget['epsilon_remaining']:.4g} "
            f"({budget['ledger_entries']} ledger entries)",
            file=sys.stderr,
        )
    if args.output:
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Responsible Data Science (FACT) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("data", help="CSV file to operate on")
        p.add_argument("--target", help="TARGET column name")
        p.add_argument("--sensitive", action="append",
                       help="SENSITIVE column (repeatable)")
        p.add_argument("--quasi", action="append",
                       help="QUASI_IDENTIFIER column (repeatable)")
        p.add_argument("--identifier", action="append",
                       help="IDENTIFIER column (repeatable)")
        p.add_argument("--seed", type=int, default=0)

    audit = sub.add_parser("audit", help="run the four-pillar FACT audit")
    add_common(audit)
    audit.add_argument("--test-fraction", type=float, default=0.25)
    audit.add_argument("--calibration-fraction", type=float, default=0.15)
    audit.add_argument("--strict", action="store_true",
                       help="exit non-zero on policy violations")
    audit.add_argument("--json", action="store_true",
                       help="emit the report as JSON instead of text")
    audit.add_argument("--shards", type=int, default=None,
                       help="partition the test split into N row-range "
                            "shards and audit map/combine (byte-identical "
                            "to the serial path)")
    audit.add_argument("--jobs", type=int, default=None,
                       help="worker fan-out (default: $REPRO_N_JOBS)")
    audit.add_argument("--backend", choices=("thread", "process"),
                       default="thread",
                       help="fan-out backend; process dispatches shard "
                            "map tasks as real subprocesses")
    audit.set_defaults(handler=_cmd_audit)

    datasheet = sub.add_parser("datasheet", help="render a dataset datasheet")
    add_common(datasheet)
    datasheet.add_argument("--name", help="dataset display name")
    datasheet.set_defaults(handler=_cmd_datasheet)

    anonymize = sub.add_parser(
        "anonymize", help="k-anonymise quasi-identifiers (Mondrian)"
    )
    add_common(anonymize)
    anonymize.add_argument("-k", type=int, default=5)
    anonymize.add_argument("-o", "--output", help="write the release here")
    anonymize.set_defaults(handler=_cmd_anonymize)

    synthesize = sub.add_parser(
        "synthesize", help="release an epsilon-DP synthetic table"
    )
    add_common(synthesize)
    synthesize.add_argument("--epsilon", type=float, default=1.0)
    synthesize.add_argument("--rows", type=int,
                            help="rows to sample (default: input size)")
    synthesize.add_argument("-o", "--output", help="write the release here")
    synthesize.set_defaults(handler=_cmd_synthesize)

    join = sub.add_parser(
        "join",
        help="join two CSV tables with FACT role propagation",
    )
    add_common(join)
    join.add_argument("right", help="right-side CSV file")
    join.add_argument("--on", action="append", required=True,
                      help="join key column (repeatable for composite keys)")
    join.add_argument("--right-on", action="append",
                      help="right-side key column names (default: --on)")
    join.add_argument("--how", choices=("inner", "left"), default="inner")
    join.add_argument("--suffix", default="_r",
                      help="suffix for colliding right columns (default _r)")
    join.add_argument("--right-sensitive", action="append",
                      help="SENSITIVE column on the right side (repeatable)")
    join.add_argument("--scan", action="store_true",
                      help="proxy-scan the join output and quarantine "
                           "flagged columns")
    join.add_argument("-o", "--output", help="write the joined table here")
    join.set_defaults(handler=_cmd_join)

    telemetry = sub.add_parser(
        "telemetry",
        help="render an exported telemetry file (span tree + metrics)",
    )
    telemetry.add_argument("run", help="telemetry JSONL file (repro.obs export)")
    telemetry.add_argument("--audit-tail", type=int, default=10,
                           help="audit events to show (default 10)")
    telemetry.set_defaults(handler=_cmd_telemetry)

    profile = sub.add_parser(
        "profile",
        help="profile an exported run: hot nodes, critical path, "
             "cache/parallel efficiency",
    )
    profile.add_argument("run", help="telemetry JSONL file (repro.obs export)")
    profile.add_argument("--top", type=int, default=20,
                         help="hot-node rows to show (default 20)")
    profile.set_defaults(handler=_cmd_profile)

    bench = sub.add_parser(
        "bench",
        help="run the benchmark suite and append BENCH_*.json trajectories",
    )
    bench.add_argument("benchmarks", nargs="*",
                       help="benchmark names (default: the whole suite)")
    bench.add_argument("--list", action="store_true",
                       help="list the suite's benchmarks and exit")
    bench.add_argument("--smoke", action="store_true",
                       help="CI-sized quick variant")
    bench.add_argument("--check", action="store_true",
                       help="exit non-zero on regression vs. the latest "
                            "same-mode baseline")
    bench.add_argument("--runs", type=int, default=None,
                       help="measured runs per benchmark "
                            "(default: 3 smoke / 5 full)")
    bench.add_argument("--warmup", type=int, default=1,
                       help="untimed warmup runs (default 1)")
    bench.add_argument("--tolerance", type=float, default=0.20,
                       help="relative regression tolerance (default 0.20)")
    bench.add_argument("--dir", default=".",
                       help="directory holding BENCH_*.json (default: cwd)")
    bench.add_argument("--no-append", action="store_true",
                       help="measure and gate without writing trajectories")
    bench.add_argument("--handicap", type=float, default=0.0,
                       metavar="SECONDS",
                       help="inject a sleep into every timed run "
                            "(regression-gate self-test)")
    bench.set_defaults(handler=_cmd_bench)

    serve = sub.add_parser(
        "serve",
        help="answer a JSONL batch of DP queries against a CSV table",
    )
    serve.add_argument("queries",
                       help="JSONL file: one QueryRequest object per line")
    serve.add_argument("--data", required=True, help="CSV table to serve")
    serve.add_argument("--table-name",
                       help="name requests refer to (default: file stem)")
    serve.add_argument("--sensitive", action="append",
                       help="SENSITIVE column (repeatable)")
    serve.add_argument("--quasi", action="append",
                       help="QUASI_IDENTIFIER column (repeatable)")
    serve.add_argument("--identifier", action="append",
                       help="IDENTIFIER column (repeatable)")
    serve.add_argument("--epsilon-budget", type=float, default=1.0,
                       help="per-tenant epsilon budget (default 1.0)")
    serve.add_argument("--delta-budget", type=float, default=0.0)
    serve.add_argument("--workers", type=int, default=4,
                       help="worker threads (default 4)")
    serve.add_argument("--batch-window-ms", type=float, default=0.0,
                       help="coalesce compatible queries for up to this "
                            "many ms into one vectorized release "
                            "(default 0: unbatched)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="flush a coalesced group early at this size "
                            "(default 64)")
    serve.add_argument("--max-queue-depth", type=int, default=4096,
                       help="bounded admission queue; beyond it requests "
                            "are shed with rejected_overload (default 4096)")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       help="default per-request deadline; expired requests "
                            "are shed before costing any epsilon")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the DP answer cache (every query pays)")
    serve.add_argument("--rate-limit", type=int,
                       help="max admissions per tenant per window")
    serve.add_argument("--window", type=float, default=1.0,
                       help="rate-limit window in seconds (default 1.0)")
    serve.add_argument("--max-inflight", type=int,
                       help="global cap on concurrently executing queries")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("-o", "--output",
                       help="write JSONL responses here (default: stdout)")
    serve.set_defaults(handler=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
