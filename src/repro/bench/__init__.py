"""``repro.bench`` — benchmark harness + machine-readable perf trajectory.

The observability counterpart to :mod:`repro.obs`: where ``obs`` records
*one run's* spans and metrics, ``bench`` records how the system's speed
moves *across commits*.  Four pieces:

* :class:`BenchHarness` (:mod:`repro.bench.harness`) — warmup + N
  measured runs of a callable; median/p90 wall, CPU, peak RSS, cache
  counter deltas.
* :mod:`repro.bench.trajectory` — ``BENCH_<name>.json`` append-per-run
  history files (commit, timestamp, environment fingerprint, metrics)
  plus session-capped rotation for the benches' ``telemetry.jsonl``.
* :func:`compare` (:mod:`repro.bench.compare`) — the regression gate:
  >20% slower than the latest same-mode baseline (and past an absolute
  noise floor) fails.
* :data:`SUITE` / :func:`run_suite` (:mod:`repro.bench.suite`) — the
  named benchmarks behind ``python -m repro bench [--smoke] [--check]``.
"""

from repro.bench.compare import (
    DEFAULT_MIN_DELTA_S,
    DEFAULT_TOLERANCE,
    GATED_METRICS,
    CompareResult,
    MetricDelta,
    compare,
)
from repro.bench.harness import (
    BenchHarness,
    BenchResult,
    cache_counter_totals,
    rss_peak_kb,
)
from repro.bench.suite import (
    SEED,
    SUITE,
    BenchSpec,
    SuiteOutcome,
    run_once,
    run_suite,
)
from repro.bench.tools import format_table
from repro.bench.trajectory import (
    BENCH_PREFIX,
    SESSION_RECORD,
    TELEMETRY_PATH_ENV,
    BenchRecord,
    append_record,
    environment_fingerprint,
    git_commit,
    latest_baseline,
    load_trajectory,
    new_trajectory,
    rotate_jsonl_sessions,
    session_marker,
    trajectory_path,
)

__all__ = [
    "BENCH_PREFIX",
    "BenchHarness",
    "BenchRecord",
    "BenchResult",
    "BenchSpec",
    "CompareResult",
    "DEFAULT_MIN_DELTA_S",
    "DEFAULT_TOLERANCE",
    "GATED_METRICS",
    "MetricDelta",
    "SEED",
    "SESSION_RECORD",
    "SUITE",
    "SuiteOutcome",
    "TELEMETRY_PATH_ENV",
    "append_record",
    "cache_counter_totals",
    "compare",
    "environment_fingerprint",
    "format_table",
    "git_commit",
    "latest_baseline",
    "load_trajectory",
    "new_trajectory",
    "rotate_jsonl_sessions",
    "rss_peak_kb",
    "run_once",
    "run_suite",
    "session_marker",
    "trajectory_path",
]
