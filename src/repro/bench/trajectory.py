"""Machine-readable perf trajectory: ``BENCH_<name>.json`` files.

Performance is an audited, versioned artifact like any other release in
this toolkit: every harness run appends one record — commit, timestamp,
environment fingerprint, metrics — to a per-benchmark trajectory file,
so "did this PR make it slower?" is a question a CI job (or a human
with ``jq``) can answer from the repository alone.

The same module owns session-capped rotation for the benches' shared
``telemetry.jsonl`` (each append starts with a ``record="session"``
marker; rotation keeps the last N marker-delimited sessions).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field

from repro.exceptions import DataError

#: Trajectory files are ``BENCH_<name>.json`` at the repository root.
BENCH_PREFIX = "BENCH_"

#: Env override for where the benches append merged telemetry
#: (mirrors ``REPRO_N_JOBS`` / ``REPRO_STORE``).
TELEMETRY_PATH_ENV = "REPRO_TELEMETRY_PATH"

#: The JSONL record kind that delimits telemetry sessions.
SESSION_RECORD = "session"


def environment_fingerprint() -> dict[str, object]:
    """Where a measurement was taken — compared, not trusted, later."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.system().lower(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "n_jobs_env": os.environ.get("REPRO_N_JOBS") or None,
    }


def git_commit(cwd: str | None = None) -> str | None:
    """The short HEAD hash, or ``None`` outside a repository."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if output.returncode != 0:
        return None
    return output.stdout.strip() or None


@dataclass
class BenchRecord:
    """One benchmark invocation's measurements, trajectory-ready."""

    name: str
    metrics: dict[str, object]
    mode: str = "full"          # "smoke" | "full"
    runs: int = 1
    warmup: int = 0
    timestamp: float = 0.0
    commit: str | None = None
    environment: dict[str, object] = field(default_factory=dict)

    def stamp(self, cwd: str | None = None) -> "BenchRecord":
        """Fill timestamp/commit/environment in from the world."""
        self.timestamp = time.time()
        if self.commit is None:
            self.commit = git_commit(cwd)
        if not self.environment:
            self.environment = environment_fingerprint()
        return self

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name, "mode": self.mode,
            "timestamp": self.timestamp, "commit": self.commit,
            "environment": dict(self.environment),
            "runs": self.runs, "warmup": self.warmup,
            "metrics": dict(self.metrics),
        }


def trajectory_path(name: str, directory: str = ".") -> str:
    """``BENCH_<name>.json`` under ``directory``."""
    return os.path.join(directory, f"{BENCH_PREFIX}{name}.json")


def new_trajectory(name: str) -> dict[str, object]:
    return {"record": "bench-trajectory", "name": name, "runs": []}


def load_trajectory(path: str) -> dict[str, object]:
    """Parse a ``BENCH_*.json`` file (raises :class:`DataError` on garbage)."""
    if not os.path.exists(path):
        raise DataError(f"no trajectory file at {path!r}")
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise DataError(f"{path} is not a trajectory file: {error}") from None
    if (not isinstance(data, dict)
            or data.get("record") != "bench-trajectory"
            or not isinstance(data.get("runs"), list)):
        raise DataError(f"{path} is not a bench trajectory")
    return data


def append_record(path: str, record: BenchRecord,
                  max_runs: int = 200) -> dict[str, object]:
    """Append one run to the trajectory at ``path`` (created if absent).

    History is capped at ``max_runs`` most-recent entries so the file
    stays reviewable forever.  The write is atomic (temp file + rename).
    """
    if os.path.exists(path):
        trajectory = load_trajectory(path)
    else:
        trajectory = new_trajectory(record.name)
    trajectory["runs"].append(record.to_dict())
    trajectory["runs"] = trajectory["runs"][-max_runs:]
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return trajectory


def latest_baseline(trajectory: dict[str, object],
                    mode: str | None = None) -> dict[str, object] | None:
    """The most recent run record (matching ``mode`` when given)."""
    for run in reversed(trajectory.get("runs", [])):
        if mode is None or run.get("mode") == mode:
            return run
    return None


# -- telemetry session rotation ----------------------------------------------


def session_marker(label: str) -> dict[str, object]:
    """The JSONL record that opens one appended telemetry session."""
    return {"record": SESSION_RECORD, "t": time.time(), "label": label}


def rotate_jsonl_sessions(path: str, max_sessions: int) -> int:
    """Keep only the last ``max_sessions`` marker-delimited sessions.

    Content before the first marker (files from before markers existed)
    counts as one legacy session.  Returns the number of sessions kept.
    A missing file is zero sessions, not an error.
    """
    if max_sessions < 1:
        raise DataError("max_sessions must be >= 1")
    if not os.path.exists(path):
        return 0
    with open(path) as handle:
        lines = handle.readlines()
    starts = []
    for index, line in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and record.get("record") == SESSION_RECORD:
            starts.append(index)
    if starts and starts[0] > 0:
        starts.insert(0, 0)  # legacy pre-marker content is a session
    if not starts:
        return 1 if lines else 0
    if len(starts) <= max_sessions:
        return len(starts)
    cut = starts[len(starts) - max_sessions]
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        handle.writelines(lines[cut:])
    os.replace(tmp, path)
    return max_sessions
