"""The regression gate: ``compare(baseline, current, tolerance)``.

Gated metrics are the medians (``wall_s_median``, ``cpu_s_median``) —
p90/min ride along in the trajectory for humans but do not gate, being
too noisy at benchmark-sized N.  A regression needs **both**:

* relative: ``current > baseline * (1 + tolerance)`` — strictly
  greater, so landing exactly on the boundary passes, and
* absolute: ``current - baseline > min_delta_s`` — a noise floor so a
  3 ms benchmark cannot fail CI over a 1 ms scheduler hiccup.

Improvements are flagged symmetrically (they never fail the gate; they
are a hint to re-baseline so the gate tightens).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import DataError

#: Metrics the gate checks, in report order.
GATED_METRICS = ("wall_s_median", "cpu_s_median")

#: Default relative tolerance: >20% slower fails.
DEFAULT_TOLERANCE = 0.20

#: Default absolute noise floor in seconds.
DEFAULT_MIN_DELTA_S = 0.02


@dataclass
class MetricDelta:
    """One gated metric's baseline-vs-current movement."""

    metric: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    def render(self) -> str:
        return (f"{self.metric}: {self.baseline:.4f}s -> "
                f"{self.current:.4f}s ({self.ratio:.2f}x baseline)")


@dataclass
class CompareResult:
    """Gate verdict for one benchmark."""

    name: str
    regressions: list[MetricDelta] = field(default_factory=list)
    improvements: list[MetricDelta] = field(default_factory=list)
    checked: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def _metrics_of(record: dict) -> dict:
    """Accept a trajectory run record or a bare metrics dict."""
    if not isinstance(record, dict):
        raise DataError("compare() needs dict records")
    inner = record.get("metrics")
    return inner if isinstance(inner, dict) else record


def compare(baseline: dict, current: dict,
            tolerance: float = DEFAULT_TOLERANCE,
            min_delta_s: float = DEFAULT_MIN_DELTA_S,
            metrics: tuple[str, ...] = GATED_METRICS,
            name: str = "") -> CompareResult:
    """Gate ``current`` against ``baseline`` (see module docstring).

    Either argument may be a full trajectory run record (its
    ``metrics`` are used) or a metrics dict directly.  Metrics missing
    on either side, or with a non-positive baseline, are skipped — a
    new metric must never fail an old baseline.
    """
    if tolerance < 0:
        raise DataError("tolerance must be >= 0")
    base = _metrics_of(baseline)
    cur = _metrics_of(current)
    result = CompareResult(name=name or str(current.get("name", "")))
    for metric in metrics:
        base_value = base.get(metric)
        cur_value = cur.get(metric)
        if (not isinstance(base_value, (int, float))
                or not isinstance(cur_value, (int, float))
                or base_value <= 0):
            result.skipped.append(metric)
            continue
        result.checked.append(metric)
        delta = MetricDelta(metric, float(base_value), float(cur_value))
        if (cur_value > base_value * (1.0 + tolerance)
                and cur_value - base_value > min_delta_s):
            result.regressions.append(delta)
        elif (cur_value < base_value * (1.0 - tolerance)
                and base_value - cur_value > min_delta_s):
            result.improvements.append(delta)
    return result
