"""Small shared helpers for the benchmark layer.

``format_table`` used to live in ``benchmarks/_tools.py``; it is
promoted here so the in-package suite, the CLI, and the experiment
benches all render the same fixed-width tables.
"""

from __future__ import annotations

from typing import Sequence


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table (the shape the paper's tables would have)."""
    rendered_rows = [
        ["-" if value is None
         else f"{value:.4f}" if isinstance(value, float) else str(value)
         for value in row]
        for row in rows
    ]
    widths = [
        max(len(str(headers[index])),
            *(len(row[index]) for row in rendered_rows))
        for index in range(len(headers))
    ] if rendered_rows else [len(str(h)) for h in headers]
    lines = [f"== {title} =="]
    lines.append("  ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    ))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(
            cell.ljust(width) for cell, width in zip(row, widths)
        ))
    return "\n".join(lines)
