"""The named benchmark suite behind ``python -m repro bench``.

One benchmark per hot path the ROADMAP cares about:

* ``audit`` — a cold FACT audit (resampling + engine + store writes),
* ``pipeline`` — the redact/flag/filter pipeline over an
  Internet-Minute event stream (table-op throughput),
* ``relational`` — the three-table lending join + group aggregate
  (the :mod:`repro.relational` kernel path),
* ``learn`` — the hot numeric kernels (presorted tree/forest fits,
  blocked k-NN search, fused-Adam MLP training),
* ``serve`` — a cached multi-tenant DP query workload (serving layer),
* ``serve_load`` — the Zipf-tenant bursty-arrival load generator
  against the async batched server, with sustained queries/sec and
  latency percentiles recorded alongside the harness timings.

Each run appends to its ``BENCH_<name>.json`` perf trajectory and, with
``check=True``, is gated against the latest same-mode baseline by
:func:`repro.bench.compare.compare`.  ``--smoke`` sizes finish in a few
seconds total so CI can run the gate on every push.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.bench.compare import (
    DEFAULT_MIN_DELTA_S,
    DEFAULT_TOLERANCE,
    CompareResult,
    compare,
)
from repro.bench.harness import BenchHarness, BenchResult
from repro.bench.tools import format_table
from repro.bench.trajectory import (
    BenchRecord,
    append_record,
    latest_baseline,
    load_trajectory,
    trajectory_path,
)
from repro.exceptions import DataError

#: Shared benchmark seed (the paper's publication date).
SEED = 20170626


@dataclass(frozen=True)
class BenchSpec:
    """One named benchmark: setup builds the measured callable.

    ``payload_metrics``, when set, maps the benched callable's last
    return value to extra trajectory metrics (e.g. the serving
    workload's sustained queries/sec) merged into the record alongside
    the harness timings.
    """

    name: str
    description: str
    setup: Callable[[bool], Callable[[], object]]
    payload_metrics: Callable[[object], dict] | None = None


def _setup_audit(smoke: bool) -> Callable[[], object]:
    import numpy as np

    from repro.core.auditor import FACTAuditor
    from repro.data.synth import CreditScoringGenerator
    from repro.learn.linear import LogisticRegression
    from repro.learn.table_model import TableClassifier
    from repro.store import ArtifactStore

    n_train, n_test, n_bootstrap = (
        (1000, 700, 250) if smoke else (4000, 2400, 900)
    )
    rng = np.random.default_rng(SEED)
    generator = CreditScoringGenerator(label_bias=0.3, proxy_strength=0.8)
    train, test = generator.generate_pair(n_train, n_test, rng)
    mask = np.arange(test.n_rows) < test.n_rows // 3
    calibration, held_out = test.filter(mask), test.filter(~mask)
    model = TableClassifier(LogisticRegression()).fit(train)

    def run_audit():
        # A fresh store every call keeps the run cold (all misses) while
        # still exercising the store-write path the engine uses.
        auditor = FACTAuditor(n_bootstrap=n_bootstrap, n_jobs=1,
                              backend="serial",
                              store=ArtifactStore.in_memory())
        return auditor.audit(model, held_out,
                             np.random.default_rng(SEED + 1),
                             calibration=calibration)

    return run_audit


def _setup_sharded_audit(smoke: bool) -> Callable[[], object]:
    import numpy as np

    from repro.core.auditor import FACTAuditor
    from repro.data.partition import PartitionedTable
    from repro.data.synth import CreditScoringGenerator
    from repro.learn.linear import LogisticRegression
    from repro.learn.table_model import TableClassifier
    from repro.store import ArtifactStore

    n_train, rows_per_shard, n_bootstrap = (
        (1000, 1200, 60) if smoke else (4000, 8000, 250)
    )
    n_shards = 4
    rng = np.random.default_rng(SEED)
    generator = CreditScoringGenerator(label_bias=0.3, proxy_strength=0.8)
    train = generator.generate(n_train, rng)
    test = generator.generate(rows_per_shard * n_shards, rng)
    model = TableClassifier(LogisticRegression()).fit(train)
    parts = PartitionedTable.partition(test, n_shards=n_shards)
    # The serial report's fingerprint is the contract: every measured
    # sharded run must reproduce it bit for bit, or the bench *fails*
    # rather than records a time for a wrong answer.
    reference = FACTAuditor(n_bootstrap=n_bootstrap).audit(
        model, test, np.random.default_rng(SEED + 1)
    ).fingerprint()

    def run_sharded_audit():
        auditor = FACTAuditor(n_bootstrap=n_bootstrap, n_jobs=2,
                              backend="process",
                              store=ArtifactStore.in_memory())
        report = auditor.audit(model, parts, np.random.default_rng(SEED + 1))
        if report.fingerprint() != reference:
            raise DataError(
                "sharded audit fingerprint diverged from the serial report"
            )
        return report

    return run_sharded_audit


def _setup_pipeline(smoke: bool) -> Callable[[], object]:
    import numpy as np

    from repro.data.schema import ColumnRole, numeric
    from repro.data.synth import InternetMinuteGenerator
    from repro.pipeline import FunctionStage, Pipeline, RedactStage

    scale, minutes = (4e-4, 4) if smoke else (1.2e-3, 8)
    rng = np.random.default_rng(SEED)
    stream = InternetMinuteGenerator(
        scale=scale, minutes=minutes
    ).generate_stream(rng)

    def add_size_flag(table):
        flag = (table["payload_bytes"] > 1000.0).astype(float)
        return table.with_column(
            numeric("large_payload", role=ColumnRole.METADATA), flag
        )

    def keep_eu(table):
        return table.filter(table["region"] == "eu")

    pipeline = Pipeline([
        RedactStage(),
        FunctionStage("flag_large", add_size_flag),
        FunctionStage("filter_eu", keep_eu),
    ], provenance="stage")

    def run_pipeline():
        return pipeline.run(stream, np.random.default_rng(SEED))

    return run_pipeline


def _setup_relational(smoke: bool) -> Callable[[], object]:
    import numpy as np

    from repro.data.synth import LendingRelationalGenerator
    from repro.relational import group_aggregate, inner_join

    n_applicants = 2000 if smoke else 10_000
    rng = np.random.default_rng(SEED)
    dataset = LendingRelationalGenerator().generate_dataset(
        n_applicants, rng
    )

    def run_relational():
        flat = inner_join(
            dataset.join("applications", "applicants"),
            dataset.table("zones"), "zone_id",
        )
        return group_aggregate(flat, ["group", "zone_id"], {
            "n": "count",
            "approval": ("approved", "mean"),
            "income": ("income", "mean"),
        })

    return run_relational


def _setup_learn(smoke: bool) -> Callable[[], object]:
    import numpy as np

    from repro.learn.forest import RandomForestClassifier
    from repro.learn.mlp import MLPClassifier
    from repro.learn.neighbors import nearest_indices
    from repro.learn.tree import DecisionTreeClassifier

    n_train, n_query, n_trees, epochs = (
        (1500, 400, 4, 3) if smoke else (6000, 1500, 8, 6)
    )
    rng = np.random.default_rng(SEED)
    X = rng.standard_normal((n_train, 12))
    logits = X[:, 0] - 0.7 * X[:, 1] + 0.5 * X[:, 2] * X[:, 3]
    y = (logits + 0.3 * rng.standard_normal(n_train) > 0).astype(float)
    queries = rng.standard_normal((n_query, 12))

    def run_learn():
        tree = DecisionTreeClassifier(max_depth=8,
                                      min_samples_leaf=5).fit(X, y)
        forest = RandomForestClassifier(n_trees=n_trees, max_depth=6,
                                        seed=SEED).fit(X, y)
        mlp = MLPClassifier(hidden=(32, 16), epochs=epochs, batch_size=64,
                            seed=SEED).fit(X, y)
        return (
            tree.predict_proba(queries),
            forest.predict_proba(queries),
            nearest_indices(queries, X, 10),
            mlp.predict_proba(queries),
        )

    return run_learn


def _setup_serve(smoke: bool) -> Callable[[], object]:
    import numpy as np

    from repro.data.synth import CensusIncomeGenerator
    from repro.serve import QueryRequest, QueryServer, ServeConfig

    n_rows, n_requests = (8000, 200) if smoke else (20_000, 500)
    tenants = ("ads", "health", "policy")
    rng = np.random.default_rng(SEED)
    table = CensusIncomeGenerator().generate(n_rows, rng)
    templates = [
        dict(kind="count", epsilon=0.02),
        dict(kind="mean", column="age", lower=18.0, upper=80.0,
             epsilon=0.05),
        dict(kind="mean", column="hours_per_week", lower=0.0, upper=100.0,
             epsilon=0.05),
        dict(kind="count", epsilon=0.1),
    ]
    ranks = np.arange(1, len(templates) + 1, dtype=np.float64)
    probabilities = ranks ** -1.2
    probabilities /= probabilities.sum()
    choices = rng.choice(len(templates), size=n_requests, p=probabilities)
    requests = [
        QueryRequest(tenant=tenants[i % len(tenants)], **templates[choice])
        for i, choice in enumerate(choices)
    ]

    def run_serve():
        server = QueryServer(ServeConfig(workers=2, seed=SEED, cache=True))
        server.register_table("census", table)
        for tenant in tenants:
            server.register_tenant(tenant, epsilon_budget=1000.0)
        with server:
            results = server.submit_batch(requests)
        if not all(result.ok for result in results):
            raise DataError("serve benchmark workload overran its budget")
        return results

    return run_serve


def _setup_serve_load(smoke: bool) -> Callable[[], object]:
    import numpy as np

    from repro.data.synth import CensusIncomeGenerator
    from repro.serve import QueryServer, ServeConfig
    from repro.serve.loadgen import TABLE_NAME, run_load, zipf_workload

    n_rows, n_queries = (2000, 4000) if smoke else (5000, 40_000)
    table = CensusIncomeGenerator().generate(
        n_rows, np.random.default_rng(SEED)
    )
    requests = zipf_workload(n_queries, n_tenants=16, n_shapes=64,
                             zipf_s=1.2, seed=SEED)
    # Open-loop load generation: the whole workload is submitted ahead
    # of the drain, so the bounded queue must hold it all — shedding is
    # exercised by the serve tests, not the throughput bench.
    config = ServeConfig(workers=2, seed=SEED, batch_window_ms=2.0,
                         max_queue_depth=max(4096, n_queries),
                         default_epsilon_budget=1e9)

    def run_serve_load():
        with QueryServer(config) as server:
            server.register_table(TABLE_NAME, table)
            report = run_load(server, requests, mean_burst=256, seed=SEED)
        if report.statuses.get("ok") != report.queries:
            raise DataError(
                f"serve_load expected all-ok, got {report.statuses}"
            )
        return report

    return run_serve_load


def _serve_load_metrics(report) -> dict:
    return {
        "qps": round(report.qps, 1),
        "queries": report.queries,
        "latency_ms": {key: round(value, 3)
                       for key, value in report.latency_ms.items()},
        "coalesced": report.batching["coalesced"],
        "batches": report.batching["batches"],
    }


SUITE: dict[str, BenchSpec] = {
    "audit": BenchSpec(
        "audit", "cold FACT audit (resampling + engine + store)",
        _setup_audit,
    ),
    "sharded_audit": BenchSpec(
        "sharded_audit",
        "cold sharded FACT audit (4 map tasks + combine, process backend)",
        _setup_sharded_audit,
    ),
    "pipeline": BenchSpec(
        "pipeline", "redact/flag/filter over an Internet-Minute stream",
        _setup_pipeline,
    ),
    "relational": BenchSpec(
        "relational", "three-table join + group aggregate (lending dataset)",
        _setup_relational,
    ),
    "learn": BenchSpec(
        "learn", "hot learn kernels: tree/forest fits, k-NN search, MLP",
        _setup_learn,
    ),
    "serve": BenchSpec(
        "serve", "cached multi-tenant DP query workload",
        _setup_serve,
    ),
    "serve_load": BenchSpec(
        "serve_load", "Zipf-tenant bursty load on the async batched server",
        _setup_serve_load,
        payload_metrics=_serve_load_metrics,
    ),
}


def run_once(name: str, fn: Callable[[], object], *,
             mode: str = "experiment", runs: int = 3, warmup: int = 1,
             directory: str = ".", metrics: dict | None = None,
             append: bool = True) -> BenchRecord:
    """Measure one callable and append a record to its trajectory.

    The fixture-free counterpart of :func:`run_suite` for standalone
    experiment scripts (the ``benchmarks/bench_e*.py`` family): harness
    the callable, merge any caller-supplied ``metrics`` (e.g. speedup
    ratios) into the measured ones, stamp the record, and append it to
    ``BENCH_<name>.json`` under ``directory``.  The default
    ``mode="experiment"`` keeps these records out of the smoke/full
    regression gate (``latest_baseline`` filters by mode) while still
    tracking them across commits.
    """
    harness = BenchHarness(name, runs=runs, warmup=warmup)
    result = harness.run(fn)
    combined: dict[str, object] = dict(result.metrics)
    if metrics:
        combined.update(metrics)
    record = BenchRecord(name=name, metrics=combined, mode=mode,
                         runs=runs, warmup=warmup).stamp(cwd=directory)
    if append:
        append_record(trajectory_path(name, directory), record)
    return record


@dataclass
class SuiteOutcome:
    """One benchmark's result + gate verdict within a suite run."""

    spec: BenchSpec
    result: BenchResult
    record: BenchRecord
    comparison: CompareResult | None   # None: gate off or no baseline


def run_suite(names=None, smoke: bool = False, runs: int | None = None,
              warmup: int = 1, directory: str = ".", check: bool = False,
              tolerance: float = DEFAULT_TOLERANCE,
              min_delta_s: float = DEFAULT_MIN_DELTA_S,
              handicap_s: float = 0.0, append: bool = True,
              out: Callable[[str], None] = print) -> int:
    """Run (a subset of) the suite; returns a process exit code.

    0 on success, 1 when ``check=True`` found a regression against the
    latest same-mode baseline in the ``BENCH_*.json`` trajectories under
    ``directory``.  Unknown names raise :class:`DataError` up front.
    """
    from repro import obs

    selected = list(names) if names else list(SUITE)
    unknown = [name for name in selected if name not in SUITE]
    if unknown:
        raise DataError(
            f"unknown benchmark(s) {unknown}; "
            f"known: {', '.join(sorted(SUITE))}"
        )
    if runs is None:
        runs = 3 if smoke else 5
    mode = "smoke" if smoke else "full"

    outcomes: list[SuiteOutcome] = []
    for name in selected:
        spec = SUITE[name]
        telemetry = obs.configure(clock=obs.WallClock())
        try:
            fn = spec.setup(smoke)
            harness = BenchHarness(name, runs=runs, warmup=warmup,
                                   handicap_s=handicap_s)
            result = harness.run(fn, telemetry=telemetry)
        finally:
            obs.reset()
        metrics = dict(result.metrics)
        if spec.payload_metrics is not None:
            metrics.update(spec.payload_metrics(result.payload))
        record = BenchRecord(name=name, metrics=metrics, mode=mode,
                             runs=runs, warmup=warmup).stamp(cwd=directory)

        comparison = None
        path = trajectory_path(name, directory)
        if check:
            try:
                baseline = latest_baseline(load_trajectory(path), mode)
            except DataError:
                baseline = None
            if baseline is not None:
                comparison = compare(baseline, record.to_dict(),
                                     tolerance=tolerance,
                                     min_delta_s=min_delta_s, name=name)
        if append:
            append_record(path, record)
        outcomes.append(SuiteOutcome(spec, result, record, comparison))

    _report(outcomes, mode, check, tolerance, out)
    failed = [o for o in outcomes if o.comparison and not o.comparison.ok]
    return 1 if failed else 0


def _verdict(outcome: SuiteOutcome, check: bool) -> str:
    if not check:
        return "-"
    if outcome.comparison is None:
        return "no baseline"
    if outcome.comparison.ok:
        return "ok"
    return "REGRESSION"


def _report(outcomes, mode, check, tolerance, out) -> None:
    rows = []
    for outcome in outcomes:
        metrics = outcome.record.metrics
        cache = metrics.get("cache") or {}
        rss = metrics.get("rss_peak_kb")
        rows.append([
            outcome.spec.name,
            metrics.get("wall_s_median"),
            metrics.get("wall_s_p90"),
            metrics.get("cpu_s_median"),
            None if rss is None else int(rss),
            f"{cache.get('hits', 0)}/{cache.get('misses', 0)}",
            _verdict(outcome, check),
        ])
    title = (f"repro bench ({mode}, {len(outcomes)} benchmark(s)"
             + (f", gate ±{tolerance:.0%}" if check else "") + ")")
    out(format_table(
        title,
        ["benchmark", "wall_s_med", "wall_s_p90", "cpu_s_med",
         "rss_kb", "cache h/m", "gate"],
        rows,
    ))
    for outcome in outcomes:
        comparison = outcome.comparison
        if comparison is None:
            continue
        for delta in comparison.regressions:
            out(f"REGRESSION {outcome.spec.name}: {delta.render()}")
        for delta in comparison.improvements:
            out(f"improvement {outcome.spec.name}: {delta.render()}")
