"""``BenchHarness`` — run a benchmark N times, measure, summarize.

One harness invocation produces one metrics dict in the shape every
``BENCH_*.json`` trajectory record carries:

* ``wall_s_median`` / ``wall_s_p90`` / ``wall_s_min`` — per-run wall
  seconds (``time.perf_counter``),
* ``cpu_s_median`` — per-run process CPU seconds (``time.process_time``;
  whole-process on purpose, so parallel backends are charged for the
  cores they burn),
* ``rss_peak_kb`` — process high-water RSS (``resource.getrusage``),
* ``alloc_peak_kb`` — optional ``tracemalloc`` peak from one extra
  instrumented run,
* ``cache`` — hit/miss counter deltas read from the active telemetry,
  when one is configured.

``handicap_s`` injects a sleep *inside* every timed region.  That is the
regression gate's self-test: ``python -m repro bench --check --handicap
0.5`` must exit nonzero, proving the gate can actually trip.
"""

from __future__ import annotations

import statistics
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import DataError

try:
    import resource
except ImportError:          # non-POSIX: RSS just goes unreported
    resource = None

#: Counter names summed into the ``cache`` metric (across all labels).
CACHE_COUNTERS = {
    "hits": ("store.hits", "serve.cache.hits"),
    "misses": ("store.misses", "serve.cache.misses"),
    "uncacheable": ("store.uncacheable",),
}


def rss_peak_kb() -> float | None:
    """Process high-water RSS in KiB, or ``None`` where unsupported."""
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    import sys
    if sys.platform == "darwin":    # ru_maxrss is bytes on macOS
        peak /= 1024.0
    return float(peak)


def cache_counter_totals(telemetry) -> dict[str, int]:
    """Sum the known cache counters in ``telemetry`` across labels."""
    totals = {key: 0 for key in CACHE_COUNTERS}
    if telemetry is None:
        return totals
    for metric in telemetry.metrics:
        if metric.kind != "counter":
            continue
        for key, names in CACHE_COUNTERS.items():
            if metric.name in names:
                totals[key] += int(metric.value)
    return totals


@dataclass
class BenchResult:
    """Everything one harness run measured."""

    name: str
    wall_s: list[float]
    cpu_s: list[float]
    metrics: dict[str, object] = field(default_factory=dict)
    payload: object = None      # last return value of the benched fn


class BenchHarness:
    """Warmup + N measured runs of one callable.

    The callable is the whole benchmark: setup belongs *outside* (build
    the table, the plan, the server first; hand the harness only the
    part whose speed is the claim).
    """

    def __init__(self, name: str, runs: int = 5, warmup: int = 1,
                 handicap_s: float = 0.0, measure_alloc: bool = False):
        if runs < 1:
            raise DataError("BenchHarness needs runs >= 1")
        if warmup < 0 or handicap_s < 0:
            raise DataError("warmup and handicap_s must be >= 0")
        self.name = name
        self.runs = runs
        self.warmup = warmup
        self.handicap_s = float(handicap_s)
        self.measure_alloc = bool(measure_alloc)

    def run(self, fn: Callable[[], object],
            telemetry=None) -> BenchResult:
        """Execute ``warmup + runs`` calls and summarize the timings.

        ``telemetry`` (a ``repro.obs.Telemetry``) contributes cache
        counter deltas: the counters are snapshotted around the timed
        phase, so warmup fills caches without polluting the metric.
        """
        for _ in range(self.warmup):
            fn()
        cache_before = cache_counter_totals(telemetry)
        walls: list[float] = []
        cpus: list[float] = []
        payload = None
        for _ in range(self.runs):
            wall0 = time.perf_counter()
            cpu0 = time.process_time()
            if self.handicap_s:
                time.sleep(self.handicap_s)
            payload = fn()
            walls.append(time.perf_counter() - wall0)
            cpus.append(time.process_time() - cpu0)
        cache_after = cache_counter_totals(telemetry)

        metrics: dict[str, object] = {
            "wall_s_median": round(statistics.median(walls), 6),
            "wall_s_p90": round(_p90(walls), 6),
            "wall_s_min": round(min(walls), 6),
            "cpu_s_median": round(statistics.median(cpus), 6),
        }
        rss = rss_peak_kb()
        if rss is not None:
            metrics["rss_peak_kb"] = round(rss, 1)
        if self.measure_alloc:
            metrics["alloc_peak_kb"] = round(_alloc_peak_kb(fn), 3)
        cache = {key: cache_after[key] - cache_before[key]
                 for key in cache_after}
        if any(cache.values()):
            metrics["cache"] = cache
        return BenchResult(name=self.name, wall_s=walls, cpu_s=cpus,
                           metrics=metrics, payload=payload)


def _p90(values: list[float]) -> float:
    """p90 by nearest-rank — exact for the tiny N benchmarks use."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(0.9 * (len(ordered) - 1))))
    return ordered[rank]


def _alloc_peak_kb(fn: Callable[[], object]) -> float:
    """Peak tracemalloc KiB over one extra (untimed) run of ``fn``."""
    started = not tracemalloc.is_tracing()
    if started:
        tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        fn()
        _, peak = tracemalloc.get_traced_memory()
        return peak / 1024.0
    finally:
        if started:
            tracemalloc.stop()
