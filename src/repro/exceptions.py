"""Exception hierarchy for the :mod:`repro` toolkit.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the pillar a failure originated from.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the toolkit."""


class SchemaError(ReproError):
    """A table or column violates its declared schema."""


class DataError(ReproError):
    """Malformed, inconsistent, or empty data was supplied."""


class NotFittedError(ReproError):
    """An estimator was used before :meth:`fit` was called."""


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its budget."""


class FairnessError(ReproError):
    """A fairness computation received invalid groups or predictions."""


class PrivacyBudgetError(ReproError):
    """An operation would exceed the remaining differential-privacy budget."""


class AnonymityError(ReproError):
    """An anonymisation routine cannot satisfy the requested guarantee."""


class CausalError(ReproError):
    """A causal query is unidentifiable or its inputs are inconsistent."""


class ProvenanceError(ReproError):
    """The provenance graph was queried for an unknown artefact or step."""


class PlanError(ReproError):
    """A dataflow plan is malformed (cycle, missing input, duplicate node)."""


class PolicyViolation(ReproError):
    """A FACT policy constraint failed at audit time.

    Raised by :class:`repro.core.policy.FACTPolicy` when ``enforce=True``;
    otherwise violations are collected into the audit report.
    """
