"""Deployment monitoring: responsibility after the launch (S9 extension).

"Responsible by design" does not end at deployment — a model audited
fair on Tuesday drifts by December.  The monitor consumes scored batches
and raises typed alarms when:

* the *population* drifts (population-stability index on the score
  distribution vs the reference window);
* the *fairness* drifts (selection-rate gap between groups exceeds its
  declared bound);
* the *accuracy* drifts (batch accuracy falls below its declared floor,
  when labels arrive).

Alarms are recorded in the same audit-log shape the pipeline uses, so a
deployment's history is one trail.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.exceptions import DataError
from repro.pipeline.audit_log import AuditLog


@dataclass(frozen=True)
class Alarm:
    """One raised monitoring alarm."""

    batch_index: int
    kind: str
    observed: float
    threshold: float

    def render(self) -> str:
        """One-line description."""
        return (f"batch {self.batch_index}: {self.kind} "
                f"observed={self.observed:.4f} threshold={self.threshold:.4f}")


def population_stability_index(reference, observed, n_bins: int = 10) -> float:
    """PSI between a reference and an observed score distribution.

    Conventional reading: < 0.1 stable, 0.1-0.25 drifting, > 0.25 major
    shift.  Bins are reference quantiles; empty bins are floored to keep
    the logarithm finite.

    When the reference scores are (near-)constant, its quantile edges
    all coincide and quantile binning degenerates to a single bin — a
    silent PSI of 0.0 forever, masking every drift.  In that case this
    warns and falls back to value-based (equal-width) edges spanning the
    combined range of both samples, which still separates a shifted
    observed distribution from a constant reference.
    """
    reference = np.asarray(reference, dtype=np.float64)
    observed = np.asarray(observed, dtype=np.float64)
    if len(reference) < n_bins or len(observed) == 0:
        raise DataError("need at least n_bins reference points and 1 observation")
    quantiles = np.quantile(reference, np.linspace(0.0, 1.0, n_bins + 1))
    edges = quantiles.copy()
    edges[0], edges[-1] = -np.inf, np.inf
    edges = np.unique(edges)
    # A constant reference still yields 3 edges (-inf, c, +inf) after the
    # ±inf replacement, so degeneracy is judged on the raw quantiles.
    if len(edges) < 3 or len(np.unique(quantiles)) < 3:
        warnings.warn(
            "reference scores are (near-)constant: quantile bin edges "
            "collapsed; falling back to value-based bin edges",
            RuntimeWarning, stacklevel=2,
        )
        lower = float(min(reference.min(), observed.min()))
        upper = float(max(reference.max(), observed.max()))
        if lower == upper:
            # Both samples are the same point mass: genuinely no drift.
            return 0.0
        edges = np.linspace(lower, upper, n_bins + 1)
        edges[0], edges[-1] = -np.inf, np.inf
    reference_counts, _ = np.histogram(reference, bins=edges)
    observed_counts, _ = np.histogram(observed, bins=edges)
    reference_p = np.maximum(reference_counts / len(reference), 1e-6)
    observed_p = np.maximum(observed_counts / len(observed), 1e-6)
    return float(np.sum(
        (observed_p - reference_p) * np.log(observed_p / reference_p)
    ))


@dataclass
class FairnessDriftMonitor:
    """Streaming FACT monitor for a deployed scorer.

    Parameters
    ----------
    reference_scores:
        Scores from the validation window the model was approved on.
    psi_threshold:
        Alarm when a batch's PSI against the reference exceeds this.
    max_selection_gap:
        Alarm when the batch's inter-group selection-rate gap exceeds this.
    min_accuracy:
        Alarm when labelled-batch accuracy falls below this (``None``
        disables the check).
    decision_threshold:
        Probability cut used to turn scores into decisions.
    """

    reference_scores: np.ndarray
    psi_threshold: float = 0.25
    max_selection_gap: float = 0.1
    min_accuracy: float | None = None
    decision_threshold: float = 0.5
    audit: AuditLog = field(default_factory=AuditLog)
    _alarms: list[Alarm] = field(default_factory=list)
    _n_batches: int = 0

    def observe(self, scores, group=None, y_true=None) -> list[Alarm]:
        """Ingest one scored batch; return any alarms it raised."""
        scores = np.asarray(scores, dtype=np.float64)
        if len(scores) == 0:
            raise DataError("empty batch")
        batch_index = self._n_batches
        self._n_batches += 1
        raised: list[Alarm] = []

        # One thresholding serves both the fairness and accuracy checks.
        needs_decisions = group is not None or (
            y_true is not None and self.min_accuracy is not None
        )
        decisions = (
            (scores >= self.decision_threshold).astype(np.float64)
            if needs_decisions else None
        )

        psi = population_stability_index(self.reference_scores, scores)
        self.audit.record("monitor", "batch_observed",
                          batch=batch_index, n=len(scores), psi=round(psi, 4))
        if psi > self.psi_threshold:
            raised.append(Alarm(batch_index, "population_drift",
                                psi, self.psi_threshold))

        if group is not None:
            group = np.asarray(group)
            rates = [
                float(decisions[group == value].mean())
                for value in np.unique(group)
                if (group == value).any()
            ]
            if len(rates) >= 2:
                gap = max(rates) - min(rates)
                if gap > self.max_selection_gap:
                    raised.append(Alarm(batch_index, "fairness_drift",
                                        gap, self.max_selection_gap))

        if y_true is not None and self.min_accuracy is not None:
            y_true = np.asarray(y_true, dtype=np.float64)
            batch_accuracy = float(np.mean(decisions == y_true))
            if batch_accuracy < self.min_accuracy:
                raised.append(Alarm(batch_index, "accuracy_drift",
                                    batch_accuracy, self.min_accuracy))

        for alarm in raised:
            self.audit.record("monitor", f"alarm:{alarm.kind}",
                              batch=batch_index,
                              observed=round(alarm.observed, 4))
        self._alarms.extend(raised)

        telemetry = obs.get()
        if telemetry is not None:
            telemetry.metrics.counter("monitor.batches").inc()
            telemetry.metrics.histogram("monitor.psi").observe(psi)
            for alarm in raised:
                telemetry.metrics.counter(
                    "monitor.alarms", kind=alarm.kind
                ).inc()
        return raised

    @property
    def alarms(self) -> list[Alarm]:
        """All alarms raised so far."""
        return list(self._alarms)

    @property
    def n_batches(self) -> int:
        """Batches observed so far."""
        return self._n_batches

    def render(self) -> str:
        """Status summary."""
        lines = [f"monitor: {self._n_batches} batches, "
                 f"{len(self._alarms)} alarms"]
        lines += [f"  {alarm.render()}" for alarm in self._alarms]
        return "\n".join(lines)
