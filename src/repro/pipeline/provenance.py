"""Provenance (lineage) graphs (Q4, experiment E10).

§2-Q4: "The journey from raw data to meaningful inferences involves
multiple steps and actors, thus accountability and comprehensibility are
essential for transparency."  The provenance graph is the accountability
half: a bipartite DAG of *artefacts* (datasets, models, reports) and
*steps* (operations with parameters), from which the full lineage of any
result can be reconstructed and rendered.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.data.table import Table
from repro.exceptions import ProvenanceError


def fingerprint_table(table: Table, sample_rows: int = 64) -> str:
    """A short content hash of a table (schema + sampled values).

    Sampling keeps fingerprinting O(columns·sample) so provenance stays
    cheap at Internet-Minute volume; the schema, shape, and a
    deterministic row sample pin the identity well enough for audits.
    """
    hasher = hashlib.sha256()
    hasher.update(repr([(spec.name, spec.ctype.value, spec.role.value)
                        for spec in table.schema]).encode())
    hasher.update(str(table.n_rows).encode())
    if table.n_rows:
        step = max(1, table.n_rows // sample_rows)
        indices = np.arange(0, table.n_rows, step)[:sample_rows]
        for name in table.column_names:
            column = table.column(name)
            hasher.update(np.asarray(column[indices], dtype="U32").tobytes())
    return hasher.hexdigest()[:16]


@dataclass(frozen=True)
class Artifact:
    """A node representing data/model/report state at a point in time."""

    artifact_id: str
    kind: str
    fingerprint: str
    description: str = ""


@dataclass(frozen=True)
class Step:
    """A node representing one executed operation."""

    step_id: str
    name: str
    params: tuple[tuple[str, str], ...]

    def params_dict(self) -> dict[str, str]:
        """Parameters as a plain dict."""
        return dict(self.params)


class ProvenanceGraph:
    """Append-only bipartite lineage DAG of artefacts and steps."""

    def __init__(self):
        self._graph = nx.DiGraph()
        self._counter = 0

    def _next_id(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter:04d}"

    # -- recording ---------------------------------------------------------

    def add_artifact(self, kind: str, fingerprint: str,
                     description: str = "") -> Artifact:
        """Register a new artefact node."""
        artifact = Artifact(
            artifact_id=self._next_id(kind), kind=kind,
            fingerprint=fingerprint, description=description,
        )
        self._graph.add_node(artifact.artifact_id, node=artifact, bipartite="artifact")
        return artifact

    def add_table(self, table: Table, description: str = "") -> Artifact:
        """Register a table artefact (fingerprinted)."""
        return self.add_artifact("table", fingerprint_table(table), description)

    def add_value(self, value: object, description: str = "") -> Artifact:
        """Register any value as an artefact, fingerprinted by type.

        Tables get their content fingerprint; everything else (a report
        section, a model, a scalar) is identified through
        :func:`repro.store.object_fingerprint`.  This is the hook
        :class:`repro.engine.Executor` uses to register plan inputs and
        node outputs, so lineage falls out of the plan itself.
        """
        if isinstance(value, Table):
            return self.add_table(value, description)
        from repro.store import object_fingerprint

        return self.add_artifact(
            type(value).__name__.lower(), object_fingerprint(value),
            description,
        )

    def record_step(self, name: str, inputs: list[Artifact],
                    outputs: list[Artifact],
                    params: dict[str, object] | None = None) -> Step:
        """Record an operation connecting input and output artefacts."""
        for artifact in (*inputs, *outputs):
            if artifact.artifact_id not in self._graph:
                raise ProvenanceError(
                    f"unknown artefact {artifact.artifact_id!r}; register it first"
                )
        step = Step(
            step_id=self._next_id("step"), name=name,
            params=tuple(sorted(
                (key, repr(value)) for key, value in (params or {}).items()
            )),
        )
        self._graph.add_node(step.step_id, node=step, bipartite="step")
        for artifact in inputs:
            self._graph.add_edge(artifact.artifact_id, step.step_id)
        for artifact in outputs:
            self._graph.add_edge(step.step_id, artifact.artifact_id)
        return step

    # -- queries ---------------------------------------------------------------

    def _require(self, node_id: str) -> None:
        if node_id not in self._graph:
            raise ProvenanceError(f"unknown node {node_id!r}")

    @property
    def n_artifacts(self) -> int:
        """Number of artefact nodes."""
        return sum(
            1 for _, data in self._graph.nodes(data=True)
            if data["bipartite"] == "artifact"
        )

    @property
    def n_steps(self) -> int:
        """Number of step nodes."""
        return sum(
            1 for _, data in self._graph.nodes(data=True)
            if data["bipartite"] == "step"
        )

    def lineage(self, artifact: Artifact) -> list[Step]:
        """Every step upstream of ``artifact``, topologically ordered.

        This is the answer to "how was this number produced?" — the
        chain of operations with their parameters.
        """
        self._require(artifact.artifact_id)
        ancestors = nx.ancestors(self._graph, artifact.artifact_id)
        ordered = [
            node for node in nx.topological_sort(self._graph)
            if node in ancestors
        ]
        return [
            self._graph.nodes[node]["node"] for node in ordered
            if self._graph.nodes[node]["bipartite"] == "step"
        ]

    def downstream(self, artifact: Artifact) -> list[Artifact]:
        """Every artefact derived (transitively) from ``artifact``.

        The GDPR question: if this input was tainted or must be erased,
        what else is affected?
        """
        self._require(artifact.artifact_id)
        descendants = nx.descendants(self._graph, artifact.artifact_id)
        return [
            self._graph.nodes[node]["node"] for node in descendants
            if self._graph.nodes[node]["bipartite"] == "artifact"
        ]

    def render_lineage(self, artifact: Artifact) -> str:
        """Human-readable lineage trace for one artefact."""
        lines = [f"lineage of {artifact.artifact_id} "
                 f"({artifact.kind}, {artifact.fingerprint})"]
        for step in self.lineage(artifact):
            rendered = ", ".join(f"{k}={v}" for k, v in step.params)
            lines.append(f"  <- {step.name}({rendered})")
        return "\n".join(lines)

    def to_networkx(self) -> nx.DiGraph:
        """A copy of the underlying graph (for visualisation)."""
        return self._graph.copy()
