"""Append-only audit log (Q4).

Provenance says *what* was derived from *what*; the audit log says *who
did what, in what order, and why*.  Entries are sequence-numbered rather
than wall-clock-stamped so that runs are reproducible byte-for-byte; a
wall-clock field can be attached by the caller when deployments need it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AuditEvent:
    """One recorded action."""

    sequence: int
    actor: str
    action: str
    detail: dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        """Single-line rendering."""
        extras = " ".join(f"{key}={value}" for key, value in self.detail.items())
        return f"[{self.sequence:04d}] {self.actor}: {self.action}" + (
            f" ({extras})" if extras else ""
        )


class AuditLog:
    """Append-only, queryable action trail."""

    def __init__(self):
        self._events: list[AuditEvent] = []

    def record(self, actor: str, action: str,
               **detail: object) -> AuditEvent:
        """Append one event (detail values are stringified)."""
        event = AuditEvent(
            sequence=len(self._events), actor=actor, action=action,
            detail={key: str(value) for key, value in detail.items()},
        )
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def events(self, actor: str | None = None,
               action: str | None = None) -> list[AuditEvent]:
        """Filtered view of the trail."""
        return [
            event for event in self._events
            if (actor is None or event.actor == actor)
            and (action is None or event.action == action)
        ]

    def render(self, last: int | None = None) -> str:
        """The trail (or its tail) as text."""
        selected = self._events if last is None else self._events[-last:]
        return "\n".join(event.render() for event in selected)
