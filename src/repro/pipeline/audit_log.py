"""Append-only audit log (Q4).

Provenance says *what* was derived from *what*; the audit log says *who
did what, in what order, and why*.  Entries are sequence-numbered rather
than wall-clock-stamped so that runs are reproducible byte-for-byte; a
deployment that needs wall-clock timestamps passes a ``clock`` (any
object with ``now() -> float``, e.g. :class:`repro.obs.WallClock`) and
every event gains a ``timestamp`` without perturbing the sequence
numbers that reproducible runs compare.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class AuditEvent:
    """One recorded action."""

    sequence: int
    actor: str
    action: str
    detail: dict[str, str] = field(default_factory=dict)
    timestamp: float | None = None

    def render(self) -> str:
        """Single-line rendering."""
        extras = " ".join(f"{key}={value}" for key, value in self.detail.items())
        stamp = "" if self.timestamp is None else f" @{self.timestamp:.6f}"
        return f"[{self.sequence:04d}]{stamp} {self.actor}: {self.action}" + (
            f" ({extras})" if extras else ""
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready record of this event."""
        return {
            "sequence": self.sequence,
            "actor": self.actor,
            "action": self.action,
            "detail": dict(self.detail),
            "timestamp": self.timestamp,
        }


class AuditLog:
    """Append-only, queryable action trail.

    Parameters
    ----------
    clock:
        Optional; when supplied, each event is stamped with
        ``clock.now()``.  Default ``None`` keeps events timestamp-free
        and runs byte-reproducible.
    """

    def __init__(self, clock=None):
        self._events: list[AuditEvent] = []
        self._clock = clock

    def record(self, actor: str, action: str,
               **detail: object) -> AuditEvent:
        """Append one event (detail values are stringified)."""
        event = AuditEvent(
            sequence=len(self._events), actor=actor, action=action,
            detail={key: str(value) for key, value in detail.items()},
            timestamp=None if self._clock is None
            else float(self._clock.now()),
        )
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def events(self, actor: str | None = None,
               action: str | None = None) -> list[AuditEvent]:
        """Filtered view of the trail."""
        return [
            event for event in self._events
            if (actor is None or event.actor == actor)
            and (action is None or event.action == action)
        ]

    def to_dicts(self) -> list[dict[str, object]]:
        """Every event as a JSON-ready dict, in sequence order."""
        return [event.to_dict() for event in self._events]

    def to_jsonl(self, path: str) -> int:
        """Write the trail as JSON Lines; returns the event count."""
        with open(path, "w") as handle:
            for event in self._events:
                handle.write(json.dumps(event.to_dict(), sort_keys=True)
                             + "\n")
        return len(self._events)

    def render(self, last: int | None = None) -> str:
        """The trail (or its tail) as text."""
        selected = self._events if last is None else self._events[-last:]
        return "\n".join(event.render() for event in selected)
