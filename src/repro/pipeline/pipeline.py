"""The FACT-instrumented pipeline runner (S9).

A :class:`Pipeline` threads a table through its stages while the
:class:`PipelineContext` records everything the four pillars later need:
every stage lands in the provenance graph with its parameters, every
action in the audit log, privacy spending in the accountant's ledger.
``provenance="off"`` runs the same stages bare — the contrast measured
by ablation A3 / experiment E10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.confidentiality.accountant import PrivacyAccountant
from repro.data.table import Table
from repro.engine import Executor, NodeRun, Plan
from repro.exceptions import DataError
from repro.learn.table_model import TableClassifier
from repro.pipeline.audit_log import AuditLog
from repro.pipeline.provenance import Artifact, ProvenanceGraph
from repro.pipeline.stage import Stage
from repro.store import resolve_store

PROVENANCE_MODES = ("off", "stage", "fingerprint")


@dataclass
class PipelineContext:
    """Mutable cross-cutting state shared by a pipeline run."""

    rng: np.random.Generator
    provenance: ProvenanceGraph | None = None
    audit: AuditLog = field(default_factory=AuditLog)
    accountant: PrivacyAccountant | None = None
    model: TableClassifier | None = None
    sample_weight: np.ndarray | None = None
    extras: dict[str, object] = field(default_factory=dict)


@dataclass
class PipelineResult:
    """Everything a pipeline run produced."""

    table: Table
    context: PipelineContext
    final_artifact: Artifact | None = None

    @property
    def model(self) -> TableClassifier | None:
        """The model trained during the run, if any."""
        return self.context.model

    def lineage(self) -> str:
        """Rendered lineage of the final table."""
        if self.context.provenance is None or self.final_artifact is None:
            return "provenance disabled"
        return self.context.provenance.render_lineage(self.final_artifact)


class Pipeline:
    """An ordered list of stages with FACT instrumentation.

    Parameters
    ----------
    stages:
        The steps, executed in order.
    provenance:
        ``"fingerprint"`` (default) — record every stage and fingerprint
        every intermediate table; ``"stage"`` — record stages with cheap
        shape-only artefact identities; ``"off"`` — no recording at all.
    accountant:
        Optional privacy accountant made available to stages.
    actor:
        Name written into the audit log for this pipeline's actions.
    store:
        An :class:`~repro.store.ArtifactStore` replaying the output
        tables of **cacheable** stages (pure table transforms like
        ``clean``/``redact``/``di_repair``/``predict``/``decide``);
        ``None`` defers to ``$REPRO_STORE`` (unset: no caching).  Each
        cacheable stage is keyed on its input table's full content, its
        parameters, its compiled code, and any context it reads, so a
        warm run recomputes only the stages whose inputs changed.
        Provenance and the audit log record hits exactly as they record
        recomputes — the trail is byte-identical either way.
    fuse:
        ``True`` lets the engine run maximal chains of consecutive
        cacheable stages as single fused units (one cache key, one
        store round-trip, one ``stage:a+b+...`` span) — see
        :class:`repro.engine.Executor`.  Tables, the audit log, and
        provenance are byte-identical either way; only the span shape
        changes, so it is opt-in.
    """

    def __init__(self, stages: list[Stage],
                 provenance: str = "fingerprint",
                 accountant: PrivacyAccountant | None = None,
                 actor: str = "pipeline",
                 store=None, fuse: bool = False):
        if not stages:
            raise DataError("pipeline needs at least one stage")
        if provenance not in PROVENANCE_MODES:
            raise DataError(
                f"provenance must be one of {PROVENANCE_MODES}, got {provenance!r}"
            )
        self.stages = list(stages)
        self.provenance_mode = provenance
        self.accountant = accountant
        self.actor = actor
        self.store = store
        self.fuse = bool(fuse)

    def build_plan(self, context: PipelineContext) -> Plan:
        """The pipeline as a linear :class:`repro.engine.Plan`.

        One node per stage, chained on a single external input named
        ``"table"``.  Node names are position-qualified so a pipeline
        may legally repeat a stage; labels stay the bare stage names, so
        spans (``stage:<name>``), audit events, and provenance steps
        read exactly as before the engine refactor.
        """
        nodes = []
        previous = "table"
        for index, stage in enumerate(self.stages):
            node_name = f"stage{index}:{stage.name}"
            nodes.append(stage.as_node(node_name, previous, context))
            previous = node_name
        return Plan(nodes, inputs=("table",))

    def _register(self, graph: ProvenanceGraph, table: Table,
                  description: str) -> Artifact:
        if self.provenance_mode == "fingerprint":
            return graph.add_table(table, description)
        return graph.add_artifact(
            "table", f"shape:{table.n_rows}x{table.n_columns}", description
        )

    def run(self, table: Table, rng: np.random.Generator) -> PipelineResult:
        """Execute all stages; return the final table plus the FACT trail.

        The stages run as a linear plan on :class:`repro.engine.Executor`
        — memoisation, stage spans (now carrying a
        ``cache="hit"|"miss"|"uncacheable"`` attribute), and the shared
        generator's replay continuity all come from the engine.  When
        :func:`repro.obs.configure` is active, the run opens a root span
        (``pipeline.run``) with one child span per stage carrying row
        counts and the stage's parameters, samples the privacy
        accountant's budget gauges, and flushes merged JSONL telemetry
        to the configured export path.  Unconfigured runs produce
        byte-identical output.
        """
        telemetry = obs.get()
        store = resolve_store(self.store)
        graph = None if self.provenance_mode == "off" else ProvenanceGraph()
        context = PipelineContext(
            rng=rng, provenance=graph, accountant=self.accountant
        )
        current = table
        artifact = None
        root = None
        if telemetry is not None:
            root = telemetry.tracer.start_span(
                "pipeline.run", actor=self.actor, n_stages=len(self.stages),
                n_rows=table.n_rows, provenance=self.provenance_mode,
            )
        try:
            if graph is not None:
                artifact = self._register(graph, current, "pipeline input")
            context.audit.record(self.actor, "run_started",
                                 n_rows=table.n_rows,
                                 n_stages=len(self.stages))
            trail = {"table": current, "artifact": artifact}

            def observer(run: NodeRun) -> None:
                # Fires on the coordinator after each stage commits, in
                # stage order — the audit log and provenance graph read
                # exactly as they did under the hand-rolled loop.
                trail["table"] = run.value
                context.audit.record(
                    self.actor, f"stage:{run.label}", n_rows=run.value.n_rows
                )
                if graph is not None:
                    next_artifact = self._register(
                        graph, run.value, f"after {run.label}"
                    )
                    graph.record_step(
                        run.label, [trail["artifact"]], [next_artifact],
                        run.node.record_params,
                    )
                    trail["artifact"] = next_artifact

            executor = Executor(n_jobs=1, backend="serial", name="stage",
                                fuse=self.fuse)
            plan_result = executor.run(
                self.build_plan(context), {"table": table},
                store=store, rng=context.rng, observer=observer,
            )
            current = plan_result.output
            artifact = trail["artifact"]
            context.audit.record(self.actor, "run_finished",
                                 n_rows=current.n_rows)
        finally:
            if telemetry is not None:
                if root is not None and not root.finished:
                    root.set_attribute("n_rows_out", current.n_rows)
                    telemetry.tracer.end_span(root)
                if self.accountant is not None:
                    telemetry.metrics.gauge("privacy.epsilon_spent").set(
                        self.accountant.epsilon_spent
                    )
                    telemetry.metrics.gauge("privacy.epsilon_remaining").set(
                        self.accountant.epsilon_remaining
                    )
                    telemetry.metrics.gauge("privacy.delta_spent").set(
                        self.accountant.delta_spent
                    )
                telemetry.flush(audit=context.audit)
        return PipelineResult(
            table=current, context=context, final_artifact=artifact
        )

    def describe(self) -> str:
        """The pipeline's stage list as text (design-time transparency)."""
        lines = [f"pipeline ({self.provenance_mode} provenance):"]
        for index, stage in enumerate(self.stages):
            rendered = ", ".join(
                f"{key}={value!r}" for key, value in stage.params().items()
                if not isinstance(value, (TableClassifier,))
            )
            lines.append(f"  {index + 1}. {stage.name}({rendered})")
        return "\n".join(lines)
