"""Pipeline stages: the composable steps of a responsible pipeline.

Every stage is a named, parameterised, pure-ish transformation of a
:class:`~repro.data.table.Table` executing inside a
:class:`~repro.pipeline.pipeline.PipelineContext`.  The context carries
the cross-cutting FACT state — provenance graph, audit log, privacy
accountant, the trained model, and fairness sample weights — so stages
stay small and the responsibility machinery stays centralised.
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

from repro.data.table import Table
from repro.exceptions import DataError
from repro.fairness.preprocessing import disparate_impact_repair, reweigh
from repro.learn.table_model import TableClassifier


class Stage(abc.ABC):
    """One named step of a pipeline."""

    name: str = "stage"

    #: Pure table -> table stages (no context mutation, no hidden state)
    #: may be replayed from an artifact store; stages that train models,
    #: stash weights, or fit internal state must recompute every run.
    cacheable: bool = False

    @abc.abstractmethod
    def apply(self, table: Table, context) -> Table:
        """Transform the table (and/or the context)."""

    def params(self) -> dict[str, object]:
        """Stage parameters recorded in provenance."""
        return {
            key: value for key, value in vars(self).items()
            if not key.startswith("_")
        }

    def cache_key_extras(self, context) -> dict[str, object]:
        """Extra cache-key parts for context the stage reads.

        A cacheable stage whose output depends on anything beyond the
        input table and its :meth:`params` (e.g. the trained model on
        the context) must surface that dependency here, or stale
        results would replay after the dependency changed.
        """
        return {}

    def as_node(self, name: str, input_name: str, context):
        """This stage as a :class:`repro.engine.Node` consuming ``input_name``.

        The node's cache key covers exactly what the pipeline's
        hand-written memoisation covered: the stage's compiled ``apply``
        code, its :meth:`params`, its :meth:`cache_key_extras`, and the
        input table's full content — plus, for cacheable stages, the
        shared generator's continuity through ``rng="shared"``.  The key
        parts are a *callable*, so store-less pipelines never pay for
        fingerprinting.
        """
        from repro.engine import Node
        from repro.store import canonical

        def run(inputs, rng):
            return self.apply(inputs[input_name], context)

        def key_params():
            return {
                "name": self.name,
                "params": canonical(self.params()),
                **self.cache_key_extras(context),
            }

        def annotate(value, inputs):
            return {"n_rows_in": inputs[input_name].n_rows,
                    "n_rows": value.n_rows}

        return Node(
            name, run,
            inputs=(input_name,),
            params=key_params,
            code=type(self).apply,
            cacheable=self.cacheable,
            rng="shared" if self.cacheable else None,
            label=self.name,
            span_attrs=self.params(),
            record_params=self.params(),
            tags=lambda fps: (f"table:{fps[input_name]}",),
            annotate=annotate,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.params()})"


class ValidateSchemaStage(Stage):
    """Fail fast when FACT-critical roles are missing.

    "Responsible by design" starts by refusing to run a decision pipeline
    on data whose sensitive attribute or target was never declared.
    """

    name = "validate_schema"

    def __init__(self, require_target: bool = True,
                 require_sensitive: bool = True,
                 required_columns: list[str] | None = None):
        self.require_target = require_target
        self.require_sensitive = require_sensitive
        self.required_columns = list(required_columns or ())

    def apply(self, table: Table, context) -> Table:
        if self.require_target and table.target_name is None:
            raise DataError("pipeline requires a declared TARGET column")
        if self.require_sensitive and not table.schema.sensitive_names:
            raise DataError(
                "pipeline requires a declared SENSITIVE column for auditing"
            )
        missing = [
            name for name in self.required_columns if name not in table
        ]
        if missing:
            raise DataError(f"missing required columns: {missing}")
        return table


class CleanStage(Stage):
    """Drop rows with NaN in numeric columns; clip declared outliers."""

    name = "clean"
    cacheable = True

    def __init__(self, clips: dict[str, tuple[float, float]] | None = None):
        self.clips = dict(clips or {})

    def apply(self, table: Table, context) -> Table:
        from repro.data.schema import ColumnType

        keep = np.ones(table.n_rows, dtype=bool)
        for spec in table.schema:
            if spec.ctype is ColumnType.NUMERIC:
                keep &= ~np.isnan(table.column(spec.name))
        cleaned = table.filter(keep) if not keep.all() else table
        for name, (lower, upper) in self.clips.items():
            spec = cleaned.schema[name]
            cleaned = cleaned.with_column(
                spec, np.clip(cleaned.column(name), lower, upper)
            )
        return cleaned


class ImputeStage(Stage):
    """Fill missing values with statistics learned on this run's table.

    The fitted imputer is kept on the stage, so a pipeline applied later
    to fresh data reuses the original statistics (no test-time leakage).
    """

    name = "impute"

    def __init__(self, strategy: str = "mean"):
        from repro.data.impute import SimpleImputer

        self.strategy = strategy
        self._imputer = SimpleImputer(strategy=strategy)
        self._fitted = False

    def apply(self, table: Table, context) -> Table:
        if not self._fitted:
            self._imputer.fit(table)
            self._fitted = True
        return self._imputer.transform(table)


class RedactStage(Stage):
    """Pseudonymise identifiers and strip oracle metadata before use."""

    name = "redact"
    cacheable = True

    def apply(self, table: Table, context) -> Table:
        from repro.confidentiality.pseudonym import redact_for_release

        return redact_for_release(table)


class ReweighStage(Stage):
    """Compute Kamiran-Calders weights into the context for training."""

    name = "reweigh"

    def apply(self, table: Table, context) -> Table:
        context.sample_weight = reweigh(table)
        return table


class RepairStage(Stage):
    """Disparate-impact repair of numeric features."""

    name = "di_repair"
    cacheable = True

    def __init__(self, repair_level: float = 1.0):
        self.repair_level = repair_level

    def apply(self, table: Table, context) -> Table:
        return disparate_impact_repair(table, self.repair_level)


class TrainStage(Stage):
    """Fit the pipeline's model (consuming any staged sample weights)."""

    name = "train"

    def __init__(self, model: TableClassifier):
        self.model = model

    def apply(self, table: Table, context) -> Table:
        self.model.fit(table, sample_weight=context.sample_weight)
        context.model = self.model
        return table


class PredictStage(Stage):
    """Attach model scores as a new column."""

    name = "predict"
    cacheable = True

    def __init__(self, column: str = "score"):
        self.column = column

    def cache_key_extras(self, context) -> dict[str, object]:
        from repro.store import object_fingerprint

        if context.model is None:
            return {}
        return {"model": object_fingerprint(context.model)}

    def apply(self, table: Table, context) -> Table:
        from repro.data.schema import ColumnRole, numeric

        if context.model is None:
            raise DataError("no trained model in the pipeline context")
        scores = context.model.predict_proba(table)
        return table.with_column(
            numeric(self.column, role=ColumnRole.METADATA,
                    description="model score"),
            scores,
        )


class DecideStage(Stage):
    """Threshold scores into decisions."""

    name = "decide"
    cacheable = True

    def __init__(self, score_column: str = "score",
                 decision_column: str = "decision",
                 threshold: float = 0.5):
        self.score_column = score_column
        self.decision_column = decision_column
        self.threshold = threshold

    def apply(self, table: Table, context) -> Table:
        from repro.data.schema import ColumnRole, numeric

        decisions = (
            table.column(self.score_column) >= self.threshold
        ).astype(np.float64)
        return table.with_column(
            numeric(self.decision_column, role=ColumnRole.METADATA,
                    description="pipeline decision"),
            decisions,
        )


class FunctionStage(Stage):
    """Wrap an arbitrary table transformation with a declared name.

    The escape hatch — but a *named* one, so even ad-hoc steps appear in
    the provenance graph with their parameters.  Pass ``cacheable=True``
    only when ``fn`` is a pure function of the table — the store keys on
    the function's code, so edits invalidate, but hidden state would not.
    """

    def __init__(self, name: str, fn: Callable[[Table], Table], *,
                 cacheable: bool = False, **params: object):
        self.name = name
        self.cacheable = cacheable
        self._fn = fn
        self._params = dict(params)

    def params(self) -> dict[str, object]:
        return dict(self._params)

    def cache_key_extras(self, context) -> dict[str, object]:
        from repro.store import code_fingerprint

        return {"fn": code_fingerprint(self._fn)}

    def apply(self, table: Table, context) -> Table:
        return self._fn(table)
