"""Pipeline substrate (S9): stages, runner, provenance, audit log."""

from repro.pipeline.audit_log import AuditEvent, AuditLog
from repro.pipeline.pipeline import (
    PROVENANCE_MODES,
    Pipeline,
    PipelineContext,
    PipelineResult,
)
from repro.pipeline.provenance import (
    Artifact,
    ProvenanceGraph,
    Step,
    fingerprint_table,
)
from repro.pipeline.stage import (
    CleanStage,
    ImputeStage,
    DecideStage,
    FunctionStage,
    PredictStage,
    RedactStage,
    RepairStage,
    ReweighStage,
    Stage,
    TrainStage,
    ValidateSchemaStage,
)
from repro.pipeline.monitor import (
    Alarm,
    FairnessDriftMonitor,
    population_stability_index,
)

__all__ = [
    "ImputeStage",
    "population_stability_index",
    "FairnessDriftMonitor",
    "Alarm",
    "PROVENANCE_MODES",
    "Artifact",
    "AuditEvent",
    "AuditLog",
    "CleanStage",
    "DecideStage",
    "FunctionStage",
    "Pipeline",
    "PipelineContext",
    "PipelineResult",
    "PredictStage",
    "ProvenanceGraph",
    "RedactStage",
    "RepairStage",
    "ReweighStage",
    "Stage",
    "Step",
    "TrainStage",
    "ValidateSchemaStage",
    "fingerprint_table",
]
