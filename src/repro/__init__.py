"""repro — a Responsible Data Science (FACT) toolkit.

Reproduction of *"Responsible Data Science"* (van der Aalst, Bichler,
Heinzl; BISE 59(5), 2017 — the agenda presented to the database community
at SIGMOD 2019 under the same title).  The paper is a research agenda
built on four questions; this package is the system the agenda envisions:

* :mod:`repro.fairness` — Q1, data science without prejudice;
* :mod:`repro.accuracy` — Q2, data science without guesswork;
* :mod:`repro.confidentiality` — Q3, analysis without revealing secrets;
* :mod:`repro.transparency` — Q4, answers that can be rationalised;
* :mod:`repro.data`, :mod:`repro.learn`, :mod:`repro.pipeline` — the
  substrates (tables, models, provenance) everything runs on;
* :mod:`repro.core` — the FACT auditor, report, scorecard and policy
  that tie the pillars together.

Quickstart::

    import numpy as np
    from repro import CreditScoringGenerator, LogisticRegression
    from repro import TableClassifier, FACTAuditor

    rng = np.random.default_rng(0)
    data = CreditScoringGenerator(label_bias=0.3, proxy_strength=0.8)
    train, test = data.generate_pair(4000, 2000, rng)
    model = TableClassifier(LogisticRegression()).fit(train)
    report = FACTAuditor().audit(model, test, rng)
    print(report.render())
"""

from repro import obs
from repro.core import (
    FACTAuditor,
    FACTPolicy,
    FACTReport,
    GreenScorecard,
    build_scorecard,
)
from repro.data import Table, train_test_split
from repro.data.synth import (
    AdCampaignGenerator,
    AdmissionsGenerator,
    CensusIncomeGenerator,
    CreditScoringGenerator,
    HiringFunnelGenerator,
    InternetMinuteGenerator,
    RecidivismGenerator,
    TreatmentParadoxGenerator,
)
from repro.learn import (
    DecisionTreeClassifier,
    GaussianNaiveBayes,
    KNeighborsClassifier,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
    TableClassifier,
)
from repro.parallel import ParallelExecutor, pmap
from repro.pipeline import Pipeline
from repro.store import Artifact, ArtifactStore, fingerprint

__version__ = "1.0.0"

__all__ = [
    "AdCampaignGenerator",
    "AdmissionsGenerator",
    "Artifact",
    "ArtifactStore",
    "CensusIncomeGenerator",
    "CreditScoringGenerator",
    "DecisionTreeClassifier",
    "FACTAuditor",
    "FACTPolicy",
    "FACTReport",
    "GaussianNaiveBayes",
    "GreenScorecard",
    "HiringFunnelGenerator",
    "InternetMinuteGenerator",
    "KNeighborsClassifier",
    "LogisticRegression",
    "MLPClassifier",
    "ParallelExecutor",
    "Pipeline",
    "RandomForestClassifier",
    "RecidivismGenerator",
    "Table",
    "TableClassifier",
    "TreatmentParadoxGenerator",
    "build_scorecard",
    "fingerprint",
    "pmap",
    "train_test_split",
    "__version__",
]
