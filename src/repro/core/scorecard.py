"""The green-data-science scorecard (S10).

§3 coins "green data science" for solutions that deliver value "while
ensuring Fairness, Accuracy, Confidentiality, and Transparency" and calls
discrimination, privacy invasion, opaque decisions and inaccurate
conclusions new forms of "pollution".  The scorecard turns a
:class:`FACTReport` into four 0–100 pollution-free scores and a grade —
coarse by design, because its job is to make regressions impossible to
miss, not to rank decimal points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.report import FACTReport
from repro.store import Artifact


@dataclass(frozen=True)
class GreenScorecard(Artifact):
    """Per-pillar scores (0 = maximally polluting, 100 = clean).

    An :class:`~repro.store.Artifact`: ``to_dict``/``to_json`` serialise
    the four scores and ``fingerprint()`` mints the content hash two
    auditors compare to prove they hold the same scorecard.
    """

    fairness: float
    accuracy: float
    confidentiality: float
    transparency: float

    @property
    def overall(self) -> float:
        """The minimum pillar score: one polluted pillar poisons the well."""
        return min(self.fairness, self.accuracy,
                   self.confidentiality, self.transparency)

    @property
    def grade(self) -> str:
        """Letter grade on the overall score."""
        score = self.overall
        if score >= 90:
            return "A"
        if score >= 75:
            return "B"
        if score >= 60:
            return "C"
        if score >= 40:
            return "D"
        return "F"

    def render(self) -> str:
        """One-screen scorecard."""
        return "\n".join([
            f"green data science scorecard  (grade {self.grade})",
            f"  fairness        {self.fairness:5.1f}",
            f"  accuracy        {self.accuracy:5.1f}",
            f"  confidentiality {self.confidentiality:5.1f}",
            f"  transparency    {self.transparency:5.1f}",
            f"  overall (min)   {self.overall:5.1f}",
        ])


def _clamp(value: float) -> float:
    return float(max(0.0, min(100.0, value)))


def score_fairness(report: FACTReport) -> float:
    """100 at disparate-impact ratio 1 and zero odds gap; 0 at DI 0.5."""
    di = report.fairness.disparate_impact_ratio
    odds = report.fairness.equalized_odds_difference
    di_score = (di - 0.5) / 0.5 * 100.0
    odds_score = (1.0 - odds / 0.4) * 100.0
    return _clamp(min(di_score, odds_score))


def score_accuracy(report: FACTReport) -> float:
    """Penalises wide intervals, mis-calibration, broken conformal coverage."""
    section = report.accuracy
    width_penalty = section.accuracy.width * 250.0          # 0.08 wide -> -20
    ece_penalty = section.expected_calibration_error * 400.0  # 0.05 -> -20
    coverage_penalty = 0.0
    if section.conformal_coverage is not None:
        nominal = 1.0 - section.conformal_alpha
        shortfall = max(0.0, nominal - section.conformal_coverage)
        coverage_penalty = shortfall * 1000.0               # 2pt shortfall -> -20
    return _clamp(100.0 - width_penalty - ece_penalty - coverage_penalty)


def score_confidentiality(report: FACTReport) -> float:
    """Penalises raw identifiers, oracle leaks, high linkage risk, blown budgets."""
    section = report.confidentiality
    score = 100.0
    if section.identifiers_present:
        score -= 50.0
    if section.metadata_present:
        score -= 20.0
    if section.risk is not None:
        score -= section.risk.unique_row_fraction * 60.0
        score -= max(0.0, section.risk.prosecutor_risk - 0.2) * 50.0
    if section.epsilon_budget is not None and section.epsilon_spent is not None:
        if section.epsilon_spent > section.epsilon_budget:
            score -= 40.0
    return _clamp(score)


def score_transparency(report: FACTReport) -> float:
    """Rewards faithful small surrogates and recorded provenance."""
    section = report.transparency
    score = 40.0
    if section.surrogate_fidelity is not None:
        score += section.surrogate_fidelity * 40.0
        if section.surrogate_leaves is not None and section.surrogate_leaves > 32:
            score -= 10.0
    if section.provenance_steps:
        score += 20.0
    return _clamp(score)


def build_scorecard(report: FACTReport) -> GreenScorecard:
    """Score all four pillars of a FACT report."""
    return GreenScorecard(
        fairness=score_fairness(report),
        accuracy=score_accuracy(report),
        confidentiality=score_confidentiality(report),
        transparency=score_transparency(report),
    )
