"""FACT policy constraints (S10).

§4 asks: "How can FACT elements be embedded in our requirements?"  A
:class:`FACTPolicy` is that embedding: declared limits, written at design
time, checked mechanically against every :class:`FACTReport`.  With
``enforce=True`` a violation stops the release
(:class:`~repro.exceptions.PolicyViolation`); otherwise violations are
returned for the review board.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.report import FACTReport
from repro.exceptions import PolicyViolation


@dataclass(frozen=True)
class Violation:
    """One failed policy clause."""

    pillar: str
    clause: str
    observed: float
    limit: float

    def render(self) -> str:
        """Single-line description."""
        return (f"[{self.pillar}] {self.clause}: observed {self.observed:.4g}, "
                f"limit {self.limit:.4g}")


@dataclass
class FACTPolicy:
    """Declared FACT requirements for a decision system.

    ``None`` disables a clause.  Defaults encode a reasonable review
    baseline: the four-fifths rule, a 10-point odds gap, 5% calibration
    error, conformal coverage within 3 points of nominal, no unique rows
    on quasi-identifiers, and a surrogate at least 85% faithful.
    """

    name: str = "default-fact-policy"
    min_disparate_impact: float | None = 0.8
    max_equalized_odds_difference: float | None = 0.10
    max_statistical_parity_difference: float | None = None
    max_calibration_error: float | None = 0.05
    max_conformal_coverage_shortfall: float | None = 0.03
    max_unique_row_fraction: float | None = 0.0
    max_epsilon: float | None = None
    forbid_raw_identifiers: bool = True
    min_surrogate_fidelity: float | None = 0.85
    notes: list[str] = field(default_factory=list)

    def check(self, report: FACTReport) -> list[Violation]:
        """All clauses violated by ``report`` (empty = compliant)."""
        violations: list[Violation] = []

        def add(pillar: str, clause: str, observed: float, limit: float,
                bad: bool) -> None:
            if bad:
                violations.append(Violation(pillar, clause, observed, limit))

        fairness = report.fairness
        if self.min_disparate_impact is not None:
            add("fairness", "disparate impact ratio below minimum",
                fairness.disparate_impact_ratio, self.min_disparate_impact,
                fairness.disparate_impact_ratio < self.min_disparate_impact)
        if self.max_equalized_odds_difference is not None:
            add("fairness", "equalized odds difference above maximum",
                fairness.equalized_odds_difference,
                self.max_equalized_odds_difference,
                fairness.equalized_odds_difference
                > self.max_equalized_odds_difference)
        if self.max_statistical_parity_difference is not None:
            add("fairness", "statistical parity difference above maximum",
                fairness.statistical_parity_difference,
                self.max_statistical_parity_difference,
                fairness.statistical_parity_difference
                > self.max_statistical_parity_difference)

        accuracy = report.accuracy
        if self.max_calibration_error is not None:
            add("accuracy", "expected calibration error above maximum",
                accuracy.expected_calibration_error,
                self.max_calibration_error,
                accuracy.expected_calibration_error > self.max_calibration_error)
        if (self.max_conformal_coverage_shortfall is not None
                and accuracy.conformal_coverage is not None):
            nominal = 1.0 - accuracy.conformal_alpha
            shortfall = nominal - accuracy.conformal_coverage
            add("accuracy", "conformal coverage below nominal",
                shortfall, self.max_conformal_coverage_shortfall,
                shortfall > self.max_conformal_coverage_shortfall)

        confidentiality = report.confidentiality
        if self.forbid_raw_identifiers and confidentiality.identifiers_present:
            add("confidentiality", "raw identifier columns present",
                float(len(confidentiality.identifiers_present)), 0.0, True)
        if (self.max_unique_row_fraction is not None
                and confidentiality.risk is not None):
            add("confidentiality", "unique quasi-identifier rows above maximum",
                confidentiality.risk.unique_row_fraction,
                self.max_unique_row_fraction,
                confidentiality.risk.unique_row_fraction
                > self.max_unique_row_fraction)
        if (self.max_epsilon is not None
                and confidentiality.epsilon_spent is not None):
            add("confidentiality", "privacy spend above maximum",
                confidentiality.epsilon_spent, self.max_epsilon,
                confidentiality.epsilon_spent > self.max_epsilon)

        transparency = report.transparency
        if (self.min_surrogate_fidelity is not None
                and transparency.surrogate_fidelity is not None):
            add("transparency", "surrogate fidelity below minimum",
                transparency.surrogate_fidelity, self.min_surrogate_fidelity,
                transparency.surrogate_fidelity < self.min_surrogate_fidelity)
        return violations

    def enforce(self, report: FACTReport) -> None:
        """Raise :class:`PolicyViolation` listing any failed clauses."""
        violations = self.check(report)
        if violations:
            rendered = "; ".join(violation.render() for violation in violations)
            raise PolicyViolation(
                f"policy {self.name!r}: {len(violations)} violation(s): {rendered}"
            )

    def render(self) -> str:
        """The policy as a requirements document (markdown).

        §4 of the paper asks "How can FACT elements be embedded in our
        requirements?"  This rendering is the embedding: the declared
        limits, readable by the review board, checkable by the auditor.
        """
        lines = [f"# FACT requirements: {self.name}", ""]

        def clause(pillar: str, text: str, value) -> None:
            if value is not None and value is not False:
                lines.append(f"- **[{pillar}]** {text.format(value=value)}")

        clause("fairness",
               "disparate-impact ratio must be at least {value:g}",
               self.min_disparate_impact)
        clause("fairness",
               "equalized-odds difference must not exceed {value:g}",
               self.max_equalized_odds_difference)
        clause("fairness",
               "statistical-parity difference must not exceed {value:g}",
               self.max_statistical_parity_difference)
        clause("accuracy",
               "expected calibration error must not exceed {value:g}",
               self.max_calibration_error)
        clause("accuracy",
               "conformal coverage may fall short of nominal by at most "
               "{value:g}", self.max_conformal_coverage_shortfall)
        clause("confidentiality",
               "at most a {value:g} fraction of rows may be unique on "
               "quasi-identifiers", self.max_unique_row_fraction)
        clause("confidentiality",
               "total privacy spend must not exceed epsilon = {value:g}",
               self.max_epsilon)
        if self.forbid_raw_identifiers:
            lines.append(
                "- **[confidentiality]** no raw identifier columns may reach "
                "evaluation or release"
            )
        clause("transparency",
               "a surrogate explanation must reach fidelity {value:g}",
               self.min_surrogate_fidelity)
        if self.notes:
            lines.append("")
            lines += [f"> {note}" for note in self.notes]
        return "\n".join(lines)
