"""FACT core (S10): auditor, report, scorecard, policy."""

from repro.core.auditor import FACTAuditor
from repro.core.policy import FACTPolicy, Violation
from repro.core.report import (
    AccuracySection,
    ConfidentialitySection,
    FACTReport,
    TransparencySection,
)
from repro.core.scorecard import (
    GreenScorecard,
    build_scorecard,
    score_accuracy,
    score_confidentiality,
    score_fairness,
    score_transparency,
)

__all__ = [
    "AccuracySection",
    "ConfidentialitySection",
    "FACTAuditor",
    "FACTPolicy",
    "FACTReport",
    "GreenScorecard",
    "TransparencySection",
    "Violation",
    "build_scorecard",
    "score_accuracy",
    "score_confidentiality",
    "score_fairness",
    "score_transparency",
]
