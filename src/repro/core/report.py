"""The FACT report: one artefact answering all four questions (S10).

A :class:`FACTReport` has one section per pillar.  Sections are plain
dataclasses so they serialise and diff cleanly; ``render()`` produces the
document a review board would read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accuracy.bootstrap import IntervalEstimate
from repro.confidentiality.risk import RiskProfile
from repro.fairness.report import FairnessReport
from repro.store import Artifact


@dataclass
class AccuracySection:
    """Q2: every headline number with its uncertainty."""

    accuracy: IntervalEstimate
    auc: IntervalEstimate
    expected_calibration_error: float
    conformal_alpha: float | None = None
    conformal_coverage: float | None = None
    conformal_mean_set_size: float | None = None
    conformal_coverage_by_group: dict[object, float] = field(
        default_factory=dict
    )
    n_test_rows: int = 0

    @property
    def conformal_group_coverage_gap(self) -> float | None:
        """max - min per-group coverage (the E4b fairness-of-certainty gap)."""
        if not self.conformal_coverage_by_group:
            return None
        values = list(self.conformal_coverage_by_group.values())
        return float(max(values) - min(values))

    def render(self) -> str:
        """Section text."""
        lines = [
            "ACCURACY (Q2)",
            f"  accuracy: {self.accuracy}",
            f"  roc auc:  {self.auc}",
            f"  expected calibration error: {self.expected_calibration_error:.4f}",
        ]
        if self.conformal_coverage is not None:
            lines.append(
                f"  conformal guarantee: nominal {1.0 - self.conformal_alpha:.0%}"
                f" -> empirical {self.conformal_coverage:.1%}"
                f" (mean set size {self.conformal_mean_set_size:.2f})"
            )
        if self.conformal_coverage_by_group:
            rendered = ", ".join(
                f"{group}={coverage:.1%}"
                for group, coverage in self.conformal_coverage_by_group.items()
            )
            lines.append(
                f"  conformal coverage by group: {rendered} "
                f"(gap {self.conformal_group_coverage_gap:.3f})"
            )
        return "\n".join(lines)


@dataclass
class ConfidentialitySection:
    """Q3: what the pipeline exposes and what it spent."""

    risk: RiskProfile | None = None
    identifiers_present: list[str] = field(default_factory=list)
    metadata_present: list[str] = field(default_factory=list)
    epsilon_spent: float | None = None
    epsilon_budget: float | None = None
    ledger_entries: int = 0

    def render(self) -> str:
        """Section text."""
        lines = ["CONFIDENTIALITY (Q3)"]
        if self.identifiers_present:
            lines.append(
                f"  WARNING: raw identifier columns present: {self.identifiers_present}"
            )
        if self.metadata_present:
            lines.append(
                f"  WARNING: oracle/metadata columns present: {self.metadata_present}"
            )
        if self.risk is not None:
            lines.append(f"  {self.risk.render()}")
        if self.epsilon_budget is not None:
            lines.append(
                f"  privacy budget: ε {self.epsilon_spent:.4g}/"
                f"{self.epsilon_budget:.4g} spent over {self.ledger_entries} releases"
            )
        if len(lines) == 1:
            lines.append("  no confidentiality mechanisms engaged")
        return "\n".join(lines)


@dataclass
class TransparencySection:
    """Q4: how explainable the decision process is."""

    model_type: str = "unknown"
    surrogate_fidelity: float | None = None
    surrogate_leaves: int | None = None
    top_features: list[tuple[str, float]] = field(default_factory=list)
    provenance_steps: int | None = None
    audit_events: int | None = None

    def render(self) -> str:
        """Section text."""
        lines = ["TRANSPARENCY (Q4)", f"  model: {self.model_type}"]
        if self.surrogate_fidelity is not None:
            lines.append(
                f"  surrogate: fidelity {self.surrogate_fidelity:.3f} "
                f"with {self.surrogate_leaves} rules"
            )
        if self.top_features:
            rendered = ", ".join(
                f"{name} ({value:+.3f})" for name, value in self.top_features
            )
            lines.append(f"  top drivers: {rendered}")
        if self.provenance_steps is not None:
            lines.append(
                f"  provenance: {self.provenance_steps} recorded steps, "
                f"{self.audit_events} audit events"
            )
        return "\n".join(lines)


@dataclass
class FACTReport(Artifact):
    """The four pillars, audited, in one document.

    An :class:`~repro.store.Artifact` that keeps its curated
    :meth:`to_dict` (scalars only, stable keys); ``to_json`` and
    ``fingerprint()`` come from the mixin, so two auditors can compare
    one short hash to prove they hold the same report.
    """

    subject: str
    fairness: FairnessReport
    accuracy: AccuracySection
    confidentiality: ConfidentialitySection
    transparency: TransparencySection
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """The full report as text."""
        parts = [
            f"=== FACT report: {self.subject} ===",
            "FAIRNESS (Q1)",
            _indent(self.fairness.render()),
            self.accuracy.render(),
            self.confidentiality.render(),
            self.transparency.render(),
        ]
        if self.notes:
            parts.append("NOTES")
            parts += [f"  - {note}" for note in self.notes]
        return "\n".join(parts)

    def to_dict(self) -> dict:
        """The report as a JSON-serialisable dict (for dashboards/CI).

        Scalars only — the renderable prose stays in :meth:`render`.
        """
        confidentiality = self.confidentiality
        return {
            "subject": self.subject,
            "fairness": {
                "sensitive": self.fairness.sensitive,
                "selection_rates": {
                    str(group): rate
                    for group, rate in self.fairness.selection_rates.items()
                },
                "passes_four_fifths": self.fairness.passes_four_fifths,
                **self.fairness.summary(),
            },
            "accuracy": {
                "accuracy": self.accuracy.accuracy.estimate,
                "accuracy_ci": [self.accuracy.accuracy.lower,
                                self.accuracy.accuracy.upper],
                "auc": self.accuracy.auc.estimate,
                "auc_ci": [self.accuracy.auc.lower, self.accuracy.auc.upper],
                "expected_calibration_error":
                    self.accuracy.expected_calibration_error,
                "conformal_coverage": self.accuracy.conformal_coverage,
                "conformal_group_coverage_gap":
                    self.accuracy.conformal_group_coverage_gap,
                "n_test_rows": self.accuracy.n_test_rows,
            },
            "confidentiality": {
                "identifiers_present": list(confidentiality.identifiers_present),
                "metadata_present": list(confidentiality.metadata_present),
                "epsilon_spent": confidentiality.epsilon_spent,
                "epsilon_budget": confidentiality.epsilon_budget,
                "prosecutor_risk": (
                    confidentiality.risk.prosecutor_risk
                    if confidentiality.risk else None
                ),
                "unique_row_fraction": (
                    confidentiality.risk.unique_row_fraction
                    if confidentiality.risk else None
                ),
            },
            "transparency": {
                "model_type": self.transparency.model_type,
                "surrogate_fidelity": self.transparency.surrogate_fidelity,
                "surrogate_leaves": self.transparency.surrogate_leaves,
                "provenance_steps": self.transparency.provenance_steps,
                "top_features": [
                    [name, value]
                    for name, value in self.transparency.top_features
                ],
            },
            "notes": list(self.notes),
        }


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())
