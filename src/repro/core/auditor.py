"""The FACT auditor: one call, four pillars (S10).

``FACTAuditor.audit`` takes a trained table model, held-out data, and
(optionally) the pipeline trail and privacy accountant, and produces the
full :class:`~repro.core.report.FACTReport`:

* **Fairness** — the complete group audit of the model's decisions.
* **Accuracy** — bootstrap intervals, calibration error, and (with a
  calibration split) a conformal coverage check.
* **Confidentiality** — disclosure-risk profile of the evaluation data,
  leaked-column warnings, privacy-ledger summary.
* **Transparency** — a distilled surrogate with its fidelity, the top
  permutation-importance drivers, and the provenance/audit counts.
"""

from __future__ import annotations

import functools

import numpy as np

from repro import obs
from repro.accuracy.bootstrap import bootstrap_paired_ci
from repro.accuracy.conformal import SplitConformalClassifier
from repro.confidentiality.accountant import PrivacyAccountant
from repro.confidentiality.risk import (
    assess_risk,
    qi_class_counts,
    risk_from_counts,
)
from repro.core.report import (
    AccuracySection,
    ConfidentialitySection,
    FACTReport,
    TransparencySection,
)
from repro.data.partition import PartitionedTable, merge_counts
from repro.data.schema import ColumnRole
from repro.data.table import Table
from repro.engine import Executor, Node, Plan, value_fingerprint
from repro.engine.sharding import ShardPartials, combine_node, shard_map_nodes
from repro.exceptions import DataError, FairnessError
from repro.fairness.report import audit_decisions, audit_model
from repro.learn.calibration import expected_calibration_error
from repro.learn.metrics import accuracy as accuracy_metric
from repro.learn.metrics import roc_auc
from repro.learn.table_model import TableClassifier
from repro.pipeline.pipeline import PipelineResult
from repro.store import resolve_store
from repro.transparency.importance import permutation_importance
from repro.transparency.surrogate import fit_surrogate


def _audit_shard_partial(model: TableClassifier, qi_names: tuple,
                         shard: Table, rng) -> dict:
    """One shard's contribution to every pillar (the map task body).

    Row-wise pure: each returned array is exactly the corresponding rows
    of the whole-table computation (the encoder's statistics and the
    estimator's weights are frozen at fit time), so concatenating the
    partials in shard order reproduces the unsharded arrays *bitwise* —
    which is what makes the sharded sections byte-identical by
    construction.  Module-level so ``functools.partial`` of it pickles
    into a process worker.
    """
    labels = model.labels(shard)
    probabilities = model.predict_proba(shard)
    decisions = (probabilities >= model.threshold).astype(np.float64)
    partial = {
        "n_rows": shard.n_rows,
        "labels": labels,
        "probabilities": probabilities,
        "decisions": decisions,
        "X": model.encoder.transform(shard),
        "sensitive": {
            name: shard.column(name)
            for name in shard.schema.sensitive_names
        },
    }
    if qi_names:
        counts, nan_singletons = qi_class_counts(shard, list(qi_names))
        partial["qi"] = counts
        partial["qi_nan"] = nan_singletons
    return partial


def _gather(partials, keys: tuple[str, ...],
            sensitive: tuple[str, ...] = ()) -> dict:
    """Concatenate the named partial arrays in shard order — one pass.

    A single iteration over ``partials`` (each spilled entry is decoded
    exactly once), returning ``{key: concatenated array}`` plus a
    ``"sensitive"`` dict when sensitive column names are requested.
    """
    parts: dict[str, list] = {key: [] for key in keys}
    groups: dict[str, list] = {name: [] for name in sensitive}
    for partial in partials:
        for key in keys:
            parts[key].append(partial[key])
        for name in sensitive:
            groups[name].append(partial["sensitive"][name])
    gathered: dict = {
        key: np.concatenate(values) for key, values in parts.items()
    }
    if sensitive:
        gathered["sensitive"] = {
            name: np.concatenate(values) for name, values in groups.items()
        }
    return gathered


class FACTAuditor:
    """Audits a model + dataset against all four FACT questions.

    Parameters
    ----------
    conformal_alpha:
        Miscoverage level for the conformal check (needs ``calibration``
        data at audit time).
    surrogate_depth:
        Depth of the transparency surrogate tree.
    n_bootstrap:
        Resamples behind each accuracy interval.
    top_features:
        How many importance-ranked drivers the report lists.
    n_jobs:
        Fan-out for the audit's resampling-heavy internals (the
        bootstrap intervals and permutation importances) via
        :mod:`repro.parallel`; ``None`` defers to ``$REPRO_N_JOBS``.
        The report is bit-identical for every setting.
    backend:
        ``"thread"`` (default) or ``"process"`` for the fan-out.
    store:
        An :class:`~repro.store.ArtifactStore` memoising the audit
        **per pillar section**; ``None`` defers to ``$REPRO_STORE``
        (unset: no caching).  Each section is keyed on exactly the
        inputs, parameters, and code it depends on, so a re-audit
        after one change recomputes only the invalidated sections and
        replays the rest bit-identically.  The stochastic sections own
        ``SeedSequence``-spawned generators (assigned in plan order,
        independent of scheduling and caching), so the sections that
        *do* recompute draw the same stream they would have in a cold
        run — and a change to one section can never shift another's
        results.
    shards:
        Partition a plain ``Table`` into this many row-range shards at
        audit time and run the sharded map/combine path — the same path
        a :class:`~repro.data.PartitionedTable` passed to :meth:`audit`
        takes (see :meth:`build_sharded_plan`).  The report is
        byte-identical to the unsharded path at every shard count.
    """

    def __init__(self, conformal_alpha: float = 0.1,
                 surrogate_depth: int = 4,
                 n_bootstrap: int = 500,
                 top_features: int = 5,
                 n_jobs: int | None = None,
                 backend: str = "thread",
                 store=None,
                 shards: int | None = None):
        self.conformal_alpha = conformal_alpha
        self.surrogate_depth = surrogate_depth
        self.n_bootstrap = n_bootstrap
        self.top_features = top_features
        self.n_jobs = n_jobs
        self.backend = backend
        self.store = store
        self.shards = shards

    def build_plan(self, model: TableClassifier, test: Table,
                   calibration: Table | None = None,
                   accountant: PrivacyAccountant | None = None,
                   pipeline_result: PipelineResult | None = None,
                   store=None,
                   predictions: tuple | None = None) -> Plan:
        """The audit as a four-node pillar :class:`repro.engine.Plan`.

        All four sections sit at dependency level 0 — they consume only
        the plan inputs (``model``, ``test``, ``calibration``) — so the
        executor runs them *concurrently* when given workers.  Cache
        keys derive from each node's code + params + input content, so
        an incremental re-audit recomputes exactly the sections a change
        invalidated, with no hand-written keys.  The stochastic sections
        (accuracy, transparency) declare ``rng="spawn"``: each owns its
        own seed stream, so a change to one can never shift the other's
        results, and the report is bit-identical with or without a
        store at every ``n_jobs``/backend combination.
        """
        if predictions is None:
            predictions = self._predictions(model, test)
        labels, probabilities, decisions = predictions
        tags = lambda fps: (f"table:{fps['test']}",)  # noqa: E731

        def fairness_fn(inputs, rng):
            return audit_model(inputs["model"], inputs["test"])

        def accuracy_fn(inputs, rng):
            return self._accuracy(
                inputs["model"], inputs["test"], labels, probabilities,
                decisions, inputs["calibration"], rng, store=store,
            )

        def confidentiality_fn(inputs, rng):
            return self._confidentiality(inputs["test"], accountant)

        def transparency_fn(inputs, rng):
            return self._transparency(inputs["model"], inputs["test"],
                                      labels, rng, pipeline_result,
                                      store=store)

        nodes = [
            Node("fairness", fairness_fn,
                 inputs=("model", "test"),
                 code=audit_model,
                 tags=tags),
            Node("accuracy", accuracy_fn,
                 inputs=("model", "test", "calibration"),
                 params={"conformal_alpha": self.conformal_alpha,
                         "n_bootstrap": self.n_bootstrap},
                 code=FACTAuditor._accuracy,
                 rng="spawn",
                 tags=tags),
            Node("confidentiality", confidentiality_fn,
                 inputs=("test",),
                 params={"accountant": None if accountant is None else {
                     "epsilon_spent": accountant.epsilon_spent,
                     "epsilon_budget": accountant.epsilon_budget,
                     "ledger_entries": len(accountant.ledger),
                 }},
                 code=FACTAuditor._confidentiality,
                 tags=tags),
            Node("transparency", transparency_fn,
                 inputs=("model", "test"),
                 params={"surrogate_depth": self.surrogate_depth,
                         "top_features": self.top_features,
                         "pipeline": None if pipeline_result is None else {
                             "provenance_steps": (
                                 pipeline_result.context.provenance.n_steps
                                 if pipeline_result.context.provenance
                                 else 0
                             ),
                             "audit_events": len(
                                 pipeline_result.context.audit
                             ),
                         }},
                 code=FACTAuditor._transparency,
                 rng="spawn",
                 tags=tags),
        ]
        return Plan(nodes, inputs=("model", "test", "calibration"))

    @staticmethod
    def _predictions(model: TableClassifier, test: Table) -> tuple:
        """(labels, probabilities, decisions) shared by the sections."""
        labels = model.labels(test)
        probabilities = model.predict_proba(test)
        decisions = (probabilities >= model.threshold).astype(np.float64)
        return labels, probabilities, decisions

    def build_sharded_plan(self, model: TableClassifier,
                           data: PartitionedTable,
                           calibration: Table | None = None,
                           accountant: PrivacyAccountant | None = None,
                           pipeline_result: PipelineResult | None = None,
                           store=None) -> Plan:
        """The audit as a map/combine plan over ``data``'s shards.

        Level 0 is one map node per shard (``partial.shard{i}``), each a
        picklable process task computing that shard's row-wise-pure
        arrays and exact contingency counts; with a store the partials
        *spill* (tagged ``shard:<fp>``), so references rather than
        values travel to level 1.  Level 1 is the four pillar sections
        as combine nodes: they concatenate the partials in shard order —
        reproducing the unsharded arrays bitwise — and run the same
        finalize code as the serial plan, so the report is
        **byte-identical by construction** at every shard count,
        ``n_jobs``, and backend.  The section spawn order (accuracy,
        then transparency) matches :meth:`build_plan`, so the stochastic
        sections draw the very streams the serial plan would.  Per-shard
        cache keys fold each shard's content fingerprint: editing one
        shard re-runs one map node plus the combines.
        """
        schema = data.schema
        qi_names = tuple(schema.quasi_identifier_names)
        sensitive_names = tuple(schema.sensitive_names)
        map_fn = functools.partial(_audit_shard_partial, model, qi_names)
        maps = shard_map_nodes(
            "partial", data, map_fn,
            params=lambda: {"model": value_fingerprint(model)},
            code=_audit_shard_partial,
        )
        tags = lambda fps: (  # noqa: E731
            f"table:{data.__content_fingerprint__()}",
        )

        def fairness_fn(partials, extras, rng):
            if not sensitive_names:
                raise FairnessError("table declares no sensitive column")
            arrays = _gather(
                partials, ("labels", "probabilities", "decisions"),
                sensitive=sensitive_names[:1],
            )
            return audit_decisions(
                arrays["labels"], arrays["decisions"],
                arrays["sensitive"][sensitive_names[0]],
                sensitive=sensitive_names[0],
                probabilities=arrays["probabilities"],
            )

        def accuracy_fn(partials, extras, rng):
            arrays = _gather(
                partials, ("labels", "probabilities", "decisions"),
            )
            return self._accuracy_core(
                model, arrays["labels"], arrays["probabilities"],
                arrays["decisions"], calibration, rng, store=store,
                n_test_rows=int(arrays["labels"].size),
                x_test=lambda: _gather(partials, ("X",))["X"],
                sensitive_names=sensitive_names,
                group=lambda name: _gather(
                    partials, (), sensitive=(name,)
                )["sensitive"][name],
            )

        def confidentiality_fn(partials, extras, rng):
            risk = None
            if qi_names:
                counts: dict = {}
                nan_singletons = 0
                n_rows = 0
                for partial in partials:
                    counts = merge_counts((counts, partial["qi"]))
                    nan_singletons += partial["qi_nan"]
                    n_rows += partial["n_rows"]
                risk = risk_from_counts(
                    qi_names, counts, nan_singletons, n_rows=n_rows
                )
            return self._confidentiality_section(schema, risk, accountant)

        def transparency_fn(partials, extras, rng):
            arrays = _gather(partials, ("X", "labels"))
            return self._transparency_core(
                model, arrays["X"], arrays["labels"], rng,
                pipeline_result, store=store,
            )

        sections = [
            combine_node("fairness", maps, fairness_fn, store=store,
                         code=audit_decisions, tags=tags),
            combine_node("accuracy", maps, accuracy_fn, store=store,
                         params=lambda: {
                             "conformal_alpha": self.conformal_alpha,
                             "n_bootstrap": self.n_bootstrap,
                             "calibration": (
                                 None if calibration is None
                                 else value_fingerprint(calibration)
                             ),
                         },
                         code=FACTAuditor._accuracy_core,
                         rng="spawn", tags=tags),
            combine_node("confidentiality", maps, confidentiality_fn,
                         store=store,
                         params={"accountant": None if accountant is None
                                 else {
                                     "epsilon_spent": accountant.epsilon_spent,
                                     "epsilon_budget": accountant.epsilon_budget,
                                     "ledger_entries": len(accountant.ledger),
                                 }},
                         code=FACTAuditor._confidentiality_section,
                         tags=tags),
            combine_node("transparency", maps, transparency_fn, store=store,
                         params={"surrogate_depth": self.surrogate_depth,
                                 "top_features": self.top_features,
                                 "pipeline": None if pipeline_result is None
                                 else {
                                     "provenance_steps": (
                                         pipeline_result.context.provenance.n_steps
                                         if pipeline_result.context.provenance
                                         else 0
                                     ),
                                     "audit_events": len(
                                         pipeline_result.context.audit
                                     ),
                                 }},
                         code=FACTAuditor._transparency_core,
                         rng="spawn", tags=tags),
        ]
        return Plan([*maps, *sections])

    def _audit_sharded(self, model: TableClassifier, data: PartitionedTable,
                       rng: np.random.Generator,
                       calibration: Table | None,
                       accountant: PrivacyAccountant | None,
                       pipeline_result: PipelineResult | None,
                       subject: str) -> FACTReport:
        """Run the sharded map/combine plan and assemble the report."""
        if data.n_rows < 10:
            raise DataError("need at least 10 evaluation rows for an audit")
        store = resolve_store(self.store)
        plan = self.build_sharded_plan(
            model, data, calibration, accountant, pipeline_result,
            store=store,
        )
        executor = Executor(n_jobs=self.n_jobs, backend=self.backend,
                            name="audit")
        telemetry = obs.get()
        if telemetry is not None:
            with telemetry.tracer.span(
                "audit.run", subject=subject, n_rows=data.n_rows,
                n_shards=data.n_shards, n_jobs=executor.n_jobs,
                backend=self.backend,
            ):
                result = executor.run(plan, store=store, rng=rng)
        else:
            result = executor.run(plan, store=store, rng=rng)
        fairness = result["fairness"]
        partials = ShardPartials(
            [result[f"partial.shard{i}"] for i in range(data.n_shards)],
            store,
        )
        sensitive_names = tuple(data.schema.sensitive_names)
        arrays = _gather(partials, ("decisions",), sensitive=sensitive_names)
        notes = []
        if calibration is None:
            notes.append(
                "no calibration split supplied: conformal guarantee not checked"
            )
        power_note = self._audit_power_note(
            fairness, arrays["sensitive"][fairness.sensitive]
        )
        if power_note:
            notes.append(power_note)
        intersectional_note = self._intersectional_note(
            arrays.get("sensitive", {}), arrays["decisions"], fairness
        )
        if intersectional_note:
            notes.append(intersectional_note)
        return FACTReport(
            subject=subject,
            fairness=fairness,
            accuracy=result["accuracy"],
            confidentiality=result["confidentiality"],
            transparency=result["transparency"],
            notes=notes,
        )

    def audit(self, model: TableClassifier, test: Table,
              rng: np.random.Generator,
              calibration: Table | None = None,
              accountant: PrivacyAccountant | None = None,
              pipeline_result: PipelineResult | None = None,
              subject: str = "model") -> FACTReport:
        """Produce the full FACT report.

        The four pillar sections run as one engine plan: concurrent
        when the auditor has workers, memoised per section when a store
        is available (explicit or via ``$REPRO_STORE``) — unchanged
        sections replay byte-identically, changed ones recompute, the
        incremental re-audit.  There is exactly one code path; a run
        without a store differs only in that nothing is looked up.

        ``test`` may also be a :class:`~repro.data.PartitionedTable`
        (or the auditor may be built with ``shards=N`` to partition a
        plain table here): the audit then runs as the sharded
        map/combine plan of :meth:`build_sharded_plan` — out-of-core,
        process-parallel when asked, and byte-identical to this path.
        """
        if isinstance(test, Table) and self.shards is not None \
                and self.shards > 1:
            test = PartitionedTable.partition(test, n_shards=self.shards)
        if isinstance(test, PartitionedTable):
            return self._audit_sharded(
                model, test, rng, calibration, accountant,
                pipeline_result, subject,
            )
        if test.n_rows < 10:
            raise DataError("need at least 10 evaluation rows for an audit")
        store = resolve_store(self.store)
        predictions = self._predictions(model, test)
        _, _, decisions = predictions
        plan = self.build_plan(
            model, test, calibration, accountant, pipeline_result,
            store=store, predictions=predictions,
        )
        executor = Executor(n_jobs=self.n_jobs, backend=self.backend,
                            name="audit")
        inputs = {"model": model, "test": test, "calibration": calibration}
        telemetry = obs.get()
        if telemetry is not None:
            with telemetry.tracer.span(
                "audit.run", subject=subject, n_rows=test.n_rows,
                n_jobs=executor.n_jobs, backend=self.backend,
            ):
                result = executor.run(plan, inputs, store=store, rng=rng)
        else:
            result = executor.run(plan, inputs, store=store, rng=rng)
        fairness = result["fairness"]
        accuracy_section = result["accuracy"]
        confidentiality = result["confidentiality"]
        transparency = result["transparency"]
        notes = []
        if calibration is None:
            notes.append(
                "no calibration split supplied: conformal guarantee not checked"
            )
        power_note = self._audit_power_note(
            fairness, test.sensitive(fairness.sensitive)
        )
        if power_note:
            notes.append(power_note)
        intersectional_note = self._intersectional_note(
            {name: test.column(name)
             for name in test.schema.sensitive_names},
            decisions, fairness,
        )
        if intersectional_note:
            notes.append(intersectional_note)
        return FACTReport(
            subject=subject,
            fairness=fairness,
            accuracy=accuracy_section,
            confidentiality=confidentiality,
            transparency=transparency,
            notes=notes,
        )

    # -- sections -----------------------------------------------------------

    @staticmethod
    def _intersectional_note(sensitive_columns: dict[str, np.ndarray],
                             decisions: np.ndarray,
                             fairness) -> str | None:
        """Cross several sensitive attributes when the schema declares them.

        The headline fairness section audits one attribute; if more are
        declared, the worst *intersection* may be worse than any
        marginal — the report should say so rather than average it away.
        Takes the sensitive columns as arrays so the sharded path can
        feed concatenated shard partials instead of a whole table (a
        `Table` is accepted and read column-by-column).
        """
        if isinstance(sensitive_columns, Table):
            table = sensitive_columns
            sensitive_columns = {name: table.column(name)
                                 for name in table.schema.sensitive_names}
        if len(sensitive_columns) < 2:
            return None
        from repro.fairness.intersectional import intersectional_audit

        try:
            report = intersectional_audit(decisions, dict(sensitive_columns))
        except FairnessError:
            return None
        worst = report.worst_cell
        if report.max_gap > fairness.statistical_parity_difference + 0.02:
            return (
                f"intersectional gap exceeds the marginal one: worst cell "
                f"{worst.describe()} selects at {worst.selection_rate:.2f} "
                f"(gap {report.max_gap:.3f} vs marginal "
                f"{fairness.statistical_parity_difference:.3f})"
            )
        return None

    @staticmethod
    def _audit_power_note(fairness, group: np.ndarray) -> str | None:
        """Flag an underpowered fairness audit (Q2 applied to Q1).

        A small test set can only *detect* large selection gaps; when the
        minimum detectable gap exceeds what the four-fifths rule needs to
        see, a "pass" is statistically meaningless and the report says so.
        ``group`` is the audited sensitive column's values (whole-table,
        or concatenated shard partials — identical arrays either way).
        """
        from repro.accuracy.power import minimum_detectable_gap

        sizes = [int((group == value).sum()) for value in fairness.groups]
        smallest = min(sizes)
        baseline = max(fairness.selection_rates.values())
        if not 0.0 < baseline < 1.0 or smallest < 2:
            return None
        detectable = minimum_detectable_gap(smallest, baseline)
        if np.isnan(detectable):
            return (f"fairness audit severely underpowered: smallest group "
                    f"has {smallest} rows")
        # The gap the 4/5 rule cares about at this baseline rate.
        material_gap = 0.2 * baseline
        if detectable > material_gap:
            return (
                f"fairness audit underpowered: smallest group n={smallest} "
                f"can only detect selection gaps >= {detectable:.3f}, but "
                f"a four-fifths violation here is a gap of "
                f"{material_gap:.3f}"
            )
        return None

    def _accuracy(self, model, test, labels, probabilities, decisions,
                  calibration, rng, store=None) -> AccuracySection:
        return self._accuracy_core(
            model, labels, probabilities, decisions, calibration, rng,
            store=store,
            n_test_rows=test.n_rows,
            x_test=lambda: model.encoder.transform(test),
            sensitive_names=tuple(test.schema.sensitive_names),
            group=test.sensitive,
        )

    def _accuracy_core(self, model, labels, probabilities, decisions,
                       calibration, rng, store=None, *,
                       n_test_rows: int,
                       x_test, sensitive_names: tuple,
                       group) -> AccuracySection:
        """The accuracy section from arrays (shared by both plans).

        ``x_test`` and ``group`` are zero/one-argument callables — the
        encoded test matrix and a sensitive column — evaluated only when
        a conformal check actually needs them, so the serial path never
        encodes twice and the sharded path only concatenates ``X``
        partials when calibration data exists.
        """
        acc_ci = bootstrap_paired_ci(
            labels, decisions, accuracy_metric, rng,
            n_resamples=self.n_bootstrap,
            n_jobs=self.n_jobs, backend=self.backend, store=store,
        )
        auc_ci = bootstrap_paired_ci(
            labels, probabilities, roc_auc, rng,
            n_resamples=self.n_bootstrap,
            n_jobs=self.n_jobs, backend=self.backend, store=store,
        )
        coverage = set_size = None
        by_group: dict[object, float] = {}
        if calibration is not None:
            conformal = SplitConformalClassifier(
                model.estimator, alpha=self.conformal_alpha
            )
            X_cal = model.encoder.transform(calibration)
            conformal.calibrate(X_cal, model.labels(calibration),
                                store=store)
            X_test = x_test()
            coverage = conformal.coverage(X_test, labels)
            set_size = conformal.mean_set_size(X_test)
            # The E4b check: does the (marginal) guarantee hold within
            # each protected group, or only on average?
            if sensitive_names:
                values = group(sensitive_names[0])
                sets = conformal.predict_sets(X_test)
                covered = np.asarray([
                    prediction_set.covers(label)
                    for prediction_set, label in zip(sets, labels)
                ])
                by_group = {
                    value: float(covered[values == value].mean())
                    for value in np.unique(values)
                    if (values == value).sum() >= 10
                }
        return AccuracySection(
            accuracy=acc_ci,
            auc=auc_ci,
            expected_calibration_error=expected_calibration_error(
                labels, probabilities
            ),
            conformal_alpha=self.conformal_alpha if coverage is not None else None,
            conformal_coverage=coverage,
            conformal_mean_set_size=set_size,
            conformal_coverage_by_group=by_group,
            n_test_rows=n_test_rows,
        )

    def _confidentiality(self, test: Table,
                         accountant) -> ConfidentialitySection:
        risk = None
        if test.schema.quasi_identifier_names:
            risk = assess_risk(test)
        return self._confidentiality_section(test.schema, risk, accountant)

    @staticmethod
    def _confidentiality_section(schema, risk,
                                 accountant) -> ConfidentialitySection:
        """Assemble the section from a (possibly merged) risk profile.

        The sharded path computes ``risk`` by exactly merging per-shard
        equivalence-class counts (:func:`repro.data.merge_counts` +
        :func:`repro.confidentiality.risk_from_counts`), which
        reproduces :func:`~repro.confidentiality.assess_risk` on the
        whole table; everything else is schema- and accountant-derived.
        """
        metadata = [
            spec.name for spec in schema
            if spec.role is ColumnRole.METADATA
        ]
        section = ConfidentialitySection(
            risk=risk,
            identifiers_present=schema.identifier_names,
            metadata_present=metadata,
        )
        if accountant is not None:
            section.epsilon_spent = accountant.epsilon_spent
            section.epsilon_budget = accountant.epsilon_budget
            section.ledger_entries = len(accountant.ledger)
        return section

    def _transparency(self, model, test, labels, rng,
                      pipeline_result, store=None) -> TransparencySection:
        return self._transparency_core(
            model, model.encoder.transform(test), labels, rng,
            pipeline_result, store=store,
        )

    def _transparency_core(self, model, X, labels, rng,
                           pipeline_result,
                           store=None) -> TransparencySection:
        """The transparency section from the encoded matrix + labels."""
        fidelity = leaves = None
        try:
            surrogate = fit_surrogate(
                model.estimator, X, max_depth=self.surrogate_depth
            )
            fidelity, leaves = surrogate.fidelity, surrogate.n_leaves
        except DataError:
            pass  # constant model: surrogate vacuous, reported as absent
        importance = permutation_importance(
            model.estimator, X, labels, rng, n_repeats=3,
            feature_names=model.feature_names,
            n_jobs=self.n_jobs, backend=self.backend, store=store,
        )
        section = TransparencySection(
            model_type=type(model.estimator).__name__,
            surrogate_fidelity=fidelity,
            surrogate_leaves=leaves,
            top_features=importance.ranked()[:self.top_features],
        )
        if pipeline_result is not None:
            graph = pipeline_result.context.provenance
            section.provenance_steps = graph.n_steps if graph else 0
            section.audit_events = len(pipeline_result.context.audit)
        return section
