"""Per-task RNG spawning (the reproducibility half of going parallel).

A parallel resampling loop must not let the *scheduler* decide which
random numbers a task sees: if workers shared one generator, results
would depend on thread interleaving and ``n_jobs``.  The fix is the
NumPy-sanctioned one — ``SeedSequence.spawn`` — which derives one
independent, collision-resistant child stream **per task** from the
caller's generator.  Spawning is itself deterministic and happens on
the coordinator, so the mapping task → stream depends only on the
task's index, never on which worker runs it or how many exist.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError


def spawn_seeds(rng: np.random.Generator, n: int) -> list[np.random.SeedSequence]:
    """``n`` independent child seed sequences of ``rng``'s seed sequence.

    The spawn advances the parent's spawn counter, so successive calls
    yield fresh, non-overlapping children — call once per fan-out and
    hand child ``i`` to task ``i``.
    """
    if n < 0:
        raise DataError("cannot spawn a negative number of seeds")
    seed_seq = rng.bit_generator.seed_seq
    if seed_seq is None:
        raise DataError(
            "rng has no seed sequence to spawn from; construct it with "
            "np.random.default_rng(seed)"
        )
    return list(seed_seq.spawn(n))


def spawn_rngs(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """``n`` independent child generators of ``rng``, one per task."""
    return [np.random.default_rng(seed) for seed in spawn_seeds(rng, n)]
