"""``repro.parallel`` — deterministic fan-out for the resampling hot paths.

The paper's Q2 and Q4 demand that every headline number travel with
bootstrap intervals, multiple-testing scans, and Shapley/permutation
explanations — embarrassingly parallel workloads that historically ran
as sequential Python loops.  This package gives the whole toolkit one
sanctioned way to go wide without surrendering reproducibility:

* :class:`ParallelExecutor` / :func:`pmap` — chunked fan-out over a
  thread pool, a process pool, or a serial fallback, with bounded
  in-flight chunks, *ordered* reassembly, worker-side error capture
  that re-raises with task context, and full :mod:`repro.obs`
  instrumentation (a span per chunk, task/retry/error counters, a
  chunk-duration histogram).
* :func:`spawn_seeds` / :func:`spawn_rngs` — per-task RNG streams via
  ``np.random.SeedSequence.spawn``, so randomness is attached to the
  *task*, never to the worker that happens to run it.

The determinism contract: every parallelised API in this toolkit draws
all of its randomness **up front** from the caller's generator (in the
same order the serial code always did) and assembles results **by task
index**, so outputs are bit-identical for any ``n_jobs`` and for every
backend — ``n_jobs=4`` is purely a wall-clock statement.

``n_jobs`` resolution: an explicit integer wins; ``None`` defers to the
``REPRO_N_JOBS`` environment variable (the CI matrix exercises the
parallel path this way) and finally defaults to ``1``; ``-1`` means
"all cores".
"""

from __future__ import annotations

from repro.parallel.executor import (
    BACKENDS,
    ParallelExecutor,
    ParallelTaskError,
    pmap,
    resolve_n_jobs,
)
from repro.parallel.rng import spawn_rngs, spawn_seeds

__all__ = [
    "BACKENDS",
    "ParallelExecutor",
    "ParallelTaskError",
    "pmap",
    "resolve_n_jobs",
    "spawn_rngs",
    "spawn_seeds",
]
