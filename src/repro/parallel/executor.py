"""Chunked, bounded, *ordered* fan-out over threads or processes.

The design constraints, in priority order:

1. **Determinism** — results come back in task order regardless of
   completion order, and nothing about the output may depend on
   ``n_jobs`` or the backend.  The executor therefore never touches
   randomness; callers pre-draw it (see :mod:`repro.parallel.rng`).
2. **Diagnosability** — a worker failure is captured *at the worker*
   with the failing task's index and repr, then re-raised on the
   coordinator as :class:`ParallelTaskError` chaining the original
   exception, so a crash deep inside resample 731 of 1000 names
   resample 731.
3. **Bounded memory** — at most ``max_inflight`` chunks are submitted
   at a time, so a million-task map never materialises a million
   futures.

Backends: ``"thread"`` (default — zero pickling, fine whenever the hot
work releases the GIL, e.g. NumPy reductions and model ``predict``
calls), ``"process"`` (true CPU parallelism; requires picklable
callables and tasks), and ``"serial"`` (the same code path inline —
useful to A/B the engine itself out of a measurement).
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro import obs
from repro.exceptions import DataError, ReproError

BACKENDS = ("serial", "thread", "process")

#: Environment variable consulted when ``n_jobs`` is ``None``; the CI
#: matrix sets it to 2 so every push exercises the parallel path.
N_JOBS_ENV = "REPRO_N_JOBS"


class ParallelTaskError(ReproError):
    """A worker task failed; carries the task's context to the caller."""

    def __init__(self, message: str, *, task_index: int, task_repr: str,
                 chunk_index: int, backend: str, worker_traceback: str):
        super().__init__(message)
        self.task_index = task_index
        self.task_repr = task_repr
        self.chunk_index = chunk_index
        self.backend = backend
        self.worker_traceback = worker_traceback


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Turn the user-facing ``n_jobs`` knob into a concrete worker count.

    ``None`` defers to ``$REPRO_N_JOBS`` and then to ``1`` (the serial
    default every API keeps); ``-1`` means "all cores".
    """
    if n_jobs is None:
        raw = os.environ.get(N_JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise DataError(
                f"${N_JOBS_ENV} must be an integer, got {raw!r}"
            ) from None
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise DataError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return n_jobs


@dataclass
class _ChunkFailure:
    """Worker-side capture of one failed task (picklable across processes)."""

    task_offset: int
    task_repr: str
    error_type: str
    error_message: str
    worker_traceback: str
    exception: BaseException | None


def _invoke(thunk: Callable):
    """Call one zero-argument task (module-level so pools can name it)."""
    return thunk()


def _run_chunk(fn: Callable, tasks: Sequence) -> list | _ChunkFailure:
    """Run one chunk in the worker; capture the first failure with context.

    Returning (rather than raising) the failure keeps the task context
    intact across the process boundary, where a bare exception would
    arrive stripped of which task produced it.
    """
    results = []
    for offset, task in enumerate(tasks):
        try:
            results.append(fn(task))
        except Exception as error:  # noqa: BLE001 — re-raised with context
            try:
                task_repr = repr(task)[:120]
            except Exception:  # pragma: no cover — hostile __repr__
                task_repr = f"<{type(task).__qualname__}>"
            return _ChunkFailure(
                task_offset=offset,
                task_repr=task_repr,
                error_type=type(error).__qualname__,
                error_message=str(error),
                worker_traceback=traceback.format_exc(),
                exception=error,
            )
    return results


class ParallelExecutor:
    """Deterministic chunked map over a worker pool.

    Parameters
    ----------
    n_jobs:
        Worker count; ``None`` consults ``$REPRO_N_JOBS`` then defaults
        to 1, ``-1`` uses every core.
    backend:
        ``"thread"``, ``"process"``, or ``"serial"``.  ``n_jobs=1``
        always runs serially whatever the backend says.
    chunk_size:
        Tasks per dispatch unit.  Default: enough chunks for ~4 waves
        per worker, so stragglers can rebalance.
    max_inflight:
        Upper bound on concurrently submitted chunks (default
        ``2 * n_jobs``) — bounds coordinator memory on huge maps.
    retries:
        How many times a *failed chunk* is resubmitted before the
        failure propagates.  Only useful for flaky external calls;
        deterministic numeric work should keep the default 0.
    name:
        Prefix for telemetry span/metric names.
    """

    def __init__(self, n_jobs: int | None = None, backend: str = "thread",
                 chunk_size: int | None = None,
                 max_inflight: int | None = None,
                 retries: int = 0, name: str = "parallel"):
        if backend not in BACKENDS:
            raise DataError(
                f"unknown backend {backend!r}; choose from {BACKENDS}"
            )
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.backend = backend
        if chunk_size is not None and chunk_size < 1:
            raise DataError("chunk_size must be >= 1")
        self.chunk_size = chunk_size
        if max_inflight is not None and max_inflight < 1:
            raise DataError("max_inflight must be >= 1")
        self.max_inflight = max_inflight
        if retries < 0:
            raise DataError("retries must be >= 0")
        self.retries = retries
        self.name = name

    # -- public API ---------------------------------------------------------

    def map(self, fn: Callable, tasks: Iterable) -> list:
        """Apply ``fn`` to every task; results in task order, always.

        Tasks are grouped into chunks, at most ``max_inflight`` chunks
        are in flight at once, and finished chunks slot back in by
        index — completion order never leaks into the output.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        chunks = self._chunk(tasks)
        telemetry = obs.get()
        if telemetry is not None:
            telemetry.metrics.counter(f"{self.name}.tasks").inc(len(tasks))
            telemetry.metrics.counter(f"{self.name}.chunks").inc(len(chunks))
        inline = (self.backend == "serial" or self.n_jobs == 1
                  or len(chunks) == 1)
        collector = telemetry.collector if telemetry is not None else None
        profiled_key = None
        if collector is not None and (inline or self.backend != "process"):
            # Sampling wraps fn in a closure, so it stays in-process:
            # thread/serial backends only (a process worker could not
            # pickle the wrapper, and its samples would die with it).
            profiled_key = ("pool", self.name)
            fn = collector.wrap(profiled_key, fn)
        try:
            if inline:
                return self._map_serial(fn, chunks, telemetry)
            return self._map_pool(fn, chunks, telemetry)
        finally:
            if profiled_key is not None:
                self._record_profile(telemetry, collector, profiled_key)

    def call(self, thunks: Iterable[Callable]) -> list:
        """Run zero-argument callables concurrently; results in order.

        The heterogeneous sibling of :meth:`map`: each task carries its
        own closure, which is how :class:`repro.engine.Executor`
        dispatches the independent ready nodes of one plan level.  The
        thread/serial backends run closures directly; note closures are
        rarely picklable, so callers targeting ``"process"`` should
        coerce to ``"thread"`` first.
        """
        return self.map(_invoke, list(thunks))

    # -- internals ----------------------------------------------------------

    def _chunk(self, tasks: list) -> list[tuple[int, list]]:
        """(start_index, tasks) chunks of roughly ``chunk_size`` each."""
        size = self.chunk_size
        if size is None:
            size = max(1, len(tasks) // (self.n_jobs * 4) or 1)
        return [
            (start, tasks[start:start + size])
            for start in range(0, len(tasks), size)
        ]

    def _make_pool(self) -> Executor:
        if self.backend == "process":
            return ProcessPoolExecutor(max_workers=self.n_jobs)
        return ThreadPoolExecutor(max_workers=self.n_jobs)

    def _map_serial(self, fn, chunks, telemetry) -> list:
        results: list = []
        for chunk_index, (start, chunk_tasks) in enumerate(chunks):
            outcome, attempts = self._run_with_retries_serial(
                fn, chunk_tasks, telemetry
            )
            if isinstance(outcome, _ChunkFailure):
                self._raise(outcome, start, chunk_index, telemetry)
            self._record_chunk(telemetry, chunk_index, len(chunk_tasks),
                               attempts)
            results.extend(outcome)
        return results

    def _run_with_retries_serial(self, fn, chunk_tasks, telemetry):
        attempts = 0
        while True:
            outcome = _run_chunk(fn, chunk_tasks)
            attempts += 1
            if not isinstance(outcome, _ChunkFailure) or attempts > self.retries:
                return outcome, attempts
            if telemetry is not None:
                telemetry.metrics.counter(f"{self.name}.retries").inc()

    def _map_pool(self, fn, chunks, telemetry) -> list:
        max_inflight = self.max_inflight or 2 * self.n_jobs
        slots: list = [None] * len(chunks)
        attempts_used = [1] * len(chunks)
        with self._make_pool() as pool:
            pending: dict = {}
            next_chunk = 0

            def submit(chunk_index: int, attempts: int) -> None:
                future = pool.submit(_run_chunk, fn, chunks[chunk_index][1])
                pending[future] = (chunk_index, attempts)

            while next_chunk < len(chunks) and len(pending) < max_inflight:
                submit(next_chunk, 0)
                next_chunk += 1
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    chunk_index, attempts = pending.pop(future)
                    start, chunk_tasks = chunks[chunk_index]
                    try:
                        outcome = future.result()
                    except BaseException as error:
                        # The pool itself failed this chunk (worker died,
                        # unpicklable payload, ...): no worker-side record
                        # exists, so synthesise one for uniform handling.
                        outcome = _ChunkFailure(
                            task_offset=0,
                            task_repr=f"<chunk of {len(chunk_tasks)} tasks>",
                            error_type=type(error).__qualname__,
                            error_message=str(error),
                            worker_traceback=traceback.format_exc(),
                            exception=error,
                        )
                    if isinstance(outcome, _ChunkFailure) and attempts < self.retries:
                        if telemetry is not None:
                            telemetry.metrics.counter(
                                f"{self.name}.retries"
                            ).inc()
                        submit(chunk_index, attempts + 1)
                        continue
                    attempts_used[chunk_index] = attempts + 1
                    if isinstance(outcome, _ChunkFailure):
                        self._raise(outcome, start, chunk_index, telemetry)
                    slots[chunk_index] = outcome
                    if next_chunk < len(chunks):
                        submit(next_chunk, 0)
                        next_chunk += 1
        # Chunk telemetry is recorded *after* the pool drains, in chunk
        # order, with tick values drawn only here — completion order
        # (which varies run to run) never reaches the clock, so TickClock
        # exports are byte-identical across reruns of the same
        # configuration (spans carry the backend and chunk layout, which
        # legitimately differ across configs).  Wall profiling of a map
        # belongs around the call: telemetry.timed().
        results: list = []
        for chunk_index, chunk_results in enumerate(slots):
            self._record_chunk(telemetry, chunk_index,
                               len(chunks[chunk_index][1]),
                               attempts_used[chunk_index])
            results.extend(chunk_results)
        return results

    def _record_profile(self, telemetry, collector, key) -> None:
        """Fold the map's merged task samples into pool-level counters.

        Recorded on the coordinator after the map finishes, so worker
        threads never touch the metrics registry; the counters
        accumulate across maps, giving the profiler one wall/CPU total
        per pool name.
        """
        sample = collector.pop(key)
        if sample is None or sample.count == 0:
            return
        telemetry.metrics.counter(
            f"{self.name}.profile.wall_s"
        ).inc(sample.wall_s)
        telemetry.metrics.counter(
            f"{self.name}.profile.cpu_s"
        ).inc(sample.cpu_s)
        if sample.alloc_peak_kb is not None:
            telemetry.metrics.gauge(
                f"{self.name}.profile.alloc_peak_kb"
            ).set(sample.alloc_peak_kb)

    def _record_chunk(self, telemetry, chunk_index, n_tasks,
                      attempts) -> None:
        if telemetry is None:
            return
        begun = telemetry.clock.now()
        ended = telemetry.clock.now()
        telemetry.tracer.record_span(
            f"{self.name}.chunk", begun, ended,
            chunk=chunk_index, tasks=n_tasks,
            attempts=attempts, backend=self.backend,
        )
        telemetry.metrics.histogram(
            f"{self.name}.chunk.duration"
        ).observe(ended - begun)

    def _raise(self, failure: _ChunkFailure, chunk_start: int,
               chunk_index: int, telemetry) -> None:
        if telemetry is not None:
            telemetry.metrics.counter(f"{self.name}.errors").inc()
        task_index = chunk_start + failure.task_offset
        message = (
            f"task {task_index} ({failure.task_repr}) in chunk "
            f"{chunk_index} failed on the {self.backend} backend with "
            f"{failure.error_type}: {failure.error_message}"
        )
        raise ParallelTaskError(
            message,
            task_index=task_index,
            task_repr=failure.task_repr,
            chunk_index=chunk_index,
            backend=self.backend,
            worker_traceback=failure.worker_traceback,
        ) from failure.exception


def pmap(fn: Callable, tasks: Iterable, n_jobs: int | None = None,
         backend: str = "thread", chunk_size: int | None = None,
         name: str = "parallel") -> list:
    """One-shot :meth:`ParallelExecutor.map` with the default knobs."""
    executor = ParallelExecutor(
        n_jobs=n_jobs, backend=backend, chunk_size=chunk_size, name=name
    )
    return executor.map(fn, tasks)
