"""``shard_map``: per-shard map nodes + a declared coordinator combine.

The node template behind out-of-core plans: given a
:class:`~repro.data.partition.PartitionedTable`, ``shard_map_nodes``
builds one :class:`~repro.engine.Node` per shard, each of which

* runs a **pure per-shard function** ``map_fn(shard, rng)``;
* carries a **picklable process task** (the shard's source and any
  per-shard seed closed over via :func:`functools.partial`), so an
  :class:`~repro.engine.Executor` built with ``backend="process"``
  dispatches the whole level as real map tasks over the
  :mod:`repro.parallel` process backend — one task per shard;
* owns a **per-shard cache key** (its params fold the shard's content
  fingerprint), so editing one shard re-keys exactly that node — the
  incremental sharded re-audit;
* optionally **spills**: the partial is committed to the store tagged
  ``shard:<fp>`` and a :class:`~repro.store.Spilled` reference travels
  the plan instead of the value, bounding coordinator memory by one
  shard plus the combined partials;
* optionally draws from a **per-shard spawned SeedSequence** (``seed=``
  spawns one child per shard, baked into the task and folded into the
  key).

``combine_node`` declares the merge step: it receives the partials as a
:class:`ShardPartials` sequence that resolves spilled references one at
a time, **in shard order** — so a combine that concatenates or folds
sequentially is deterministic by construction, and byte-identical to
the unsharded computation whenever the per-shard function is row-wise
pure and the merged statistics are exact (counts, contingencies,
concatenated arrays; see :mod:`repro.data.partition` for the mergeable
vocabulary).
"""

from __future__ import annotations

import functools
from collections.abc import Callable, Sequence

import numpy as np

from repro.data.partition import PartitionedTable
from repro.data.table import Table
from repro.engine.node import Node, seed_identity
from repro.exceptions import PlanError
from repro.parallel.rng import spawn_seeds
from repro.store.store import NULL_STORE, resolve_spilled


def _run_shard_task(map_fn, source, seed):
    """Materialize one shard and apply the map function (worker body).

    Module-level and argument-closed, so ``functools.partial`` of it
    pickles into a process worker; the thread/serial execution path
    calls the exact same function, keeping results byte-identical
    across backends.
    """
    shard = source if isinstance(source, Table) else source()
    rng = np.random.default_rng(seed) if seed is not None else None
    return map_fn(shard, rng)


class ShardPartials(Sequence):
    """The per-shard partials, resolved lazily in shard order.

    Spilled references are fetched from the store one at a time as the
    combine iterates — the coordinator holds the partial it is folding,
    not all of them — while raw (storeless) partials pass straight
    through.  Indexing re-fetches; iterate once and fold.
    """

    def __init__(self, values: Sequence, store):
        self._values = list(values)
        self._store = store if store is not None else NULL_STORE

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, index):
        return resolve_spilled(self._values[index], self._store)

    def __iter__(self):
        for value in self._values:
            yield resolve_spilled(value, self._store)


def shard_map_nodes(name: str, data: PartitionedTable,
                    map_fn: Callable, *,
                    params: dict | Callable[[], dict] | None = None,
                    code: Callable | None = None,
                    seed: np.random.Generator | None = None,
                    spill: bool = True,
                    label: str | None = None) -> tuple[Node, ...]:
    """One map node per shard of ``data`` (names ``{name}.shard{i}``).

    ``map_fn(shard, rng)`` must be pure and — for process dispatch —
    picklable (a module-level function or :func:`functools.partial` of
    one; the shard's source and seed are baked in here).  ``params``
    joins every node's cache key alongside the shard fingerprint;
    ``code`` defaults to ``map_fn`` so edits invalidate.  ``seed``
    spawns one ``SeedSequence`` child per shard (advancing the
    caller's spawn counter once), giving each map task its own
    deterministic stream whose identity joins the key.
    """
    if not isinstance(data, PartitionedTable):
        raise PlanError(
            f"shard_map needs a PartitionedTable, got "
            f"{type(data).__name__}"
        )
    children = (spawn_seeds(seed, data.n_shards)
                if seed is not None else [None] * data.n_shards)
    nodes = []
    for index in range(data.n_shards):
        child = children[index]
        task = functools.partial(
            _run_shard_task, map_fn, data.shard_source(index), child
        )

        def node_fn(inputs, rng, _task=task):
            return _task()

        def node_params(index=index, child=child) -> dict:
            # Lazy all the way down: a callable ``params`` is only
            # evaluated when a store actually needs the key.
            resolved = dict(params()) if callable(params) else dict(params or {})
            resolved["shard"] = data.shard_fingerprint(index)
            if child is not None:
                resolved["seed"] = seed_identity(child)
            return resolved

        def node_tags(input_fps, index=index) -> tuple:
            return (f"shard:{data.shard_fingerprint(index)}",)

        prefix = label if label is not None else name
        nodes.append(Node(
            f"{name}.shard{index}", node_fn,
            params=node_params,
            code=code if code is not None else map_fn,
            label=f"{prefix}.shard{index}",
            span_attrs={"shard": index, "n_shards": data.n_shards},
            tags=node_tags,
            task=task,
            spill=spill,
        ))
    return tuple(nodes)


def combine_node(name: str, over: Sequence[str] | Sequence[Node],
                 fn: Callable, *,
                 store=None,
                 params: dict | Callable[[], dict] | None = None,
                 code: Callable | None = None,
                 rng: str | None = None,
                 inputs: Sequence[str] = (),
                 tags: tuple[str, ...] | Callable = (),
                 label: str | None = None,
                 annotate: Callable | None = None) -> Node:
    """The declared combine step over a shard map's partials.

    ``fn(partials, extras, rng)`` receives the partials as a
    :class:`ShardPartials` (shard order, lazy resolution) and any
    additional declared ``inputs`` as the ``extras`` dict.  ``store``
    must be the store the executor will run with whenever the map
    nodes spill — it is where the references point.  The node's cache
    key folds every partial's fingerprint, so a changed shard re-keys
    the combine automatically.
    """
    over_names = tuple(
        unit.name if isinstance(unit, Node) else str(unit) for unit in over
    )
    extra_names = tuple(str(item) for item in inputs)
    resolved_store = store if store is not None else NULL_STORE

    def combine_fn(input_values, node_rng):
        partials = ShardPartials(
            [input_values[member] for member in over_names],
            resolved_store,
        )
        extras = {member: input_values[member] for member in extra_names}
        return fn(partials, extras, node_rng)

    return Node(
        name, combine_fn,
        inputs=over_names + extra_names,
        params=params,
        code=code if code is not None else fn,
        rng=rng,
        label=label,
        tags=tags,
        annotate=annotate,
    )


def shard_map(name: str, data: PartitionedTable, map_fn: Callable,
              combine: Callable, *,
              params: dict | None = None,
              map_code: Callable | None = None,
              combine_params: dict | Callable[[], dict] | None = None,
              combine_code: Callable | None = None,
              combine_rng: str | None = None,
              seed: np.random.Generator | None = None,
              store=None,
              spill: bool = True,
              inputs: Sequence[str] = (),
              tags: tuple[str, ...] | Callable = ()) -> list[Node]:
    """Map nodes plus their combine, ready to drop into a plan.

    Returns ``[map_0, ..., map_{k-1}, combine]`` where the combine node
    is named ``{name}.combine``.  The combine's value is the plan-level
    result; the map values are per-shard partials (or spilled
    references) that usually never leave the engine.
    """
    maps = shard_map_nodes(
        name, data, map_fn, params=params, code=map_code, seed=seed,
        spill=spill,
    )
    tail = combine_node(
        f"{name}.combine", maps, combine, store=store,
        params=combine_params, code=combine_code, rng=combine_rng,
        inputs=inputs, tags=tags,
    )
    return [*maps, tail]
