"""``Node``: one named pure computation inside a dataflow plan.

A node declares everything the :class:`~repro.engine.executor.Executor`
needs to run it responsibly:

* **identity** — a ``name`` unique within its plan and a display
  ``label`` used for spans and provenance steps;
* **computation** — ``fn(inputs, rng)``, a pure function of the resolved
  input values (a dict keyed by the node's declared ``inputs``) and an
  optional generator;
* **cache key** — derived automatically from the *code* of ``fn`` (via
  :func:`repro.store.code_fingerprint`), the node's ``params``, and
  content fingerprints of every resolved input, so an unchanged node
  replays from the store and a changed one recomputes.  ``params`` may
  be a zero-argument callable; it is only evaluated when a real store
  needs the key, so plans running without caching never pay for
  fingerprinting.  ``key_parts`` overrides the derivation entirely —
  the serve planner uses it to keep its historical query digests.
* **randomness** — ``rng="spawn"`` gives the node its own
  ``SeedSequence``-spawned generator (one child per node, assigned in
  deterministic plan order, so results are bit-identical for every
  ``n_jobs``/backend and a change to one node can never shift another
  node's stream); ``rng="shared"`` threads the caller's generator
  through sequentially (pipeline semantics, with the store's rng
  continuity on replays); ``None`` means the node draws no randomness.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.exceptions import PlanError
from repro.store.fingerprint import (
    array_fingerprint,
    canonical,
    code_fingerprint,
    fingerprint,
    object_fingerprint,
    table_fingerprint,
)

#: Valid values of ``Node.rng``.
RNG_MODES = (None, "spawn", "shared")


def value_fingerprint(value: object) -> str:
    """Content fingerprint of a resolved node input, by type.

    Tables hash every byte of every column, arrays hash dtype + shape +
    bytes, scalars hash their canonical form, and everything else goes
    through :func:`~repro.store.object_fingerprint` — two values with the
    same content key identically regardless of object identity.
    """
    from repro.data.table import Table

    if isinstance(value, Table):
        return table_fingerprint(value)
    if isinstance(value, np.ndarray):
        return array_fingerprint(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return fingerprint(value=canonical(value))
    content = getattr(value, "__content_fingerprint__", None)
    if callable(content):
        # Containers that know their own content hash (e.g. a relational
        # Dataset composing per-table fingerprints) speak for themselves.
        return content()
    return object_fingerprint(value)


def seed_identity(seed: np.random.SeedSequence) -> dict:
    """The canonical cache-key identity of a spawned seed sequence.

    Entropy plus spawn key pin the child stream exactly: two audits of
    the same root seed replay, a different root seed recomputes.
    """
    entropy = seed.entropy
    if isinstance(entropy, (list, tuple)):
        entropy = [int(word) for word in entropy]
    elif entropy is not None:
        entropy = int(entropy)
    return {
        "entropy": entropy,
        "spawn_key": [int(word) for word in seed.spawn_key],
    }


class Node:
    """A named pure computation with declared inputs and an auto cache key.

    Parameters
    ----------
    name:
        Identifier, unique within the plan.
    fn:
        ``fn(inputs, rng) -> value`` where ``inputs`` is a dict of the
        resolved upstream values.  ``None`` makes the node
        representation-only (it can be fingerprinted and validated but
        not executed) — the serve planner's one-node query plans.
    inputs:
        Names of upstream nodes (or plan inputs) this node consumes.
    params:
        Dict of key parts identifying external data and parameters the
        computation depends on, or a zero-argument callable returning
        one (evaluated lazily, only when a store needs the key).
    key_parts:
        Full override of the cache-key derivation: when given, the key
        is exactly ``fingerprint(**key_parts)`` — no code or input
        fingerprints are folded in.  Mutually exclusive with ``params``.
    code:
        Callable whose compiled code joins the key (default: ``fn``).
        Pass the underlying section/stage function when ``fn`` is a
        closure wrapper, so edits to the real implementation invalidate.
    cacheable:
        Whether an :class:`~repro.store.ArtifactStore` may replay this
        node.  Impure nodes (training, context mutation) must say False.
    rng:
        ``None``, ``"spawn"`` (own deterministic child stream), or
        ``"shared"`` (the caller's generator, threaded sequentially).
    label:
        Display name for spans and provenance steps (default ``name``).
    span_attrs:
        Static attributes attached to the node's telemetry span.
    record_params:
        Parameters recorded on the node's provenance step.
    tags:
        Store tags for the node's cached artifact — a tuple, or a
        callable receiving the dict of input fingerprints (evaluated
        only when the artifact is actually stored).
    annotate:
        ``annotate(value, inputs) -> dict`` of extra span attributes
        derived from the node's result (e.g. row counts).  Called on the
        coordinator after the node completes, never inside a worker.
    task:
        Optional *picklable* zero-argument callable equivalent to
        ``fn(inputs, rng)`` for this node (everything baked in at
        build time — e.g. ``functools.partial`` of a module-level
        function).  When every node in a plan level declares one (and
        none declares ``inputs`` or ``rng``), an executor built with
        ``backend="process"`` dispatches the level as real process map
        tasks instead of coercing to threads — the shard-map fan-out
        path.  ``fn`` remains the thread/serial execution form and must
        compute the same value.
    spill:
        ``True`` commits the node's value to the store and passes a
        :class:`~repro.store.Spilled` reference downstream instead of
        the value (requires ``cacheable``; inert without a real
        store).  Consumers resolve references one at a time, so the
        coordinator never holds every partial at once.
    """

    def __init__(self, name: str,
                 fn: Callable | None = None, *,
                 inputs: tuple[str, ...] | list[str] = (),
                 params: dict | Callable[[], dict] | None = None,
                 key_parts: dict | None = None,
                 code: Callable | None = None,
                 cacheable: bool = True,
                 rng: str | None = None,
                 label: str | None = None,
                 span_attrs: dict | None = None,
                 record_params: dict | None = None,
                 tags: tuple[str, ...] | Callable = (),
                 annotate: Callable | None = None,
                 task: Callable | None = None,
                 spill: bool = False):
        if not name or not isinstance(name, str):
            raise PlanError("node name must be a non-empty string")
        if fn is not None and not callable(fn):
            raise PlanError(f"node {name!r}: fn must be callable or None")
        if rng not in RNG_MODES:
            raise PlanError(
                f"node {name!r}: rng must be one of {RNG_MODES}, got {rng!r}"
            )
        if key_parts is not None and params is not None:
            raise PlanError(
                f"node {name!r}: key_parts overrides the key derivation; "
                "give either key_parts or params, not both"
            )
        self.name = name
        self.fn = fn
        self.inputs = tuple(str(item) for item in inputs)
        if len(set(self.inputs)) != len(self.inputs):
            raise PlanError(f"node {name!r} declares a duplicate input")
        self.params = params
        self.key_parts = dict(key_parts) if key_parts is not None else None
        self.code = code
        self.cacheable = bool(cacheable)
        self.rng = rng
        self.label = label if label is not None else name
        self.span_attrs = dict(span_attrs or {})
        self.record_params = dict(record_params or {})
        self.tags = tags
        if annotate is not None and not callable(annotate):
            raise PlanError(f"node {name!r}: annotate must be callable")
        self.annotate = annotate
        if task is not None:
            if not callable(task):
                raise PlanError(f"node {name!r}: task must be callable")
            if self.inputs:
                raise PlanError(
                    f"node {name!r}: a process task must close over its "
                    "data at build time; declared inputs cannot be "
                    "resolved inside a worker"
                )
            if rng is not None:
                raise PlanError(
                    f"node {name!r}: process tasks draw no engine rng; "
                    "bake a spawned SeedSequence into the task instead"
                )
        self.task = task
        self.spill = bool(spill)
        if self.spill and not self.cacheable:
            raise PlanError(
                f"node {name!r}: spill requires a cacheable node "
                "(the reference points at the store entry)"
            )

    # -- identity ------------------------------------------------------------

    def resolved_params(self) -> dict:
        """The node's key params, evaluating a lazy callable if needed."""
        if callable(self.params):
            return dict(self.params())
        return dict(self.params or {})

    def key(self, input_fingerprints: Mapping[str, str] | None = None,
            rng_identity: dict | None = None) -> str:
        """The node's cache key: code + params + input content (+ rng).

        ``key_parts`` (when set) wins outright — the digest is then
        exactly ``fingerprint(**key_parts)``, which is how the serve
        planner keeps every historically cached answer replayable.
        """
        if self.key_parts is not None:
            return fingerprint(**self.key_parts)
        target = self.code if self.code is not None else self.fn
        parts: dict = {
            "node": self.label,
            "code": (code_fingerprint(target) if target is not None
                     else None),
            "params": canonical(self.resolved_params()),
        }
        if input_fingerprints:
            parts["inputs"] = dict(input_fingerprints)
        if rng_identity is not None:
            parts["rng"] = rng_identity
        return fingerprint(**parts)

    def resolved_tags(self,
                      input_fingerprints: Mapping[str, str]) -> tuple:
        """The store tags for this node's artifact (lazy-evaluated)."""
        if callable(self.tags):
            return tuple(self.tags(dict(input_fingerprints)))
        return tuple(self.tags)

    # -- execution -----------------------------------------------------------

    def run(self, inputs: Mapping[str, object],
            rng: np.random.Generator | None = None):
        """Execute the node's computation on resolved inputs."""
        if self.fn is None:
            raise PlanError(
                f"node {self.name!r} is representation-only (fn=None) "
                "and cannot be executed"
            )
        return self.fn(dict(inputs), rng)

    def __repr__(self) -> str:
        flags = []
        if not self.cacheable:
            flags.append("uncacheable")
        if self.rng:
            flags.append(f"rng={self.rng}")
        rendered = f", {', '.join(flags)}" if flags else ""
        return (f"Node({self.name!r}, inputs={list(self.inputs)}"
                f"{rendered})")
