"""``Plan``: a validated DAG of nodes with a deterministic schedule.

A plan is the *representation* half of the engine: it owns the node
graph, rejects malformed wiring at construction time (duplicate names,
missing inputs, cycles), and derives the two orders the executor needs —
a stable topological order (for spawning per-node rng streams and
committing results) and a level decomposition (each level's nodes have
all dependencies satisfied by earlier levels, so they may run
concurrently).  Both orders depend only on the plan's structure and the
declaration order of its nodes, never on ``n_jobs`` or a backend.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.engine.node import Node
from repro.exceptions import PlanError
from repro.store.fingerprint import fingerprint


class Plan:
    """A dependency-aware dataflow plan over :class:`Node` objects.

    Parameters
    ----------
    nodes:
        The computations.  Order matters only as a tiebreak: the
        topological schedule processes ready nodes in declaration order.
    inputs:
        Names of external inputs supplied at execution time via
        ``Executor.run(plan, inputs={...})``; node inputs may reference
        these exactly like upstream node names.
    """

    def __init__(self, nodes: Sequence[Node], inputs: Iterable[str] = ()):
        declared = list(nodes)
        if not declared:
            raise PlanError("a plan needs at least one node")
        for node in declared:
            if not isinstance(node, Node):
                raise PlanError(
                    f"plans are built from Node objects, got "
                    f"{type(node).__name__}"
                )
        self.input_names = tuple(str(name) for name in inputs)
        names = [node.name for node in declared]
        seen: set[str] = set()
        for name in names:
            if name in seen:
                raise PlanError(f"duplicate node name {name!r}")
            seen.add(name)
        clash = seen.intersection(self.input_names)
        if clash:
            raise PlanError(
                f"plan input names collide with node names: {sorted(clash)}"
            )
        known = seen.union(self.input_names)
        for node in declared:
            for dependency in node.inputs:
                if dependency not in known:
                    raise PlanError(
                        f"node {node.name!r} consumes {dependency!r}, which "
                        f"is neither a node nor a declared plan input"
                    )
        self._by_name = {node.name: node for node in declared}
        self._levels = self._schedule(declared)
        self._nodes = tuple(
            node for level in self._levels for node in level
        )

    def _schedule(self, declared: list[Node]) -> tuple[tuple[Node, ...], ...]:
        """Level decomposition (Kahn's algorithm, declaration-order stable)."""
        satisfied = set(self.input_names)
        remaining = list(declared)
        levels: list[tuple[Node, ...]] = []
        while remaining:
            ready = [
                node for node in remaining
                if all(dep in satisfied for dep in node.inputs)
            ]
            if not ready:
                cycle = ", ".join(sorted(node.name for node in remaining))
                raise PlanError(f"plan has a cycle through: {cycle}")
            levels.append(tuple(ready))
            satisfied.update(node.name for node in ready)
            remaining = [node for node in remaining if node not in ready]
        return tuple(levels)

    # -- structure -----------------------------------------------------------

    @property
    def nodes(self) -> tuple[Node, ...]:
        """Every node, in deterministic topological order."""
        return self._nodes

    def levels(self) -> tuple[tuple[Node, ...], ...]:
        """Nodes grouped by dependency depth; levels run in order,
        nodes within a level may run concurrently."""
        return self._levels

    def node(self, name: str) -> Node:
        """The node called ``name``."""
        if name not in self._by_name:
            raise PlanError(
                f"unknown node {name!r}; plan has {sorted(self._by_name)}"
            )
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def sinks(self) -> tuple[Node, ...]:
        """Nodes no other node consumes — the plan's results."""
        consumed = {
            dependency for node in self._nodes for dependency in node.inputs
        }
        return tuple(
            node for node in self._nodes if node.name not in consumed
        )

    # -- identity / rendering ------------------------------------------------

    def fingerprint(self) -> str:
        """Structural hash of the plan's wiring (not of its data)."""
        return fingerprint(plan=[
            {
                "name": node.name,
                "label": node.label,
                "inputs": list(node.inputs),
                "cacheable": node.cacheable,
                "rng": node.rng,
            }
            for node in self._nodes
        ], inputs=list(self.input_names))

    def describe(self) -> str:
        """The schedule as text: one line per node, grouped by level."""
        lines = [f"plan: {len(self._nodes)} nodes, "
                 f"{len(self._levels)} levels"]
        for index, level in enumerate(self._levels):
            for node in level:
                wiring = (f" <- {', '.join(node.inputs)}"
                          if node.inputs else "")
                flags = []
                if not node.cacheable:
                    flags.append("uncacheable")
                if node.rng:
                    flags.append(f"rng={node.rng}")
                suffix = f"  [{', '.join(flags)}]" if flags else ""
                lines.append(
                    f"  L{index} {node.label}{wiring}{suffix}"
                )
        return "\n".join(lines)
