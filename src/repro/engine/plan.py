"""``Plan``: a validated DAG of nodes with a deterministic schedule.

A plan is the *representation* half of the engine: it owns the node
graph, rejects malformed wiring at construction time (duplicate names,
missing inputs, cycles), and derives the two orders the executor needs —
a stable topological order (for spawning per-node rng streams and
committing results) and a level decomposition (each level's nodes have
all dependencies satisfied by earlier levels, so they may run
concurrently).  Both orders depend only on the plan's structure and the
declaration order of its nodes, never on ``n_jobs`` or a backend.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.engine.node import Node
from repro.exceptions import PlanError
from repro.store.fingerprint import fingerprint


def _fusable(node: Node) -> bool:
    """May this node join a fused chain?

    Fusion replays a whole chain from one stored artifact, so members
    must be cacheable, executable, and free of per-node seed spawning
    (``rng="spawn"`` nodes own a positionally spawned stream whose
    identity is part of their cache key — they stay singleton units).
    Shard-map nodes stay out too: a process ``task`` must dispatch as
    its own map unit, and a ``spill`` node's artifact is its value's
    only home — folding either into a chained artifact would defeat
    exactly what they exist for.
    """
    return (node.cacheable and node.fn is not None
            and node.rng in (None, "shared")
            and node.task is None and not node.spill)


class FusedChain:
    """A maximal linear run of fusable nodes, executed as one unit.

    The executor treats a chain like a super-node: one cache key (each
    member's key folded over its predecessor's, so editing any member
    still invalidates), one store round-trip holding the tuple of every
    member's value, and one telemetry span — while per-member results,
    observer calls, and provenance records are all preserved.
    """

    def __init__(self, members: Sequence[Node]):
        self.members = tuple(members)
        self.name = "+".join(node.name for node in self.members)
        self.label = "+".join(node.label for node in self.members)
        self.inputs = self.members[0].inputs
        self.rng = ("shared"
                    if any(node.rng == "shared" for node in self.members)
                    else None)
        attrs: dict = {}
        for node in self.members:
            attrs.update(node.span_attrs)
        self.span_attrs = attrs

    @property
    def head(self) -> Node:
        """First member — carries the chain's external inputs."""
        return self.members[0]

    @property
    def tail(self) -> Node:
        """Last member — its value is the chain's external output."""
        return self.members[-1]

    def __repr__(self) -> str:
        return f"FusedChain({[node.name for node in self.members]})"


class Plan:
    """A dependency-aware dataflow plan over :class:`Node` objects.

    Parameters
    ----------
    nodes:
        The computations.  Order matters only as a tiebreak: the
        topological schedule processes ready nodes in declaration order.
    inputs:
        Names of external inputs supplied at execution time via
        ``Executor.run(plan, inputs={...})``; node inputs may reference
        these exactly like upstream node names.
    """

    def __init__(self, nodes: Sequence[Node], inputs: Iterable[str] = ()):
        declared = list(nodes)
        if not declared:
            raise PlanError("a plan needs at least one node")
        for node in declared:
            if not isinstance(node, Node):
                raise PlanError(
                    f"plans are built from Node objects, got "
                    f"{type(node).__name__}"
                )
        self.input_names = tuple(str(name) for name in inputs)
        names = [node.name for node in declared]
        seen: set[str] = set()
        for name in names:
            if name in seen:
                raise PlanError(f"duplicate node name {name!r}")
            seen.add(name)
        clash = seen.intersection(self.input_names)
        if clash:
            raise PlanError(
                f"plan input names collide with node names: {sorted(clash)}"
            )
        known = seen.union(self.input_names)
        for node in declared:
            for dependency in node.inputs:
                if dependency not in known:
                    raise PlanError(
                        f"node {node.name!r} consumes {dependency!r}, which "
                        f"is neither a node nor a declared plan input"
                    )
        self._by_name = {node.name: node for node in declared}
        self._levels = self._schedule(declared)
        self._nodes = tuple(
            node for level in self._levels for node in level
        )
        self._fused_levels: tuple[tuple, ...] | None = None

    def _schedule(self, declared: list[Node]) -> tuple[tuple[Node, ...], ...]:
        """Level decomposition (Kahn's algorithm, declaration-order stable)."""
        satisfied = set(self.input_names)
        remaining = list(declared)
        levels: list[tuple[Node, ...]] = []
        while remaining:
            ready = [
                node for node in remaining
                if all(dep in satisfied for dep in node.inputs)
            ]
            if not ready:
                cycle = ", ".join(sorted(node.name for node in remaining))
                raise PlanError(f"plan has a cycle through: {cycle}")
            levels.append(tuple(ready))
            satisfied.update(node.name for node in ready)
            remaining = [node for node in remaining if node not in ready]
        return tuple(levels)

    # -- structure -----------------------------------------------------------

    @property
    def nodes(self) -> tuple[Node, ...]:
        """Every node, in deterministic topological order."""
        return self._nodes

    def levels(self) -> tuple[tuple[Node, ...], ...]:
        """Nodes grouped by dependency depth; levels run in order,
        nodes within a level may run concurrently."""
        return self._levels

    def node(self, name: str) -> Node:
        """The node called ``name``."""
        if name not in self._by_name:
            raise PlanError(
                f"unknown node {name!r}; plan has {sorted(self._by_name)}"
            )
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def sinks(self) -> tuple[Node, ...]:
        """Nodes no other node consumes — the plan's results."""
        consumed = {
            dependency for node in self._nodes for dependency in node.inputs
        }
        return tuple(
            node for node in self._nodes if node.name not in consumed
        )

    # -- stage fusion ---------------------------------------------------------

    def fusion_chains(self) -> tuple[FusedChain, ...]:
        """Maximal linear chains of fusable nodes (length >= 2).

        Node ``a`` feeds chain-mate ``b`` iff both are fusable
        (see :func:`_fusable`), ``b``'s only input is ``a``, and ``b``
        is ``a``'s only consumer — so every intermediate value is
        private to the chain and may live solely inside its fused
        artifact.
        """
        consumers: dict[str, list[Node]] = {}
        for node in self._nodes:
            for dependency in node.inputs:
                consumers.setdefault(dependency, []).append(node)
        next_of: dict[str, Node] = {}
        has_prev: set[str] = set()
        for node in self._nodes:
            if not _fusable(node):
                continue
            fans_to = consumers.get(node.name, [])
            if len(fans_to) != 1:
                continue
            successor = fans_to[0]
            if not _fusable(successor):
                continue
            if successor.inputs != (node.name,):
                continue
            next_of[node.name] = successor
            has_prev.add(successor.name)
        chains = []
        for node in self._nodes:
            if node.name in has_prev or node.name not in next_of:
                continue
            members = [node]
            while members[-1].name in next_of:
                members.append(next_of[members[-1].name])
            chains.append(FusedChain(members))
        return tuple(chains)

    def fused_levels(self) -> tuple[tuple, ...]:
        """The level schedule over fusion units (cached).

        Each unit is a :class:`FusedChain` or a plain :class:`Node`.
        If fusing would reorder the plan's ``rng="shared"`` nodes
        relative to the unfused topological order (their generator is
        threaded sequentially, so order *is* semantics), fusion is
        disabled for the whole plan and the plain node levels are
        returned — fused execution is always byte-identical.
        """
        if self._fused_levels is None:
            self._fused_levels = self._fuse_schedule()
        return self._fused_levels

    def _fuse_schedule(self) -> tuple[tuple, ...]:
        chains = self.fusion_chains()
        if not chains:
            return self._levels
        unit_of: dict[str, object] = {}
        units: list = []
        for chain in chains:
            units.append(chain)
            for member in chain.members:
                unit_of[member.name] = chain
        for node in self._nodes:
            if node.name not in unit_of:
                unit_of[node.name] = node
                units.append(node)
        # Kahn over units, stable in plan order of each unit's head.
        units.sort(key=lambda unit: self._nodes.index(
            unit.members[0] if isinstance(unit, FusedChain) else unit
        ))
        satisfied = set(self.input_names)
        remaining = list(units)
        levels: list[tuple] = []
        while remaining:
            ready = [
                unit for unit in remaining
                if all(dep in satisfied for dep in unit.inputs)
            ]
            levels.append(tuple(ready))
            for unit in ready:
                if isinstance(unit, FusedChain):
                    satisfied.update(node.name for node in unit.members)
                else:
                    satisfied.add(unit.name)
            remaining = [unit for unit in remaining if unit not in ready]
        fused_shared = [
            node.name
            for level in levels
            for unit in level
            for node in (unit.members if isinstance(unit, FusedChain)
                         else (unit,))
            if node.rng == "shared"
        ]
        plan_shared = [node.name for node in self._nodes
                       if node.rng == "shared"]
        if fused_shared != plan_shared:
            return self._levels
        return tuple(levels)

    # -- identity / rendering ------------------------------------------------

    def fingerprint(self) -> str:
        """Structural hash of the plan's wiring (not of its data)."""
        return fingerprint(plan=[
            {
                "name": node.name,
                "label": node.label,
                "inputs": list(node.inputs),
                "cacheable": node.cacheable,
                "rng": node.rng,
            }
            for node in self._nodes
        ], inputs=list(self.input_names))

    def describe(self) -> str:
        """The schedule as text: one line per node, grouped by level."""
        lines = [f"plan: {len(self._nodes)} nodes, "
                 f"{len(self._levels)} levels"]
        for index, level in enumerate(self._levels):
            for node in level:
                wiring = (f" <- {', '.join(node.inputs)}"
                          if node.inputs else "")
                flags = []
                if not node.cacheable:
                    flags.append("uncacheable")
                if node.rng:
                    flags.append(f"rng={node.rng}")
                suffix = f"  [{', '.join(flags)}]" if flags else ""
                lines.append(
                    f"  L{index} {node.label}{wiring}{suffix}"
                )
        return "\n".join(lines)
