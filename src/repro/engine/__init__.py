"""``repro.engine`` — one dataflow-plan runtime for the FACT system.

The paper's "responsible by design" demand means provenance, budget
ledgers, memoisation, and tracing must live in the execution substrate,
not be re-implemented ad hoc at every call site.  This package is that
substrate: a :class:`Node` is one named pure computation with declared
inputs and an auto-derived cache key, a :class:`Plan` is a validated DAG
of them with a deterministic schedule, and an :class:`Executor` runs the
plan level by level — concurrently via :mod:`repro.parallel`, memoised
through any :class:`~repro.store.ArtifactStore` (or none, via
:data:`~repro.store.NULL_STORE`, with zero fingerprinting cost), traced
through :mod:`repro.obs`, and recorded into a
:class:`~repro.pipeline.provenance.ProvenanceGraph`.

Three subsystems run on it:

* :class:`repro.pipeline.Pipeline` builds a *linear* plan (one node per
  stage, shared-rng continuity, stage spans and provenance unchanged);
* :class:`repro.core.FACTAuditor` builds a four-node *pillar* plan whose
  fairness/accuracy/confidentiality/transparency sections execute
  concurrently and re-audit incrementally with no hand-written keys;
* :class:`repro.serve.QueryPlanner` represents every served query as a
  one-node plan whose ``key_parts`` reproduce the historical answer
  digests exactly.

Determinism contract: a plan's results are bit-identical for every
``n_jobs``, every backend, and with or without a store, because each
``rng="spawn"`` node owns a ``SeedSequence`` child assigned positionally
in plan order on the coordinator.
"""

from repro.engine.executor import Executor, NodeRun, PlanResult
from repro.engine.node import (
    RNG_MODES,
    Node,
    seed_identity,
    value_fingerprint,
)
from repro.engine.plan import FusedChain, Plan
from repro.engine.sharding import (
    ShardPartials,
    combine_node,
    shard_map,
    shard_map_nodes,
)

__all__ = [
    "Executor",
    "FusedChain",
    "Node",
    "NodeRun",
    "Plan",
    "PlanResult",
    "RNG_MODES",
    "ShardPartials",
    "combine_node",
    "seed_identity",
    "shard_map",
    "shard_map_nodes",
    "value_fingerprint",
]
