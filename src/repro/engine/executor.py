"""``Executor``: runs a :class:`~repro.engine.plan.Plan` responsibly.

One runtime under :class:`~repro.pipeline.pipeline.Pipeline`,
:class:`~repro.core.auditor.FACTAuditor`, and :mod:`repro.serve` — the
FACT instrumentation lives *here*, in the execution substrate, instead
of being re-implemented at every call site:

* **Concurrency without nondeterminism.**  The plan's levels run in
  order; within a level, independent ready nodes fan out through
  :class:`repro.parallel.ParallelExecutor`.  Each ``rng="spawn"`` node
  owns a ``SeedSequence`` child spawned positionally in plan order on
  the coordinator, so every result is bit-identical for every
  ``n_jobs``/backend combination — parallelism changes wall-clock,
  never bytes.
* **One caching code path.**  Every node goes through
  ``store.memoize_with_status``; callers without a store get
  :data:`repro.store.NULL_STORE`, whose lazy key/tags callables are
  never evaluated — no ``if store is None`` branches anywhere, and no
  fingerprinting cost when caching is off.
* **Observability per node.**  With :mod:`repro.obs` configured, each
  node gets a span named ``{executor.name}:{node.label}`` carrying the
  cache outcome (``hit``/``miss``/``uncacheable``) and its logical wait
  behind the level barrier.  Spans are recorded on the coordinator in
  plan order after each level drains, so TickClock telemetry stays
  byte-identical across reruns (the same post-drain discipline as
  :meth:`ParallelExecutor._record_chunk`).
* **Provenance for free.**  Given a
  :class:`~repro.pipeline.provenance.ProvenanceGraph`, the executor
  registers every plan input and node output as an artefact and records
  one step per node — lineage falls out of the plan itself.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro import obs
from repro.engine.node import Node, seed_identity, value_fingerprint
from repro.engine.plan import FusedChain, Plan
from repro.exceptions import PlanError
from repro.parallel.executor import ParallelExecutor, ParallelTaskError
from repro.parallel.rng import spawn_seeds
from repro.store.store import NULL_STORE, NullStore, Spilled

_ABSENT = object()


def _call_task(task):
    """Run one node's picklable task inside a process worker."""
    return task()


@dataclass
class NodeRun:
    """What happened to one node during :meth:`Executor.run`."""

    node: Node
    value: object
    status: str  # "hit" | "miss" | "uncacheable"
    index: int   # position in the plan's topological order
    level: int   # dependency depth

    @property
    def name(self) -> str:
        """The node's plan-unique name."""
        return self.node.name

    @property
    def label(self) -> str:
        """The node's display label (spans, provenance steps)."""
        return self.node.label


class PlanResult:
    """Every value a plan produced, plus the per-node cache outcomes."""

    def __init__(self, plan: Plan, results: dict,
                 runs: tuple[NodeRun, ...]):
        self.plan = plan
        self.results = results
        self.runs = runs

    def __getitem__(self, name: str):
        if name not in self.results:
            raise PlanError(
                f"no result named {name!r}; have {sorted(self.results)}"
            )
        return self.results[name]

    def __contains__(self, name: str) -> bool:
        return name in self.results

    @property
    def statuses(self) -> dict[str, str]:
        """Cache outcome per node name (``hit``/``miss``/``uncacheable``)."""
        return {run.name: run.status for run in self.runs}

    @property
    def output(self):
        """The single sink node's value (the common linear-plan case)."""
        sinks = self.plan.sinks
        if len(sinks) != 1:
            raise PlanError(
                f"plan has {len(sinks)} sink nodes "
                f"({[node.name for node in sinks]}); "
                "pick results by name instead"
            )
        return self.results[sinks[0].name]


class Executor:
    """Walks a plan level by level; concurrent, memoised, observed.

    Parameters
    ----------
    n_jobs:
        Fan-out within a level; ``None`` defers to ``$REPRO_N_JOBS``
        then 1, ``-1`` uses every core.
    backend:
        ``"serial"``, ``"thread"``, or ``"process"``.  Node thunks are
        closures, which processes cannot pickle, so ``"process"`` is
        coerced to ``"thread"`` at the node level — node *internals*
        (e.g. a section's own resampling ``pmap``) still honour the
        requested backend through their own parameters.
    name:
        Span prefix: node spans are named ``{name}:{node.label}``.
    observe:
        ``False`` silences node spans even when telemetry is
        configured (the serve hot path, which records query spans at a
        higher level already).
    fuse:
        ``True`` runs each maximal linear chain of cacheable
        single-input nodes (see :meth:`Plan.fusion_chains`) as one
        fused unit: one chained cache key, one store round-trip
        holding every member's value, one telemetry span.  Per-member
        results, cache statuses, observer calls, and provenance
        records are preserved, and values are byte-identical to
        unfused execution (fusion silently disables itself on plans
        where it would reorder shared-rng draws).  Off by default:
        per-node spans are the documented observability contract.
    """

    def __init__(self, n_jobs: int | None = None, backend: str = "serial",
                 name: str = "engine", observe: bool = True,
                 fuse: bool = False):
        self._pool = ParallelExecutor(
            n_jobs=n_jobs,
            backend="thread" if backend == "process" else backend,
            chunk_size=1,
            name=f"{name}.pool",
        )
        self.n_jobs = self._pool.n_jobs
        self.backend = backend
        self.name = name
        self.observe = bool(observe)
        self.fuse = bool(fuse)

    # -- public API ---------------------------------------------------------

    def run(self, plan: Plan, inputs: Mapping[str, object] | None = None, *,
            store=None, rng: np.random.Generator | None = None,
            observer: Callable[[NodeRun], None] | None = None,
            provenance=None) -> PlanResult:
        """Execute every node; returns a :class:`PlanResult`.

        ``store=None`` means no caching (:data:`~repro.store.NULL_STORE`
        inside — resolution from ``$REPRO_STORE`` is the caller's
        concern, via :func:`repro.store.resolve_store`).  ``rng`` is
        required iff the plan contains ``rng="spawn"`` or
        ``rng="shared"`` nodes.  ``observer`` is called once per node,
        on the coordinator, in deterministic plan order, after the
        node's value is committed.
        """
        inputs = dict(inputs or {})
        declared = set(plan.input_names)
        missing = declared - set(inputs)
        if missing:
            raise PlanError(f"plan inputs not supplied: {sorted(missing)}")
        unexpected = set(inputs) - declared
        if unexpected:
            raise PlanError(
                f"unknown plan inputs supplied: {sorted(unexpected)}"
            )
        store = store if store is not None else NULL_STORE
        seeds = self._spawn_seeds(plan, rng)
        if rng is None and any(node.rng == "shared" for node in plan.nodes):
            raise PlanError(
                "plan has rng='shared' nodes but no rng was given"
            )
        telemetry = obs.get() if self.observe else None
        tracer = telemetry.tracer if telemetry is not None else None
        collector = telemetry.collector if telemetry is not None else None
        parent_id = None
        if tracer is not None and tracer.active_span is not None:
            parent_id = tracer.active_span.span_id

        results: dict[str, object] = dict(inputs)
        fingerprints: dict[str, str] = {}
        fp_lock = threading.Lock()

        def fp_of(name: str) -> str:
            with fp_lock:
                cached = fingerprints.get(name)
            if cached is None:
                cached = value_fingerprint(results[name])
                with fp_lock:
                    fingerprints[name] = cached
            return cached

        runs: list[NodeRun] = []
        artifact_ids = self._register_inputs(provenance, plan, inputs)
        index = 0
        levels = plan.fused_levels() if self.fuse else plan.levels()
        for level_index, level in enumerate(levels):
            outcomes = self._run_level(
                level, results, fp_of, seeds, rng, store, telemetry,
                parent_id, collector,
            )
            # Commit, observe, and record in plan order on the
            # coordinator — completion order never reaches the results,
            # the provenance graph, or the clock.
            level_mark = (telemetry.clock.now()
                          if telemetry is not None and len(level) > 1
                          else None)
            for unit, (value, status) in zip(level, outcomes):
                if isinstance(unit, FusedChain):
                    # One fused artifact, but every member keeps its
                    # own result, run record, provenance step, and
                    # observer call.
                    member_runs = []
                    for node, member_value in zip(unit.members, value):
                        results[node.name] = member_value
                        run = NodeRun(node=node, value=member_value,
                                      status=status, index=index,
                                      level=level_index)
                        runs.append(run)
                        member_runs.append(run)
                        self._record_provenance(provenance, artifact_ids,
                                                run)
                        if observer is not None:
                            observer(run)
                        index += 1
                    self._record_chain_span(telemetry, parent_id, unit,
                                            member_runs, results,
                                            level_mark, collector)
                    continue
                node = unit
                results[node.name] = value
                run = NodeRun(node=node, value=value, status=status,
                              index=index, level=level_index)
                runs.append(run)
                self._record_span(telemetry, parent_id, run, results,
                                  level_mark, collector)
                self._record_provenance(provenance, artifact_ids, run)
                if observer is not None:
                    observer(run)
                index += 1
        return PlanResult(plan, results, tuple(runs))

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _spawn_seeds(plan: Plan,
                     rng: np.random.Generator | None) -> dict:
        """One spawned ``SeedSequence`` per ``rng="spawn"`` node.

        Children are assigned positionally in plan order, so a node's
        stream depends only on the plan's structure and the caller's
        generator — never on scheduling, caching, or other nodes'
        parameters.  Plans without spawn nodes leave the caller's
        spawn counter untouched.
        """
        spawn_nodes = [node for node in plan.nodes if node.rng == "spawn"]
        if not spawn_nodes:
            return {}
        if rng is None:
            raise PlanError(
                "plan has rng='spawn' nodes but no rng was given"
            )
        children = spawn_seeds(rng, len(spawn_nodes))
        return {node.name: seed for node, seed
                in zip(spawn_nodes, children)}

    def _thunk(self, node: Node, results: dict, fp_of, seeds: dict,
               shared_rng, store, collector=None):
        input_values = {name: results[name] for name in node.inputs}

        def lazy_key() -> str:
            input_fps = {name: fp_of(name) for name in node.inputs}
            identity = (seed_identity(seeds[node.name])
                        if node.rng == "spawn" else None)
            return node.key(input_fps, identity)

        def lazy_tags() -> tuple:
            return node.resolved_tags(
                {name: fp_of(name) for name in node.inputs}
            )

        if node.rng == "spawn":
            node_rng = np.random.default_rng(seeds[node.name])
            continuity_rng = None
        elif node.rng == "shared":
            node_rng = shared_rng
            continuity_rng = shared_rng
        else:
            node_rng = None
            continuity_rng = None

        def compute():
            return node.run(input_values, node_rng)

        if collector is not None:
            # Only actual computation is sampled: cache hits replay
            # inside the store and never reach this wrapper's body.
            compute = collector.wrap(("node", node.name), compute)

        def thunk():
            if not node.cacheable:
                return compute(), "uncacheable"
            if node.spill and not isinstance(store, NullStore):
                # Spill: the value lives in the store, a Spilled
                # reference travels the plan.  A warm hit never decodes
                # the payload — bounded coordinator memory is the point.
                digest = lazy_key()
                if store.probe(digest):
                    return Spilled(digest), "hit"
                value = compute()
                store.put(digest, value, tags=lazy_tags())
                return Spilled(digest), "miss"
            return store.memoize_with_status(
                compute, key=lazy_key, rng=continuity_rng, tags=lazy_tags
            )

        return thunk

    def _chain_thunk(self, chain: FusedChain, results: dict, fp_of,
                     shared_rng, store, collector=None):
        members = chain.members
        head = members[0]
        input_values = {name: results[name] for name in head.inputs}

        def fold_key(visit=None) -> str:
            """Each member's key over its predecessor's — the key *is*
            the input fingerprint of the next member, so a change to
            any member's code/params/inputs re-keys the whole chain."""
            input_fps = {name: fp_of(name) for name in head.inputs}
            key = head.key(input_fps)
            if visit is not None:
                visit(head, input_fps)
            for node in members[1:]:
                input_fps = {node.inputs[0]: key}
                if visit is not None:
                    visit(node, input_fps)
                key = node.key(input_fps)
            return key

        def lazy_tags() -> tuple:
            tags: dict = {}

            def visit(node, input_fps):
                tags.update(dict.fromkeys(node.resolved_tags(input_fps)))

            fold_key(visit)
            return tuple(tags)

        continuity_rng = shared_rng if chain.rng == "shared" else None

        def compute():
            values = []
            scope = dict(input_values)
            for node in members:
                node_rng = shared_rng if node.rng == "shared" else None
                value = node.run(
                    {name: scope[name] for name in node.inputs}, node_rng
                )
                scope[node.name] = value
                values.append(value)
            return tuple(values)

        if collector is not None:
            compute = collector.wrap(("node", chain.name), compute)

        def thunk():
            return store.memoize_with_status(
                compute, key=fold_key, rng=continuity_rng, tags=lazy_tags
            )

        return thunk

    def _run_level(self, level, results, fp_of, seeds, shared_rng, store,
                   telemetry, parent_id, collector=None) -> list:
        if (
            self.backend == "process"
            and self.n_jobs > 1
            and len(level) > 1
            and all(isinstance(unit, Node) and unit.task is not None
                    for unit in level)
        ):
            return self._run_level_process(level, store, telemetry,
                                           parent_id, collector)
        thunks = [
            self._chain_thunk(unit, results, fp_of, shared_rng, store,
                              collector)
            if isinstance(unit, FusedChain)
            else self._thunk(unit, results, fp_of, seeds, shared_rng,
                             store, collector)
            for unit in level
        ]
        # Shared-rng nodes thread one generator, so any level holding
        # one must run serially; single-node levels gain nothing from a
        # pool and skip its chunk telemetry entirely.
        inline = (
            len(level) == 1
            or self.n_jobs == 1
            or self._pool.backend == "serial"
            or any(node.rng == "shared" for node in level)
        )
        if inline:
            outcomes = []
            for node, thunk in zip(level, thunks):
                try:
                    outcomes.append(thunk())
                except Exception as error:
                    self._record_error(telemetry, parent_id, node, error)
                    raise
            return outcomes
        try:
            return self._pool.call(thunks)
        except ParallelTaskError as error:
            failed = level[error.task_index]
            cause = error.__cause__
            self._record_error(telemetry, parent_id, failed,
                               cause if cause is not None else error)
            if cause is not None:
                # Callers reason about *their* exceptions (DataError
                # from a stage, FairnessError from a section); the
                # fan-out is an implementation detail of the engine.
                raise cause
            raise

    def _run_level_process(self, level, store, telemetry, parent_id,
                           collector=None) -> list:
        """Dispatch a level of task-declaring nodes to process workers.

        The shard-map fan-out: every node in the level carries a
        picklable ``task`` (its data closed over at build time), so the
        level runs as real map tasks over the :mod:`repro.parallel`
        process backend — one task per node — instead of the node-level
        thread coercion.  Cache replay happens on the coordinator
        *before* dispatch, so only missing shards ship to workers, and
        committed values (or :class:`~repro.store.Spilled` references,
        for spill nodes) come back in deterministic node order.
        """
        caching = not isinstance(store, NullStore)
        outcomes: list = [None] * len(level)
        pending: list[tuple[int, Node, str | None]] = []
        for index, node in enumerate(level):
            key = None
            if caching and node.cacheable:
                key = node.key()
                if node.spill:
                    if store.probe(key):
                        outcomes[index] = (Spilled(key), "hit")
                        continue
                else:
                    value = store.get(key, _ABSENT)
                    if value is not _ABSENT:
                        outcomes[index] = (value, "hit")
                        continue
            pending.append((index, node, key))
        if pending:
            pool = ParallelExecutor(
                n_jobs=self.n_jobs, backend="process", chunk_size=1,
                name=f"{self.name}.map",
            )
            try:
                values = pool.map(_call_task,
                                  [node.task for _, node, _ in pending])
            except ParallelTaskError as error:
                failed = pending[error.task_index][1]
                cause = error.__cause__
                self._record_error(telemetry, parent_id, failed,
                                   cause if cause is not None else error)
                if cause is not None:
                    raise cause
                raise
            for (index, node, key), value in zip(pending, values):
                if key is None:
                    # Either caching is off or the node opted out — the
                    # same "uncacheable" a NullStore memoize reports.
                    outcomes[index] = (value, "uncacheable")
                    continue
                store.put(key, value, tags=node.resolved_tags({}))
                outcomes[index] = (
                    (Spilled(key), "miss") if node.spill
                    else (value, "miss")
                )
        return outcomes

    def _record_span(self, telemetry, parent_id, run: NodeRun,
                     results: dict, level_mark, collector=None) -> None:
        if telemetry is None:
            return
        node = run.node
        begun = telemetry.clock.now()
        ended = telemetry.clock.now()
        attributes = dict(node.span_attrs)
        if node.annotate is not None:
            inputs = {name: results[name] for name in node.inputs}
            attributes.update(node.annotate(run.value, inputs))
        attributes["cache"] = run.status
        # The profiler's critical-path analysis reads the dependency
        # depth and worker count back out of the exported spans.
        attributes["level"] = run.level
        attributes["n_jobs"] = self.n_jobs
        if level_mark is not None:
            attributes["wait"] = begun - level_mark
        if collector is not None:
            attributes.update(collector.attributes(("node", node.name)))
        telemetry.tracer.record_span(
            f"{self.name}:{node.label}", begun, ended,
            parent_id=parent_id, **attributes,
        )

    def _record_chain_span(self, telemetry, parent_id, chain: FusedChain,
                           member_runs, results: dict, level_mark,
                           collector=None) -> None:
        """One span for a fused chain (named ``a+b+c``), with the same
        cache/level/n_jobs attributes a node span carries plus the
        member count; the tail's ``annotate`` describes the chain's
        output."""
        if telemetry is None:
            return
        begun = telemetry.clock.now()
        ended = telemetry.clock.now()
        attributes = dict(chain.span_attrs)
        tail = chain.tail
        if tail.annotate is not None:
            inputs = {name: results[name] for name in tail.inputs}
            attributes.update(tail.annotate(results[tail.name], inputs))
        attributes["cache"] = member_runs[0].status
        attributes["fused"] = len(chain.members)
        attributes["level"] = member_runs[0].level
        attributes["n_jobs"] = self.n_jobs
        if level_mark is not None:
            attributes["wait"] = begun - level_mark
        if collector is not None:
            attributes.update(collector.attributes(("node", chain.name)))
        telemetry.tracer.record_span(
            f"{self.name}:{chain.label}", begun, ended,
            parent_id=parent_id, **attributes,
        )

    def _record_error(self, telemetry, parent_id, node: Node,
                      error: BaseException) -> None:
        if telemetry is None:
            return
        begun = telemetry.clock.now()
        ended = telemetry.clock.now()
        telemetry.tracer.record_span(
            f"{self.name}:{node.label}", begun, ended,
            parent_id=parent_id, **dict(node.span_attrs),
            error=type(error).__name__,
        )

    @staticmethod
    def _register_inputs(provenance, plan: Plan, inputs: dict) -> dict:
        """Artefact nodes for the plan's external inputs (lineage roots)."""
        if provenance is None:
            return {}
        return {
            name: provenance.add_value(inputs[name], f"plan input {name}")
            for name in plan.input_names
        }

    @staticmethod
    def _record_provenance(provenance, artifact_ids: dict,
                           run: NodeRun) -> None:
        if provenance is None:
            return
        node = run.node
        output = provenance.add_value(run.value, node.label)
        provenance.record_step(
            node.label,
            [artifact_ids[name] for name in node.inputs],
            [output],
            node.record_params,
        )
        artifact_ids[node.name] = output
