"""Treatment-effect estimators (Q2, experiment E6).

The paper names the techniques: "Propensity score matching or inverse
probability-weighted regression adjustment are just two approaches
developed to combat the selection bias in observational data.  While
these techniques address the selection bias, their outcomes might still
be far away from the results one would obtain with a randomized
controlled trial (Gordon et al. 2016)."

Implemented: the naive difference (what not to do), propensity-score
matching, IPW, the doubly-robust AIPW, and the RCT difference-in-means
gold standard.  All return an :class:`EffectEstimate` with a standard
error, because a point estimate without uncertainty violates Q2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import CausalError
from repro.learn.linear import LogisticRegression, RidgeRegression


@dataclass(frozen=True)
class EffectEstimate:
    """An average-treatment-effect estimate with uncertainty."""

    method: str
    ate: float
    std_error: float
    n: int
    detail: str = ""

    @property
    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval."""
        half = 1.96 * self.std_error
        return (self.ate - half, self.ate + half)

    def bias_against(self, truth: float) -> float:
        """Signed estimation error relative to a known ground truth."""
        return self.ate - truth

    def __str__(self) -> str:
        lower, upper = self.ci95
        return f"{self.method}: ATE={self.ate:+.4f} [{lower:+.4f}, {upper:+.4f}]"


def _check_inputs(X, treatment, outcome):
    X = np.asarray(X, dtype=np.float64)
    treatment = np.asarray(treatment, dtype=np.float64)
    outcome = np.asarray(outcome, dtype=np.float64)
    if X.ndim != 2 or len(X) != len(treatment) or len(X) != len(outcome):
        raise CausalError("X, treatment and outcome must be aligned")
    if not np.all(np.isin(np.unique(treatment), (0.0, 1.0))):
        raise CausalError("treatment must be 0/1")
    if not (treatment == 1.0).any() or not (treatment == 0.0).any():
        raise CausalError("need both treated and control units")
    return X, treatment, outcome


def naive_difference(treatment, outcome) -> EffectEstimate:
    """Difference in observed means — correct only under randomisation."""
    treatment = np.asarray(treatment, dtype=np.float64)
    outcome = np.asarray(outcome, dtype=np.float64)
    treated = outcome[treatment == 1.0]
    control = outcome[treatment == 0.0]
    if len(treated) == 0 or len(control) == 0:
        raise CausalError("need both treated and control units")
    ate = float(treated.mean() - control.mean())
    std_error = float(np.sqrt(
        treated.var(ddof=1) / len(treated) + control.var(ddof=1) / len(control)
    ))
    return EffectEstimate("naive", ate, std_error, len(outcome))


def rct_estimate(treatment, outcome) -> EffectEstimate:
    """Difference in means labelled as the randomised gold standard."""
    estimate = naive_difference(treatment, outcome)
    return EffectEstimate(
        "rct", estimate.ate, estimate.std_error, estimate.n,
        detail="difference in means under randomised exposure",
    )


def estimate_propensities(X, treatment, l2: float = 1.0,
                          clip: float = 0.01) -> np.ndarray:
    """P(T = 1 | X) by logistic regression, clipped away from {0, 1}.

    Clipping bounds the IPW weights — the standard positivity guard.
    """
    X, treatment, _ = _check_inputs(X, treatment, np.zeros(len(treatment)))
    model = LogisticRegression(l2=l2).fit(X, treatment)
    return np.clip(model.predict_proba(X), clip, 1.0 - clip)


def propensity_score_matching(X, treatment, outcome,
                              n_neighbors: int = 1,
                              caliper: float | None = 0.1,
                              l2: float = 1.0) -> EffectEstimate:
    """ATT-style 1:k nearest-neighbour matching on the propensity score.

    Each treated unit is matched to its ``n_neighbors`` nearest controls
    in propensity; matches farther than ``caliper`` (in propensity units)
    are discarded.
    """
    X, treatment, outcome = _check_inputs(X, treatment, outcome)
    propensity = estimate_propensities(X, treatment, l2=l2)
    treated_idx = np.flatnonzero(treatment == 1.0)
    control_idx = np.flatnonzero(treatment == 0.0)
    if len(control_idx) < n_neighbors:
        raise CausalError("not enough controls for the requested neighbours")
    control_p = propensity[control_idx]
    order = np.argsort(control_p, kind="stable")
    sorted_controls = control_idx[order]
    sorted_p = control_p[order]

    effects = []
    for index in treated_idx:
        position = np.searchsorted(sorted_p, propensity[index])
        low = max(0, position - n_neighbors)
        high = min(len(sorted_p), position + n_neighbors)
        window = np.arange(low, high)
        distances = np.abs(sorted_p[window] - propensity[index])
        nearest = window[np.argsort(distances, kind="stable")[:n_neighbors]]
        if caliper is not None:
            nearest = nearest[
                np.abs(sorted_p[nearest] - propensity[index]) <= caliper
            ]
        if len(nearest) == 0:
            continue
        matched_outcome = outcome[sorted_controls[nearest]].mean()
        effects.append(outcome[index] - matched_outcome)
    if not effects:
        raise CausalError("no matches within the caliper; widen it")
    effects_arr = np.asarray(effects)
    return EffectEstimate(
        "psm", float(effects_arr.mean()),
        float(effects_arr.std(ddof=1) / np.sqrt(len(effects_arr))),
        len(outcome),
        detail=f"{len(effects_arr)}/{len(treated_idx)} treated units matched",
    )


def inverse_probability_weighting(X, treatment, outcome,
                                  l2: float = 1.0,
                                  clip: float = 0.01) -> EffectEstimate:
    """Hájek-normalised IPW estimate of the ATE."""
    X, treatment, outcome = _check_inputs(X, treatment, outcome)
    propensity = estimate_propensities(X, treatment, l2=l2, clip=clip)
    w_treated = treatment / propensity
    w_control = (1.0 - treatment) / (1.0 - propensity)
    mean_treated = float(np.sum(w_treated * outcome) / np.sum(w_treated))
    mean_control = float(np.sum(w_control * outcome) / np.sum(w_control))
    ate = mean_treated - mean_control
    # Influence-function standard error (plug-in).
    influence = (
        w_treated * (outcome - mean_treated)
        - w_control * (outcome - mean_control)
    )
    scale = 0.5 * (np.sum(w_treated) + np.sum(w_control)) / len(outcome)
    std_error = float(
        np.std(influence, ddof=1) / (scale * np.sqrt(len(outcome)))
    )
    return EffectEstimate("ipw", ate, std_error, len(outcome))


def doubly_robust(X, treatment, outcome, l2: float = 1.0,
                  clip: float = 0.01) -> EffectEstimate:
    """AIPW: outcome regression + IPW correction; consistent if either
    the propensity model or the outcome model is right."""
    X, treatment, outcome = _check_inputs(X, treatment, outcome)
    propensity = estimate_propensities(X, treatment, l2=l2, clip=clip)
    treated_mask = treatment == 1.0
    mu1_model = RidgeRegression(l2=l2).fit(X[treated_mask], outcome[treated_mask])
    mu0_model = RidgeRegression(l2=l2).fit(X[~treated_mask], outcome[~treated_mask])
    mu1 = mu1_model.predict(X)
    mu0 = mu0_model.predict(X)
    augmented = (
        mu1 - mu0
        + treatment * (outcome - mu1) / propensity
        - (1.0 - treatment) * (outcome - mu0) / (1.0 - propensity)
    )
    return EffectEstimate(
        "aipw", float(augmented.mean()),
        float(augmented.std(ddof=1) / np.sqrt(len(augmented))),
        len(outcome),
    )


def compare_estimators(X, treatment, outcome,
                       rct_treatment=None, rct_outcome=None,
                       truth: float | None = None,
                       ) -> dict[str, EffectEstimate]:
    """Run the full estimator battery (the E6 harness row)."""
    results = {
        "naive": naive_difference(treatment, outcome),
        "psm": propensity_score_matching(X, treatment, outcome),
        "ipw": inverse_probability_weighting(X, treatment, outcome),
        "aipw": doubly_robust(X, treatment, outcome),
    }
    if rct_treatment is not None and rct_outcome is not None:
        results["rct"] = rct_estimate(rct_treatment, rct_outcome)
    if truth is not None:
        results = {
            name: EffectEstimate(
                estimate.method, estimate.ate, estimate.std_error, estimate.n,
                detail=f"bias vs truth = {estimate.bias_against(truth):+.4f}",
            )
            for name, estimate in results.items()
        }
    return results
