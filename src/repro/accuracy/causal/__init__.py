"""Causal inference: DAGs, back-door adjustment, effect estimators."""

from repro.accuracy.causal.dag import CausalDAG
from repro.accuracy.causal.estimators import (
    EffectEstimate,
    compare_estimators,
    doubly_robust,
    estimate_propensities,
    inverse_probability_weighting,
    naive_difference,
    propensity_score_matching,
    rct_estimate,
)
from repro.accuracy.causal.cate import (
    SLearner,
    SubgroupEffect,
    TLearner,
    effects_by_group,
    policy_value,
)

__all__ = [
    "policy_value",
    "effects_by_group",
    "TLearner",
    "SubgroupEffect",
    "SLearner",
    "CausalDAG",
    "EffectEstimate",
    "compare_estimators",
    "doubly_robust",
    "estimate_propensities",
    "inverse_probability_weighting",
    "naive_difference",
    "propensity_score_matching",
    "rct_estimate",
]
