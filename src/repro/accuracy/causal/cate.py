"""Heterogeneous treatment effects: CATE meta-learners (Q2 extension).

The average effect can hide everything that matters — an ad that helps
new customers and annoys loyal ones has a small ATE and a large policy
mistake inside it.  Two standard meta-learners over this toolkit's own
models:

* **S-learner** — one model on (X, T), effect = f(x, 1) − f(x, 0);
* **T-learner** — separate treated/control models, effect = f₁(x) − f₀(x).

Both return per-individual effect estimates plus a subgroup summary the
decision maker can act on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import CausalError
from repro.learn.base import Classifier


def _check(X, treatment, outcome):
    X = np.asarray(X, dtype=np.float64)
    treatment = np.asarray(treatment, dtype=np.float64)
    outcome = np.asarray(outcome, dtype=np.float64)
    if X.ndim != 2 or len(X) != len(treatment) or len(X) != len(outcome):
        raise CausalError("X, treatment and outcome must be aligned")
    if not np.all(np.isin(np.unique(treatment), (0.0, 1.0))):
        raise CausalError("treatment must be 0/1")
    if not (treatment == 1.0).any() or not (treatment == 0.0).any():
        raise CausalError("need both treated and control units")
    return X, treatment, outcome


class SLearner:
    """Single-model CATE: treatment enters as one more feature."""

    def __init__(self, base: Classifier):
        self.base = base
        self._model: Classifier | None = None

    def fit(self, X, treatment, outcome) -> "SLearner":
        """Fit the joint (X, T) → Y model."""
        X, treatment, outcome = _check(X, treatment, outcome)
        design = np.hstack([X, treatment[:, None]])
        self._model = self.base.clone()
        self._model.fit(design, outcome)
        return self

    def effect(self, X) -> np.ndarray:
        """Per-row estimated effect: f(x, 1) − f(x, 0)."""
        if self._model is None:
            raise CausalError("fit() must run before effect()")
        X = np.asarray(X, dtype=np.float64)
        with_treatment = np.hstack([X, np.ones((len(X), 1))])
        without = np.hstack([X, np.zeros((len(X), 1))])
        return (self._model.predict_proba(with_treatment)
                - self._model.predict_proba(without))


class TLearner:
    """Two-model CATE: separate response surfaces per arm."""

    def __init__(self, base: Classifier):
        self.base = base
        self._treated: Classifier | None = None
        self._control: Classifier | None = None

    def fit(self, X, treatment, outcome) -> "TLearner":
        """Fit per-arm outcome models."""
        X, treatment, outcome = _check(X, treatment, outcome)
        treated_mask = treatment == 1.0
        self._treated = self.base.clone()
        self._treated.fit(X[treated_mask], outcome[treated_mask])
        self._control = self.base.clone()
        self._control.fit(X[~treated_mask], outcome[~treated_mask])
        return self

    def effect(self, X) -> np.ndarray:
        """Per-row estimated effect: f₁(x) − f₀(x)."""
        if self._treated is None or self._control is None:
            raise CausalError("fit() must run before effect()")
        X = np.asarray(X, dtype=np.float64)
        return (self._treated.predict_proba(X)
                - self._control.predict_proba(X))


@dataclass(frozen=True)
class SubgroupEffect:
    """The estimated effect inside one (named) subgroup."""

    name: str
    n: int
    mean_effect: float


def effects_by_group(effects, group) -> list[SubgroupEffect]:
    """Summarise per-row effects over a categorical grouping."""
    effects = np.asarray(effects, dtype=np.float64)
    group = np.asarray(group)
    if effects.shape != group.shape:
        raise CausalError("effects and group must be aligned")
    out = []
    for value in np.unique(group):
        mask = group == value
        out.append(SubgroupEffect(
            name=str(value), n=int(mask.sum()),
            mean_effect=float(effects[mask].mean()),
        ))
    out.sort(key=lambda item: item.mean_effect, reverse=True)
    return out


def policy_value(effects, treat_fraction: float) -> float:
    """Mean effect if only the top ``treat_fraction`` (by estimated
    effect) were treated — the uplift-modelling payoff number."""
    effects = np.asarray(effects, dtype=np.float64)
    if not 0.0 < treat_fraction <= 1.0:
        raise CausalError("treat_fraction must be in (0, 1]")
    n_treat = max(1, int(round(treat_fraction * len(effects))))
    top = np.sort(effects)[::-1][:n_treat]
    return float(top.mean())
