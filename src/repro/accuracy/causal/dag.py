"""Causal DAGs with back-door identification (Q2).

§2: "In most situations, causal inference is the goal of data analysis in
business, but often enough correlation is confused with causality."  The
DAG is the artefact that makes the difference checkable: adjustment sets
are *derived* from declared structure, not guessed.

Built on :mod:`networkx`; supports d-separation and a back-door
adjustment-set search.
"""

from __future__ import annotations

import itertools

import networkx as nx

from repro.exceptions import CausalError


class CausalDAG:
    """A directed acyclic graph of causal assumptions."""

    def __init__(self, edges: list[tuple[str, str]],
                 latent: set[str] | None = None):
        graph = nx.DiGraph()
        graph.add_edges_from(edges)
        if not nx.is_directed_acyclic_graph(graph):
            raise CausalError("causal graph must be acyclic")
        self._graph = graph
        self.latent = set(latent or ())
        unknown_latent = self.latent - set(graph.nodes)
        if unknown_latent:
            raise CausalError(f"latent nodes not in graph: {sorted(unknown_latent)}")

    @property
    def nodes(self) -> list[str]:
        """All variables, sorted."""
        return sorted(self._graph.nodes)

    @property
    def observed(self) -> list[str]:
        """Variables an analyst can condition on."""
        return sorted(set(self._graph.nodes) - self.latent)

    def parents(self, node: str) -> set[str]:
        """Direct causes of ``node``."""
        self._require(node)
        return set(self._graph.predecessors(node))

    def descendants(self, node: str) -> set[str]:
        """All causal descendants of ``node``."""
        self._require(node)
        return nx.descendants(self._graph, node)

    def _require(self, node: str) -> None:
        if node not in self._graph:
            raise CausalError(f"unknown variable {node!r}")

    # -- d-separation -----------------------------------------------------------

    def d_separated(self, x: str, y: str, given: set[str] | None = None) -> bool:
        """Is ``x`` independent of ``y`` given ``given`` in every
        distribution compatible with the DAG?"""
        self._require(x)
        self._require(y)
        conditioning = set(given or ())
        for node in conditioning:
            self._require(node)
        return nx.is_d_separator(self._graph, {x}, {y}, conditioning)

    # -- back-door adjustment ------------------------------------------------------

    def satisfies_backdoor(self, treatment: str, outcome: str,
                           adjustment: set[str]) -> bool:
        """Does ``adjustment`` satisfy the back-door criterion?

        (i) no member is a descendant of the treatment; (ii) the set
        blocks every back-door path, checked as d-separation in the graph
        with the treatment's outgoing edges removed.
        """
        self._require(treatment)
        self._require(outcome)
        if adjustment & self.descendants(treatment):
            return False
        if treatment in adjustment or outcome in adjustment:
            return False
        pruned = self._graph.copy()
        pruned.remove_edges_from(list(pruned.out_edges(treatment)))
        return nx.is_d_separator(pruned, {treatment}, {outcome}, adjustment)

    def backdoor_adjustment_set(self, treatment: str,
                                outcome: str) -> set[str] | None:
        """The smallest observed back-door set, or ``None`` if none exists.

        Exhaustive over subsets of eligible observed variables — fine for
        the handful-of-nodes graphs responsible pipelines actually declare.
        """
        self._require(treatment)
        self._require(outcome)
        forbidden = (
            self.descendants(treatment) | {treatment, outcome} | self.latent
        )
        candidates = sorted(set(self._graph.nodes) - forbidden)
        for size in range(len(candidates) + 1):
            for subset in itertools.combinations(candidates, size):
                if self.satisfies_backdoor(treatment, outcome, set(subset)):
                    return set(subset)
        return None

    def is_identifiable(self, treatment: str, outcome: str) -> bool:
        """Can the effect be identified by back-door adjustment alone?"""
        return self.backdoor_adjustment_set(treatment, outcome) is not None

    def to_networkx(self) -> nx.DiGraph:
        """A copy of the underlying graph."""
        return self._graph.copy()
